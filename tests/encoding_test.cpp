// Unit tests for the CGCS byte-level encoding primitives: zigzag,
// varint columns, CRC-32, and the bounds-checked footer buffers.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "store/encoding.hpp"
#include "util/check.hpp"

namespace cgc::store {
namespace {

TEST(Zigzag, MapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  EXPECT_EQ(zigzag_encode(2), 4u);
}

TEST(Zigzag, RoundTripsExtremes) {
  const std::int64_t values[] = {
      0,
      1,
      -1,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
  };
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(VarintColumn, RoundTripsPlain) {
  const std::vector<std::int64_t> values = {0, 5, -3, 1'000'000'000'000,
                                            -42, 7};
  std::vector<std::uint8_t> bytes;
  encode_i64_column(values, /*delta=*/false, &bytes);
  std::vector<std::int64_t> decoded;
  decode_i64_column(bytes, values.size(), /*delta=*/false, &decoded);
  EXPECT_EQ(decoded, values);
}

TEST(VarintColumn, RoundTripsDelta) {
  // Sorted, monotone series — the delta path's target shape.
  std::vector<std::int64_t> values;
  for (std::int64_t t = 1'000'000; t < 1'000'200; t += 3) {
    values.push_back(t);
  }
  std::vector<std::uint8_t> bytes;
  encode_i64_column(values, /*delta=*/true, &bytes);
  // Small deltas encode in ~1 byte each, far below 8 bytes/value.
  EXPECT_LT(bytes.size(), values.size() * 3);
  std::vector<std::int64_t> decoded;
  decode_i64_column(bytes, values.size(), /*delta=*/true, &decoded);
  EXPECT_EQ(decoded, values);
}

TEST(VarintColumn, RoundTripsDeltaWithNegativeSteps) {
  const std::vector<std::int64_t> values = {100, 90, 95, -5, 1'000, 999};
  std::vector<std::uint8_t> bytes;
  encode_i64_column(values, /*delta=*/true, &bytes);
  std::vector<std::int64_t> decoded;
  decode_i64_column(bytes, values.size(), /*delta=*/true, &decoded);
  EXPECT_EQ(decoded, values);
}

TEST(VarintColumn, RoundTripsEmpty) {
  std::vector<std::uint8_t> bytes;
  encode_i64_column({}, /*delta=*/false, &bytes);
  EXPECT_TRUE(bytes.empty());
  std::vector<std::int64_t> decoded = {1, 2, 3};
  decode_i64_column(bytes, 0, /*delta=*/false, &decoded);
  EXPECT_TRUE(decoded.empty());
}

TEST(VarintColumn, ThrowsOnTruncatedBytes) {
  const std::vector<std::int64_t> values = {1, 2, 300'000};
  std::vector<std::uint8_t> bytes;
  encode_i64_column(values, /*delta=*/false, &bytes);
  std::vector<std::int64_t> decoded;
  const std::span<const std::uint8_t> cut(bytes.data(), bytes.size() - 1);
  EXPECT_THROW(decode_i64_column(cut, values.size(), false, &decoded),
               util::Error);
}

TEST(VarintColumn, ThrowsOnTrailingBytes) {
  const std::vector<std::int64_t> values = {1, 2, 3};
  std::vector<std::uint8_t> bytes;
  encode_i64_column(values, /*delta=*/false, &bytes);
  bytes.push_back(0x00);  // one spurious extra varint
  std::vector<std::int64_t> decoded;
  EXPECT_THROW(decode_i64_column(bytes, values.size(), false, &decoded),
               util::Error);
}

TEST(VarintColumn, ThrowsOnOverlongVarint) {
  // Eleven continuation bytes cannot be a valid 64-bit varint.
  std::vector<std::uint8_t> bytes(11, 0x80);
  std::vector<std::int64_t> decoded;
  EXPECT_THROW(decode_i64_column(bytes, 1, false, &decoded), util::Error);
}

TEST(Crc32, MatchesKnownCheckValue) {
  // The standard CRC-32 check string.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint32_t before = crc32(data);
  data[100] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

TEST(FooterBuffer, RoundTripsAllTypes) {
  BufferWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.25);
  w.put_string("google-2011");

  BufferReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_string(), "google-2011");
  EXPECT_TRUE(r.exhausted());
}

TEST(FooterBuffer, ThrowsOnOverRead) {
  BufferWriter w;
  w.put_u32(7);
  BufferReader r(w.bytes());
  EXPECT_EQ(r.get_u32(), 7u);
  EXPECT_THROW(r.get_u32(), util::Error);
}

TEST(FooterBuffer, ThrowsOnTruncatedString) {
  BufferWriter w;
  w.put_string("hello");
  const auto& full = w.bytes();
  // Cut off mid-string: length prefix says 5, only 2 payload bytes left.
  BufferReader r(std::span<const std::uint8_t>(full.data(), 6));
  EXPECT_THROW(r.get_string(), util::Error);
}

}  // namespace
}  // namespace cgc::store
