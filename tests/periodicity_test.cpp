// Tests for the periodicity detection and rank-correlation utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/periodicity.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

std::vector<double> sine_series(std::size_t n, double period,
                                double noise_sigma, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period) +
           noise_sigma * rng.normal();
  }
  return v;
}

TEST(AcfFunction, LagOneMatchesAutocorrelation) {
  const auto v = sine_series(2000, 100.0, 0.1, 1);
  const auto acf = autocorrelation_function(v, 10);
  ASSERT_EQ(acf.size(), 10u);
  // acf[0] is the lag-1 value; a slow sine has high lag-1 correlation.
  EXPECT_GT(acf[0], 0.9);
}

TEST(AcfFunction, ConstantSeriesIsAllZero) {
  const std::vector<double> v(100, 2.5);
  for (const double rho : autocorrelation_function(v, 5)) {
    EXPECT_DOUBLE_EQ(rho, 0.0);
  }
}

TEST(AcfFunction, SinePeaksAtPeriod) {
  const auto v = sine_series(5000, 50.0, 0.05, 2);
  const auto acf = autocorrelation_function(v, 120);
  // The ACF of a sine peaks at its period (lag 50 -> index 49).
  const auto max_it = std::max_element(acf.begin() + 20, acf.end());
  const auto peak_lag = (max_it - acf.begin()) + 1;
  EXPECT_NEAR(static_cast<double>(peak_lag), 50.0, 2.0);
}

TEST(DetectPeriodicity, FindsDiurnalCycle) {
  // 30 days of hourly samples with a 24-hour cycle — the Grid pattern.
  const auto v = sine_series(24 * 30, 24.0, 0.3, 3);
  const auto result = detect_periodicity(v, 4, 48);
  EXPECT_TRUE(result.significant);
  EXPECT_NEAR(static_cast<double>(result.dominant_period), 24.0, 2.0);
  EXPECT_GT(result.strength, 0.3);
}

TEST(DetectPeriodicity, WhiteNoiseIsNotSignificant) {
  util::Rng rng(4);
  std::vector<double> v(24 * 30);
  for (double& x : v) {
    x = rng.normal();
  }
  const auto result = detect_periodicity(v, 4, 48);
  EXPECT_FALSE(result.significant);
}

TEST(DetectPeriodicity, ShortSeriesIsNotSignificant) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const auto result = detect_periodicity(v, 4, 48);
  EXPECT_FALSE(result.significant);
  EXPECT_EQ(result.dominant_period, 0u);
}

TEST(DetectPeriodicity, InvalidLagsThrow) {
  const std::vector<double> v(100, 1.0);
  EXPECT_THROW(detect_periodicity(v, 1, 48), util::Error);
  EXPECT_THROW(detect_periodicity(v, 10, 10), util::Error);
}

TEST(Spearman, PerfectMonotoneIsOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {10.0, 100.0, 1000.0, 10000.0};
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(spearman_correlation(a, b), -1.0, 1e-12);
}

TEST(Spearman, IndependentIsNearZero) {
  util::Rng rng(5);
  std::vector<double> a(5000), b(5000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  EXPECT_NEAR(spearman_correlation(a, b), 0.0, 0.05);
}

TEST(Spearman, InvariantToMonotoneTransforms) {
  util::Rng rng(6);
  std::vector<double> a(1000), b(1000), b_transformed(1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = a[i] + 0.5 * rng.normal();
    b_transformed[i] = std::exp(b[i]);  // monotone transform
  }
  EXPECT_NEAR(spearman_correlation(a, b),
              spearman_correlation(a, b_transformed), 1e-9);
}

TEST(Spearman, TiesGetAverageRanks) {
  const std::vector<double> a = {1.0, 1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, MismatchedLengthsThrow) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(spearman_correlation(a, b), util::Error);
}

TEST(Spearman, ConstantInputGivesZero) {
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(spearman_correlation(a, b), 0.0);
}

}  // namespace
}  // namespace cgc::stats
