// Tests for the CGCS columnar trace store: lossless round-trips,
// zone-map pushdown, zero-copy spans, and rejection of corrupted files.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/google_model.hpp"
#include "store/cgcs_format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/trace_set.hpp"
#include "util/check.hpp"

namespace cgc::store {
namespace {

using trace::HostLoadSeries;
using trace::Job;
using trace::kNumBands;
using trace::Machine;
using trace::PriorityBand;
using trace::Task;
using trace::TaskEvent;
using trace::TaskEventType;
using trace::TraceSet;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_store_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

/// A small but fully populated Google-model trace: generated jobs and
/// tasks, per-task synthetic events, a heterogeneous machine park, and
/// host-load series. Deterministic (fixed model seed, LCG samples).
TraceSet make_model_trace() {
  gen::GoogleModelConfig config;
  config.seed = 7;
  const gen::GoogleWorkloadModel model(config);
  TraceSet trace = model.generate_workload(/*horizon=*/2 * 3600);

  for (const Machine& m : model.make_machines(16)) {
    trace.add_machine(m);
  }

  // Events derived from the task records (SUBMIT/SCHEDULE/terminal), so
  // every event column gets realistic, varied values.
  for (const Task& t : trace.tasks()) {
    trace.add_event({t.submit_time, t.job_id, t.task_index, -1,
                     TaskEventType::kSubmit, t.priority});
    if (t.schedule_time >= 0) {
      trace.add_event({t.schedule_time, t.job_id, t.task_index, t.machine_id,
                       TaskEventType::kSchedule, t.priority});
    }
    if (t.end_time >= 0) {
      trace.add_event({t.end_time, t.job_id, t.task_index, t.machine_id,
                       t.end_event, t.priority});
    }
  }

  std::uint64_t lcg = 0x243F6A8885A308D3ull;
  const auto next_float = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>(lcg >> 40) / static_cast<float>(1u << 24);
  };
  for (std::int64_t machine_id = 0; machine_id < 16; ++machine_id) {
    HostLoadSeries h(machine_id, /*start=*/300, /*period=*/300);
    for (int i = 0; i < 40; ++i) {
      const float cpu[kNumBands] = {next_float(), next_float(), next_float()};
      const float mem[kNumBands] = {next_float(), next_float(), next_float()};
      h.append(cpu, mem, next_float(), next_float(),
               static_cast<std::int32_t>(lcg % 50),
               static_cast<std::int32_t>(lcg % 7));
    }
    trace.add_host_load(std::move(h));
  }
  trace.finalize();
  return trace;
}

void expect_equal(const TaskEvent& a, const TaskEvent& b) {
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.job_id, b.job_id);
  EXPECT_EQ(a.task_index, b.task_index);
  EXPECT_EQ(a.machine_id, b.machine_id);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.priority, b.priority);
}

void expect_equal_traces(const TraceSet& a, const TraceSet& b) {
  EXPECT_EQ(a.system_name(), b.system_name());
  EXPECT_EQ(a.duration(), b.duration());
  EXPECT_EQ(a.memory_in_mb(), b.memory_in_mb());

  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    const Job& x = a.jobs()[i];
    const Job& y = b.jobs()[i];
    EXPECT_EQ(x.job_id, y.job_id);
    EXPECT_EQ(x.user_id, y.user_id);
    EXPECT_EQ(x.priority, y.priority);
    EXPECT_EQ(x.submit_time, y.submit_time);
    EXPECT_EQ(x.end_time, y.end_time);
    EXPECT_EQ(x.num_tasks, y.num_tasks);
    EXPECT_EQ(x.cpu_parallelism, y.cpu_parallelism);  // bit-exact
    EXPECT_EQ(x.mem_usage, y.mem_usage);
  }

  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  for (std::size_t i = 0; i < a.tasks().size(); ++i) {
    const Task& x = a.tasks()[i];
    const Task& y = b.tasks()[i];
    EXPECT_EQ(x.job_id, y.job_id);
    EXPECT_EQ(x.task_index, y.task_index);
    EXPECT_EQ(x.priority, y.priority);
    EXPECT_EQ(x.submit_time, y.submit_time);
    EXPECT_EQ(x.schedule_time, y.schedule_time);
    EXPECT_EQ(x.end_time, y.end_time);
    EXPECT_EQ(x.end_event, y.end_event);
    EXPECT_EQ(x.machine_id, y.machine_id);
    EXPECT_EQ(x.resubmits, y.resubmits);
    EXPECT_EQ(x.cpu_request, y.cpu_request);
    EXPECT_EQ(x.mem_request, y.mem_request);
    EXPECT_EQ(x.cpu_usage, y.cpu_usage);
    EXPECT_EQ(x.mem_usage, y.mem_usage);
  }

  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    expect_equal(a.events()[i], b.events()[i]);
  }

  ASSERT_EQ(a.machines().size(), b.machines().size());
  for (std::size_t i = 0; i < a.machines().size(); ++i) {
    const Machine& x = a.machines()[i];
    const Machine& y = b.machines()[i];
    EXPECT_EQ(x.machine_id, y.machine_id);
    EXPECT_EQ(x.cpu_capacity, y.cpu_capacity);
    EXPECT_EQ(x.mem_capacity, y.mem_capacity);
    EXPECT_EQ(x.page_cache_capacity, y.page_cache_capacity);
    EXPECT_EQ(x.attributes, y.attributes);
  }

  ASSERT_EQ(a.host_load().size(), b.host_load().size());
  for (std::size_t i = 0; i < a.host_load().size(); ++i) {
    const HostLoadSeries& x = a.host_load()[i];
    const HostLoadSeries& y = b.host_load()[i];
    EXPECT_EQ(x.machine_id(), y.machine_id());
    EXPECT_EQ(x.start(), y.start());
    EXPECT_EQ(x.period(), y.period());
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t s = 0; s < x.size(); ++s) {
      for (const PriorityBand band :
           {PriorityBand::kLow, PriorityBand::kMid, PriorityBand::kHigh}) {
        EXPECT_EQ(x.cpu(band, s), y.cpu(band, s));
        EXPECT_EQ(x.mem(band, s), y.mem(band, s));
      }
      EXPECT_EQ(x.mem_assigned(s), y.mem_assigned(s));
      EXPECT_EQ(x.page_cache(s), y.page_cache(s));
      EXPECT_EQ(x.running(s), y.running(s));
      EXPECT_EQ(x.pending(s), y.pending(s));
    }
  }
}

TEST_F(StoreTest, RoundTripsGoogleModelTrace) {
  const TraceSet original = make_model_trace();
  ASSERT_GT(original.jobs().size(), 100u);
  ASSERT_GT(original.events().size(), 100u);
  const std::string p = path("model.cgcs");
  write_cgcs(original, p);

  const TraceSet loaded = read_cgcs(p);
  expect_equal_traces(original, loaded);
}

TEST_F(StoreTest, RoundTripsWithTinyChunks) {
  // rows_per_chunk far below the section sizes exercises multi-chunk
  // sections, delta restarts at chunk boundaries, and the scatter paths.
  const TraceSet original = make_model_trace();
  const std::string p = path("tiny_chunks.cgcs");
  WriteOptions options;
  options.chunks.rows_per_chunk = 7;
  write_cgcs(original, p, options);

  const StoreReader reader(p);
  EXPECT_GT(reader.chunks().size(), 100u);
  expect_equal_traces(original, reader.load_trace_set());
}

TEST_F(StoreTest, RoundTripsEmptyHostLoadGridTrace) {
  // Grid archives (SWF/GWA) have jobs and tasks only; machines,
  // events, and host-load stay empty and memory lands in MB.
  TraceSet original("grid-das2");
  original.set_memory_in_mb(true);
  Job j;
  j.job_id = 1;
  j.submit_time = 100;
  j.end_time = 500;
  j.cpu_parallelism = 16.0f;
  j.mem_usage = 2048.0f;
  original.add_job(j);
  Task t;
  t.job_id = 1;
  t.submit_time = 100;
  t.schedule_time = 120;
  t.end_time = 500;
  t.cpu_request = 16.0f;
  original.add_task(t);
  original.set_duration(86400);
  original.finalize();

  const std::string p = path("grid.cgcs");
  write_cgcs(original, p);
  const TraceSet loaded = read_cgcs(p);
  EXPECT_TRUE(loaded.memory_in_mb());
  EXPECT_TRUE(loaded.machines().empty());
  EXPECT_TRUE(loaded.host_load().empty());
  EXPECT_TRUE(loaded.events().empty());
  expect_equal_traces(original, loaded);
}

TEST_F(StoreTest, RoundTripsEmptyTrace) {
  TraceSet original("empty");
  original.set_duration(10);
  original.finalize();
  const std::string p = path("empty.cgcs");
  write_cgcs(original, p);
  const TraceSet loaded = read_cgcs(p);
  EXPECT_EQ(loaded.system_name(), "empty");
  EXPECT_EQ(loaded.duration(), 10);
  EXPECT_TRUE(loaded.jobs().empty());
  EXPECT_TRUE(loaded.events().empty());
}

TEST_F(StoreTest, StoreInfoMatchesTraceSummary) {
  const TraceSet original = make_model_trace();
  const std::string p = path("info.cgcs");
  write_cgcs(original, p);
  const StoreReader reader(p);
  const StoreInfo& info = reader.info();
  EXPECT_EQ(info.system_name, original.system_name());
  EXPECT_EQ(info.duration, original.duration());
  EXPECT_EQ(info.num_jobs, original.jobs().size());
  EXPECT_EQ(info.num_tasks, original.tasks().size());
  EXPECT_EQ(info.num_events, original.events().size());
  EXPECT_EQ(info.num_machines, original.machines().size());
  EXPECT_EQ(info.num_hostload_series, original.host_load().size());
  EXPECT_EQ(info.file_size, std::filesystem::file_size(p));
}

TEST_F(StoreTest, ZeroCopySpansExposeRawColumns) {
  const TraceSet original = make_model_trace();
  const std::string p = path("spans.cgcs");
  write_cgcs(original, p);
  const StoreReader reader(p);

  const auto chunks =
      reader.column_chunks(SectionId::kMachines, ColumnId::kCpuCapacity);
  ASSERT_EQ(chunks.size(), 1u);
  const std::span<const float> cpu = reader.f32_span(*chunks[0]);
  ASSERT_EQ(cpu.size(), original.machines().size());
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    EXPECT_EQ(cpu[i], original.machines()[i].cpu_capacity);
  }

  const auto pri_chunks =
      reader.column_chunks(SectionId::kEvents, ColumnId::kPriority);
  ASSERT_FALSE(pri_chunks.empty());
  std::size_t row = 0;
  for (const ChunkMeta* chunk : pri_chunks) {
    for (const std::uint8_t v : reader.u8_span(*chunk)) {
      EXPECT_EQ(v, original.events()[row++].priority);
    }
  }
  EXPECT_EQ(row, original.events().size());
}

TEST_F(StoreTest, ZoneMapPruningMatchesBruteForce) {
  const TraceSet original = make_model_trace();
  const std::string p = path("prune.cgcs");
  WriteOptions options;
  options.chunks.rows_per_chunk = 64;  // many row groups to prune
  write_cgcs(original, p, options);
  const StoreReader reader(p);

  EventPredicate window;
  window.time_min = original.duration() / 4;
  window.time_max = original.duration() / 2;

  std::vector<TaskEvent> scanned;
  const ScanStats stats =
      reader.scan(window, [&](std::span<const TaskEvent> batch) {
        scanned.insert(scanned.end(), batch.begin(), batch.end());
      });

  std::vector<TaskEvent> expected;
  for (const TaskEvent& e : original.events()) {
    if (window.matches(e)) {
      expected.push_back(e);
    }
  }
  ASSERT_EQ(scanned.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expect_equal(scanned[i], expected[i]);
  }

  // Events are time-sorted, so a quarter-trace window must skip groups.
  EXPECT_GT(stats.row_groups_total, 4u);
  EXPECT_LT(stats.row_groups_scanned, stats.row_groups_total);
  EXPECT_EQ(stats.rows_matched, expected.size());
}

TEST_F(StoreTest, JobIdPredicateFilters) {
  const TraceSet original = make_model_trace();
  const std::string p = path("jobid.cgcs");
  write_cgcs(original, p);
  const StoreReader reader(p);

  const std::int64_t target = original.events()[0].job_id;
  EventPredicate pred;
  pred.job_id_min = target;
  pred.job_id_max = target;
  const std::vector<TaskEvent> got = reader.query_events(pred);
  std::size_t expected = 0;
  for (const TaskEvent& e : original.events()) {
    expected += e.job_id == target ? 1 : 0;
  }
  EXPECT_EQ(got.size(), expected);
  for (const TaskEvent& e : got) {
    EXPECT_EQ(e.job_id, target);
  }
}

TEST_F(StoreTest, OpenPredicateScansEverything) {
  const TraceSet original = make_model_trace();
  const std::string p = path("full.cgcs");
  write_cgcs(original, p);
  const StoreReader reader(p);
  const ScanStats stats =
      reader.scan(EventPredicate{}, [](std::span<const TaskEvent>) {});
  EXPECT_EQ(stats.row_groups_scanned, stats.row_groups_total);
  EXPECT_EQ(stats.rows_decoded, original.events().size());
  EXPECT_EQ(stats.rows_matched, original.events().size());
}

// ---------------------------------------------------------------------------
// Corruption rejection
// ---------------------------------------------------------------------------

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class StoreCorruptionTest : public StoreTest {
 protected:
  void SetUp() override {
    StoreTest::SetUp();
    path_ = path("victim.cgcs");
    TraceSet trace = make_model_trace();
    write_cgcs(trace, path_);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), kHeaderSize + kTrailerSize);
  }

  void expect_rejected(const std::string& mutated,
                       const std::string& expected_substr) {
    spit(path_, mutated);
    try {
      const StoreReader reader(path_);
      reader.load_trace_set();
      FAIL() << "expected Error mentioning '" << expected_substr << "'";
    } catch (const util::Error& e) {
      EXPECT_NE(std::string(e.what()).find(expected_substr),
                std::string::npos)
          << e.what();
    }
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(StoreCorruptionTest, RejectsBadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  expect_rejected(mutated, "bad magic");
}

TEST_F(StoreCorruptionTest, RejectsUnsupportedVersion) {
  std::string mutated = bytes_;
  mutated[4] = 99;  // u32 format_version directly after the magic
  expect_rejected(mutated, "unsupported format version");
}

TEST_F(StoreCorruptionTest, RejectsTruncatedFile) {
  expect_rejected(bytes_.substr(0, bytes_.size() - 8), "bad end magic");
}

TEST_F(StoreCorruptionTest, RejectsFileShorterThanHeader) {
  expect_rejected(bytes_.substr(0, 10), "shorter than header");
}

TEST_F(StoreCorruptionTest, RejectsFooterOffsetOutOfBounds) {
  std::string mutated = bytes_;
  // Trailer starts 16 bytes from the end with the u64 footer offset.
  const std::size_t trailer = mutated.size() - kTrailerSize;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[trailer + i] = static_cast<char>(0xFF);
  }
  expect_rejected(mutated, "footer offset out of bounds");
}

TEST_F(StoreCorruptionTest, RejectsCorruptedFooter) {
  std::string mutated = bytes_;
  // Flip a byte a little before the trailer — inside the footer bytes.
  mutated[mutated.size() - kTrailerSize - 4] ^= 0x40;
  expect_rejected(mutated, "CRC");
}

TEST_F(StoreCorruptionTest, RejectsCorruptedChunkPayload) {
  // Find a chunk payload via a healthy reader, then flip one byte in it.
  std::size_t offset = 0;
  {
    const StoreReader reader(path_);
    const ChunkMeta* victim = nullptr;
    for (const ChunkMeta& c : reader.chunks()) {
      if (c.payload_size > 0) {
        victim = &c;
        break;
      }
    }
    ASSERT_NE(victim, nullptr);
    offset = victim->offset;
  }
  std::string mutated = bytes_;
  mutated[offset] ^= 0x01;
  expect_rejected(mutated, "CRC");
}

TEST_F(StoreCorruptionTest, MissingFileThrows) {
  EXPECT_THROW(StoreReader(path("does_not_exist.cgcs")), util::Error);
}

}  // namespace
}  // namespace cgc::store
