// Tests for mean filtering, noise extraction, autocorrelation, and
// level/state run-length analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/timeseries.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(MeanFilter, WindowOneIsIdentity) {
  const std::vector<double> v = {1.0, 5.0, 2.0, 8.0};
  EXPECT_EQ(mean_filter(v, 1), v);
}

TEST(MeanFilter, ConstantSeriesUnchanged) {
  const std::vector<double> v(20, 3.5);
  for (const double s : mean_filter(v, 5)) {
    EXPECT_DOUBLE_EQ(s, 3.5);
  }
}

TEST(MeanFilter, InteriorIsWindowAverage) {
  const std::vector<double> v = {0.0, 3.0, 6.0, 9.0, 12.0};
  const auto smooth = mean_filter(v, 3);
  EXPECT_DOUBLE_EQ(smooth[2], 6.0);
  EXPECT_DOUBLE_EQ(smooth[1], 3.0);
  // Edges use the partial window.
  EXPECT_DOUBLE_EQ(smooth[0], 1.5);
  EXPECT_DOUBLE_EQ(smooth[4], 10.5);
}

TEST(MeanFilter, EvenWindowThrows) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(mean_filter(v, 4), util::Error);
}

TEST(Noise, ConstantSeriesHasZeroNoise) {
  const std::vector<double> v(50, 1.0);
  const NoiseResult r = noise_after_mean_filter(v, 5);
  EXPECT_DOUBLE_EQ(r.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(r.max_abs, 0.0);
}

TEST(Noise, ScalesWithAmplitude) {
  util::Rng rng(3);
  std::vector<double> small, large;
  for (int i = 0; i < 2000; ++i) {
    const double z = rng.normal();
    small.push_back(0.5 + 0.01 * z);
    large.push_back(0.5 + 0.10 * z);
  }
  const double n_small = noise_after_mean_filter(small).mean_abs;
  const double n_large = noise_after_mean_filter(large).mean_abs;
  EXPECT_NEAR(n_large / n_small, 10.0, 0.5);
}

TEST(Noise, SmoothTrendHasTinyNoise) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(std::sin(2.0 * std::numbers::pi * i / 500.0));
  }
  // A slow sine is almost unchanged by a short mean filter.
  EXPECT_LT(noise_after_mean_filter(v, 5).mean_abs, 0.001);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
  const std::vector<double> v(100, 2.0);
  EXPECT_DOUBLE_EQ(autocorrelation(v, 1), 0.0);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  util::Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) {
    v.push_back(rng.normal());
  }
  EXPECT_NEAR(autocorrelation(v, 1), 0.0, 0.03);
}

TEST(Autocorrelation, SlowSineIsHighAtLagOne) {
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) {
    v.push_back(std::sin(2.0 * std::numbers::pi * i / 1000.0));
  }
  EXPECT_GT(autocorrelation(v, 1), 0.99);
}

TEST(Autocorrelation, AlternatingSeriesIsNegative) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_LT(autocorrelation(v, 1), -0.9);
}

TEST(Autocorrelation, ShortSeriesIsZero) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(v, 5), 0.0);
}

TEST(UsageLevel, QuantizesFiveLevels) {
  EXPECT_EQ(usage_level(0.0), 0u);
  EXPECT_EQ(usage_level(0.19), 0u);
  EXPECT_EQ(usage_level(0.2), 1u);
  EXPECT_EQ(usage_level(0.59), 2u);
  EXPECT_EQ(usage_level(0.99), 4u);
  EXPECT_EQ(usage_level(1.0), 4u);
  EXPECT_EQ(usage_level(5.0), 4u);   // clamped
  EXPECT_EQ(usage_level(-0.1), 0u);  // clamped
}

TEST(LevelRuns, EncodesRuns) {
  // levels: 0 0 1 1 1 0
  const std::vector<double> v = {0.1, 0.15, 0.3, 0.25, 0.39, 0.05};
  const auto runs = level_runs(v, 5, 300);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].level, 0u);
  EXPECT_EQ(runs[0].duration, 600);
  EXPECT_EQ(runs[1].level, 1u);
  EXPECT_EQ(runs[1].duration, 900);
  EXPECT_EQ(runs[2].level, 0u);
  EXPECT_EQ(runs[2].duration, 300);
}

TEST(LevelRuns, TotalDurationEqualsSeriesLength) {
  util::Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 777; ++i) {
    v.push_back(rng.uniform());
  }
  const auto runs = level_runs(v, 5, 300);
  std::int64_t total = 0;
  for (const auto& run : runs) {
    total += run.duration;
  }
  EXPECT_EQ(total, 777 * 300);
}

TEST(StateRuns, EncodesIntegerStates) {
  const std::vector<std::int64_t> states = {2, 2, 2, 5, 5, 1};
  const auto runs = state_runs(states, 60);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].level, 2u);
  EXPECT_EQ(runs[0].duration, 180);
  EXPECT_EQ(runs[1].level, 5u);
  EXPECT_EQ(runs[2].level, 1u);
}

TEST(StateRuns, EmptyInputGivesNoRuns) {
  const std::vector<std::int64_t> states;
  EXPECT_TRUE(state_runs(states, 60).empty());
}

TEST(RunDurations, FiltersByLevel) {
  const std::vector<LevelRun> runs = {{0, 100}, {1, 200}, {0, 300}};
  const auto at0 = run_durations_at_level(runs, 0);
  ASSERT_EQ(at0.size(), 2u);
  EXPECT_DOUBLE_EQ(at0[0], 100.0);
  EXPECT_DOUBLE_EQ(at0[1], 300.0);
  EXPECT_TRUE(run_durations_at_level(runs, 3).empty());
}

}  // namespace
}  // namespace cgc::stats
