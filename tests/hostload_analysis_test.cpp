// Tests for the host-load analyzers (Figs 7-13, Tables II-III) on a
// small simulated cluster.
#include <gtest/gtest.h>

#include "analysis/hostload_analyzers.hpp"
#include "analysis/periodicity_analyzer.hpp"
#include "core/characterization.hpp"
#include "gen/google_model.hpp"
#include "gen/grid_model.hpp"
#include "util/check.hpp"

namespace cgc::analysis {
namespace {

/// Shared 10-day, 16-machine Google host-load trace. Ten days reaches
/// steady state (the long-service population saturates after ~2x their
/// ~4-day mean length), which the level-duration properties need.
const trace::TraceSet& hostload() {
  static const trace::TraceSet t = [] {
    gen::GoogleModelConfig config;
    sim::SimConfig sim_config;
    return Characterization::simulate_google_hostload(
        config, sim_config, 16, 10 * util::kSecondsPerDay);
  }();
  return t;
}

const trace::TraceSet& grid_hostload() {
  static const trace::TraceSet t = Characterization::simulate_grid_hostload(
      gen::presets::auvergrid(), 8, 3 * util::kSecondsPerDay);
  return t;
}

TEST(MaxLoadAnalyzer, GroupsCoverAllMachines) {
  const MaxLoadDistribution dist = analyze_max_host_load(hostload());
  std::size_t cpu_machines = 0;
  for (const auto& g : dist.cpu) {
    cpu_machines += g.max_loads.size();
    // Max load never exceeds the group capacity (validator invariant).
    for (const double v : g.max_loads) {
      EXPECT_LE(v, g.capacity + 1e-3);
      EXPECT_GE(v, 0.0);
    }
  }
  EXPECT_EQ(cpu_machines, hostload().machines().size());
  EXPECT_FALSE(dist.mem.empty());
  EXPECT_FALSE(dist.mem_assigned.empty());
  ASSERT_EQ(dist.page_cache.size(), 1u);  // uniform page-cache capacity
}

TEST(MaxLoadAnalyzer, FiguresHaveSeriesPerGroup) {
  const MaxLoadDistribution dist = analyze_max_host_load(hostload());
  const auto figures = dist.to_figures();
  ASSERT_EQ(figures.size(), 4u);
  EXPECT_EQ(figures[0].id, "fig07a");
  EXPECT_EQ(figures[0].series.size(), dist.cpu.size());
  // Each histogram's pmf sums to ~1.
  for (const Series& s : figures[0].series) {
    double total = 0.0;
    for (const auto& row : s.rows) {
      total += row[1];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(QueueStateAnalyzer, PicksBusiestMachineByDefault) {
  const QueueStateReport report = analyze_queue_state(hostload());
  EXPECT_GE(report.machine_id, 0);
  ASSERT_EQ(report.queue_figure.series.size(), 1u);
  const auto& rows = report.queue_figure.series[0].rows;
  ASSERT_FALSE(rows.empty());
  // Columns: time, pending, running, finished, abnormal — all counters
  // non-negative, cumulative columns non-decreasing.
  double prev_finished = 0.0, prev_abnormal = 0.0;
  for (const auto& row : rows) {
    EXPECT_GE(row[1], 0.0);
    EXPECT_GE(row[2], 0.0);
    EXPECT_GE(row[3], prev_finished);
    EXPECT_GE(row[4], prev_abnormal);
    prev_finished = row[3];
    prev_abnormal = row[4];
  }
}

TEST(QueueStateAnalyzer, CompletionSharesSumToOne) {
  const QueueStateReport report = analyze_queue_state(hostload());
  EXPECT_GT(report.total_completions, 0);
  EXPECT_GT(report.abnormal_fraction, 0.0);
  EXPECT_LT(report.abnormal_fraction, 1.0);
  const double share_sum =
      report.fail_share_of_abnormal + report.kill_share_of_abnormal +
      report.evict_share_of_abnormal + report.lost_share_of_abnormal;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(QueueStateAnalyzer, ExplicitMachineSelection) {
  const std::int64_t id = hostload().machines()[0].machine_id;
  const QueueStateReport report = analyze_queue_state(hostload(), id);
  EXPECT_EQ(report.machine_id, id);
}

TEST(QueueRunMassCount, BucketsAreExhaustive) {
  const QueueRunMassCount result = analyze_queue_run_mass_count(hostload());
  ASSERT_EQ(result.buckets.size(), 6u);
  EXPECT_EQ(result.buckets[0].lo, 0);
  EXPECT_EQ(result.buckets[0].hi, 9);
  EXPECT_EQ(result.buckets[5].hi, -1);  // open-ended top bucket
  std::size_t total_runs = 0;
  for (const auto& b : result.buckets) {
    total_runs += b.num_runs;
  }
  EXPECT_GT(total_runs, 0u);
}

TEST(UsageSnapshot, LevelsAreQuantized) {
  const Figure fig = analyze_usage_snapshot(
      hostload(), Metric::kCpu, trace::PriorityBand::kLow, 8);
  ASSERT_EQ(fig.series.size(), 1u);
  for (const auto& row : fig.series[0].rows) {
    EXPECT_GE(row[2], 0.0);
    EXPECT_LE(row[2], 4.0);
    EXPECT_DOUBLE_EQ(row[2], std::floor(row[2]));
  }
}

TEST(LevelDurations, RowsCoverFiveLevels) {
  const LevelDurationTable table = analyze_level_durations(
      hostload(), Metric::kCpu, trace::PriorityBand::kLow);
  std::size_t populated = 0;
  for (const auto& row : table.rows) {
    if (row.num_runs > 0) {
      ++populated;
      EXPECT_GT(row.avg_minutes, 0.0);
      EXPECT_GE(row.max_minutes, row.avg_minutes);
    }
  }
  EXPECT_GE(populated, 2u);  // at least the idle and low levels appear
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("[0,0.2)"), std::string::npos);
  EXPECT_NE(rendered.find("joint ratio"), std::string::npos);
}

TEST(LevelDurations, CpuLevelsFlipMoreOftenThanMemory) {
  const LevelDurationTable cpu = analyze_level_durations(
      hostload(), Metric::kCpu, trace::PriorityBand::kLow);
  const LevelDurationTable mem = analyze_level_durations(
      hostload(), Metric::kMem, trace::PriorityBand::kLow);
  // Tables II/III: CPU usage levels change more frequently than memory
  // levels. Both metrics cover the same machine-time, so more runs means
  // shorter average runs.
  std::size_t cpu_runs = 0, mem_runs = 0;
  for (const auto& row : cpu.rows) {
    cpu_runs += row.num_runs;
  }
  for (const auto& row : mem.rows) {
    mem_runs += row.num_runs;
  }
  ASSERT_GT(cpu_runs, 0u);
  ASSERT_GT(mem_runs, 0u);
  EXPECT_GT(cpu_runs, mem_runs);
}

TEST(UsageMassCount, BoundsAndFigure) {
  const UsageMassCountReport report = analyze_usage_mass_count(
      hostload(), Metric::kMem, trace::PriorityBand::kLow);
  EXPECT_GT(report.mean_usage, 0.0);
  EXPECT_LT(report.mean_usage, 1.0);
  EXPECT_GT(report.result.joint_ratio_mass, 0.0);
  EXPECT_EQ(report.figure.id, "fig12a");
  EXPECT_FALSE(report.figure.annotations.empty());
}

TEST(UsageMassCount, HighPriorityUsageIsLower) {
  const auto all = analyze_usage_mass_count(hostload(), Metric::kCpu,
                                            trace::PriorityBand::kLow);
  const auto high = analyze_usage_mass_count(hostload(), Metric::kCpu,
                                             trace::PriorityBand::kHigh);
  EXPECT_LT(high.mean_usage, all.mean_usage);
  EXPECT_EQ(high.figure.id, "fig11b");
}

TEST(HostLoadComparison, CloudIsNoisierThanGrid) {
  const trace::TraceSet* traces[] = {&hostload(), &grid_hostload()};
  const HostLoadComparison comparison =
      analyze_hostload_comparison(traces);
  ASSERT_EQ(comparison.systems.size(), 2u);
  // The paper's Fig 13 headline: Cloud noise far above Grid noise.
  EXPECT_GT(comparison.cloud_to_grid_noise_ratio, 2.0);
  // Grid machines are CPU-heavy, memory-light; Cloud the reverse.
  EXPECT_GT(comparison.systems[1].mean_cpu_usage,
            comparison.systems[1].mean_mem_usage);
  EXPECT_GT(comparison.systems[0].mean_mem_usage,
            comparison.systems[0].mean_cpu_usage);
  // Representative series present for both.
  for (const auto& s : comparison.systems) {
    ASSERT_EQ(s.series_figure.series.size(), 1u);
    EXPECT_FALSE(s.series_figure.series[0].rows.empty());
  }
  const std::string rendered = comparison.render();
  EXPECT_NE(rendered.find("noise mean"), std::string::npos);
}

TEST(PeriodicityAnalyzer, ReportsPerHostStatistics) {
  const PeriodicityReport report =
      analyze_periodicity(hostload(), Metric::kCpu);
  EXPECT_EQ(report.num_hosts, hostload().machines().size());
  EXPECT_GE(report.fraction_periodic, 0.0);
  EXPECT_LE(report.fraction_periodic, 1.0);
  ASSERT_EQ(report.acf_figure.series.size(), 1u);
  // ACF values are correlations.
  for (const auto& row : report.acf_figure.series[0].rows) {
    EXPECT_GE(row[1], -1.0 - 1e-9);
    EXPECT_LE(row[1], 1.0 + 1e-9);
  }
  EXPECT_FALSE(render_periodicity_row(report).empty());
}

TEST(PeriodicityAnalyzer, CloudHostsShowNoSpuriousPeriodicity) {
  // Cloud host load is persistent-but-aperiodic; the prominence
  // criterion must not flag its slowly decaying ACF as periodic.
  const PeriodicityReport cloud =
      analyze_periodicity(hostload(), Metric::kCpu);
  EXPECT_LE(cloud.fraction_periodic, 0.25);
}

TEST(PeriodicityAnalyzer, UndersubscribedGridSurfacesDiurnalPattern) {
  // Diurnal arrivals reach the host level only when the cluster has
  // slack; the queue of a saturated cluster absorbs them. Marginal
  // (last-fit) hosts carry the signal under first-fit packing.
  gen::GridSystemPreset preset = gen::presets::auvergrid();
  preset.node_utilization = 0.4;
  const trace::TraceSet undersubscribed =
      Characterization::simulate_grid_hostload(preset, 12,
                                               14 * util::kSecondsPerDay);
  const PeriodicityReport idle_grid =
      analyze_periodicity(undersubscribed, Metric::kCpu);
  const PeriodicityReport cloud =
      analyze_periodicity(hostload(), Metric::kCpu);
  EXPECT_GT(idle_grid.fraction_periodic, 0.0);
  EXPECT_GE(idle_grid.fraction_periodic, cloud.fraction_periodic);
}

TEST(MetricName, Names) {
  EXPECT_EQ(metric_name(Metric::kCpu), "cpu");
  EXPECT_EQ(metric_name(Metric::kMem), "memory");
}

}  // namespace
}  // namespace cgc::analysis
