// Exercises sim.fixture_site so the registry's test leg holds.
int main() { return 0; }
