// Clean fixture: determinism-safe idioms plus one justified
// suppression. cgc_lint must report zero findings here.
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace cgc::fault {
bool inject(const char*, unsigned long);
}

namespace cgc::util {
struct DataError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
}

double sum_rows() {
  // Ordered container: iteration order is the key order, deterministic.
  std::map<int, double> rows;
  rows[1] = 0.5;
  double total = 0.0;
  for (const auto& [id, value] : rows) {
    total += value;
  }

  std::unordered_map<int, double> scratch;
  scratch[1] = total;
  // cgc-lint: allow(unordered-iteration) the loop reduces with +, a
  // commutative fold whose result is order-invariant.
  for (const auto& [id, value] : scratch) {
    total += value;
  }
  return total;
}

bool registered_site_fires() {
  return cgc::fault::inject("sim.fixture_site", 3);
}

void fail_with_taxonomy() {
  throw cgc::util::DataError("bad record");
}

int main() {
  if (sum_rows() < 0.0) {
    return 1;
  }
  return 0;
}
