// Clean fixture header: every public member documented.
#pragma once

/// Fully documented aggregate inside the doc-enforced src/sim root.
struct FixtureConfig {
  /// Documented the block way.
  int block_documented = 0;
  int trailing_documented = 0;  ///< documented the trailing way
};
