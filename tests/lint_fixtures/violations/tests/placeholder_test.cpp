// Intentionally references no site name, so the forward registry
// check reports the fixture's fault site as untested.
int main() { return 0; }
