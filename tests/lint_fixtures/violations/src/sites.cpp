// Seeded violation: a fault site that exists in code but in none of
// README.md, DESIGN.md, or tests/ — all three registry legs fail.
namespace cgc::fault {
bool inject(const char*, unsigned long);
}

bool unregistered_site_fires() {
  return cgc::fault::inject("sim.unregistered_site", 3);  // line 8
}
