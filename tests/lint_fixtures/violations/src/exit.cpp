// Seeded violations: exit-taxonomy breaches plus a reasonless allow().
#include <cstdlib>
#include <stdexcept>

void fail_loudly() {
  throw std::runtime_error("boom");  // line 6: raw std throw
}

void bail() {
  std::exit(64);  // line 10: exit code outside 0..3
}

int main() {
  bail();
  // cgc-lint: allow(exit-taxonomy)
  return 42;  // line 16: suppression above has no reason -> still fails
}
