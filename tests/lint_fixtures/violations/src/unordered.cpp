// Seeded violation: emission straight out of an unordered_map — the
// exact pattern that leaks hash-iteration order into outputs.
#include <cstdio>
#include <unordered_map>

void emit_rows() {
  std::unordered_map<int, double> rows;
  rows[1] = 0.5;
  for (const auto& [id, value] : rows) {  // line 9: unordered emission
    std::printf("%d %f\n", id, value);
  }
}
