// Seeded violations: every banned nondeterminism construct, one per
// line, each expected to fire [nondeterminism] at the exact line the
// lint_test runner asserts. Never compiled — lint input only.
#include <chrono>
#include <ctime>
#include <random>

int entropy() {
  std::random_device rd;  // line 9: machine entropy
  return static_cast<int>(rd());
}

int clock_seed() {
  return static_cast<int>(time(nullptr));  // line 14: wall clock
}

long wall_now() {
  using clock = std::chrono::system_clock;  // line 18: wall clock type
  return clock::now().time_since_epoch().count();
}

int libc_rand() {
  return rand();  // line 23: hidden global PRNG state
}
