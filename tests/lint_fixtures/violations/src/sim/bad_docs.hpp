// Seeded violation: a public member without a doc comment, inside the
// doc-enforced src/sim root.
#pragma once

/// Documented aggregate; its members still need their own docs.
struct FixtureConfig {
  /// Documented member — must NOT be reported.
  int documented = 0;
  int undocumented = 0;  // line 9: no doc comment
};
