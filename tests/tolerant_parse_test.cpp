// Tests for tolerant trace parsing: bad-line accounting in ParseReport,
// the bad-line cap, strict-mode compatibility, and the parser fault
// sites (trace.parse_line skip-and-account vs io.read propagation).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/fault.hpp"
#include "trace/google_format.hpp"
#include "trace/gwa_format.hpp"
#include "trace/parse_report.hpp"
#include "trace/swf_format.hpp"
#include "util/check.hpp"

namespace cgc::trace {
namespace {

class TolerantParseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::configure("");
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_tolerant_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::configure("");
    std::filesystem::remove_all(dir_);
  }

  std::string write_file(const std::string& name,
                         const std::string& content) {
    const std::string p = (dir_ / name).string();
    std::ofstream out(p);
    out << content;
    return p;
  }

  std::filesystem::path dir_;
};

/// 18-field SWF row for job `id`, all values well-formed.
std::string swf_row(int id) {
  return std::to_string(id) +
         " 100 5 60.0 4 -1 1024 4 -1 -1 1 7 -1 -1 -1 -1 -1 -1\n";
}

constexpr char kBadRow[] = "2 100 not_a_number 60.0 4\n";

TEST_F(TolerantParseTest, StrictThrowsWithPathAndLine) {
  // Line 1 is the header; the bad row lands on line 3.
  const std::string p =
      write_file("t.swf", "; header\n" + swf_row(1) + kBadRow + swf_row(3));
  try {
    read_swf(p, "swf");
    FAIL() << "expected a parse error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(p + ":3:"), std::string::npos)
        << e.what();
  }
}

TEST_F(TolerantParseTest, TolerantSkipsAndAccounts) {
  const std::string p =
      write_file("t.swf", "; header\n" + swf_row(1) + kBadRow + swf_row(3));
  ParseOptions options;
  options.tolerant = true;
  ParseReport report;
  const TraceSet trace = read_swf(p, "swf", options, &report);
  EXPECT_EQ(trace.jobs().size(), 2u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.lines_bad, 1u);
  EXPECT_EQ(report.records_ok, 2u);
  ASSERT_EQ(report.samples.size(), 1u);
  EXPECT_NE(report.samples[0].find(p + ":3:"), std::string::npos)
      << report.samples[0];
}

TEST_F(TolerantParseTest, GwaTolerantSkipsAndAccounts) {
  const std::string p = write_file(
      "t.gwf",
      "; header\n"
      "1 100 5 60.0 4 -1 1024 4 -1 -1 1\n"
      "garbage line with words\n"
      "3 200 5 60.0 4 -1 1024 4 -1 -1 1\n");
  ParseOptions options;
  options.tolerant = true;
  ParseReport report;
  const TraceSet trace = read_gwa(p, "gwa", options, &report);
  EXPECT_EQ(trace.jobs().size(), 2u);
  EXPECT_EQ(report.lines_bad, 1u);
  EXPECT_EQ(report.records_ok, 2u);
}

TEST_F(TolerantParseTest, GoogleTolerantSkipsAndAccounts) {
  const std::string d = (dir_ / "gtrace").string();
  std::filesystem::create_directories(d);
  {
    std::ofstream out(d + "/task_events.csv");
    out << "1000000,,1,0,5,0,,0,3,,,,\n";
    out << "not_a_time,,1,0,5,0,,0,3,,,,\n";
    out << "2000000,,1,0,5,4,,0,3,,,,\n";
  }
  ParseOptions options;
  options.tolerant = true;
  ParseReport report;
  const TraceSet trace = read_google_trace(d, "google", options, &report);
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(report.lines_bad, 1u);
  EXPECT_EQ(report.records_ok, 2u);
}

TEST_F(TolerantParseTest, CapAbortsWithDataError) {
  std::string content = "; header\n";
  for (int i = 0; i < 4; ++i) {
    content += kBadRow;
  }
  const std::string p = write_file("t.swf", content);
  ParseOptions options;
  options.tolerant = true;
  options.max_bad_lines = 2;
  ParseReport report;
  EXPECT_THROW(read_swf(p, "swf", options, &report), util::DataError);
  EXPECT_GT(report.lines_bad, options.max_bad_lines);
}

TEST_F(TolerantParseTest, SampleRecordingIsCapped) {
  std::string content;
  for (int i = 0; i < 10; ++i) {
    content += kBadRow;
  }
  const std::string p = write_file("t.swf", content);
  ParseOptions options;
  options.tolerant = true;
  options.max_recorded = 3;
  ParseReport report;
  read_swf(p, "swf", options, &report);
  EXPECT_EQ(report.lines_bad, 10u);
  EXPECT_EQ(report.samples.size(), 3u);
}

TEST_F(TolerantParseTest, InjectedParseFaultSkipsDeterministically) {
  // Lines 2..5 carry records; every=2 drops the even line numbers.
  const std::string p = write_file("t.swf", "; header\n" + swf_row(1) +
                                                swf_row(2) + swf_row(3) +
                                                swf_row(4));
  fault::configure("trace.parse_line:every=2");
  ParseOptions options;
  options.tolerant = true;
  ParseReport report;
  const TraceSet trace = read_swf(p, "swf", options, &report);
  EXPECT_EQ(trace.jobs().size(), 2u);
  EXPECT_EQ(report.lines_bad, 2u);
  for (const std::string& s : report.samples) {
    EXPECT_NE(s.find("injected"), std::string::npos) << s;
  }
  // The same spec in strict mode fails on the first injected line.
  fault::configure("trace.parse_line:every=2");
  try {
    read_swf(p, "swf");
    FAIL() << "expected a parse error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos)
        << e.what();
  }
}

TEST_F(TolerantParseTest, IoFaultPropagatesEvenWhenTolerant) {
  const std::string p =
      write_file("t.swf", "; header\n" + swf_row(1) + swf_row(2));
  fault::configure("io.read:once=2");
  ParseOptions options;
  options.tolerant = true;
  ParseReport report;
  // io.read defaults to the transient kind at the call site: not a
  // record-level problem, so tolerant mode must not swallow it.
  EXPECT_THROW(read_swf(p, "swf", options, &report),
               util::TransientError);
  EXPECT_EQ(report.lines_bad, 0u);
}

TEST_F(TolerantParseTest, ReportMergeAggregates) {
  ParseReport a;
  a.records_ok = 5;
  a.lines_bad = 1;
  a.samples = {"x:1: bad"};
  ParseReport b;
  b.records_ok = 7;
  b.lines_bad = 2;
  b.samples = {"y:2: bad", "y:3: bad"};
  a.merge(b);
  EXPECT_EQ(a.records_ok, 12u);
  EXPECT_EQ(a.lines_bad, 3u);
  EXPECT_EQ(a.samples.size(), 3u);
  EXPECT_NE(a.summary().find("3 bad lines"), std::string::npos);
}

}  // namespace
}  // namespace cgc::trace
