// Tests for the host-load mode clustering analyzer.
#include <gtest/gtest.h>

#include <set>

#include "analysis/load_modes.hpp"
#include "core/characterization.hpp"
#include "util/check.hpp"

namespace cgc::analysis {
namespace {

const trace::TraceSet& hostload() {
  static const trace::TraceSet t = [] {
    gen::GoogleModelConfig config;
    sim::SimConfig sim_config;
    return Characterization::simulate_google_hostload(
        config, sim_config, 16, 4 * util::kSecondsPerDay);
  }();
  return t;
}

TEST(HostFeatures, OnePerMachineWithSaneRanges) {
  const auto features = extract_host_features(hostload());
  ASSERT_EQ(features.size(), hostload().machines().size());
  std::set<std::int64_t> ids;
  for (const HostLoadFeatures& f : features) {
    ids.insert(f.machine_id);
    EXPECT_GE(f.mean_cpu, 0.0);
    EXPECT_LE(f.mean_cpu, 1.0);
    EXPECT_GE(f.mean_mem, 0.0);
    EXPECT_LE(f.mean_mem, 1.0);
    EXPECT_GE(f.cpu_noise, 0.0);
    EXPECT_GE(f.cpu_autocorr, -1.0);
    EXPECT_LE(f.cpu_autocorr, 1.0);
  }
  EXPECT_EQ(ids.size(), features.size());  // unique machines
}

TEST(LoadModes, PartitionsAllHosts) {
  const LoadModesResult result = analyze_load_modes(hostload(), 3);
  ASSERT_EQ(result.modes.size(), 3u);
  std::size_t total = 0;
  double share = 0.0;
  for (const LoadMode& m : result.modes) {
    total += m.machine_ids.size();
    share += m.share;
  }
  EXPECT_EQ(total, hostload().machines().size());
  EXPECT_NEAR(share, 1.0, 1e-9);
  // Sorted by size, largest first.
  for (std::size_t c = 1; c < result.modes.size(); ++c) {
    EXPECT_GE(result.modes[c - 1].machine_ids.size(),
              result.modes[c].machine_ids.size());
  }
}

TEST(LoadModes, SingleClusterCentroidIsFeatureMean) {
  const LoadModesResult result = analyze_load_modes(hostload(), 1);
  ASSERT_EQ(result.modes.size(), 1u);
  double mean_cpu = 0.0;
  for (const HostLoadFeatures& f : result.features) {
    mean_cpu += f.mean_cpu;
  }
  mean_cpu /= static_cast<double>(result.features.size());
  EXPECT_NEAR(result.modes[0].centroid[0], mean_cpu, 1e-9);
  EXPECT_DOUBLE_EQ(result.modes[0].share, 1.0);
}

TEST(LoadModes, MoreClustersNeverIncreaseInertia) {
  const LoadModesResult k1 = analyze_load_modes(hostload(), 1);
  const LoadModesResult k4 = analyze_load_modes(hostload(), 4);
  EXPECT_LE(k4.inertia, k1.inertia + 1e-9);
}

TEST(LoadModes, DeterministicForSameSeed) {
  const LoadModesResult a = analyze_load_modes(hostload(), 3, 11);
  const LoadModesResult b = analyze_load_modes(hostload(), 3, 11);
  ASSERT_EQ(a.modes.size(), b.modes.size());
  for (std::size_t c = 0; c < a.modes.size(); ++c) {
    EXPECT_EQ(a.modes[c].machine_ids, b.modes[c].machine_ids);
  }
}

TEST(LoadModes, KClampedToHostCount) {
  const LoadModesResult result = analyze_load_modes(hostload(), 999);
  EXPECT_LE(result.modes.size(), hostload().machines().size());
}

TEST(LoadModes, RenderMentionsModes) {
  const LoadModesResult result = analyze_load_modes(hostload(), 2);
  const std::string rendered = result.render();
  EXPECT_NE(rendered.find("Host-load modes"), std::string::npos);
  EXPECT_NE(rendered.find("inertia"), std::string::npos);
}

TEST(LoadModes, SeparatesCloudFromGridHosts) {
  // Merge Cloud and Grid hosts into one park: with k=2 the clustering
  // must rediscover the two populations (CPU-heavy steady grid nodes vs
  // memory-heavy noisy cloud hosts) almost perfectly.
  trace::TraceSet merged("merged");
  const trace::TraceSet grid = Characterization::simulate_grid_hostload(
      gen::presets::auvergrid(), 8, 4 * util::kSecondsPerDay);
  std::set<std::int64_t> grid_ids;
  for (const trace::Machine& m : hostload().machines()) {
    merged.add_machine(m);
  }
  for (const trace::HostLoadSeries& h : hostload().host_load()) {
    merged.add_host_load(h);
  }
  for (const trace::Machine& m : grid.machines()) {
    trace::Machine shifted = m;
    shifted.machine_id += 100000;
    grid_ids.insert(shifted.machine_id);
    merged.add_machine(shifted);
  }
  for (const trace::HostLoadSeries& h : grid.host_load()) {
    trace::HostLoadSeries copy(h.machine_id() + 100000, h.start(),
                               h.period());
    for (std::size_t i = 0; i < h.size(); ++i) {
      const float cpu[trace::kNumBands] = {
          h.cpu(trace::PriorityBand::kLow, i),
          h.cpu(trace::PriorityBand::kMid, i),
          h.cpu(trace::PriorityBand::kHigh, i)};
      const float mem[trace::kNumBands] = {
          h.mem(trace::PriorityBand::kLow, i),
          h.mem(trace::PriorityBand::kMid, i),
          h.mem(trace::PriorityBand::kHigh, i)};
      copy.append(cpu, mem, h.mem_assigned(i), h.page_cache(i),
                  h.running(i), h.pending(i));
    }
    merged.add_host_load(std::move(copy));
  }
  merged.finalize();

  const LoadModesResult result = analyze_load_modes(merged, 2);
  ASSERT_EQ(result.modes.size(), 2u);
  // Count misassignments under the best mode<->population mapping.
  std::size_t grid_in_0 = 0;
  for (const std::int64_t id : result.modes[0].machine_ids) {
    if (grid_ids.count(id) > 0) {
      ++grid_in_0;
    }
  }
  const std::size_t mode0 = result.modes[0].machine_ids.size();
  const std::size_t purity_a = std::max(grid_in_0, mode0 - grid_in_0);
  EXPECT_GE(static_cast<double>(purity_a) / static_cast<double>(mode0),
            0.85);
}

}  // namespace
}  // namespace cgc::analysis
