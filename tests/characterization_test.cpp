// End-to-end test of the cgc::Characterization facade.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/characterization.hpp"
#include "util/check.hpp"

namespace cgc {
namespace {

/// A single small end-to-end run shared by all checks in this file.
class CharacterizationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CharacterizationConfig config;
    config.workload_horizon = util::kSecondsPerDay;
    config.hostload_horizon = 2 * util::kSecondsPerDay;
    config.google_machines = 12;
    config.grid_machines = 6;
    config.grid_systems = {"AuverGrid", "SHARCNET", "DAS-2"};
    study_ = new Characterization(config);
    study_->run();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static Characterization* study_;
};

Characterization* CharacterizationTest::study_ = nullptr;

TEST_F(CharacterizationTest, WorkloadTracesBuilt) {
  EXPECT_GT(study_->google_workload().jobs().size(), 1000u);
  ASSERT_EQ(study_->grid_workloads().size(), 3u);
  EXPECT_EQ(study_->grid_workloads()[0].system_name(), "AuverGrid");
}

TEST_F(CharacterizationTest, HostloadTracesBuilt) {
  EXPECT_EQ(study_->google_hostload().machines().size(), 12u);
  EXPECT_GT(study_->google_hostload().summary().num_samples, 0u);
  // Fig 13 grids: AuverGrid and SHARCNET were requested and simulated.
  ASSERT_EQ(study_->grid_hostloads().size(), 2u);
}

TEST_F(CharacterizationTest, ReportIsComplete) {
  const CharacterizationReport& report = study_->report();
  EXPECT_FALSE(report.job_length_cdf.series.empty());
  EXPECT_FALSE(report.submission_interval_cdf.series.empty());
  EXPECT_EQ(report.submission_stats.size(), 4u);  // google + 3 grids
  EXPECT_GE(report.task_mass_count.size(), 2u);   // google + AuverGrid
  ASSERT_TRUE(report.max_load.has_value());
  ASSERT_TRUE(report.queue_state.has_value());
  ASSERT_TRUE(report.queue_runs.has_value());
  EXPECT_EQ(report.usage_snapshots.size(), 4u);    // {cpu,mem}x{low,high}
  EXPECT_EQ(report.usage_mass_count.size(), 4u);
  EXPECT_EQ(report.level_tables.size(), 2u);       // Tables II and III
  ASSERT_TRUE(report.hostload_comparison.has_value());
  EXPECT_EQ(report.hostload_comparison->systems.size(), 3u);
}

TEST_F(CharacterizationTest, SummaryMentionsKeyArtifacts) {
  const std::string summary = study_->report().render_summary();
  EXPECT_NE(summary.find("Table I"), std::string::npos);
  EXPECT_NE(summary.find("Fig 2"), std::string::npos);
  EXPECT_NE(summary.find("Fig 4"), std::string::npos);
  EXPECT_NE(summary.find("abnormal"), std::string::npos);
  EXPECT_NE(summary.find("google"), std::string::npos);
}

TEST_F(CharacterizationTest, WritesAllFigures) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("cgc_char_test_" + std::to_string(::getpid()));
  study_->report().write_all_figures(dir.string());
  std::size_t dat_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".dat") {
      ++dat_files;
    }
  }
  // One file per series: fig02, fig03 (x4 systems), fig04 (x2), fig05,
  // fig06a/b, fig07a-d, fig08a/b, fig09, fig10 (x4), fig11/12 (x4),
  // fig13 (x3) — a few dozen in total.
  EXPECT_GT(dat_files, 25u);
  std::filesystem::remove_all(dir);
}

TEST_F(CharacterizationTest, RunIsSingleShot) {
  EXPECT_THROW(study_->run(), util::Error);
}

TEST(CharacterizationConfigTest, UnknownGridSystemThrows) {
  CharacterizationConfig config;
  config.workload_horizon = util::kSecondsPerHour;
  config.run_hostload = false;
  config.grid_systems = {"NotASystem"};
  Characterization study(config);
  EXPECT_THROW(study.run(), util::Error);
}

TEST(CharacterizationConfigTest, WorkloadOnlyRunSkipsHostload) {
  CharacterizationConfig config;
  config.workload_horizon = util::kSecondsPerHour * 6;
  config.run_hostload = false;
  config.grid_systems = {"AuverGrid"};
  Characterization study(config);
  const CharacterizationReport& report = study.run();
  EXPECT_FALSE(report.max_load.has_value());
  EXPECT_FALSE(report.hostload_comparison.has_value());
  EXPECT_FALSE(report.submission_stats.empty());
}

}  // namespace
}  // namespace cgc
