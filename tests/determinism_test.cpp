// End-to-end determinism: the paper pipelines must produce identical
// results at CGC_THREADS=1 and CGC_THREADS=N. Exercises the exec
// contract through the real kernels — ECDF construction, the
// autocorrelation function, mass-count disparity, and CGCS row-group
// decode — by swapping pools in-process via exec::ScopedPool.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "gen/google_model.hpp"
#include "stats/ecdf.hpp"
#include "stats/mass_count.hpp"
#include "stats/periodicity.hpp"
#include "stats/timeseries.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/trace_set.hpp"
#include "util/thread_pool.hpp"

namespace cgc {
namespace {

using trace::HostLoadSeries;
using trace::kNumBands;
using trace::Machine;
using trace::Task;
using trace::TaskEventType;
using trace::TraceSet;

/// Runs `fn` once on a 1-worker pool and once on an 8-worker pool and
/// returns both results for comparison.
template <typename Fn>
auto serial_vs_parallel(Fn&& fn) {
  util::ThreadPool one(1);
  util::ThreadPool many(8);
  auto serial = [&] {
    exec::ScopedPool scoped(&one);
    return fn();
  }();
  auto parallel = [&] {
    exec::ScopedPool scoped(&many);
    return fn();
  }();
  return std::make_pair(std::move(serial), std::move(parallel));
}

std::vector<double> make_sample(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(2.0, 1.5);
  std::vector<double> values(n);
  for (double& v : values) {
    v = dist(rng);
  }
  return values;
}

TEST(Determinism, EcdfIsThreadCountInvariant) {
  const std::vector<double> sample = make_sample(120000, 42);
  const auto [serial, parallel] = serial_vs_parallel([&sample] {
    const stats::Ecdf ecdf{std::vector<double>(sample)};
    return std::make_pair(
        std::vector<double>(ecdf.sorted().begin(), ecdf.sorted().end()),
        ecdf.mean());
  });
  EXPECT_EQ(serial.first, parallel.first);    // bit-identical sort
  EXPECT_EQ(serial.second, parallel.second);  // bit-identical mean
}

TEST(Determinism, AutocorrelationIsThreadCountInvariant) {
  const std::vector<double> series = make_sample(60000, 7);
  const auto [serial, parallel] = serial_vs_parallel([&series] {
    std::vector<double> out;
    for (const std::size_t lag : {1ul, 5ul, 288ul}) {
      out.push_back(stats::autocorrelation(series, lag));
    }
    const auto acf = stats::autocorrelation_function(series, 64);
    out.insert(out.end(), acf.begin(), acf.end());
    return out;
  });
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, MassCountIsThreadCountInvariant) {
  const std::vector<double> sample = make_sample(90000, 99);
  const auto [serial, parallel] = serial_vs_parallel([&sample] {
    const auto result = stats::mass_count_disparity(sample);
    auto plot = stats::mass_count_plot(sample);
    plot.push_back({result.joint_ratio_mass, result.joint_ratio_count,
                    result.mm_distance});
    return plot;
  });
  EXPECT_EQ(serial, parallel);
}

/// A populated model trace (jobs, tasks, events, machines, host load),
/// mirroring the store round-trip test's construction.
TraceSet make_model_trace() {
  gen::GoogleModelConfig config;
  config.seed = 7;
  const gen::GoogleWorkloadModel model(config);
  TraceSet trace = model.generate_workload(/*horizon=*/2 * 3600);
  for (const Machine& m : model.make_machines(16)) {
    trace.add_machine(m);
  }
  for (const Task& t : trace.tasks()) {
    trace.add_event({t.submit_time, t.job_id, t.task_index, -1,
                     TaskEventType::kSubmit, t.priority});
    if (t.end_time >= 0) {
      trace.add_event({t.end_time, t.job_id, t.task_index, t.machine_id,
                       t.end_event, t.priority});
    }
  }
  std::uint64_t lcg = 0x243F6A8885A308D3ull;
  const auto next_float = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<float>(lcg >> 40) / static_cast<float>(1u << 24);
  };
  for (std::int64_t machine_id = 0; machine_id < 16; ++machine_id) {
    HostLoadSeries h(machine_id, /*start=*/300, /*period=*/300);
    for (int i = 0; i < 40; ++i) {
      const float cpu[kNumBands] = {next_float(), next_float(), next_float()};
      const float mem[kNumBands] = {next_float(), next_float(), next_float()};
      h.append(cpu, mem, next_float(), next_float(),
               static_cast<std::int32_t>(lcg % 50),
               static_cast<std::int32_t>(lcg % 7));
    }
    trace.add_host_load(std::move(h));
  }
  trace.finalize();
  return trace;
}

TEST(Determinism, CgcsDecodeIsThreadCountInvariant) {
  const TraceSet original = make_model_trace();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("cgc_determinism_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "trace.cgcs").string();
  store::write_cgcs(original, path);

  const auto [serial, parallel] =
      serial_vs_parallel([&path] { return store::read_cgcs(path); });
  std::filesystem::remove_all(dir);

  // Spot-check identity through derived vectors (bit-exact) plus full
  // event-stream equality; row groups decode into disjoint ranges, so
  // any scheduling dependence would show up here.
  EXPECT_EQ(serial.task_run_durations(), parallel.task_run_durations());
  EXPECT_EQ(serial.job_lengths(), parallel.job_lengths());
  ASSERT_EQ(serial.events().size(), parallel.events().size());
  for (std::size_t i = 0; i < serial.events().size(); ++i) {
    const auto& a = serial.events()[i];
    const auto& b = parallel.events()[i];
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.job_id, b.job_id);
    ASSERT_EQ(a.task_index, b.task_index);
    ASSERT_EQ(a.machine_id, b.machine_id);
    ASSERT_EQ(a.type, b.type);
    ASSERT_EQ(a.priority, b.priority);
  }
  ASSERT_EQ(serial.host_load().size(), parallel.host_load().size());
  for (std::size_t i = 0; i < serial.host_load().size(); ++i) {
    const HostLoadSeries& x = serial.host_load()[i];
    const HostLoadSeries& y = parallel.host_load()[i];
    ASSERT_EQ(x.machine_id(), y.machine_id());
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t s = 0; s < x.size(); ++s) {
      ASSERT_EQ(x.cpu(trace::PriorityBand::kLow, s),
                y.cpu(trace::PriorityBand::kLow, s));
      ASSERT_EQ(x.mem(trace::PriorityBand::kLow, s),
                y.mem(trace::PriorityBand::kLow, s));
      ASSERT_EQ(x.running(s), y.running(s));
    }
  }
}

}  // namespace
}  // namespace cgc
