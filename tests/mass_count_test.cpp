// Tests for mass-count disparity — the paper's central statistical tool.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/mass_count.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(MassCount, ConstantSampleIsPerfectlyBalanced) {
  const std::vector<double> v(100, 5.0);
  const MassCountResult r = mass_count_disparity(v);
  // Every item carries identical mass: crossover at 50/50 and the two
  // medians coincide.
  EXPECT_NEAR(r.joint_ratio_mass, 50.0, 1.0);
  EXPECT_NEAR(r.joint_ratio_count, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(r.mm_distance, 0.0);
}

TEST(MassCount, JointRatioSidesSumToHundred) {
  util::Rng rng(1);
  const LogNormal dist(100.0, 2.0);
  const std::vector<double> v = sample_many(dist, 5000, rng);
  const MassCountResult r = mass_count_disparity(v);
  EXPECT_NEAR(r.joint_ratio_mass + r.joint_ratio_count, 100.0, 1.0);
  EXPECT_LE(r.joint_ratio_mass, r.joint_ratio_count);
}

TEST(MassCount, HeavyTailIsSkewed) {
  util::Rng rng(2);
  // Bounded Pareto with a very heavy tail: few huge items carry most of
  // the mass -> Pareto-principle style joint ratio.
  const BoundedPareto dist(1.0, 1e6, 0.5);
  const std::vector<double> v = sample_many(dist, 20000, rng);
  const MassCountResult r = mass_count_disparity(v);
  EXPECT_LT(r.joint_ratio_mass, 20.0);
  EXPECT_GT(r.joint_ratio_count, 80.0);
  EXPECT_TRUE(r.pareto_principle());
  EXPECT_GT(r.mass_median, r.count_median);
}

TEST(MassCount, UniformIsMildlySkewed) {
  util::Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) {
    v.push_back(rng.uniform(0.0, 1.0));
  }
  const MassCountResult r = mass_count_disparity(v);
  // Uniform [0,1]: joint ratio lands near 40/60 analytically
  // (x* with Fc + Fm = 1 -> x + x^2 = 1 -> x = 0.618; Fm = 0.382).
  EXPECT_NEAR(r.joint_ratio_mass, 38.2, 3.0);
  EXPECT_NEAR(r.joint_ratio_count, 61.8, 3.0);
  // Count median 0.5, mass median sqrt(0.5) ~ 0.707.
  EXPECT_NEAR(r.mm_distance, 0.207, 0.03);
  EXPECT_FALSE(r.pareto_principle());
}

TEST(MassCount, ExponentialAnalyticCrossCheck) {
  util::Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) {
    v.push_back(rng.exponential(1.0));
  }
  const MassCountResult r = mass_count_disparity(v);
  // For Exp(1): count median ln 2 = 0.693; the mass CDF is the Gamma(2)
  // CDF, whose median is ~1.678. mm-distance ~ 0.985.
  EXPECT_NEAR(r.count_median, 0.693, 0.05);
  EXPECT_NEAR(r.mass_median, 1.678, 0.08);
  EXPECT_NEAR(r.mm_distance, 0.985, 0.1);
}

TEST(MassCount, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mass_count_disparity(empty), util::Error);
}

TEST(MassCount, NegativeValuesThrow) {
  const std::vector<double> v = {1.0, -2.0};
  EXPECT_THROW(mass_count_disparity(v), util::Error);
}

TEST(MassCount, ZeroTotalMassThrows) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_THROW(mass_count_disparity(v), util::Error);
}

TEST(MassCountPlot, CurvesAreValidCdfs) {
  util::Rng rng(5);
  const LogNormal dist(10.0, 1.0);
  const std::vector<double> v = sample_many(dist, 3000, rng);
  const auto plot = mass_count_plot(v, 150);
  ASSERT_FALSE(plot.empty());
  double prev_x = -1.0, prev_c = 0.0, prev_m = 0.0;
  for (const auto& row : plot) {
    EXPECT_GE(row[0], prev_x);
    EXPECT_GE(row[1], prev_c);
    EXPECT_GE(row[2], prev_m);
    // Count CDF dominates mass CDF for positive samples.
    EXPECT_GE(row[1], row[2] - 1e-9);
    prev_x = row[0];
    prev_c = row[1];
    prev_m = row[2];
  }
  EXPECT_DOUBLE_EQ(plot.back()[1], 1.0);
  EXPECT_DOUBLE_EQ(plot.back()[2], 1.0);
}

/// Property sweep: invariants hold across distributions and seeds.
struct MassCountCase {
  std::uint64_t seed;
  double sigma;  // lognormal sigma — skew knob
};

class MassCountProperty : public ::testing::TestWithParam<MassCountCase> {};

TEST_P(MassCountProperty, InvariantsHold) {
  util::Rng rng(GetParam().seed);
  const LogNormal dist(50.0, GetParam().sigma);
  const std::vector<double> v = sample_many(dist, 2000, rng);
  const MassCountResult r = mass_count_disparity(v);
  EXPECT_GE(r.joint_ratio_mass, 0.0);
  EXPECT_LE(r.joint_ratio_mass, r.joint_ratio_count);
  EXPECT_LE(r.joint_ratio_count, 100.0);
  EXPECT_NEAR(r.joint_ratio_mass + r.joint_ratio_count, 100.0, 1.5);
  EXPECT_GE(r.mm_distance, 0.0);
  EXPECT_GE(r.mass_median, r.count_median - 1e-9);
  EXPECT_EQ(r.n, 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    SkewSweep, MassCountProperty,
    ::testing::Values(MassCountCase{10, 0.1}, MassCountCase{11, 0.5},
                      MassCountCase{12, 1.0}, MassCountCase{13, 1.5},
                      MassCountCase{14, 2.0}, MassCountCase{15, 2.5},
                      MassCountCase{16, 3.0}));

/// Larger sigma means more skew: joint-ratio small side shrinks.
TEST(MassCount, SkewMonotoneInSigma) {
  util::Rng rng(20);
  double prev_mass_side = 51.0;
  for (const double sigma : {0.2, 0.8, 1.6, 2.4}) {
    const LogNormal dist(10.0, sigma);
    const std::vector<double> v = sample_many(dist, 20000, rng);
    const double mass_side = mass_count_disparity(v).joint_ratio_mass;
    EXPECT_LT(mass_side, prev_mass_side + 1.0)
        << "sigma=" << sigma;
    prev_mass_side = mass_side;
  }
}

}  // namespace
}  // namespace cgc::stats
