// Tests for the raw thread pool (task submission layer). Data-parallel
// helper coverage lives in exec_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, StressManySmallTasksFromManyThreads) {
  // Hammer the queue from several producer threads at once; every task
  // must run exactly once and every future must resolve.
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &counter] {
      std::vector<std::future<void>> futures;
      futures.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        futures.push_back(pool.submit([&counter] { ++counter; }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(counter.load(), kProducers * kPerProducer);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlockWhenCallerDoesNotBlock) {
  // A pooled task may submit follow-up work to the same pool as long as
  // it does not block on it; the follow-ups drain after it returns.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::mutex inner_mutex;
  std::vector<std::future<void>> inner;
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 16; ++i) {
    outer.push_back(pool.submit([&] {
      auto f = pool.submit([&count] { ++count; });
      std::lock_guard lock(inner_mutex);
      inner.push_back(std::move(f));
    }));
  }
  for (auto& f : outer) {
    f.get();
  }
  for (auto& f : inner) {
    f.get();
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ExceptionDoesNotKillWorkers) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw Error("first"); });
  EXPECT_THROW(bad.get(), Error);
  // The pool must still execute subsequent work.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace cgc::util
