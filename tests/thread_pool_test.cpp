// Tests for the thread pool and data-parallel helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  constexpr std::size_t kN = 5371;  // deliberately not a round number
  std::atomic<std::size_t> total{0};
  parallel_for_chunked(0, kN, [&total](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), kN);
}

TEST(ParallelForChunked, ComputesSameSumAsSerial) {
  std::vector<double> values(20000);
  std::iota(values.begin(), values.end(), 1.0);
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);

  std::mutex mutex;
  double parallel_sum = 0.0;
  parallel_for_chunked(0, values.size(),
                       [&](std::size_t lo, std::size_t hi) {
                         double local = 0.0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           local += values[i];
                         }
                         std::lock_guard lock(mutex);
                         parallel_sum += local;
                       });
  EXPECT_DOUBLE_EQ(parallel_sum, serial);
}

TEST(ParallelFor, ExceptionFromIterationIsRethrown) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 42) {
                                throw Error("iteration failure");
                              }
                            }),
               Error);
}

TEST(ParallelFor, NestedUseDoesNotDeadlock) {
  // Analyzers may call parallel helpers from within pooled work; the
  // chunked helper runs inline when the range is tiny, so nesting of
  // small inner loops must complete.
  std::atomic<int> count{0};
  parallel_for(0, 8, [&count](std::size_t) {
    parallel_for_chunked(0, 1, [&count](std::size_t, std::size_t) {
      ++count;
    });
  });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace cgc::util
