// Tests for trace validation: well-formed traces pass, each class of
// corruption is caught.
#include <gtest/gtest.h>

#include "trace/validate.hpp"
#include "util/check.hpp"

namespace cgc::trace {
namespace {

TraceSet valid_trace() {
  TraceSet trace("valid");
  Machine m;
  m.machine_id = 1;
  m.cpu_capacity = 0.5f;
  m.mem_capacity = 0.5f;
  trace.add_machine(m);

  Job j;
  j.job_id = 1;
  j.priority = 2;
  j.submit_time = 0;
  j.end_time = 400;
  trace.add_job(j);

  Task t;
  t.job_id = 1;
  t.task_index = 0;
  t.priority = 2;
  t.submit_time = 0;
  t.schedule_time = 10;
  t.end_time = 400;
  trace.add_task(t);

  trace.add_event({0, 1, 0, -1, TaskEventType::kSubmit, 2});
  trace.add_event({10, 1, 0, 1, TaskEventType::kSchedule, 2});
  trace.add_event({400, 1, 0, 1, TaskEventType::kFinish, 2});

  HostLoadSeries h(1, 0, 300);
  const float cpu[kNumBands] = {0.2f, 0.0f, 0.0f};
  const float mem[kNumBands] = {0.3f, 0.0f, 0.0f};
  h.append(cpu, mem, 0.4f, 0.1f, 1, 0);
  trace.add_host_load(std::move(h));
  trace.finalize();
  return trace;
}

TEST(Validate, CleanTracePasses) {
  const TraceSet trace = valid_trace();
  EXPECT_TRUE(validate(trace).empty());
  EXPECT_NO_THROW(validate_or_throw(trace));
}

TEST(Validate, IllegalEventSequenceCaught) {
  TraceSet trace("bad-events");
  // FINISH without SUBMIT/SCHEDULE.
  trace.add_event({5, 1, 0, 1, TaskEventType::kFinish, 1});
  trace.finalize();
  const auto issues = validate(trace);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("illegal event"), std::string::npos);
}

TEST(Validate, BadPriorityCaught) {
  TraceSet trace("bad-priority");
  Task t;
  t.job_id = 1;
  t.priority = 0;  // out of [1,12]
  trace.add_task(t);
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
  EXPECT_THROW(validate_or_throw(trace), util::Error);
}

TEST(Validate, ScheduleBeforeSubmitCaught) {
  TraceSet trace("bad-times");
  Task t;
  t.job_id = 1;
  t.priority = 1;
  t.submit_time = 100;
  t.schedule_time = 50;
  trace.add_task(t);
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
}

TEST(Validate, EndBeforeScheduleCaught) {
  TraceSet trace("bad-times-2");
  Task t;
  t.job_id = 1;
  t.priority = 1;
  t.submit_time = 0;
  t.schedule_time = 100;
  t.end_time = 50;
  trace.add_task(t);
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
}

TEST(Validate, JobEndingBeforeSubmitCaught) {
  TraceSet trace("bad-job");
  Job j;
  j.job_id = 1;
  j.priority = 1;
  j.submit_time = 100;
  j.end_time = 50;
  trace.add_job(j);
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
}

TEST(Validate, TaskOutlivingJobCaught) {
  TraceSet trace("task-outlives");
  Job j;
  j.job_id = 1;
  j.priority = 1;
  j.submit_time = 0;
  j.end_time = 100;
  trace.add_job(j);
  Task t;
  t.job_id = 1;
  t.priority = 1;
  t.submit_time = 0;
  t.schedule_time = 5;
  t.end_time = 200;  // beyond the job's end
  trace.add_task(t);
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
}

TEST(Validate, CpuOverCapacityCaught) {
  TraceSet trace("overload");
  Machine m;
  m.machine_id = 1;
  m.cpu_capacity = 0.25f;
  m.mem_capacity = 0.5f;
  trace.add_machine(m);
  HostLoadSeries h(1, 0, 300);
  const float cpu[kNumBands] = {0.3f, 0.0f, 0.0f};  // > 0.25 capacity
  const float mem[kNumBands] = {0.1f, 0.0f, 0.0f};
  h.append(cpu, mem, 0.2f, 0.0f, 1, 0);
  trace.add_host_load(std::move(h));
  trace.finalize();
  const auto issues = validate(trace);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("CPU over capacity"), std::string::npos);
}

TEST(Validate, OverloadToleranceIsRespected) {
  TraceSet trace("tolerance");
  Machine m;
  m.machine_id = 1;
  m.cpu_capacity = 0.25f;
  m.mem_capacity = 0.5f;
  trace.add_machine(m);
  HostLoadSeries h(1, 0, 300);
  const float cpu[kNumBands] = {0.253f, 0.0f, 0.0f};
  const float mem[kNumBands] = {0.1f, 0.0f, 0.0f};
  h.append(cpu, mem, 0.2f, 0.0f, 1, 0);
  trace.add_host_load(std::move(h));
  trace.finalize();
  EXPECT_FALSE(validate(trace, 1e-3).empty());
  EXPECT_TRUE(validate(trace, 1e-2).empty());
}

TEST(Validate, HostLoadForUnknownMachineCaught) {
  TraceSet trace("orphan-series");
  HostLoadSeries h(42, 0, 300);
  const float zero[kNumBands] = {0, 0, 0};
  h.append(zero, zero, 0.0f, 0.0f, 0, 0);
  trace.add_host_load(std::move(h));
  trace.finalize();
  const auto issues = validate(trace);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("unknown machine"), std::string::npos);
}

TEST(Validate, NegativeQueueCountCaught) {
  TraceSet trace("neg-queue");
  Machine m;
  m.machine_id = 1;
  trace.add_machine(m);
  HostLoadSeries h(1, 0, 300);
  const float zero[kNumBands] = {0, 0, 0};
  h.append(zero, zero, 0.0f, 0.0f, -1, 0);
  trace.add_host_load(std::move(h));
  trace.finalize();
  EXPECT_FALSE(validate(trace).empty());
}

TEST(ValidateOrThrow, MessageListsIssues) {
  TraceSet trace("bad");
  Task t;
  t.job_id = 1;
  t.priority = 0;
  trace.add_task(t);
  trace.finalize();
  try {
    validate_or_throw(trace);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("priority"), std::string::npos);
  }
}

}  // namespace
}  // namespace cgc::trace
