// Tests for the crash-tolerant sweep sharding layer (cgc::sweep):
// deterministic partitioning, flock leases + stale-state quarantine,
// the shared single-writer trace cache, the verified shard merge with
// its DataError/TransientError classification, and the supervisor's
// exit-code triage. The end-to-end kill-and-resume invariant (SIGKILL
// workers at random, resume, merge, diff against a single-process run)
// lives in CI's sweep-kill-matrix job; these tests pin the contracts
// it relies on.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "store/writer.hpp"
#include "sweep/cache.hpp"
#include "sweep/lease.hpp"
#include "sweep/merge.hpp"
#include "sweep/partition.hpp"
#include "sweep/report_io.hpp"
#include "sweep/supervisor.hpp"
#include "trace/trace_set.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace cgc::sweep {
namespace {

namespace fs = std::filesystem;

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cgc_sweep_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void write_file(const std::string& p, const std::string& content) {
    fs::create_directories(fs::path(p).parent_path());
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << content;
  }

  static std::string read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

// ---- partitioning ---------------------------------------------------------

TEST_F(SweepTest, ParseShardSpecAcceptsValidRejectsInvalid) {
  const ShardSpec spec = parse_shard_spec("3/8");
  EXPECT_EQ(spec.index, 3);
  EXPECT_EQ(spec.total, 8);
  EXPECT_TRUE(spec.sharded());
  EXPECT_EQ(spec.str(), "3/8");
  const ShardSpec whole = parse_shard_spec("0/1");
  EXPECT_FALSE(whole.sharded());

  EXPECT_THROW(parse_shard_spec("8/8"), util::FatalError);
  EXPECT_THROW(parse_shard_spec("-1/4"), util::FatalError);
  EXPECT_THROW(parse_shard_spec("2"), util::FatalError);
  EXPECT_THROW(parse_shard_spec("a/b"), util::FatalError);
  EXPECT_THROW(parse_shard_spec("1/0"), util::FatalError);
  EXPECT_THROW(parse_shard_spec("1/4x"), util::FatalError);
}

TEST_F(SweepTest, StableCaseHashMatchesItsDocumentedConstruction) {
  // The hash is the sharding contract: reports stamped under one
  // construction cannot be merged under another. Pin FNV-1a +
  // splitmix64 by recomputing it independently here.
  const auto reference = [](std::string_view s) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
  };
  for (const char* id : {"tab01_workloads", "fig02_priorities", "a", ""}) {
    EXPECT_EQ(stable_case_hash(id), reference(id)) << id;
  }
  EXPECT_NE(stable_case_hash("fig02"), stable_case_hash("fig03"));
}

TEST_F(SweepTest, EveryCaseOwnedByExactlyOneShardAndAllShardsUsed) {
  std::vector<std::string> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back("case_" + std::to_string(i));
  }
  const int total = 8;
  std::vector<int> per_shard(total, 0);
  for (const std::string& id : ids) {
    const int owner = shard_of(id, total);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, total);
    ++per_shard[owner];
    int owners = 0;
    for (int i = 0; i < total; ++i) {
      owners += owns(ShardSpec{i, total}, id) ? 1 : 0;
    }
    EXPECT_EQ(owners, 1) << id;
  }
  // splitmix diffusion: 100 sequential ids must reach all 8 shards.
  for (int i = 0; i < total; ++i) {
    EXPECT_GT(per_shard[i], 0) << "shard " << i << " got no cases";
  }
}

// ---- leases ---------------------------------------------------------------

TEST_F(SweepTest, LeaseExcludesSecondHolderAndReleasesCleanly) {
  const std::string lease_path = path("worker.lease");
  std::optional<Lease> held = Lease::try_acquire(lease_path);
  ASSERT_TRUE(held.has_value());

  // flock treats a second open of the same file as a competing holder,
  // even within one process — good enough to stand in for a second
  // worker here.
  EXPECT_FALSE(Lease::try_acquire(lease_path).has_value());

  const LeaseInfo probe = read_lease(lease_path);
  EXPECT_TRUE(probe.exists);
  EXPECT_TRUE(probe.held);
  EXPECT_EQ(probe.pid, static_cast<std::int64_t>(::getpid()));

  held->release();
  EXPECT_FALSE(fs::exists(lease_path));
  EXPECT_TRUE(Lease::try_acquire(lease_path).has_value());
}

TEST_F(SweepTest, RefreshAdvancesProgressStamp) {
  const std::string lease_path = path("worker.lease");
  std::optional<Lease> held = Lease::try_acquire(lease_path);
  ASSERT_TRUE(held.has_value());
  ASSERT_TRUE(held->refresh(42));
  const LeaseInfo probe = read_lease(lease_path);
  EXPECT_EQ(probe.progress, 42u);
  EXPECT_GT(probe.mono_ns, 0u);
}

TEST_F(SweepTest, DeadHolderLeaseReadsAsFree) {
  // A lease file with no live flock holder — what a SIGKILLed worker
  // leaves behind.
  write_file(path("worker.lease"), "pid 12345\nprogress 7\nmono_ns 99\n");
  const LeaseInfo probe = read_lease(path("worker.lease"));
  EXPECT_TRUE(probe.exists);
  EXPECT_FALSE(probe.held);
  EXPECT_EQ(probe.pid, 12345);
  EXPECT_EQ(probe.progress, 7u);
}

TEST_F(SweepTest, QuarantineMovesStaleStateAndSparesRecordedOutputs) {
  write_file(path("worker.lease"), "pid 12345\nprogress 7\nmono_ns 99\n");
  write_file(path("report.json.tmp"), "torn");
  write_file(path("cache.cgcs.tmp.123"), "staging litter");
  write_file(path("torn.dat"), "unstamped output");
  write_file(path("sub/torn2.dat"), "unstamped output in subdir");
  write_file(path("keep.dat"), "recorded output");
  write_file(path("sub/keep2.dat"), "recorded output in subdir");
  write_file(path("worker.log"), "log");
  write_file(path("report.json"), "not parsed here");

  const QuarantineReport report =
      quarantine_stale(dir_.string(), {"keep.dat", "sub/keep2.dat"});

  EXPECT_TRUE(report.stale_lease);
  const std::set<std::string> moved(report.moved.begin(), report.moved.end());
  const std::set<std::string> want = {"worker.lease", "report.json.tmp",
                                      "cache.cgcs.tmp.123", "torn.dat",
                                      "sub/torn2.dat"};
  EXPECT_EQ(moved, want);
  EXPECT_TRUE(fs::exists(path("keep.dat")));
  EXPECT_TRUE(fs::exists(path("sub/keep2.dat")));
  EXPECT_TRUE(fs::exists(path("worker.log")));
  EXPECT_TRUE(fs::exists(path("report.json")));
  EXPECT_FALSE(fs::exists(path("torn.dat")));
  // Subdir leftovers land flattened under quarantine/.
  EXPECT_TRUE(fs::exists(path("quarantine/sub_torn2.dat.quarantined")));

  // Idempotent: a second sweep finds nothing left to move.
  const QuarantineReport again =
      quarantine_stale(dir_.string(), {"keep.dat", "sub/keep2.dat"});
  EXPECT_TRUE(again.moved.empty());
}

TEST_F(SweepTest, QuarantineLeavesLiveLeaseAlone) {
  std::optional<Lease> held = Lease::try_acquire(path("worker.lease"));
  ASSERT_TRUE(held.has_value());
  const QuarantineReport report = quarantine_stale(dir_.string(), {});
  EXPECT_FALSE(report.stale_lease);
  EXPECT_TRUE(fs::exists(path("worker.lease")));
}

// ---- shared trace cache ---------------------------------------------------

trace::TraceSet tiny_trace(int job_id) {
  trace::TraceSet trace("sweep-test");
  trace::Job job;
  job.job_id = job_id;
  job.submit_time = 100;
  job.end_time = 500;
  trace.add_job(job);
  trace.set_duration(3600);
  trace.finalize();
  return trace;
}

TEST_F(SweepTest, CacheBuildsOncePublishesAndReloads) {
  const std::string base = path("cache/entry");
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return tiny_trace(7);
  };

  CacheResult first = load_or_build_cgcs(base, build);
  EXPECT_TRUE(first.built);
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(fs::exists(base + ".cgcs"));
  EXPECT_FALSE(fs::exists(base + ".cgcs.lock"));  // released after publish
  ASSERT_EQ(first.trace.jobs().size(), 1u);
  EXPECT_EQ(first.trace.jobs()[0].job_id, 7);

  CacheResult second = load_or_build_cgcs(base, build);
  EXPECT_FALSE(second.built);
  EXPECT_EQ(builds, 1);
  ASSERT_EQ(second.trace.jobs().size(), 1u);
  EXPECT_EQ(second.trace.jobs()[0].job_id, 7);
}

TEST_F(SweepTest, CacheDiscardsUnreadableEntryAndRebuilds) {
  const std::string base = path("cache/entry");
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return tiny_trace(7);
  };
  load_or_build_cgcs(base, build);
  write_file(base + ".cgcs", "garbage, not a store file");

  const CacheResult rebuilt = load_or_build_cgcs(base, build);
  EXPECT_TRUE(rebuilt.built);
  EXPECT_EQ(builds, 2);
  ASSERT_EQ(rebuilt.trace.jobs().size(), 1u);
}

TEST_F(SweepTest, ConfigHashDistinguishesConfigs) {
  EXPECT_NE(config_hash("google_workload v1 rate=0.25 horizon=100"),
            config_hash("google_workload v1 rate=0.5 horizon=100"));
  const std::string hex = config_hash_hex("x");
  EXPECT_EQ(hex.size(), 16u);
}

TEST_F(SweepTest, VerifyCacheFlagsLitterStaleLocksAndDamage) {
  const std::string cache = path("cache");
  load_or_build_cgcs(cache + "/good", [] { return tiny_trace(1); });
  // A dead builder's leftovers: orphaned staging file + free lock.
  write_file(cache + "/crashed.cgcs.tmp.999", "half-written");
  write_file(cache + "/crashed.cgcs.lock",
             "pid 999\nprogress 0\nmono_ns 1\n");
  // An unreadable entry.
  write_file(cache + "/broken.cgcs", "garbage");

  const CacheAudit audit = verify_cache(cache);
  EXPECT_EQ(audit.entries, 2u);        // good + broken
  EXPECT_EQ(audit.entries_clean, 1u);  // good only
  EXPECT_EQ(audit.stale_locks, 1u);
  EXPECT_EQ(audit.tmp_litter, 1u);
  EXPECT_FALSE(audit.clean());
  bool saw_fatal = false;
  for (const CacheIssue& issue : audit.issues) {
    saw_fatal |= issue.fatal;
  }
  EXPECT_TRUE(saw_fatal);  // the unreadable entry

  // A live builder's lock is not an issue unless asked for.
  std::optional<Lease> live = Lease::try_acquire(cache + "/live.cgcs.lock");
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(verify_cache(cache).issues.size(), audit.issues.size());
  EXPECT_GT(verify_cache(cache, /*flag_live_locks=*/true).issues.size(),
            audit.issues.size());
}

TEST_F(SweepTest, VerifyCacheIsCleanOnHealthyDir) {
  const std::string cache = path("cache");
  load_or_build_cgcs(cache + "/good", [] { return tiny_trace(1); });
  const CacheAudit audit = verify_cache(cache);
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.entries, 1u);
  EXPECT_EQ(audit.entries_clean, 1u);
}

// ---- merge ----------------------------------------------------------------

CaseMeta meta_of(const std::string& id) {
  return {id, "bench_" + id, "figure", "Title " + id};
}

/// Writes `<id>.dat` into `dir` and returns the matching ok record.
CaseRecord make_ok_case(const std::string& dir, const std::string& id,
                        const std::string& content) {
  const std::string file = id + ".dat";
  {
    fs::create_directories(dir);
    std::ofstream out(dir + "/" + file, std::ios::binary);
    out << content;
  }
  CaseRecord r;
  r.id = id;
  r.binary = "bench_" + id;
  r.kind = "figure";
  r.title = "Title " + id;
  r.ok = true;
  r.seconds = 1.25;  // volatile — must not survive canonicalization
  r.attempts = 3;
  CaseOutput o;
  o.file = file;
  EXPECT_TRUE(file_crc32(dir + "/" + file, &o.crc, &o.size));
  r.outputs.push_back(o);
  return r;
}

class MergeTest : public SweepTest {
 protected:
  /// The case universe: 8 ids, partitioned 2-way by the stable hash.
  std::vector<CaseMeta> universe() const {
    std::vector<CaseMeta> expected;
    for (int i = 0; i < 8; ++i) {
      expected.push_back(meta_of("case_" + std::to_string(i)));
    }
    return expected;
  }

  /// Builds shard dirs s0/s1 of a 2-way split plus a single-process
  /// dir holding every case, all with identical .dat content per case.
  void build_partitioned_dirs() {
    SweepReport s0, s1, single;
    s0.shard_index = 0;
    s0.shard_total = 2;
    s0.complete = true;
    s1.shard_index = 1;
    s1.shard_total = 2;
    s1.complete = true;
    single.complete = true;
    single.threads = 8;       // volatile fields the canonical form drops
    single.total_seconds = 9.5;
    for (const CaseMeta& meta : universe()) {
      const std::string content = "series for " + meta.id + "\n1 2\n3 4\n";
      single.cases.push_back(
          make_ok_case(path("single"), meta.id, content));
      if (shard_of(meta.id, 2) == 0) {
        s0.cases.push_back(make_ok_case(path("s0"), meta.id, content));
      } else {
        s1.cases.push_back(make_ok_case(path("s1"), meta.id, content));
      }
    }
    ASSERT_FALSE(s0.cases.empty());
    ASSERT_FALSE(s1.cases.empty());
    write_report(s0, path("s0/report.json"));
    write_report(s1, path("s1/report.json"));
    write_report(single, path("single/report.json"));
  }
};

TEST_F(MergeTest, ShardMergeIsByteIdenticalToSingleProcessMerge) {
  build_partitioned_dirs();

  MergeOptions options;
  options.expected = universe();
  options.out_dir = path("merged_shards");
  const MergeResult sharded =
      merge_shards({path("s0"), path("s1")}, options);
  EXPECT_EQ(sharded.cases_ok, 8u);
  EXPECT_EQ(sharded.cases_failed, 0u);
  EXPECT_EQ(sharded.cases_missing, 0u);
  EXPECT_EQ(sharded.files_copied, 8u);
  EXPECT_TRUE(sharded.report.merged);
  EXPECT_TRUE(sharded.report.complete);

  options.out_dir = path("merged_single");
  const MergeResult plain = merge_shards({path("single")}, options);

  // The headline invariant, in miniature: same bytes either way.
  EXPECT_EQ(read_file(path("merged_shards/report.json")),
            read_file(path("merged_single/report.json")));
  for (const CaseMeta& meta : universe()) {
    EXPECT_EQ(read_file(path("merged_shards/" + meta.id + ".dat")),
              read_file(path("merged_single/" + meta.id + ".dat")))
        << meta.id;
  }
  // Cases come back in universe order, not hash or directory order.
  ASSERT_EQ(sharded.report.cases.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(sharded.report.cases[i].id, universe()[i].id);
    EXPECT_EQ(sharded.report.cases[i].attempts, 1);
    EXPECT_DOUBLE_EQ(sharded.report.cases[i].seconds, 0.0);
  }
}

TEST_F(MergeTest, OverlappingClaimIsConflictNamingTheCase) {
  SweepReport a, b;
  a.complete = true;
  b.complete = true;
  a.cases.push_back(make_ok_case(path("a"), "dup_case", "same\n"));
  b.cases.push_back(make_ok_case(path("b"), "dup_case", "same\n"));
  write_report(a, path("a/report.json"));
  write_report(b, path("b/report.json"));

  MergeOptions options;
  options.expected = {meta_of("dup_case")};
  options.out_dir = path("out");
  try {
    merge_shards({path("a"), path("b")}, options);
    FAIL() << "overlap not detected";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("dup_case"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("claimed by both"),
              std::string::npos);
    EXPECT_EQ(error::merge_exit_code(e), util::kExitConflict);
  }
}

TEST_F(MergeTest, DigestDisagreementIsConflict) {
  SweepReport a;
  a.complete = true;
  CaseRecord r = make_ok_case(path("a"), "case_x", "original bytes\n");
  r.outputs[0].crc ^= 0xffffffffu;  // recorded digest no longer matches
  a.cases.push_back(r);
  write_report(a, path("a/report.json"));

  MergeOptions options;
  options.expected = {meta_of("case_x")};
  options.out_dir = path("out");
  try {
    merge_shards({path("a")}, options);
    FAIL() << "digest mismatch not detected";
  } catch (const util::DataError& e) {
    EXPECT_NE(std::string(e.what()).find("digest disagreement"),
              std::string::npos);
    EXPECT_EQ(error::merge_exit_code(e), util::kExitConflict);
  }
}

TEST_F(MergeTest, PartitionMismatchIsConflict) {
  // Find an id the 2-way split assigns to shard 1, then stamp the dir
  // claiming it as shard 0/2 — dirs from different partitions.
  std::string foreign;
  for (int i = 0; i < 64 && foreign.empty(); ++i) {
    const std::string id = "probe_" + std::to_string(i);
    if (shard_of(id, 2) == 1) {
      foreign = id;
    }
  }
  ASSERT_FALSE(foreign.empty());
  SweepReport a;
  a.shard_index = 0;
  a.shard_total = 2;
  a.complete = true;
  a.cases.push_back(make_ok_case(path("a"), foreign, "bytes\n"));
  write_report(a, path("a/report.json"));

  MergeOptions options;
  options.expected = {meta_of(foreign)};
  options.out_dir = path("out");
  EXPECT_THROW(merge_shards({path("a")}, options), util::DataError);
}

TEST_F(MergeTest, TornReportIsResumableNotConflict) {
  SweepReport a;
  a.complete = true;
  a.cases.push_back(make_ok_case(path("a"), "case_x", "bytes\n"));
  write_report(a, path("a/report.json"));
  const std::string bytes = read_file(path("a/report.json"));
  write_file(path("a/report.json"), bytes.substr(0, bytes.size() / 2));

  MergeOptions options;
  options.expected = {meta_of("case_x")};
  options.out_dir = path("out");
  try {
    merge_shards({path("a")}, options);
    FAIL() << "torn report not detected";
  } catch (const util::TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("resumable"), std::string::npos);
    EXPECT_EQ(error::merge_exit_code(e), util::kExitFailure);
  }

  // With allow_partial the torn shard degrades to synthesized failures
  // instead (the supervisor's budget-exhausted path).
  options.allow_partial = true;
  const MergeResult degraded = merge_shards({path("a")}, options);
  EXPECT_EQ(degraded.cases_missing, 1u);
  EXPECT_FALSE(degraded.notes.empty());
  ASSERT_EQ(degraded.report.cases.size(), 1u);
  EXPECT_FALSE(degraded.report.cases[0].ok);
}

TEST_F(MergeTest, MissingShardIsResumable) {
  build_partitioned_dirs();
  MergeOptions options;
  options.expected = universe();
  options.out_dir = path("out");
  EXPECT_THROW(merge_shards({path("s0")}, options), util::TransientError);

  options.allow_partial = true;
  const MergeResult partial = merge_shards({path("s0")}, options);
  EXPECT_GT(partial.cases_missing, 0u);
  EXPECT_EQ(partial.cases_ok + partial.cases_missing, 8u);
}

TEST_F(MergeTest, MergingAMergeIsRejected) {
  build_partitioned_dirs();
  MergeOptions options;
  options.expected = universe();
  options.out_dir = path("out");
  merge_shards({path("s0"), path("s1")}, options);

  MergeOptions again = options;
  again.out_dir = path("out2");
  EXPECT_THROW(merge_shards({path("out")}, again), util::DataError);
}

// ---- supervisor -----------------------------------------------------------

SupervisorConfig fast_supervisor(const std::string& out_root) {
  SupervisorConfig config;
  config.num_shards = 1;
  config.out_root = out_root;
  config.make_args = [](int) { return std::vector<std::string>{}; };
  config.retry_budget = 2;
  config.backoff_ms = 1;
  config.backoff_cap_ms = 2;
  config.poll_ms = 5;
  return config;
}

TEST_F(SweepTest, SupervisorCompletesWorkerThatFinishes) {
  SupervisorConfig config = fast_supervisor(dir_.string());
  config.exe = "/bin/true";
  // The worker's checkpoint already says "complete" — /bin/true stands
  // in for a worker whose final flush landed.
  const std::string sdir = shard_dir(config.out_root, 0, 1);
  fs::create_directories(sdir);
  SweepReport done;
  done.complete = true;
  write_report(done, sdir + "/report.json");

  const SupervisorResult result = run_supervisor(config);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_EQ(result.shards[0].outcome, ShardOutcome::kComplete);
  EXPECT_EQ(result.shards[0].spawns, 1);
  EXPECT_EQ(result.respawns, 0);
  EXPECT_TRUE(result.all_complete());
}

TEST_F(SweepTest, SupervisorExhaustsUnlaunchableWorkerWithoutRetry) {
  SupervisorConfig config = fast_supervisor(dir_.string());
  config.exe = "/nonexistent/worker/binary";
  const SupervisorResult result = run_supervisor(config);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_EQ(result.shards[0].outcome, ShardOutcome::kExhausted);
  EXPECT_EQ(result.shards[0].spawns, 1);  // exec failure: no retry
  EXPECT_EQ(result.shards[0].last_exit, 127);
  EXPECT_FALSE(result.all_complete());
}

TEST_F(SweepTest, SupervisorRespawnsCrashingWorkerUntilBudgetExhausted) {
  SupervisorConfig config = fast_supervisor(dir_.string());
  config.exe = "/bin/false";  // exits 1 without ever writing a report
  const SupervisorResult result = run_supervisor(config);
  ASSERT_EQ(result.shards.size(), 1u);
  EXPECT_EQ(result.shards[0].outcome, ShardOutcome::kExhausted);
  EXPECT_EQ(result.shards[0].spawns, 3);  // initial + 2 budgeted respawns
  EXPECT_EQ(result.respawns, 2);
  EXPECT_EQ(result.shards[0].last_exit, 1);
}

}  // namespace
}  // namespace cgc::sweep
