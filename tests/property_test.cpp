// Cross-module property tests: randomized configurations must preserve
// the library's global invariants (valid traces, capacity limits, CDF
// monotonicity, mass-count identities).
#include <gtest/gtest.h>

#include "gen/google_model.hpp"
#include "gen/grid_model.hpp"
#include "sim/cluster_sim.hpp"
#include "stats/ecdf.hpp"
#include "stats/mass_count.hpp"
#include "trace/validate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc {
namespace {

/// Randomized simulator configurations: whatever the knobs, the output
/// trace must validate and the stats must be self-consistent.
class SimInvariantProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimInvariantProperty, RandomConfigProducesValidTrace) {
  util::Rng rng(GetParam());
  sim::SimConfig config;
  config.horizon = util::kSecondsPerDay / 2;
  config.preemption = rng.bernoulli(0.5);
  config.placement =
      static_cast<sim::PlacementPolicy>(rng.uniform_int(0, 4));
  config.cpu_usage_jitter = rng.uniform(0.0, 0.4);
  config.mem_usage_jitter = rng.uniform(0.0, 0.1);
  config.machine_cpu_jitter = rng.uniform(0.0, 0.3);
  config.mem_admission_headroom = rng.uniform(0.7, 1.0);
  config.seed = GetParam() * 7919;

  // Random machine park.
  std::vector<trace::Machine> machines;
  const int num_machines = 2 + static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < num_machines; ++i) {
    trace::Machine m;
    m.machine_id = i + 1;
    m.cpu_capacity = static_cast<float>(rng.uniform(0.25, 1.0));
    m.mem_capacity = static_cast<float>(rng.uniform(0.25, 1.0));
    machines.push_back(m);
  }

  // Random workload, including fates and bursty sizes.
  sim::Workload workload;
  const int num_tasks = 50 + static_cast<int>(rng.uniform_int(0, 300));
  for (int i = 0; i < num_tasks; ++i) {
    sim::TaskSpec spec;
    spec.job_id = 1 + i / 3;
    spec.task_index = i % 3;
    spec.priority = static_cast<std::uint8_t>(rng.uniform_int(1, 12));
    spec.submit_time = rng.uniform_int(0, config.horizon - 1);
    spec.duration = rng.uniform_int(30, 7200);
    spec.cpu_request = static_cast<float>(rng.uniform(0.01, 0.2));
    spec.mem_request = static_cast<float>(rng.uniform(0.01, 0.2));
    spec.cpu_usage_ratio = static_cast<float>(rng.uniform(0.1, 1.0));
    spec.mem_usage_ratio = static_cast<float>(rng.uniform(0.5, 1.0));
    const double fate_draw = rng.uniform();
    if (fate_draw < 0.2) {
      spec.fate = trace::TaskEventType::kFail;
      spec.max_resubmits = static_cast<std::int32_t>(rng.uniform_int(0, 3));
    } else if (fate_draw < 0.35) {
      spec.fate = trace::TaskEventType::kKill;
    } else if (fate_draw < 0.4) {
      spec.fate = trace::TaskEventType::kLost;
    }
    if (spec.fate != trace::TaskEventType::kFinish) {
      spec.abnormal_after = rng.uniform_int(1, spec.duration);
    }
    workload.push_back(spec);
  }

  sim::ClusterSim sim(machines, config);
  const trace::TraceSet out = sim.run(workload);
  // Invariant 1: structurally valid (state machine, capacities, times).
  trace::validate_or_throw(out);
  // Invariant 2: bookkeeping identities.
  const sim::SimStats& stats = sim.stats();
  EXPECT_EQ(stats.submitted, num_tasks);
  EXPECT_LE(stats.finished + stats.failed + stats.killed + stats.lost,
            stats.scheduled + stats.evicted);
  EXPECT_EQ(out.tasks().size(), static_cast<std::size_t>(num_tasks));
  // Invariant 3: every sample is within physical capacity.
  for (const trace::HostLoadSeries& h : out.host_load()) {
    const auto machine = out.machine_by_id(h.machine_id());
    ASSERT_TRUE(machine.has_value());
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_LE(h.cpu_total(i), machine->cpu_capacity + 1e-4);
      EXPECT_LE(h.mem_total(i), machine->mem_capacity + 1e-4);
      EXPECT_GE(h.running(i), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariantProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Generated workloads across seeds are always valid traces.
class GeneratorValidityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorValidityProperty, GoogleWorkloadAlwaysValid) {
  gen::GoogleModelConfig config;
  config.seed = GetParam();
  const auto trace = gen::GoogleWorkloadModel(config).generate_workload(
      util::kSecondsPerHour * 12);
  trace::validate_or_throw(trace);
  EXPECT_GT(trace.jobs().size(), 100u);
}

TEST_P(GeneratorValidityProperty, GridWorkloadAlwaysValid) {
  gen::GridSystemPreset preset = gen::presets::sharcnet();
  preset.seed = GetParam();
  const auto trace = gen::GridWorkloadModel(preset).generate_workload(
      util::kSecondsPerDay);
  trace::validate_or_throw(trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorValidityProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/// Ecdf quantile/evaluation duality on random samples.
class EcdfDualityProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EcdfDualityProperty, QuantileAndCdfAreConsistent) {
  util::Rng rng(GetParam());
  std::vector<double> sample;
  const int n = 10 + static_cast<int>(rng.uniform_int(0, 2000));
  for (int i = 0; i < n; ++i) {
    sample.push_back(rng.normal(0.0, 10.0));
  }
  const stats::Ecdf ecdf(std::move(sample));
  for (double q = 0.05; q < 1.0; q += 0.1) {
    const double x = ecdf.quantile(q);
    EXPECT_GE(ecdf(x), q - 1e-12);
    // Just below x the CDF must be below q (x is the smallest such value).
    EXPECT_LT(ecdf(x - 1e-9) , q + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfDualityProperty,
                         ::testing::Values(3, 14, 159, 2653, 58979));

/// Mass-count identities on mixtures of arbitrary positive parts.
class MassCountIdentityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MassCountIdentityProperty, CrossoverIdentity) {
  util::Rng rng(GetParam());
  std::vector<double> sample;
  const int n = 100 + static_cast<int>(rng.uniform_int(0, 5000));
  for (int i = 0; i < n; ++i) {
    // Arbitrary positive mixture: uniform body + occasional huge values.
    double v = rng.uniform(0.1, 10.0);
    if (rng.bernoulli(0.05)) {
      v *= rng.uniform(10.0, 1000.0);
    }
    sample.push_back(v);
  }
  const auto r = stats::mass_count_disparity(sample);
  // The discrete crossover overshoots 100 by at most one item's count
  // step plus one item's mass share (a single huge value can carry a
  // large fraction of the total mass).
  double total = 0.0;
  double largest = 0.0;
  for (const double v : sample) {
    total += v;
    largest = std::max(largest, v);
  }
  const double max_step =
      100.0 / static_cast<double>(n) + 100.0 * largest / total;
  EXPECT_GE(r.joint_ratio_mass + r.joint_ratio_count, 100.0 - 1e-6);
  EXPECT_LE(r.joint_ratio_mass + r.joint_ratio_count,
            100.0 + max_step + 1e-6);
  EXPECT_GE(r.mass_median, r.count_median - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MassCountIdentityProperty,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace cgc
