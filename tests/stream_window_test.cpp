// SlidingWindow engine tests: window semantics (tumbling, overlapping,
// watermark, late policy), streaming-vs-batch agreement on a generated
// workload within the sketch error bound, bit-identical state across
// CGC_THREADS, and deterministic degradation under fault injection.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "gen/google_model.hpp"
#include "stats/ecdf.hpp"
#include "stream/replay.hpp"
#include "stream/window.hpp"
#include "trace/trace_set.hpp"
#include "util/thread_pool.hpp"

namespace cgc {
namespace {

using stream::LatePolicy;
using stream::SlidingWindow;
using stream::WindowConfig;
using stream::WindowStats;
using trace::TaskEvent;
using trace::TaskEventType;

TaskEvent make_event(util::TimeSec time, TaskEventType type,
                     std::int64_t job_id, std::int32_t task_index,
                     int priority = 1, std::int64_t machine_id = -1) {
  TaskEvent e;
  e.time = time;
  e.type = type;
  e.job_id = job_id;
  e.task_index = task_index;
  e.priority = static_cast<std::uint8_t>(priority);
  e.machine_id = machine_id;
  return e;
}

/// Canonical state of every closed window, concatenated.
std::string closed_state(const SlidingWindow& engine) {
  std::string bytes;
  for (const WindowStats& ws : engine.closed()) {
    ws.append_state(&bytes);
  }
  return bytes;
}

TEST(SlidingWindowTest, TumblingWindowLifecycleAndMetrics) {
  WindowConfig config;
  config.width = 100;
  config.watermark_lag = 10;
  config.rate_bins = 10;
  SlidingWindow engine(config);

  std::vector<TaskEvent> batch = {
      make_event(5, TaskEventType::kSubmit, 1, 0, 2),
      make_event(7, TaskEventType::kSchedule, 1, 0, 2, 42),
      make_event(20, TaskEventType::kSubmit, 2, 0, 9),
      make_event(25, TaskEventType::kSchedule, 2, 0, 9, 42),
      make_event(57, TaskEventType::kFinish, 1, 0, 2, 42),
  };
  engine.ingest(batch);
  // Watermark is 57 - 10: window [0, 100) still open.
  EXPECT_EQ(engine.windows_closed(), 0u);
  ASSERT_EQ(engine.open().size(), 1u);

  // An event at 115 closes window 0 (watermark 105 >= 100).
  std::vector<TaskEvent> next = {
      make_event(115, TaskEventType::kFinish, 2, 0, 9, 42),
  };
  engine.ingest(next);
  ASSERT_EQ(engine.windows_closed(), 1u);
  const WindowStats* w0 = engine.find(0);
  ASSERT_NE(w0, nullptr);
  EXPECT_TRUE(w0->closed);
  EXPECT_EQ(w0->start, 0);
  EXPECT_EQ(w0->end, 100);
  EXPECT_EQ(w0->events.total(), 5);
  EXPECT_EQ(w0->events.total(TaskEventType::kSubmit), 2);
  EXPECT_EQ(w0->events.submits_in_band(trace::PriorityBand::kLow), 1);
  EXPECT_EQ(w0->events.submits_in_band(trace::PriorityBand::kHigh), 1);
  // Task (1,0): scheduled at 7, finished at 57 -> run duration 50.
  ASSERT_EQ(w0->task_length.count(), 1u);
  EXPECT_DOUBLE_EQ(w0->task_length.min(), 50.0);
  // Job 1 fully done at 57, first submit 5 -> job length 52.
  ASSERT_EQ(w0->job_length.count(), 1u);
  EXPECT_DOUBLE_EQ(w0->job_length.min(), 52.0);
  // One submission gap: 20 - 5 = 15.
  ASSERT_EQ(w0->submit_gap.count(), 1u);
  EXPECT_DOUBLE_EQ(w0->submit_gap_moments.mean(), 15.0);
  // At close, task (2,0) is still running on machine 42.
  EXPECT_EQ(w0->pending_at_close, 0);
  EXPECT_EQ(w0->running_at_close, 1);
  EXPECT_EQ(w0->hosts_seen, 1);
  ASSERT_EQ(w0->host_load.count(), 1u);
  EXPECT_DOUBLE_EQ(w0->host_load.max(), 1.0);
  // Rate bins: submits at 5 and 20 land in sub-bins 0 and 2.
  EXPECT_EQ(w0->rate_bins[0], 1);
  EXPECT_EQ(w0->rate_bins[2], 1);

  engine.flush();
  EXPECT_EQ(engine.windows_closed(), 2u);
  const WindowStats* w1 = engine.find(1);
  ASSERT_NE(w1, nullptr);
  // Window [100, 200): the finish of task (2,0), run 115 - 25 = 90.
  EXPECT_EQ(w1->events.total(), 1);
  ASSERT_EQ(w1->task_length.count(), 1u);
  EXPECT_DOUBLE_EQ(w1->task_length.min(), 90.0);
  EXPECT_EQ(w1->running_at_close, 0);
  EXPECT_EQ(w1->hosts_seen, 0);
  EXPECT_FALSE(engine.health().lossy());
}

TEST(SlidingWindowTest, OverlappingWindowsAssignEventsToEverySlide) {
  WindowConfig config;
  config.width = 100;
  config.slide = 50;
  config.watermark_lag = 0;
  SlidingWindow engine(config);
  // t=75 belongs to [0,100) and [50,150).
  std::vector<TaskEvent> batch = {
      make_event(75, TaskEventType::kSubmit, 1, 0),
      make_event(300, TaskEventType::kSubmit, 2, 0),
  };
  engine.ingest(batch);
  engine.flush();
  const WindowStats* w0 = engine.find(0);
  const WindowStats* w1 = engine.find(1);
  const WindowStats* w2 = engine.find(2);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  EXPECT_EQ(w0->events.total(), 1);
  EXPECT_EQ(w1->events.total(), 1);
  EXPECT_EQ(w2->events.total(), 0);  // [100,200) sees neither
  // t=300 belongs to [250,350) and [300,400): windows 5 and 6.
  EXPECT_EQ(engine.find(4)->events.total(), 0);
  EXPECT_EQ(engine.find(5)->events.total(), 1);
  EXPECT_EQ(engine.find(6)->events.total(), 1);
}

TEST(SlidingWindowTest, LateEventsAreCountedAndDroppedOrAbsorbed) {
  for (const LatePolicy policy :
       {LatePolicy::kDrop, LatePolicy::kAbsorbOldest}) {
    WindowConfig config;
    config.width = 100;
    config.watermark_lag = 0;
    config.late_policy = policy;
    SlidingWindow engine(config);
    engine.ingest(std::vector<TaskEvent>{
        make_event(250, TaskEventType::kSubmit, 1, 0),
    });
    // Windowing starts at the first event's window [200,300): windows 0
    // and 1 never exist, so an event at t=30 is late.
    ASSERT_EQ(engine.windows_closed(), 0u);
    engine.ingest(std::vector<TaskEvent>{
        make_event(30, TaskEventType::kSubmit, 2, 0),
    });
    engine.flush();
    EXPECT_EQ(engine.windows_closed(), 1u);
    EXPECT_EQ(engine.find(0), nullptr);
    if (policy == LatePolicy::kDrop) {
      EXPECT_EQ(engine.health().late_dropped, 1u);
      EXPECT_TRUE(engine.health().lossy());
      EXPECT_EQ(engine.find(2)->events.total(), 1);
    } else {
      EXPECT_EQ(engine.health().late_absorbed, 1u);
      EXPECT_FALSE(engine.health().lossy());
      // Absorbed into the oldest open window at ingest time: window 2.
      EXPECT_EQ(engine.find(2)->events.total(), 2);
    }
  }
}

/// Streaming metrics over one whole-trace window must agree with the
/// batch kernels: identical sample counts (so identical quantile ranks)
/// and quantiles within the sketch's relative error bound.
TEST(SlidingWindowTest, StreamingMatchesBatchKernelsWithinSketchBound) {
  gen::GoogleModelConfig model_config;
  // Full task sampling: the generator keeps Job records complete even
  // when task records are sampled, so event-derived job lengths only
  // match the batch job_lengths() at sampling rate 1.0.
  model_config.task_sampling_rate = 1.0;
  const trace::TraceSet workload =
      gen::GoogleWorkloadModel(model_config)
          .generate_workload(util::kSecondsPerDay / 2);
  const std::vector<TaskEvent> events = stream::synthesize_events(workload);
  ASSERT_FALSE(events.empty());

  const double alpha = 0.01;
  WindowConfig config;
  config.width = 4 * util::kSecondsPerDay;  // one window covers the trace
  config.relative_error = alpha;
  SlidingWindow engine(config);
  // Feed in bounded batches, as the daemon would.
  for (std::size_t i = 0; i < events.size(); i += 4096) {
    const std::size_t n = std::min<std::size_t>(4096, events.size() - i);
    engine.ingest(std::span<const TaskEvent>(events).subspan(i, n));
  }
  engine.flush();
  ASSERT_EQ(engine.windows_closed(), 1u);
  const WindowStats& w = *engine.latest();

  const std::vector<double> batch_job_lengths = workload.job_lengths();
  const std::vector<double> batch_task_lengths =
      workload.task_run_durations();
  const std::vector<double> batch_gaps = workload.submission_intervals();
  ASSERT_EQ(w.job_length.count(), batch_job_lengths.size());
  ASSERT_EQ(w.task_length.count(), batch_task_lengths.size());
  ASSERT_EQ(w.submit_gap.count(), batch_gaps.size());

  const stats::Ecdf job_ecdf(batch_job_lengths);
  const stats::Ecdf task_ecdf(batch_task_lengths);
  const stats::Ecdf gap_ecdf(batch_gaps);
  for (const double q : {0.10, 0.50, 0.90, 0.99}) {
    EXPECT_LE(std::abs(w.job_length.quantile(q) - job_ecdf.quantile(q)),
              alpha * job_ecdf.quantile(q) + 1e-9)
        << "job length q=" << q;
    EXPECT_LE(std::abs(w.task_length.quantile(q) - task_ecdf.quantile(q)),
              alpha * task_ecdf.quantile(q) + 1e-9)
        << "task length q=" << q;
    EXPECT_LE(std::abs(w.submit_gap.quantile(q) - gap_ecdf.quantile(q)),
              alpha * gap_ecdf.quantile(q) + 1e-9)
        << "submission gap q=" << q;
  }
  // The gap mean is tracked exactly (Welford, not bucketed).
  EXPECT_NEAR(w.submit_gap_moments.mean(), gap_ecdf.mean(),
              1e-9 * gap_ecdf.mean());
  // Priority-mix counts are exact: one SUBMIT per task.
  EXPECT_EQ(w.events.total(TaskEventType::kSubmit),
            static_cast<std::int64_t>(workload.tasks().size()));
  EXPECT_FALSE(engine.health().lossy());
}

/// The whole engine state — every sketch bit of every window — must be
/// identical at 1 worker and at 8, for identical batching.
TEST(SlidingWindowTest, StateIsBitIdenticalAcrossThreadCounts) {
  gen::GoogleModelConfig model_config;
  model_config.task_sampling_rate = 0.05;
  const trace::TraceSet workload =
      gen::GoogleWorkloadModel(model_config)
          .generate_workload(util::kSecondsPerDay / 2);
  const std::vector<TaskEvent> events = stream::synthesize_events(workload);

  const auto run = [&events](util::ThreadPool* pool) {
    exec::ScopedPool scoped(pool);
    WindowConfig config;
    config.width = util::kSecondsPerHour;
    config.slide = util::kSecondsPerHour / 2;
    SlidingWindow engine(config);
    for (std::size_t i = 0; i < events.size(); i += 2048) {
      const std::size_t n = std::min<std::size_t>(2048, events.size() - i);
      engine.ingest(std::span<const TaskEvent>(events).subspan(i, n));
    }
    engine.flush();
    return closed_state(engine);
  };
  util::ThreadPool one(1);
  util::ThreadPool many(8);
  const std::string state_one = run(&one);
  const std::string state_many = run(&many);
  ASSERT_FALSE(state_one.empty());
  EXPECT_EQ(state_one, state_many);
}

TEST(SlidingWindowTest, FaultInjectionDegradesDeterministically) {
  gen::GoogleModelConfig model_config;
  model_config.task_sampling_rate = 0.05;
  const trace::TraceSet workload =
      gen::GoogleWorkloadModel(model_config)
          .generate_workload(util::kSecondsPerDay / 4);
  const std::vector<TaskEvent> events = stream::synthesize_events(workload);

  fault::configure("stream.drop:p=0.05,seed=9;stream.dup:p=0.02,seed=10");
  const auto run = [&events] {
    WindowConfig config;
    config.width = util::kSecondsPerHour;
    SlidingWindow engine(config);
    engine.ingest(events);
    engine.flush();
    return std::pair(engine.health(), closed_state(engine));
  };
  const auto [health_a, state_a] = run();
  const auto [health_b, state_b] = run();
  fault::configure("");

  EXPECT_GT(health_a.faults_dropped, 0u);
  EXPECT_GT(health_a.faults_duplicated, 0u);
  EXPECT_TRUE(health_a.lossy());
  // Same spec, same stream -> identical damage and identical state.
  EXPECT_EQ(health_a.faults_dropped, health_b.faults_dropped);
  EXPECT_EQ(health_a.faults_duplicated, health_b.faults_duplicated);
  EXPECT_EQ(state_a, state_b);

  // And a disarmed run over the same events is clean.
  WindowConfig config;
  config.width = util::kSecondsPerHour;
  SlidingWindow clean(config);
  clean.ingest(events);
  clean.flush();
  EXPECT_FALSE(clean.health().lossy());
  EXPECT_EQ(clean.events_ingested(), events.size());
}

TEST(SlidingWindowTest, SpillHookSeesEveryClosedWindowInOrder) {
  WindowConfig config;
  config.width = 100;
  config.watermark_lag = 0;
  config.keep_events = true;
  SlidingWindow engine(config);
  std::vector<std::int64_t> spilled;
  std::size_t spilled_events = 0;
  engine.set_spill([&](const WindowStats& ws,
                       std::span<const TaskEvent> events) {
    spilled.push_back(ws.index);
    spilled_events += events.size();
  });
  engine.ingest(std::vector<TaskEvent>{
      make_event(10, TaskEventType::kSubmit, 1, 0),
      make_event(120, TaskEventType::kSubmit, 2, 0),
      make_event(340, TaskEventType::kSubmit, 3, 0),
  });
  engine.flush();
  EXPECT_EQ(spilled, (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(spilled_events, 3u);
}

}  // namespace
}  // namespace cgc
