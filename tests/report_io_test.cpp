// Tests for the sweep driver's report.json checkpoint I/O: perf-block
// round-trip and the kOk/kMissing/kCorrupt distinction that lets
// --resume fail loudly on a torn report (regression: a truncated file
// used to be treated the same as a missing one).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "sweep/report_io.hpp"

namespace cgc::sweep {
namespace {

class ReportIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_report_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "report.json").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static SweepReport make_report() {
    SweepReport report;
    report.fast_mode = true;
    report.threads = 4;
    report.complete = true;
    report.total_seconds = 1.5;
    CaseRecord r;
    r.id = "fig02_priorities";
    r.binary = "bench_fig02_priorities";
    r.kind = "figure";
    r.title = "Priority mix";
    r.seconds = 0.75;
    r.ok = true;
    r.attempts = 2;
    r.perf.wall_s = 0.75;
    r.perf.cpu_s = 2.5;
    r.perf.max_rss_kb = 123456;
    r.outputs.push_back({"fig02.dat", 0xdeadbeef, 321});
    report.cases.push_back(r);
    return report;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ReportIoTest, RoundTripIncludesPerfBlock) {
  write_report(make_report(), path_);

  SweepReport loaded;
  ASSERT_EQ(read_report_checked(path_, &loaded), ReportReadStatus::kOk);
  ASSERT_EQ(loaded.cases.size(), 1u);
  const CaseRecord& r = loaded.cases[0];
  EXPECT_EQ(r.id, "fig02_priorities");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_DOUBLE_EQ(r.perf.wall_s, 0.75);
  EXPECT_DOUBLE_EQ(r.perf.cpu_s, 2.5);
  EXPECT_EQ(r.perf.max_rss_kb, 123456u);
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0].file, "fig02.dat");
  EXPECT_EQ(r.outputs[0].crc, 0xdeadbeefu);
  EXPECT_EQ(r.outputs[0].size, 321u);
}

TEST_F(ReportIoTest, ShardStampRoundTripsAndDefaultsWhenAbsent) {
  SweepReport report = make_report();
  report.shard_index = 2;
  report.shard_total = 4;
  report.merged = true;
  write_report(report, path_);
  SweepReport loaded;
  ASSERT_EQ(read_report_checked(path_, &loaded), ReportReadStatus::kOk);
  EXPECT_EQ(loaded.shard_index, 2);
  EXPECT_EQ(loaded.shard_total, 4);
  EXPECT_TRUE(loaded.merged);

  // An unstamped (pre-sharding / single-process) report parses with the
  // single-shard defaults.
  write_report(make_report(), path_);
  SweepReport plain;
  ASSERT_EQ(read_report_checked(path_, &plain), ReportReadStatus::kOk);
  EXPECT_EQ(plain.shard_index, 0);
  EXPECT_EQ(plain.shard_total, 1);
  EXPECT_FALSE(plain.merged);
}

TEST_F(ReportIoTest, MissingFileIsMissingNotCorrupt) {
  SweepReport out;
  EXPECT_EQ(read_report_checked(path_, &out), ReportReadStatus::kMissing);
  EXPECT_FALSE(read_report(path_, &out));
}

TEST_F(ReportIoTest, TruncatedReportIsCorrupt) {
  write_report(make_report(), path_);
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 20u);
  // Simulate a crash mid-write: keep only the first half of the file.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  SweepReport out;
  EXPECT_EQ(read_report_checked(path_, &out), ReportReadStatus::kCorrupt);
  EXPECT_FALSE(read_report(path_, &out));
}

TEST_F(ReportIoTest, ForeignFileIsCorrupt) {
  {
    std::ofstream out(path_);
    out << "{\"something\": \"else entirely\"}\n";
  }
  SweepReport out;
  EXPECT_EQ(read_report_checked(path_, &out), ReportReadStatus::kCorrupt);
}

TEST_F(ReportIoTest, MangledCaseLineIsCorrupt) {
  write_report(make_report(), path_);
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // Damage the case line's id key so parse_case fails, keeping the
  // header and trailer intact.
  const std::string::size_type pos = bytes.find("\"id\"");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 4, "\"xx\"");
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  SweepReport out;
  EXPECT_EQ(read_report_checked(path_, &out), ReportReadStatus::kCorrupt);
}

}  // namespace
}  // namespace cgc::sweep
