// Tests for the discrete-event cluster simulator: scheduling, state
// machine, preemption, fates, resubmission, and capacity invariants.
#include <gtest/gtest.h>

#include "sim/cluster_sim.hpp"
#include "trace/validate.hpp"
#include "util/check.hpp"

namespace cgc::sim {
namespace {

using trace::Machine;
using trace::TaskEventType;

std::vector<Machine> one_machine(float cpu = 1.0f, float mem = 1.0f) {
  Machine m;
  m.machine_id = 1;
  m.cpu_capacity = cpu;
  m.mem_capacity = mem;
  return {m};
}

SimConfig quiet_config(util::TimeSec horizon) {
  SimConfig config;
  config.horizon = horizon;
  config.cpu_usage_jitter = 0.0;
  config.mem_usage_jitter = 0.0;
  config.machine_cpu_jitter = 0.0;
  config.machine_mem_jitter = 0.0;
  return config;
}

TaskSpec simple_task(std::int64_t job_id, util::TimeSec submit,
                     util::TimeSec duration) {
  TaskSpec spec;
  spec.job_id = job_id;
  spec.task_index = 0;
  spec.priority = 3;
  spec.submit_time = submit;
  spec.duration = duration;
  spec.cpu_request = 0.2f;
  spec.mem_request = 0.2f;
  spec.cpu_usage_ratio = 0.5f;
  spec.mem_usage_ratio = 0.8f;
  return spec;
}

TEST(ClusterSim, SingleTaskLifecycle) {
  ClusterSim sim(one_machine(), quiet_config(3600));
  const trace::TraceSet out = sim.run({simple_task(1, 100, 600)});

  EXPECT_EQ(sim.stats().submitted, 1);
  EXPECT_EQ(sim.stats().scheduled, 1);
  EXPECT_EQ(sim.stats().finished, 1);

  ASSERT_EQ(out.tasks().size(), 1u);
  const trace::Task& t = out.tasks()[0];
  EXPECT_EQ(t.submit_time, 100);
  EXPECT_EQ(t.schedule_time, 100);  // empty cluster: immediate placement
  EXPECT_EQ(t.end_time, 700);
  EXPECT_EQ(t.end_event, TaskEventType::kFinish);
  EXPECT_EQ(t.machine_id, 1);  // remembers where it ran

  // Event stream: SUBMIT, SCHEDULE, FINISH in order.
  ASSERT_EQ(out.events().size(), 3u);
  EXPECT_EQ(out.events()[0].type, TaskEventType::kSubmit);
  EXPECT_EQ(out.events()[1].type, TaskEventType::kSchedule);
  EXPECT_EQ(out.events()[2].type, TaskEventType::kFinish);
}

TEST(ClusterSim, ProducesValidTrace) {
  std::vector<Machine> machines = one_machine(0.5f, 0.5f);
  Machine m2;
  m2.machine_id = 2;
  m2.cpu_capacity = 0.25f;
  m2.mem_capacity = 0.75f;
  machines.push_back(m2);

  Workload workload;
  for (int i = 0; i < 50; ++i) {
    TaskSpec spec = simple_task(i + 1, i * 60, 500 + i * 10);
    spec.cpu_request = 0.05f;
    spec.mem_request = 0.04f;
    spec.priority = static_cast<std::uint8_t>(1 + i % 12);
    workload.push_back(spec);
  }
  ClusterSim sim(machines, quiet_config(2 * util::kSecondsPerHour));
  const trace::TraceSet out = sim.run(workload);
  trace::validate_or_throw(out);
  EXPECT_EQ(sim.stats().submitted, 50);
}

TEST(ClusterSim, HostLoadReflectsRunningTask) {
  SimConfig config = quiet_config(3600);
  ClusterSim sim(one_machine(), config);
  TaskSpec spec = simple_task(1, 0, 1500);
  spec.priority = 10;  // high band
  const trace::TraceSet out = sim.run({spec});
  const trace::HostLoadSeries* h = out.host_load_for(1);
  ASSERT_NE(h, nullptr);
  // Samples at t=0..1200 should show the task: usage = request * ratio.
  EXPECT_NEAR(h->cpu(trace::PriorityBand::kHigh, 2), 0.2f * 0.5f, 1e-5);
  EXPECT_NEAR(h->mem(trace::PriorityBand::kHigh, 2), 0.2f * 0.8f, 1e-5);
  EXPECT_NEAR(h->mem_assigned(2), 0.2f, 1e-5);
  EXPECT_EQ(h->running(2), 1);
  // After completion (t=1500) the machine is empty.
  EXPECT_EQ(h->running(6), 0);
  EXPECT_NEAR(h->cpu_total(6), 0.0f, 1e-6);
}

TEST(ClusterSim, CapacityGatesConcurrency) {
  // Machine fits exactly 2 tasks by memory admission (0.92 * 1.0 / 0.4).
  SimConfig config = quiet_config(7200);
  ClusterSim sim(one_machine(), config);
  Workload workload;
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec = simple_task(i + 1, 0, 600);
    spec.mem_request = 0.4f;
    spec.cpu_request = 0.1f;
    workload.push_back(spec);
  }
  const trace::TraceSet out = sim.run(workload);
  const trace::HostLoadSeries* h = out.host_load_for(1);
  ASSERT_NE(h, nullptr);
  // First sample at t=0 is taken before the arrivals at t=0 process, so
  // look at t=300: two running, one pending.
  EXPECT_EQ(h->running(1), 2);
  EXPECT_EQ(h->pending(1), 1);
  // All three eventually finish (the third after a slot frees).
  EXPECT_EQ(sim.stats().finished, 3);
}

TEST(ClusterSim, FcfsWithinPriority) {
  // Two equal-priority tasks contend for one slot: the earlier submitted
  // runs first.
  SimConfig config = quiet_config(7200);
  ClusterSim sim(one_machine(), config);
  TaskSpec first = simple_task(1, 0, 900);
  first.mem_request = 0.6f;
  TaskSpec second = simple_task(2, 60, 900);
  second.mem_request = 0.6f;
  const trace::TraceSet out = sim.run({second, first});
  const auto t1 = out.tasks_for_job(1);
  const auto t2 = out.tasks_for_job(2);
  ASSERT_EQ(t1.size(), 1u);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t1[0].schedule_time, 0);
  EXPECT_EQ(t2[0].schedule_time, 900);  // waits for the first to finish
}

TEST(ClusterSim, HigherPriorityPreempts) {
  SimConfig config = quiet_config(7200);
  config.preemption = true;
  ClusterSim sim(one_machine(), config);
  TaskSpec low = simple_task(1, 0, 3000);
  low.priority = 1;
  low.mem_request = 0.7f;
  TaskSpec high = simple_task(2, 600, 300);
  high.priority = 11;
  high.mem_request = 0.7f;
  const trace::TraceSet out = sim.run({low, high});

  EXPECT_EQ(sim.stats().evicted, 1);
  // The low task was evicted at t=600 and later resubmitted.
  bool saw_evict = false;
  for (const trace::TaskEvent& e : out.events()) {
    if (e.type == TaskEventType::kEvict) {
      EXPECT_EQ(e.job_id, 1);
      EXPECT_EQ(e.time, 600);
      saw_evict = true;
    }
  }
  EXPECT_TRUE(saw_evict);
  // The high-priority task runs immediately at 600.
  EXPECT_EQ(out.tasks_for_job(2)[0].schedule_time, 600);
  // The evicted task resumes and still finishes within the horizon.
  EXPECT_EQ(sim.stats().finished, 2);
}

TEST(ClusterSim, NoPreemptionWhenDisabled) {
  SimConfig config = quiet_config(7200);
  config.preemption = false;
  ClusterSim sim(one_machine(), config);
  TaskSpec low = simple_task(1, 0, 3000);
  low.priority = 1;
  low.mem_request = 0.7f;
  TaskSpec high = simple_task(2, 600, 300);
  high.priority = 11;
  high.mem_request = 0.7f;
  sim.run({low, high});
  EXPECT_EQ(sim.stats().evicted, 0);
}

TEST(ClusterSim, EqualPriorityDoesNotPreempt) {
  SimConfig config = quiet_config(7200);
  ClusterSim sim(one_machine(), config);
  TaskSpec a = simple_task(1, 0, 3000);
  a.mem_request = 0.7f;
  TaskSpec b = simple_task(2, 600, 300);
  b.mem_request = 0.7f;  // same priority as a
  sim.run({a, b});
  EXPECT_EQ(sim.stats().evicted, 0);
}

TEST(ClusterSim, FailFateRetriesThenFinishes) {
  SimConfig config = quiet_config(2 * util::kSecondsPerHour);
  ClusterSim sim(one_machine(), config);
  TaskSpec spec = simple_task(1, 0, 1000);
  spec.fate = TaskEventType::kFail;
  spec.abnormal_after = 200;
  spec.max_resubmits = 2;
  spec.resubmit_on_abnormal = true;
  const trace::TraceSet out = sim.run({spec});
  EXPECT_EQ(sim.stats().failed, 2);
  EXPECT_EQ(sim.stats().finished, 1);
  EXPECT_EQ(sim.stats().resubmits, 2);
  ASSERT_EQ(out.tasks().size(), 1u);
  EXPECT_EQ(out.tasks()[0].end_event, TaskEventType::kFinish);
  EXPECT_EQ(out.tasks()[0].resubmits, 2);
}

TEST(ClusterSim, KillFateIsTerminal) {
  SimConfig config = quiet_config(7200);
  ClusterSim sim(one_machine(), config);
  TaskSpec spec = simple_task(1, 0, 1000);
  spec.fate = TaskEventType::kKill;
  spec.abnormal_after = 300;
  spec.resubmit_on_abnormal = false;
  const trace::TraceSet out = sim.run({spec});
  EXPECT_EQ(sim.stats().killed, 1);
  EXPECT_EQ(sim.stats().finished, 0);
  EXPECT_EQ(sim.stats().resubmits, 0);
  EXPECT_EQ(out.tasks()[0].end_event, TaskEventType::kKill);
  EXPECT_EQ(out.tasks()[0].end_time, 300);
}

TEST(ClusterSim, LostFateIsTerminal) {
  SimConfig config = quiet_config(7200);
  ClusterSim sim(one_machine(), config);
  TaskSpec spec = simple_task(1, 0, 1000);
  spec.fate = TaskEventType::kLost;
  spec.abnormal_after = 100;
  spec.resubmit_on_abnormal = false;
  sim.run({spec});
  EXPECT_EQ(sim.stats().lost, 1);
  EXPECT_EQ(sim.stats().finished, 0);
}

TEST(ClusterSim, TasksPastHorizonStayOpen) {
  SimConfig config = quiet_config(1000);
  ClusterSim sim(one_machine(), config);
  const trace::TraceSet out = sim.run({simple_task(1, 0, 50000)});
  ASSERT_EQ(out.tasks().size(), 1u);
  EXPECT_EQ(out.tasks()[0].end_time, -1);
  EXPECT_EQ(sim.stats().running_at_horizon, 1);
  EXPECT_EQ(sim.stats().finished, 0);
}

TEST(ClusterSim, SamplesCoverHorizon) {
  SimConfig config = quiet_config(3600);
  config.sample_period = 300;
  ClusterSim sim(one_machine(), config);
  const trace::TraceSet out = sim.run({});
  const trace::HostLoadSeries* h = out.host_load_for(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->size(), 12u);  // 3600 / 300
  EXPECT_EQ(h->time_at(0), 0);
  EXPECT_EQ(h->time_at(11), 3300);
}

TEST(ClusterSim, RunIsSingleShot) {
  ClusterSim sim(one_machine(), quiet_config(100));
  sim.run({});
  EXPECT_THROW(sim.run({}), util::Error);
}

TEST(ClusterSim, RejectsBadSpecs) {
  {
    ClusterSim sim(one_machine(), quiet_config(100));
    TaskSpec spec = simple_task(1, 0, 0);  // zero duration
    EXPECT_THROW(sim.run({spec}), util::Error);
  }
  {
    ClusterSim sim(one_machine(), quiet_config(100));
    TaskSpec spec = simple_task(1, 0, 10);
    spec.priority = 13;
    EXPECT_THROW(sim.run({spec}), util::Error);
  }
  EXPECT_THROW(ClusterSim({}, quiet_config(100)), util::Error);
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  Workload workload;
  for (int i = 0; i < 20; ++i) {
    TaskSpec spec = simple_task(i + 1, i * 100, 400);
    spec.cpu_request = 0.1f;
    spec.mem_request = 0.1f;
    workload.push_back(spec);
  }
  SimConfig config;
  config.horizon = 7200;
  config.seed = 99;
  ClusterSim sim1(one_machine(), config);
  ClusterSim sim2(one_machine(), config);
  const trace::TraceSet out1 = sim1.run(workload);
  const trace::TraceSet out2 = sim2.run(workload);
  ASSERT_EQ(out1.events().size(), out2.events().size());
  const trace::HostLoadSeries* h1 = out1.host_load_for(1);
  const trace::HostLoadSeries* h2 = out2.host_load_for(1);
  ASSERT_EQ(h1->size(), h2->size());
  for (std::size_t i = 0; i < h1->size(); ++i) {
    EXPECT_FLOAT_EQ(h1->cpu_total(i), h2->cpu_total(i));
  }
}

/// Placement policy sweep: each policy schedules everything on an
/// underloaded cluster and respects capacity on an overloaded one.
class PlacementPolicyTest
    : public ::testing::TestWithParam<PlacementPolicy> {};

TEST_P(PlacementPolicyTest, SchedulesAllAndStaysValid) {
  std::vector<Machine> machines;
  for (int i = 0; i < 4; ++i) {
    Machine m;
    m.machine_id = i + 1;
    m.cpu_capacity = i % 2 == 0 ? 0.5f : 1.0f;
    m.mem_capacity = 0.5f;
    machines.push_back(m);
  }
  SimConfig config = quiet_config(4 * util::kSecondsPerHour);
  config.placement = GetParam();
  Workload workload;
  for (int i = 0; i < 60; ++i) {
    TaskSpec spec = simple_task(i + 1, i * 30, 900);
    spec.cpu_request = 0.08f;
    spec.mem_request = 0.05f;
    workload.push_back(spec);
  }
  ClusterSim sim(machines, config);
  const trace::TraceSet out = sim.run(workload);
  EXPECT_EQ(sim.stats().scheduled, 60);
  EXPECT_EQ(sim.stats().finished, 60);
  trace::validate_or_throw(out);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementPolicyTest,
    ::testing::Values(PlacementPolicy::kBalanced, PlacementPolicy::kBestFit,
                      PlacementPolicy::kWorstFit, PlacementPolicy::kFirstFit,
                      PlacementPolicy::kRandom),
    [](const auto& info) {
      std::string name(placement_name(info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(ClusterSim, PlacementConstraintsAreRespected) {
  std::vector<Machine> machines;
  for (int i = 0; i < 2; ++i) {
    Machine m;
    m.machine_id = i + 1;
    m.attributes = i == 0 ? trace::kAttrLocalSsd : 0;
    machines.push_back(m);
  }
  SimConfig config = quiet_config(3600);
  config.placement = PlacementPolicy::kWorstFit;  // would prefer spreading
  ClusterSim sim(machines, config);
  Workload workload;
  for (int i = 0; i < 2; ++i) {
    TaskSpec spec = simple_task(i + 1, 0, 1000);
    spec.required_attributes = trace::kAttrLocalSsd;
    workload.push_back(spec);
  }
  const trace::TraceSet out = sim.run(workload);
  // Both tasks must land on machine 1 despite the spreading policy.
  for (const trace::Task& t : out.tasks()) {
    EXPECT_EQ(t.machine_id, 1);
  }
}

TEST(ClusterSim, UnsatisfiableConstraintNeverSchedules) {
  ClusterSim sim(one_machine(), quiet_config(3600));  // no attributes
  TaskSpec spec = simple_task(1, 0, 100);
  spec.required_attributes = trace::kAttrExternalIp;
  const trace::TraceSet out = sim.run({spec});
  EXPECT_EQ(sim.stats().scheduled, 0);
  EXPECT_EQ(sim.stats().never_scheduled, 1);
  ASSERT_EQ(out.tasks().size(), 1u);
  EXPECT_EQ(out.tasks()[0].schedule_time, -1);
}

TEST(ClusterSim, ConstraintBlocksPreemptionToo) {
  // A high-priority constrained task must not evict tasks from a
  // machine that cannot satisfy its constraint.
  SimConfig config = quiet_config(3600);
  ClusterSim sim(one_machine(), config);
  TaskSpec low = simple_task(1, 0, 2000);
  low.priority = 1;
  low.mem_request = 0.7f;
  TaskSpec high = simple_task(2, 300, 200);
  high.priority = 12;
  high.mem_request = 0.7f;
  high.required_attributes = trace::kAttrHighMemNode;
  sim.run({low, high});
  EXPECT_EQ(sim.stats().evicted, 0);
}

TEST(ClusterSim, BalancedSpreadsAndFirstFitPacks) {
  std::vector<Machine> machines;
  for (int i = 0; i < 2; ++i) {
    Machine m;
    m.machine_id = i + 1;
    m.cpu_capacity = 1.0f;
    m.mem_capacity = 1.0f;
    machines.push_back(m);
  }
  Workload workload;
  for (int i = 0; i < 2; ++i) {
    TaskSpec spec = simple_task(i + 1, 0, 2000);
    spec.cpu_request = 0.2f;
    spec.mem_request = 0.2f;
    workload.push_back(spec);
  }
  SimConfig balanced = quiet_config(3600);
  balanced.placement = PlacementPolicy::kBalanced;
  ClusterSim sim_b(machines, balanced);
  const trace::TraceSet out_b = sim_b.run(workload);
  // Balanced: one task per machine.
  EXPECT_EQ(out_b.host_load_for(1)->running(2), 1);
  EXPECT_EQ(out_b.host_load_for(2)->running(2), 1);

  SimConfig first = quiet_config(3600);
  first.placement = PlacementPolicy::kFirstFit;
  ClusterSim sim_f(machines, first);
  const trace::TraceSet out_f = sim_f.run(workload);
  // First-fit: both on machine 1.
  EXPECT_EQ(out_f.host_load_for(1)->running(2), 2);
  EXPECT_EQ(out_f.host_load_for(2)->running(2), 0);
}

}  // namespace
}  // namespace cgc::sim
