// cgc::obs tests: the disarmed-overhead contract (no registry or span
// buffer traffic without arming), metric semantics, deterministic
// count-type metrics across pool sizes, and span nesting in the
// Chrome trace export.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { configure(false, false); }
  void TearDown() override { configure(false, false); }
};

// Must run first in this binary: proves that instrumented code paths
// executed while disarmed never touch the metric registry or the span
// buffers — the disarmed cost is the flag load alone.
TEST_F(ObsTest, DisarmedInstrumentationRegistersNothing) {
  ASSERT_FALSE(enabled());
  std::atomic<std::uint64_t> sink{0};
  exec::parallel_for(0, 50000, [&sink](std::size_t i) {
    sink.fetch_add(i % 7, std::memory_order_relaxed);
  });
  {
    Span span("disarmed.span");
    ScopedTimer timer("disarmed.timer");
  }
  EXPECT_EQ(num_sites(), 0u);
  EXPECT_EQ(span_count(), 0u);
  EXPECT_GT(sink.load(), 0u);
}

TEST_F(ObsTest, CounterAddsAndResets) {
  configure(true, false);
  Counter& c = counter("obs_test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Identity is stable: the same name resolves to the same object.
  EXPECT_EQ(&c, &counter("obs_test.counter"));
  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, LookupAsDifferentKindThrows) {
  configure(true, false);
  counter("obs_test.kind_conflict");
  EXPECT_THROW(gauge("obs_test.kind_conflict"), util::Error);
  EXPECT_THROW(histogram("obs_test.kind_conflict"), util::Error);
}

TEST_F(ObsTest, GaugeTracksLevelAndHighWater) {
  configure(true, false);
  Gauge& g = gauge("obs_test.gauge");
  g.add(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max(), 5);
  g.add(-3);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 5);
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  EXPECT_EQ(g.max(), 10);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST_F(ObsTest, HistogramStatsAndLog2Percentile) {
  configure(true, false);
  Histogram& h = histogram("obs_test.histogram");
  EXPECT_EQ(h.min(), 0u);  // empty
  for (std::uint64_t v = 1; v <= 8; ++v) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 36u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  // Values 1..8 bucket as bit_width: {1}, {2,3}, {4..7}, {8}. The
  // median lands in the [4,8) bucket, whose upper bound is 7.
  EXPECT_EQ(h.approx_percentile(0.5), 7u);
  EXPECT_LE(h.approx_percentile(0.0), 1u);
  EXPECT_GE(h.approx_percentile(1.0), 8u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST_F(ObsTest, CountMetricsDeterministicAcrossPoolSizes) {
  configure(true, false);
  Counter& chunks = counter("exec.chunks");
  Counter& regions = counter("exec.regions");
  std::atomic<std::uint64_t> sink{0};
  const auto run_with_workers = [&](std::size_t workers) {
    util::ThreadPool pool(workers);
    exec::ScopedPool scoped(&pool);
    const std::uint64_t chunks_before = chunks.value();
    const std::uint64_t regions_before = regions.value();
    exec::parallel_for(0, 50000, [&sink](std::size_t i) {
      sink.fetch_add(i % 3, std::memory_order_relaxed);
    });
    return std::pair(chunks.value() - chunks_before,
                     regions.value() - regions_before);
  };
  const auto [chunks_1, regions_1] = run_with_workers(1);
  const auto [chunks_8, regions_8] = run_with_workers(8);
  EXPECT_GT(chunks_1, 0u);
  EXPECT_EQ(chunks_1, chunks_8);
  EXPECT_EQ(regions_1, 1u);
  EXPECT_EQ(regions_8, 1u);
}

TEST_F(ObsTest, SpanNestingExportsAsChromeTraceEvents) {
  configure(false, true);
  const std::size_t before = span_count();
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  EXPECT_EQ(span_count(), before + 2);

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Export is non-draining: a second export sees the same spans.
  EXPECT_EQ(span_count(), before + 2);
}

TEST_F(ObsTest, ScopedTimerFeedsHistogramAndSpan) {
  configure(true, true);
  const std::size_t spans_before = span_count();
  { ScopedTimer timer("obs_test.timer"); }
  Histogram& h = histogram("obs_test.timer");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(span_count(), spans_before + 1);
}

TEST_F(ObsTest, MetricsJsonListsAllThreeKinds) {
  configure(true, false);
  counter("obs_test.json_counter").add(7);
  gauge("obs_test.json_gauge").set(3);
  histogram("obs_test.json_histogram").observe(100);
  std::ostringstream out;
  write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

}  // namespace
}  // namespace cgc::obs
