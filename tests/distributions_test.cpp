// Tests for the parametric distribution samplers: sampled means match
// analytic means, supports are respected.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

double sample_mean(const Distribution& d, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += d.sample(rng);
  }
  return total / static_cast<double>(n);
}

/// Property sweep: every distribution's sample mean converges to its
/// analytic mean() within a relative tolerance.
struct MeanCase {
  const char* name;
  DistributionPtr dist;
  double rel_tol;
};

class MeanMatchesAnalytic : public ::testing::TestWithParam<MeanCase> {};

TEST_P(MeanMatchesAnalytic, SampleMeanConverges) {
  const MeanCase& c = GetParam();
  const double analytic = c.dist->mean();
  const double sampled = sample_mean(*c.dist, 200000, 424242);
  EXPECT_NEAR(sampled / analytic, 1.0, c.rel_tol) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, MeanMatchesAnalytic,
    ::testing::Values(
        MeanCase{"deterministic", std::make_shared<Deterministic>(7.0), 1e-12},
        MeanCase{"uniform", std::make_shared<Uniform>(2.0, 10.0), 0.01},
        MeanCase{"exponential", std::make_shared<Exponential>(42.0), 0.01},
        MeanCase{"pareto", std::make_shared<Pareto>(1.0, 3.0), 0.02},
        MeanCase{"bounded_pareto",
                 std::make_shared<BoundedPareto>(1.0, 1000.0, 1.5), 0.03},
        MeanCase{"bounded_pareto_alpha_lt1",
                 std::make_shared<BoundedPareto>(10.0, 1e5, 0.5), 0.05},
        MeanCase{"lognormal", std::make_shared<LogNormal>(100.0, 1.0), 0.02},
        MeanCase{"weibull", std::make_shared<Weibull>(5.0, 2.0), 0.01},
        MeanCase{"hyperexp",
                 std::make_shared<HyperExponential>(0.3, 1.0, 50.0), 0.03},
        MeanCase{"zipf", std::make_shared<Zipf>(100, 1.2), 0.02}),
    [](const auto& info) { return info.param.name; });

TEST(Deterministic, AlwaysSameValue) {
  util::Rng rng(1);
  const Deterministic d(3.25);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d.sample(rng), 3.25);
  }
}

TEST(Uniform, RespectssBounds) {
  util::Rng rng(2);
  const Uniform d(5.0, 6.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Pareto, RespectsLowerBound) {
  util::Rng rng(3);
  const Pareto d(2.0, 1.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(d.sample(rng), 2.0);
  }
}

TEST(Pareto, MeanUndefinedForSmallAlpha) {
  const Pareto d(1.0, 0.9);
  EXPECT_THROW(d.mean(), util::Error);
}

TEST(Pareto, TailIndexControlsExtremes) {
  util::Rng rng(4);
  const Pareto heavy(1.0, 0.8);
  const Pareto light(1.0, 3.0);
  double max_heavy = 0.0, max_light = 0.0;
  for (int i = 0; i < 20000; ++i) {
    max_heavy = std::max(max_heavy, heavy.sample(rng));
    max_light = std::max(max_light, light.sample(rng));
  }
  EXPECT_GT(max_heavy, 100.0 * max_light);
}

TEST(BoundedPareto, RespectsBothBounds) {
  util::Rng rng(5);
  const BoundedPareto d(3.0, 30.0, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 3.0);
    EXPECT_LE(v, 30.0);
  }
}

TEST(BoundedPareto, AlphaNearOneMeanIsFinite) {
  const BoundedPareto d(1.0, 100.0, 1.0);
  // Analytic limit at alpha=1: (ln H - ln L) * L * H / (H - L).
  EXPECT_NEAR(d.mean(), std::log(100.0) * 100.0 / 99.0, 1e-9);
}

TEST(LogNormal, MedianIsParameter) {
  util::Rng rng(6);
  const LogNormal d(50.0, 1.2);
  std::vector<double> v = sample_many(d, 40001, rng);
  std::nth_element(v.begin(), v.begin() + 20000, v.end());
  EXPECT_NEAR(v[20000] / 50.0, 1.0, 0.05);
}

TEST(LogNormal, ZeroSigmaIsDeterministic) {
  util::Rng rng(7);
  const LogNormal d(8.0, 0.0);
  EXPECT_DOUBLE_EQ(d.sample(rng), 8.0);
  EXPECT_DOUBLE_EQ(d.mean(), 8.0);
}

TEST(Mixture, WeightsControlComponents) {
  util::Rng rng(8);
  const Mixture mix({std::make_shared<Deterministic>(1.0),
                     std::make_shared<Deterministic>(100.0)},
                    {0.75, 0.25});
  EXPECT_DOUBLE_EQ(mix.mean(), 0.75 * 1.0 + 0.25 * 100.0);
  int low = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (mix.sample(rng) < 50.0) {
      ++low;
    }
  }
  EXPECT_NEAR(static_cast<double>(low) / kN, 0.75, 0.02);
}

TEST(Mixture, InvalidWeightsThrow) {
  EXPECT_THROW(Mixture({std::make_shared<Deterministic>(1.0)}, {-1.0}),
               util::Error);
  EXPECT_THROW(Mixture({std::make_shared<Deterministic>(1.0)}, {0.0}),
               util::Error);
  EXPECT_THROW(Mixture({}, {}), util::Error);
}

TEST(Zipf, SupportIsOneToN) {
  util::Rng rng(9);
  const Zipf d(10, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = d.sample(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 10.0);
    EXPECT_DOUBLE_EQ(v, std::floor(v));
  }
}

TEST(Zipf, RankOneIsMostFrequent) {
  util::Rng rng(10);
  const Zipf d(50, 1.5);
  std::array<int, 51> counts{};
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<std::size_t>(d.sample(rng))];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(HyperExponential, HighVarianceVsExponential) {
  util::Rng rng(11);
  const HyperExponential hyper(0.1, 100.0, 1.0);
  const Exponential expo(hyper.mean());
  // Same mean, but the hyperexponential has a far larger second moment.
  double sq_h = 0.0, sq_e = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double h = hyper.sample(rng);
    const double e = expo.sample(rng);
    sq_h += h * h;
    sq_e += e * e;
  }
  EXPECT_GT(sq_h, 2.0 * sq_e);
}

TEST(SampleMany, ReturnsRequestedCount) {
  util::Rng rng(12);
  const Exponential d(1.0);
  EXPECT_EQ(sample_many(d, 123, rng).size(), 123u);
}

}  // namespace
}  // namespace cgc::stats
