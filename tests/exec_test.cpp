// Tests for cgc::exec: deterministic chunk planning, coverage,
// reductions that are bit-identical at 1 vs N workers, nesting safety,
// ordered exception propagation, and the deterministic parallel sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "exec/parallel.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::exec {
namespace {

TEST(ChunkPlan, PartitionsExactlyAndIgnoresWorkerCount) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 1024ul, 5371ul, 100000ul}) {
    const ChunkPlan plan = plan_chunks(0, n);
    std::size_t covered = 0;
    std::size_t prev_hi = 0;
    for (std::size_t c = 0; c < plan.num_chunks; ++c) {
      const auto [lo, hi] = plan.bounds(c);
      ASSERT_LE(lo, hi);
      EXPECT_EQ(lo, prev_hi) << "chunks must tile the range";
      covered += hi - lo;
      prev_hi = hi;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ChunkPlan, IsPureFunctionOfRangeAndGrain) {
  const ChunkPlan a = plan_chunks(10, 90010, 64);
  // Same plan under a different pool: boundaries must not move.
  util::ThreadPool one(1);
  ScopedPool scoped(&one);
  const ChunkPlan b = plan_chunks(10, 90010, 64);
  EXPECT_EQ(a.num_chunks, b.num_chunks);
  EXPECT_EQ(a.chunk_size, b.chunk_size);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  constexpr std::size_t kN = 5371;  // deliberately not a round number
  std::atomic<std::size_t> total{0};
  parallel_for_chunked(0, kN, [&total](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), kN);
}

TEST(ParallelReduce, MatchesOrderedSerialFold) {
  std::mt19937_64 rng(12345);
  std::vector<double> values(50000);
  for (double& v : values) {
    v = std::uniform_real_distribution<double>(-1.0, 1.0)(rng);
  }
  // Serial reference: fold the chunk partials in chunk order.
  const ChunkPlan plan = plan_chunks(0, values.size());
  double serial = 0.0;
  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    const auto [lo, hi] = plan.bounds(c);
    double part = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      part += values[i];
    }
    serial += part;
  }
  const double parallel = parallel_reduce(
      0, values.size(), 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += values[i];
        }
        return s;
      },
      [](double& acc, double part) { acc += part; });
  // Bit-identical, not just approximately equal.
  EXPECT_EQ(parallel, serial);
}

TEST(ParallelReduce, BitIdenticalAtOneVersusManyWorkers) {
  std::mt19937_64 rng(999);
  std::vector<double> values(80000);
  for (double& v : values) {
    v = std::uniform_real_distribution<double>(0.0, 1e6)(rng);
  }
  const auto run = [&values] {
    return parallel_reduce(
        0, values.size(), 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += values[i];
          }
          return s;
        },
        [](double& acc, double part) { acc += part; });
  };
  util::ThreadPool one(1);
  util::ThreadPool many(8);
  double serial_result = 0.0;
  double parallel_result = 0.0;
  {
    ScopedPool scoped(&one);
    serial_result = run();
  }
  {
    ScopedPool scoped(&many);
    parallel_result = run();
  }
  EXPECT_EQ(serial_result, parallel_result);
}

TEST(ParallelReduce, VectorConcatenationPreservesIndexOrder) {
  constexpr std::size_t kN = 30000;
  const std::vector<std::size_t> indices = parallel_reduce(
      0, kN, std::vector<std::size_t>{},
      [](std::size_t lo, std::size_t hi) {
        std::vector<std::size_t> local;
        local.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          local.push_back(i);
        }
        return local;
      },
      [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      });
  ASSERT_EQ(indices.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(indices[i], i);
  }
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  const std::vector<std::size_t> squares =
      parallel_map<std::size_t>(5000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 5000u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    ASSERT_EQ(squares[i], i * i);
  }
}

TEST(ParallelFor, ExceptionFromIterationIsRethrown) {
  EXPECT_THROW(parallel_for(0, 100000,
                            [](std::size_t i) {
                              if (i == 42421) {
                                throw util::Error("iteration failure");
                              }
                            }),
               util::Error);
}

TEST(ParallelFor, LowestChunkExceptionWins) {
  // Several chunks throw; the rethrown error must be the one from the
  // lowest-indexed chunk regardless of scheduling.
  const ChunkPlan plan = plan_chunks(0, 100000);
  ASSERT_GT(plan.num_chunks, 2u);
  try {
    parallel_for_chunked(0, 100000, [](std::size_t lo, std::size_t) {
      throw util::Error("chunk@" + std::to_string(lo));
    });
    FAIL() << "expected throw";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk@0"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(ParallelFor, NestedUseDoesNotDeadlock) {
  // Analyzers call exec helpers from within parallel regions (e.g.
  // autocorrelation inside a per-host scan). Force heavy nesting on a
  // tiny pool: every level must make progress via caller participation.
  util::ThreadPool tiny(2);
  ScopedPool scoped(&tiny);
  std::atomic<int> count{0};
  parallel_for(
      0, 16,
      [&count](std::size_t) {
        parallel_for(
            0, 8, [&count](std::size_t) { ++count; }, /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(count.load(), 16 * 8);
}

TEST(ParallelSort, SortsLikeSerialSort) {
  std::mt19937_64 rng(777);
  std::vector<double> values(200000);
  for (double& v : values) {
    v = std::uniform_real_distribution<double>(-1e9, 1e9)(rng);
  }
  std::vector<double> expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_sort(&values);
  EXPECT_EQ(values, expected);
}

TEST(ParallelSort, IdenticalAtOneVersusManyWorkers) {
  std::mt19937_64 rng(31337);
  std::vector<std::int64_t> values(150000);
  for (std::int64_t& v : values) {
    // Narrow key space so ties are common: exercises merge stability.
    v = std::uniform_int_distribution<std::int64_t>(0, 99)(rng);
  }
  std::vector<std::int64_t> a = values;
  std::vector<std::int64_t> b = values;
  util::ThreadPool one(1);
  util::ThreadPool many(8);
  {
    ScopedPool scoped(&one);
    parallel_sort(&a);
  }
  {
    ScopedPool scoped(&many);
    parallel_sort(&b);
  }
  EXPECT_EQ(a, b);
}

TEST(NumWorkers, AtLeastOne) { EXPECT_GE(num_workers(), 1u); }

}  // namespace
}  // namespace cgc::exec
