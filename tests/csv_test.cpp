// Unit tests for the CSV reader/writer and field parsers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace cgc::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST(SplitFields, BasicSplit) {
  std::vector<std::string_view> fields;
  split_fields("a,b,c", ',', &fields);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitFields, EmptyFieldsPreserved) {
  std::vector<std::string_view> fields;
  split_fields(",x,,", ',', &fields);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitFields, SingleField) {
  std::vector<std::string_view> fields;
  split_fields("lonely", ',', &fields);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "lonely");
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_THROW(parse_int("4x2"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("3.5"), Error);
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double(""), Error);
}

TEST(ParseOptionalDouble, EmptyIsNullopt) {
  EXPECT_FALSE(parse_optional_double("").has_value());
  EXPECT_DOUBLE_EQ(parse_optional_double("2.5").value(), 2.5);
}

TEST_F(CsvTest, WriterReaderRoundTrip) {
  const std::string p = path("round.csv");
  {
    CsvWriter writer(p);
    writer.write_line("# header comment");
    writer.write_record({"1", "2.5", "hello"});
    writer.write_record({"4", "", "world"});
  }
  CsvReader reader(p);
  ASSERT_TRUE(reader.next_record());
  ASSERT_EQ(reader.fields().size(), 3u);
  EXPECT_EQ(parse_int(reader.fields()[0]), 1);
  EXPECT_DOUBLE_EQ(parse_double(reader.fields()[1]), 2.5);
  EXPECT_EQ(reader.fields()[2], "hello");
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.fields()[1], "");
  EXPECT_FALSE(reader.next_record());
}

TEST_F(CsvTest, SkipsCommentsAndBlankLines) {
  const std::string p = path("comments.csv");
  {
    std::ofstream out(p);
    out << "# comment\n\n; swf-style comment\n1,2\n";
  }
  CsvReader reader(p);
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.fields().size(), 2u);
  EXPECT_FALSE(reader.next_record());
}

TEST_F(CsvTest, HandlesCrLf) {
  const std::string p = path("crlf.csv");
  {
    std::ofstream out(p, std::ios::binary);
    out << "a,b\r\nc,d\r\n";
  }
  CsvReader reader(p);
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.fields()[1], "b");
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.fields()[1], "d");
}

TEST_F(CsvTest, MissingFileThrows) {
  EXPECT_THROW(CsvReader(path("does_not_exist.csv")), Error);
}

TEST_F(CsvTest, LineNumbersTrackRecords) {
  const std::string p = path("lines.csv");
  {
    std::ofstream out(p);
    out << "# one\nx\ny\n";
  }
  CsvReader reader(p);
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.line_number(), 2u);
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.line_number(), 3u);
}

TEST(ThrowParseError, IncludesPathAndLine) {
  try {
    throw_parse_error("trace.csv", 42, "bad integer field: 'x'");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()),
              "trace.csv:42: bad integer field: 'x'");
  }
}

TEST_F(CsvTest, NoTrailingNewlineStillParsesLastRecord) {
  const std::string p = path("notrail.csv");
  {
    std::ofstream out(p, std::ios::binary);
    out << "1,2\n3,4";  // final record lacks '\n'
  }
  CsvReader reader(p);
  ASSERT_TRUE(reader.next_record());
  ASSERT_TRUE(reader.next_record());
  EXPECT_EQ(reader.fields()[1], "4");
  EXPECT_FALSE(reader.next_record());
}

TEST(FormatDouble, RoundTripsPrecision) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(1234567.0), "1234567");
  const double v = 0.1234567891;
  EXPECT_NEAR(parse_double(format_double(v)), v, 1e-12);
}

}  // namespace
}  // namespace cgc::util
