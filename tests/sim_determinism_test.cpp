// Tests for the paper-scale simulator core's structural guarantees:
// bit-identical output at any CGC_THREADS (the sharded-determinism
// contract), the calendar queue's (time, push-order) drain invariant,
// and generation-counter invalidation under eviction storms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/event_queue.hpp"
#include "trace/validate.hpp"
#include "util/thread_pool.hpp"

namespace cgc::sim {
namespace {

// ---------------------------------------------------------------------------
// Sharded bit-determinism
// ---------------------------------------------------------------------------

/// A mid-scale contended workload with every stochastic path exercised:
/// full jitter, preemption (mixed priorities over committed memory),
/// fail fates with retries, and placement constraints.
Workload contended_workload() {
  Workload workload;
  std::int64_t job = 1;
  for (int i = 0; i < 4000; ++i) {
    TaskSpec spec;
    spec.job_id = job + i / 4;  // multi-task jobs
    spec.task_index = i % 4;
    spec.priority = static_cast<std::uint8_t>(1 + (i * 7) % 12);
    spec.submit_time = (i % 977) * 80;
    spec.duration = 400 + (i % 13) * 700;
    spec.cpu_request = 0.04f + 0.01f * static_cast<float>(i % 5);
    spec.mem_request = 0.05f + 0.01f * static_cast<float>(i % 7);
    if (i % 11 == 0) {
      spec.fate = trace::TaskEventType::kFail;
      spec.abnormal_after = 150;
      spec.max_resubmits = 2;
    }
    if (i % 17 == 0) {
      spec.required_attributes = trace::kAttrLocalSsd;
    }
    workload.push_back(spec);
  }
  return workload;
}

std::vector<trace::Machine> contended_park() {
  std::vector<trace::Machine> machines;
  for (int i = 0; i < 48; ++i) {
    trace::Machine m;
    m.machine_id = i + 1;
    m.cpu_capacity = i % 3 == 0 ? 0.5f : 1.0f;
    m.mem_capacity = i % 4 == 0 ? 0.5f : 1.0f;
    m.attributes = i % 5 == 0 ? trace::kAttrLocalSsd : 0;
    machines.push_back(m);
  }
  return machines;
}

std::uint64_t digest_at_threads(std::size_t threads) {
  util::ThreadPool pool(threads);
  exec::ScopedPool scoped(&pool);
  SimConfig config;
  config.horizon = util::kSecondsPerDay;
  ClusterSim sim(contended_park(), config);
  const trace::TraceSet out = sim.run(contended_workload());
  EXPECT_GT(sim.stats().evicted, 0) << "workload must exercise preemption";
  EXPECT_GT(sim.stats().failed, 0) << "workload must exercise fail fates";
  return out.content_digest();
}

TEST(SimDeterminism, BitIdenticalAcrossThreadCounts) {
  const std::uint64_t d1 = digest_at_threads(1);
  const std::uint64_t d2 = digest_at_threads(2);
  const std::uint64_t d8 = digest_at_threads(8);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d8);
}

TEST(SimDeterminism, ProbedPlacementIsAlsoThreadInvariant) {
  // Force the probed-placement path (the large-cluster mode) at a small
  // scale and check the contract holds there too.
  auto run = [](std::size_t threads) {
    util::ThreadPool pool(threads);
    exec::ScopedPool scoped(&pool);
    SimConfig config;
    config.horizon = util::kSecondsPerDay;
    config.placement_probe_limit = 8;
    ClusterSim sim(contended_park(), config);
    const trace::TraceSet out = sim.run(contended_workload());
    return out.content_digest();
  };
  EXPECT_EQ(run(1), run(4));
}

// ---------------------------------------------------------------------------
// Calendar-queue ordering property
// ---------------------------------------------------------------------------

/// Reference model entry: the full (time, seq) key the seed heap used.
struct RefEvent {
  trace::TimeSec time;
  std::uint64_t seq;
  std::uint32_t task;
};

/// Property: draining the calendar queue while pushing new events
/// forward in time replays exactly the (time, push-seq) order of the
/// seed's heap — including ties within a second — across window
/// advances and far-bucket scatters.
TEST(CalendarQueue, DrainsInTimeThenSeqOrder) {
  CalendarQueue queue(/*origin=*/-500, /*span_hint=*/400000);
  std::vector<RefEvent> reference;
  std::uint64_t seq = 0;
  std::uint64_t rng = 12345;
  const auto next_rand = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  const auto push = [&](trace::TimeSec now) {
    // Mix of near pushes (same L0 window) and far pushes (minutes to
    // days ahead, crossing several 8192 s windows), some negative-time.
    const std::uint64_t r = next_rand();
    const trace::TimeSec delta =
        1 + static_cast<trace::TimeSec>(
                r % (r % 3 == 0 ? 250000 : (r % 2 == 0 ? 40 : 7000)));
    const trace::TimeSec t = now + delta;
    const auto task = static_cast<std::uint32_t>(seq);
    queue.push(t, EvKind::kSubmit, task, 0);
    reference.push_back(RefEvent{t, seq, task});
    ++seq;
  };

  for (int i = 0; i < 400; ++i) {
    push(-500);  // initial burst, heavy same-second ties
  }
  std::size_t drained = 0;
  while (!queue.empty()) {
    const trace::TimeSec t = queue.next_time();
    ASSERT_NE(t, CalendarQueue::kNoEvent);
    // The reference order: stable sort by time = (time, seq) order.
    std::stable_sort(reference.begin() + static_cast<std::ptrdiff_t>(drained),
                     reference.end(),
                     [](const RefEvent& a, const RefEvent& b) {
                       return a.time < b.time;
                     });
    const std::vector<QueuedEvent>& bucket = queue.bucket(t);
    ASSERT_FALSE(bucket.empty());
    for (const QueuedEvent& e : bucket) {
      ASSERT_LT(drained, reference.size());
      EXPECT_EQ(reference[drained].time, t);
      EXPECT_EQ(reference[drained].task, e.task);
      ++drained;
    }
    queue.finish_bucket(t);
    // Handlers push strictly forward while draining.
    while (drained < 7000 && next_rand() % 3 != 0) {
      push(t);
    }
  }
  EXPECT_EQ(drained, reference.size());
  EXPECT_GE(drained, 7000u);
}

TEST(CalendarQueue, BoundedScanDoesNotAdvancePastBound) {
  CalendarQueue queue(0, 100000);
  queue.push(50000, EvKind::kEnd, 7, 0);  // several windows ahead
  // An earlier external event (the workload cursor) exists at t=100:
  // the queue must report "nothing at or before 100" and stay put so a
  // handler at t=100 can still push into t=101.
  EXPECT_EQ(queue.next_time(/*bound=*/100), CalendarQueue::kNoEvent);
  queue.push(101, EvKind::kSubmit, 8, 0);
  EXPECT_EQ(queue.next_time(), 101);
  queue.finish_bucket(101);
  EXPECT_EQ(queue.next_time(), 50000);
}

// ---------------------------------------------------------------------------
// Eviction storms / generation invalidation
// ---------------------------------------------------------------------------

/// Saturates a small park with low-priority work, then slams it with
/// waves of high-priority tasks: every wave triggers mass eviction, and
/// every eviction leaves a stale end event whose generation must be
/// recognized as dead. Validates the whole output trace and the stats
/// identities that only hold if no stale event is ever double-applied.
TEST(SimStress, EvictionStormInvalidatesStaleEnds) {
  std::vector<trace::Machine> machines;
  for (int i = 0; i < 16; ++i) {
    trace::Machine m;
    m.machine_id = i + 1;
    machines.push_back(m);
  }
  Workload workload;
  for (int i = 0; i < 800; ++i) {  // filler: long-running best-effort
    TaskSpec spec;
    spec.job_id = 1 + i;
    spec.priority = 1 + i % 2;
    spec.submit_time = 0;
    spec.duration = 40000;
    spec.cpu_request = 0.01f;
    spec.mem_request = 0.018f;  // ~55 fit per machine by memory
    workload.push_back(spec);
  }
  for (int wave = 0; wave < 12; ++wave) {  // production waves
    for (int i = 0; i < 300; ++i) {
      TaskSpec spec;
      spec.job_id = 10000 + wave;
      spec.task_index = i;
      spec.priority = 11;
      spec.submit_time = 600 + wave * 1800;
      spec.duration = 900;
      spec.cpu_request = 0.02f;
      spec.mem_request = 0.04f;
      workload.push_back(spec);
    }
  }
  SimConfig config;
  config.horizon = util::kSecondsPerDay;
  config.isolation_eviction_probability = 0.6;  // amplify churn
  ClusterSim sim(machines, config);
  const trace::TraceSet out = sim.run(workload);
  trace::validate_or_throw(out);

  const SimStats& s = sim.stats();
  EXPECT_GT(s.evicted, 500) << "storm must actually evict at scale";
  EXPECT_EQ(s.submitted, 800 + 12 * 300);
  // Attempt conservation: every placement ends in exactly one terminal
  // event or is still running at the horizon. A stale end event that
  // slipped past its generation check would double-terminate an attempt
  // and break this identity.
  EXPECT_EQ(s.scheduled, s.terminal_events() + s.running_at_horizon);
  // Every eviction requeues: resubmits covers at least the evictions.
  EXPECT_GE(s.resubmits, s.evicted);
  // A stale end double-applied would end a task twice; conservation
  // above plus trace validation (legal state transitions per task)
  // catches both double-ends and lost tasks.
}

/// The sim.machine_outage fault site: deterministic whole-machine
/// failures at sample boundaries, same behaviour at any thread count.
TEST(SimStress, MachineOutageFaultSiteIsDeterministic) {
  const auto run = [](std::size_t threads) {
    util::ThreadPool pool(threads);
    exec::ScopedPool scoped(&pool);
    SimConfig config;
    config.horizon = util::kSecondsPerDay;
    ClusterSim sim(contended_park(), config);
    const trace::TraceSet out = sim.run(contended_workload());
    return std::pair<std::uint64_t, std::int64_t>(
        out.content_digest(), sim.stats().faults_injected);
  };
  fault::configure("sim.machine_outage:p=0.002,seed=7");
  const auto [d1, f1] = run(1);
  const auto [d4, f4] = run(4);
  fault::configure("");
  ASSERT_GT(f1, 0) << "outage site must fire for the test to mean anything";
  EXPECT_EQ(f1, f4);
  EXPECT_EQ(d1, d4);
}

/// The sim.task_lost fault site converts terminal events to LOST.
TEST(SimStress, TaskLostFaultSiteShapesTerminals) {
  SimConfig config;
  config.horizon = util::kSecondsPerDay;
  fault::configure("sim.task_lost:every=10");
  ClusterSim sim(contended_park(), config);
  const trace::TraceSet out = sim.run(contended_workload());
  fault::configure("");
  EXPECT_GT(sim.stats().lost, 0);
  EXPECT_EQ(sim.stats().faults_injected, sim.stats().lost);
  trace::validate_or_throw(out);
}

}  // namespace
}  // namespace cgc::sim
