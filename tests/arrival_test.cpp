// Tests for the arrival processes: rate calibration, fairness targeting,
// diurnal modulation, dips.
#include <gtest/gtest.h>

#include "gen/arrival.hpp"
#include "stats/fairness.hpp"
#include "util/check.hpp"

namespace cgc::gen {
namespace {

std::vector<double> hourly_counts(const std::vector<util::TimeSec>& times,
                                  std::size_t num_hours) {
  std::vector<double> counts(num_hours, 0.0);
  for (const util::TimeSec t : times) {
    counts[static_cast<std::size_t>(t / util::kSecondsPerHour)] += 1.0;
  }
  return counts;
}

TEST(Arrival, MeanRateIsCalibrated) {
  ArrivalModel model;
  model.mean_per_hour = 200.0;
  util::Rng rng(1);
  const auto times =
      arrival_times(model, 10 * util::kSecondsPerDay, rng);
  const double rate =
      static_cast<double>(times.size()) / (10.0 * 24.0);
  EXPECT_NEAR(rate / 200.0, 1.0, 0.05);
}

TEST(Arrival, TimesAreSortedAndInRange) {
  ArrivalModel model;
  model.mean_per_hour = 50.0;
  model.diurnal_amplitude = 0.5;
  model.burst_sigma = 1.0;
  util::Rng rng(2);
  const util::TimeSec horizon = 2 * util::kSecondsPerDay;
  const auto times = arrival_times(model, horizon, rng);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GE(times[i], 0);
    EXPECT_LT(times[i], horizon);
    if (i > 0) {
      EXPECT_GE(times[i], times[i - 1]);
    }
  }
}

TEST(Arrival, ConstantModelIsNearlyFair) {
  ArrivalModel model;
  model.mean_per_hour = 500.0;
  util::Rng rng(3);
  const auto times =
      arrival_times(model, 14 * util::kSecondsPerDay, rng);
  const auto counts = hourly_counts(times, 14 * 24);
  // Pure Poisson at 500/h: fairness ~ 1/(1 + 1/500) ~ 0.998.
  EXPECT_GT(stats::jain_fairness(counts), 0.99);
}

TEST(Arrival, DiurnalAmplitudeLowersFairness) {
  ArrivalModel flat;
  flat.mean_per_hour = 300.0;
  ArrivalModel wavy = flat;
  wavy.diurnal_amplitude = 0.8;
  util::Rng rng1(4), rng2(4);
  const util::TimeSec horizon = 14 * util::kSecondsPerDay;
  const double f_flat = stats::jain_fairness(
      hourly_counts(arrival_times(flat, horizon, rng1), 14 * 24));
  const double f_wavy = stats::jain_fairness(
      hourly_counts(arrival_times(wavy, horizon, rng2), 14 * 24));
  EXPECT_LT(f_wavy, f_flat - 0.1);
}

TEST(Arrival, DipsProduceQuietHours) {
  ArrivalModel model;
  model.mean_per_hour = 400.0;
  model.dip_probability = 0.05;
  model.dip_factor = 0.01;
  util::Rng rng(5);
  const auto counts = hourly_counts(
      arrival_times(model, 30 * util::kSecondsPerDay, rng), 30 * 24);
  double min_count = 1e9;
  for (const double c : counts) {
    min_count = std::min(min_count, c);
  }
  EXPECT_LT(min_count, 40.0);  // dips cut 400/h down to ~4/h
}

TEST(Arrival, HourlyRatesHaveRequestedMean) {
  ArrivalModel model;
  model.mean_per_hour = 100.0;
  model.diurnal_amplitude = 0.4;
  model.burst_sigma = 0.8;
  model.burst_ar1 = 0.5;
  util::Rng rng(6);
  const auto rates = hourly_rates(model, 24 * 60, rng);
  double total = 0.0;
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total / static_cast<double>(rates.size()) / 100.0, 1.0, 0.1);
}

TEST(Arrival, InvalidParametersThrow) {
  ArrivalModel model;
  model.diurnal_amplitude = 1.5;
  util::Rng rng(7);
  EXPECT_THROW(hourly_rates(model, 10, rng), util::Error);
  model.diurnal_amplitude = 0.0;
  EXPECT_THROW(arrival_times(model, 0, rng), util::Error);
}

TEST(BurstSigma, ZeroWhenDiurnalAloneSuffices) {
  // Fairness 0.9 is already exceeded by amplitude ~0.5's variance.
  EXPECT_DOUBLE_EQ(burst_sigma_for_fairness(0.95, 0.5), 0.0);
}

TEST(BurstSigma, InvalidFairnessThrows) {
  EXPECT_THROW(burst_sigma_for_fairness(0.0, 0.2), util::Error);
  EXPECT_THROW(burst_sigma_for_fairness(1.5, 0.2), util::Error);
}

/// Property sweep: the fairness-targeting formula lands the realized
/// Jain index near the requested value across the paper's range.
class FairnessTargeting : public ::testing::TestWithParam<double> {};

TEST_P(FairnessTargeting, RealizedFairnessNearTarget) {
  const double target = GetParam();
  ArrivalModel model;
  model.mean_per_hour = 120.0;
  model.diurnal_amplitude = 0.5;
  model.burst_sigma = burst_sigma_for_fairness(target, 0.5);
  model.burst_ar1 = 0.4;
  util::Rng rng(42);
  const util::TimeSec horizon = 60 * util::kSecondsPerDay;
  const double realized = stats::jain_fairness(
      hourly_counts(arrival_times(model, horizon, rng), 60 * 24));
  // Lognormal burst realizations are noisy; we only need the right
  // regime (Table I spans 0.04 .. 0.94, two orders of magnitude).
  EXPECT_GT(realized, target * 0.4);
  EXPECT_LT(realized, std::min(1.0, target * 2.8));
}

INSTANTIATE_TEST_SUITE_P(Targets, FairnessTargeting,
                         ::testing::Values(0.05, 0.1, 0.2, 0.35, 0.5, 0.7));

}  // namespace
}  // namespace cgc::gen
