// Tests for Jain fairness, Gini coefficient, and the Lorenz curve.
#include <gtest/gtest.h>

#include <vector>

#include "stats/fairness.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(JainFairness, ConstantSampleIsOne) {
  const std::vector<double> v(50, 3.0);
  EXPECT_NEAR(jain_fairness(v), 1.0, 1e-12);
}

TEST(JainFairness, SingleNonZeroIsOneOverN) {
  std::vector<double> v(10, 0.0);
  v[3] = 7.0;
  EXPECT_NEAR(jain_fairness(v), 0.1, 1e-12);
}

TEST(JainFairness, KnownTwoValueCase) {
  // f = (1+3)^2 / (2 * (1 + 9)) = 16/20 = 0.8
  const std::vector<double> v = {1.0, 3.0};
  EXPECT_NEAR(jain_fairness(v), 0.8, 1e-12);
}

TEST(JainFairness, BoundsHold) {
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const int n = 5 + static_cast<int>(rng.uniform_int(0, 50));
    for (int i = 0; i < n; ++i) {
      v.push_back(rng.uniform(0.0, 100.0));
    }
    const double f = jain_fairness(v);
    EXPECT_GE(f, 1.0 / static_cast<double>(n) - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

TEST(JainFairness, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>(5, 0.0)), 0.0);
}

TEST(JainFairness, RelatesToCv) {
  // f = 1 / (1 + CV^2) for any sample; cross-check on a random one.
  util::Rng rng(10);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(rng.uniform(1.0, 9.0));
  }
  double mean = 0.0, sq = 0.0;
  for (const double x : v) {
    mean += x;
    sq += x * x;
  }
  mean /= static_cast<double>(v.size());
  const double var = sq / static_cast<double>(v.size()) - mean * mean;
  const double cv2 = var / (mean * mean);
  EXPECT_NEAR(jain_fairness(v), 1.0 / (1.0 + cv2), 1e-9);
}

TEST(Gini, ConstantSampleIsZero) {
  const std::vector<double> v(20, 4.0);
  EXPECT_NEAR(gini(v), 0.0, 1e-9);
}

TEST(Gini, MaximallyUnequalApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[99] = 1.0;
  EXPECT_NEAR(gini(v), 0.99, 1e-9);
}

TEST(Gini, ExponentialIsHalf) {
  util::Rng rng(11);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) {
    v.push_back(rng.exponential(1.0));
  }
  EXPECT_NEAR(gini(v), 0.5, 0.01);
}

TEST(Gini, UniformZeroToOneIsThird) {
  util::Rng rng(12);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) {
    v.push_back(rng.uniform());
  }
  EXPECT_NEAR(gini(v), 1.0 / 3.0, 0.01);
}

TEST(Gini, EmptyThrows) {
  EXPECT_THROW(gini(std::vector<double>{}), util::Error);
}

TEST(LorenzCurve, EndpointsAndConvexity) {
  util::Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    v.push_back(rng.exponential(2.0));
  }
  const auto curve = lorenz_curve(v, 50);
  ASSERT_EQ(curve.size(), 51u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 1.0);
  EXPECT_NEAR(curve.back().second, 1.0, 1e-9);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    // Lorenz curve lies below the diagonal.
    EXPECT_LE(curve[i].second, curve[i].first + 1e-9);
  }
}

}  // namespace
}  // namespace cgc::stats
