// Tests for the work-load analyzers (Figs 2-6, Table I) and the report
// primitives.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/workload_analyzers.hpp"
#include "gen/google_model.hpp"
#include "gen/grid_model.hpp"
#include "util/check.hpp"

namespace cgc::analysis {
namespace {

const trace::TraceSet& google_trace() {
  static const trace::TraceSet t =
      gen::GoogleWorkloadModel().generate_workload(util::kSecondsPerDay);
  return t;
}

const trace::TraceSet& grid_trace() {
  static const trace::TraceSet t =
      gen::GridWorkloadModel(gen::presets::auvergrid())
          .generate_workload(util::kSecondsPerDay);
  return t;
}

TEST(Report, SeriesRowWidthEnforced) {
  Series s;
  s.column_names = {"x", "y"};
  s.add_row({1.0, 2.0});
  EXPECT_THROW(s.add_row({1.0}), util::Error);
}

TEST(Report, SanitizeName) {
  EXPECT_EQ(sanitize_name("LLNL-Atlas"), "llnl_atlas");
  EXPECT_EQ(sanitize_name("Google (MaxCap=32GB)"), "google_maxcap_32gb");
  EXPECT_EQ(sanitize_name("***"), "series");
}

TEST(Report, WriteDatProducesFiles) {
  Figure fig;
  fig.id = "test01";
  fig.title = "Test";
  Series s;
  s.name = "curve";
  s.column_names = {"x", "y"};
  s.add_row({1.0, 0.5});
  s.add_row({2.0, 1.0});
  fig.series.push_back(std::move(s));

  const auto dir = std::filesystem::temp_directory_path() /
                   ("cgc_report_" + std::to_string(::getpid()));
  fig.write_dat(dir.string());
  const auto path = dir / "test01_curve.dat";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.front(), '#');
  std::filesystem::remove_all(dir);
}

TEST(PriorityAnalyzer, CountsMatchTraceTotals) {
  const PriorityHistogram hist = analyze_priorities(google_trace());
  std::int64_t job_total = 0;
  std::int64_t task_total = 0;
  for (int p = 0; p < trace::kNumPriorities; ++p) {
    job_total += hist.jobs[static_cast<std::size_t>(p)];
    task_total += hist.tasks[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(job_total,
            static_cast<std::int64_t>(google_trace().jobs().size()));
  EXPECT_EQ(task_total,
            static_cast<std::int64_t>(google_trace().tasks().size()));
}

TEST(PriorityAnalyzer, BandsPartitionTotals) {
  const PriorityHistogram hist = analyze_priorities(google_trace());
  const auto total = hist.jobs_in_band(trace::PriorityBand::kLow) +
                     hist.jobs_in_band(trace::PriorityBand::kMid) +
                     hist.jobs_in_band(trace::PriorityBand::kHigh);
  EXPECT_EQ(total, static_cast<std::int64_t>(google_trace().jobs().size()));
}

TEST(PriorityAnalyzer, FigureHasTwelveRows) {
  const Figure fig = analyze_priorities(google_trace()).to_figure();
  ASSERT_EQ(fig.series.size(), 1u);
  EXPECT_EQ(fig.series[0].rows.size(), 12u);
}

TEST(JobLengthAnalyzer, CdfSeriesPerSystem) {
  const trace::TraceSet* traces[] = {&google_trace(), &grid_trace()};
  const Figure fig = analyze_job_length_cdf(traces);
  ASSERT_EQ(fig.series.size(), 2u);
  EXPECT_EQ(fig.series[0].name, "google");
  EXPECT_EQ(fig.series[1].name, "AuverGrid");
  // CDF values climb to 1.
  const auto& rows = fig.series[0].rows;
  ASSERT_FALSE(rows.empty());
  EXPECT_DOUBLE_EQ(rows.back()[1], 1.0);
}

TEST(JobLengthAnalyzer, CloudShorterThanGrid) {
  const trace::TraceSet* traces[] = {&google_trace(), &grid_trace()};
  const Figure fig = analyze_job_length_cdf(traces);
  // Compare the CDF at 2000 s: the Fig 3 claim.
  const auto cdf_at = [](const Series& s, double x) {
    double f = 0.0;
    for (const auto& row : s.rows) {
      if (row[0] <= x) {
        f = row[1];
      }
    }
    return f;
  };
  EXPECT_GT(cdf_at(fig.series[0], 2000.0),
            cdf_at(fig.series[1], 2000.0) + 0.2);
}

TEST(TaskMassCount, GoogleIsMoreSkewedThanGrid) {
  const MassCountReport google =
      analyze_task_length_mass_count(google_trace());
  const MassCountReport grid = analyze_task_length_mass_count(grid_trace());
  // Fig 4: Google 6/94 vs AuverGrid 24/76 — Google far more Pareto-like.
  EXPECT_LT(google.result.joint_ratio_mass,
            grid.result.joint_ratio_mass);
  EXPECT_FALSE(google.figure.annotations.empty());
  EXPECT_FALSE(google.figure.series[0].rows.empty());
}

TEST(SubmissionAnalyzer, IntervalCdfSeries) {
  const trace::TraceSet* traces[] = {&google_trace(), &grid_trace()};
  const Figure fig = analyze_submission_interval_cdf(traces);
  ASSERT_EQ(fig.series.size(), 2u);
  // Google submits far more often: its median interval is smaller.
  const auto median_x = [](const Series& s) {
    for (const auto& row : s.rows) {
      if (row[1] >= 0.5) {
        return row[0];
      }
    }
    return s.rows.back()[0];
  };
  EXPECT_LT(median_x(fig.series[0]), median_x(fig.series[1]));
}

TEST(SubmissionAnalyzer, StatsAreInternallyConsistent) {
  const SubmissionStats stats = analyze_submission_stats(google_trace());
  EXPECT_EQ(stats.system, "google");
  EXPECT_LE(stats.min_per_hour, stats.avg_per_hour);
  EXPECT_LE(stats.avg_per_hour, stats.max_per_hour);
  EXPECT_GT(stats.fairness, 0.0);
  EXPECT_LE(stats.fairness, 1.0);
}

TEST(SubmissionAnalyzer, TableRenders) {
  const SubmissionStats google = analyze_submission_stats(google_trace());
  const SubmissionStats grid = analyze_submission_stats(grid_trace());
  const std::string table = render_submission_table(
      std::vector<SubmissionStats>{google, grid});
  EXPECT_NE(table.find("google"), std::string::npos);
  EXPECT_NE(table.find("AuverGrid"), std::string::npos);
  EXPECT_NE(table.find("fairness"), std::string::npos);
}

TEST(ResourceUsageAnalyzer, CpuCdfOrdering) {
  const trace::TraceSet* traces[] = {&google_trace(), &grid_trace()};
  const Figure fig = analyze_job_cpu_usage_cdf(traces);
  ASSERT_EQ(fig.series.size(), 2u);
  // Fig 6a: Google CPU usage is smaller than Grid's everywhere.
  const auto& google_rows = fig.series[0].rows;
  double google_p90 = 0.0;
  for (const auto& row : google_rows) {
    if (row[1] <= 0.9) {
      google_p90 = row[0];
    }
  }
  EXPECT_LT(google_p90, 2.0);
}

TEST(ResourceUsageAnalyzer, MemCdfExpandsCloudCapacities) {
  const trace::TraceSet* traces[] = {&google_trace(), &grid_trace()};
  const double caps[] = {32.0, 64.0};
  const Figure fig = analyze_job_mem_usage_cdf(traces, caps);
  // Google appears twice (32 GB / 64 GB what-ifs), the grid once.
  ASSERT_EQ(fig.series.size(), 3u);
  EXPECT_NE(fig.series[0].name.find("32GB"), std::string::npos);
  EXPECT_NE(fig.series[1].name.find("64GB"), std::string::npos);
  EXPECT_EQ(fig.series[2].name, "AuverGrid");
}

}  // namespace
}  // namespace cgc::analysis
