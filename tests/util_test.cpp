// Unit tests for cgc::util basics: CGC_CHECK, Rng, time utils, tables.
#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace cgc::util {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CGC_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithExpression) {
  try {
    CGC_CHECK(1 + 1 == 3);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 + 1 == 3"), std::string::npos);
  }
}

TEST(Check, FailingCheckMsgIncludesMessage) {
  try {
    CGC_CHECK_MSG(false, "the custom message");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the custom message"),
              std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die show up
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng split = a.split();
  // The split stream must not replay the parent's stream.
  Rng parent_copy(99);
  (void)parent_copy.engine()();  // consume the draw used by split()
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (split.uniform() != parent_copy.uniform()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(TimeUtil, Conversions) {
  EXPECT_DOUBLE_EQ(to_days(kSecondsPerDay), 1.0);
  EXPECT_DOUBLE_EQ(to_hours(kSecondsPerHour * 3), 3.0);
  EXPECT_DOUBLE_EQ(to_minutes(90), 1.5);
  EXPECT_EQ(kSecondsPerMonth, 30 * 86400);
  EXPECT_EQ(kSamplePeriod, 300);
}

TEST(TimeUtil, FormatDuration) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(3661), "01:01:01");
  EXPECT_EQ(format_duration(2 * kSecondsPerDay + 3600), "2d 01:00:00");
  EXPECT_EQ(format_duration(-60), "-00:01:00");
}

TEST(Table, RendersAlignedRows) {
  AsciiTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell_int(1234567), "1,234,567");
  EXPECT_EQ(cell_int(-1234), "-1,234");
  EXPECT_EQ(cell_int(999), "999");
  EXPECT_EQ(cell_int(0), "0");
  EXPECT_EQ(cell_ratio(6.4, 93.6), "6/94");
  EXPECT_EQ(cell_pct(0.5), "50.0%");
  EXPECT_EQ(cell_pct(0.123456, 2), "12.35%");
}

}  // namespace
}  // namespace cgc::util
