// Tests for streaming moments and quantiles.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, CvOfConstantIsZero) {
  RunningStats s;
  s.add(5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

/// Property: merging shards must equal a single-pass computation,
/// across random shard splits and values.
class MergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeProperty, MergeEqualsSinglePass) {
  util::Rng rng(GetParam());
  const std::size_t n = 100 + static_cast<std::size_t>(rng.uniform_int(0, 900));
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.normal(10.0, 4.0);
  }
  RunningStats whole;
  for (const double v : values) {
    whole.add(v);
  }
  // Split into 3 shards at random cut points.
  const std::size_t c1 = static_cast<std::size_t>(rng.uniform_int(0, n));
  const std::size_t c2 =
      c1 + static_cast<std::size_t>(
               rng.uniform_int(0, static_cast<std::int64_t>(n - c1)));
  RunningStats a, b, c;
  for (std::size_t i = 0; i < c1; ++i) a.add(values[i]);
  for (std::size_t i = c1; i < c2; ++i) b.add(values[i]);
  for (std::size_t i = c2; i < n; ++i) c.add(values[i]);
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), util::Error);
}

TEST(Quantile, OutOfRangeQThrows) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, 1.5), util::Error);
  EXPECT_THROW(quantile(v, -0.1), util::Error);
}

TEST(FractionBelow, CountsStrictlyBelow) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_below(v, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(v, 10.0), 1.0);
}

TEST(Summarize, MatchesManualLoop) {
  const std::vector<double> v = {1.5, 2.5, 3.5};
  const RunningStats s = summarize(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

}  // namespace
}  // namespace cgc::stats
