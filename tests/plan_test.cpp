// cgc::plan contract tests.
//
// Pins the four guarantees the planning engine ships on:
//   * scenario identity — ScenarioSpec::key() and scenario_id() are
//     frozen pure functions of the spec (goldens below; changing the
//     format re-ids every checkpoint on disk, so it must be loud);
//   * matrix expansion — cross-product counts, frozen order, and the
//     digest handshake between shards;
//   * scoring — Pareto dominance over the frozen objective set, the
//     undefined-cost sentinel, and the refusal to score a run without
//     host-load samples (the old capacity_planner UB, now a DataError);
//   * execution — plan.json bytes are identical at any worker count and
//     across sharded checkpoint + merge vs a single process, resume
//     reuses only finished scenarios, and the merge conflict taxonomy
//     (DataError vs TransientError) matches plan_io.hpp.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "plan/matrix.hpp"
#include "plan/plan_io.hpp"
#include "plan/runner.hpp"
#include "plan/scenario.hpp"
#include "plan/score.hpp"
#include "sim/cluster_sim.hpp"
#include "sweep/partition.hpp"
#include "trace/trace_set.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cgc::plan {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Scenario identity

TEST(ScenarioTest, KeyFormatIsFrozen) {
  const ScenarioSpec spec;  // all defaults
  EXPECT_EQ(spec.key(),
            "fleet=64;horizon=86400;workload=google:1;mix=1;preempt=1;"
            "remap=none;place=balanced;util=0.75;cost=0.04;slo=300;seed=42");
}

TEST(ScenarioTest, IdIsFrozenAndPureInTheSpec) {
  const ScenarioSpec spec;
  // Golden: sweep::stable_case_hash over the key above. If this moves,
  // every shard checkpoint on disk is silently re-identified — that is
  // a breaking change, not a refactor.
  EXPECT_EQ(scenario_id(spec), "s286e9cee4522ceee");
  EXPECT_EQ(scenario_id(spec),
            "s" + []() {
              char buf[17];
              std::snprintf(buf, sizeof(buf), "%016llx",
                            static_cast<unsigned long long>(
                                sweep::stable_case_hash(ScenarioSpec{}.key())));
              return std::string(buf);
            }());

  ScenarioSpec other;
  EXPECT_EQ(scenario_id(other), scenario_id(spec));
  other.fleet = 32;
  EXPECT_NE(scenario_id(other), scenario_id(spec));
}

TEST(ScenarioTest, EveryAxisFieldFeedsTheId) {
  const ScenarioSpec base;
  std::set<std::string> ids = {scenario_id(base)};
  auto expect_new = [&](ScenarioSpec spec, const char* what) {
    EXPECT_TRUE(ids.insert(scenario_id(spec)).second) << what;
  };
  ScenarioSpec s = base;
  s.fleet = 128;
  expect_new(s, "fleet");
  s = base;
  s.horizon = 3600;
  expect_new(s, "horizon");
  s = base;
  s.workload = {{"auvergrid", 1.0}};
  expect_new(s, "workload model");
  s = base;
  s.workload = {{"google", 0.5}};
  expect_new(s, "workload weight");
  s = base;
  s.hetero_mix = 0.25;
  expect_new(s, "hetero_mix");
  s = base;
  s.preemption = false;
  expect_new(s, "preemption");
  s = base;
  s.remap = PriorityRemap::kInvert;
  expect_new(s, "remap");
  s = base;
  s.placement = sim::PlacementPolicy::kBestFit;
  expect_new(s, "placement");
  s = base;
  s.target_utilization = 0.6;
  expect_new(s, "target_utilization");
  s = base;
  s.cost_per_machine_hour = 0.10;
  expect_new(s, "cost");
  s = base;
  s.slo_wait_s = 60;
  expect_new(s, "slo");
  s = base;
  s.seed = 7;
  expect_new(s, "seed");
}

// ---------------------------------------------------------------------------
// Matrix expansion

TEST(MatrixTest, DefaultMatrixExpandsTo576) {
  const ScenarioMatrix matrix = default_matrix(6 * util::kSecondsPerHour);
  EXPECT_EQ(matrix.scenarios.size(), 576u);
  // Ids are unique — the cross-product never collapses two scenarios.
  std::set<std::string> ids;
  for (const ScenarioSpec& spec : matrix.scenarios) {
    EXPECT_TRUE(ids.insert(scenario_id(spec)).second);
  }
}

TEST(MatrixTest, SmallMatrixExpandsTo8) {
  EXPECT_EQ(small_matrix(3600).scenarios.size(), 8u);
}

TEST(MatrixTest, BuilderWithNoAxesExpandsToTheBaseSpec) {
  ScenarioSpec base;
  base.fleet = 13;
  const ScenarioMatrix matrix = MatrixBuilder("one", base).build();
  ASSERT_EQ(matrix.scenarios.size(), 1u);
  EXPECT_EQ(scenario_id(matrix.scenarios[0]), scenario_id(base));
}

TEST(MatrixTest, ExplicitlyEmptyAxisIsFatal) {
  EXPECT_THROW(MatrixBuilder("bad", ScenarioSpec{}).fleets({}).build(),
               util::FatalError);
}

TEST(MatrixTest, ExpansionOrderIsFrozenFleetsOutermost) {
  const ScenarioMatrix matrix =
      MatrixBuilder("order", ScenarioSpec{})
          .fleets({1, 2})
          .target_utilizations({0.5, 0.9})
          .build();
  ASSERT_EQ(matrix.scenarios.size(), 4u);
  EXPECT_EQ(matrix.scenarios[0].fleet, 1u);
  EXPECT_DOUBLE_EQ(matrix.scenarios[0].target_utilization, 0.5);
  EXPECT_DOUBLE_EQ(matrix.scenarios[1].target_utilization, 0.9);
  EXPECT_EQ(matrix.scenarios[1].fleet, 1u);
  EXPECT_EQ(matrix.scenarios[2].fleet, 2u);
}

TEST(MatrixTest, DigestIsPureAndOrderSensitive) {
  const ScenarioMatrix a = small_matrix(3600);
  const ScenarioMatrix b = small_matrix(3600);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), small_matrix(7200).digest());

  ScenarioMatrix reversed = small_matrix(3600);
  std::reverse(reversed.scenarios.begin(), reversed.scenarios.end());
  EXPECT_NE(reversed.digest(), a.digest());
}

TEST(MatrixTest, ShardOwnershipPartitionsTheMatrix) {
  const ScenarioMatrix matrix = default_matrix(3600);
  std::vector<std::size_t> counts(4, 0);
  for (const ScenarioSpec& spec : matrix.scenarios) {
    int owners = 0;
    for (int i = 0; i < 4; ++i) {
      if (sweep::owns(sweep::ShardSpec{i, 4}, scenario_id(spec))) {
        ++owners;
        ++counts[static_cast<std::size_t>(i)];
      }
    }
    EXPECT_EQ(owners, 1) << scenario_id(spec);
  }
  // The stable hash spreads scenarios: no shard is empty or hogs all.
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 0u);
    EXPECT_LT(c, matrix.scenarios.size());
  }
}

// ---------------------------------------------------------------------------
// Scoring

ScenarioScore make_score(double util, double evict, double p99,
                         double usd) {
  ScenarioScore s;
  s.cpu_util_mean = util;
  s.eviction_rate = evict;
  s.wait_p99_s = p99;
  s.usd_per_slo = usd;
  return s;
}

TEST(ScoreTest, DominanceIsStrictOnTheFrozenObjectives) {
  const ScenarioScore better = make_score(0.8, 0.01, 10, 1.0);
  const ScenarioScore worse = make_score(0.7, 0.02, 20, 2.0);
  EXPECT_TRUE(dominates(better, worse));
  EXPECT_FALSE(dominates(worse, better));
  // Equal on every objective: neither dominates (strictness).
  EXPECT_FALSE(dominates(better, better));
  // Trade-off (better utilization, worse cost): incomparable.
  const ScenarioScore tradeoff = make_score(0.9, 0.01, 10, 3.0);
  EXPECT_FALSE(dominates(tradeoff, better));
  EXPECT_FALSE(dominates(better, tradeoff));
}

TEST(ScoreTest, UndefinedCostNeverDominatesAndIsDominated) {
  const ScenarioScore undefined_cost = make_score(0.9, 0.0, 0, -1.0);
  const ScenarioScore defined = make_score(0.9, 0.0, 0, 5.0);
  EXPECT_FALSE(dominates(undefined_cost, defined));
  EXPECT_TRUE(dominates(defined, undefined_cost));
}

TEST(ScoreTest, ParetoFrontierKeepsNonDominatedInInputOrder) {
  const std::vector<ScenarioScore> scores = {
      make_score(0.8, 0.01, 10, 1.0),  // frontier
      make_score(0.7, 0.02, 20, 2.0),  // dominated by [0]
      make_score(0.9, 0.05, 10, 1.5),  // frontier (best util)
      make_score(0.75, 0.01, 10, 0.5),  // frontier (best cost)
  };
  EXPECT_EQ(pareto_frontier(scores),
            (std::vector<std::size_t>{0, 2, 3}));
}

TEST(ScoreTest, RefusesToScoreWithoutHostLoad) {
  // The old capacity_planner indexed host_load()[0] unchecked; a trace
  // with no load series must be a taxonomy error, not UB.
  const trace::TraceSet empty;
  const sim::SimStats stats;
  EXPECT_THROW(score_run(ScenarioSpec{}, empty, stats), util::DataError);
}

TEST(ScoreTest, WaitHistogramQuantilesAreDeterministicBucketBounds) {
  sim::SimStats stats;
  EXPECT_DOUBLE_EQ(stats.wait_quantile(0.99), 0.0);  // empty histogram
  EXPECT_DOUBLE_EQ(stats.wait_fraction_within(300.0), 1.0);
  for (int i = 0; i < 90; ++i) {
    stats.record_wait(0);  // bucket 0: no wait
  }
  for (int i = 0; i < 9; ++i) {
    stats.record_wait(100);  // bucket [64, 128)
  }
  stats.record_wait(100000);  // bucket [65536, 131072)
  EXPECT_EQ(stats.wait_count, 100);
  EXPECT_DOUBLE_EQ(stats.wait_quantile(0.50), 0.0);
  EXPECT_DOUBLE_EQ(stats.wait_quantile(0.90), 128.0);
  EXPECT_DOUBLE_EQ(stats.wait_quantile(0.999), 131072.0);
  EXPECT_DOUBLE_EQ(stats.wait_fraction_within(128.0), 0.99);
  EXPECT_DOUBLE_EQ(stats.wait_mean_s(), (9 * 100 + 100000) / 100.0);
}

// ---------------------------------------------------------------------------
// Execution: determinism, sharding, resume

class PlanRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cgc_plan_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::configure("");
    fs::remove_all(dir_);
  }

  std::string dir(const std::string& sub = "") const {
    return sub.empty() ? dir_.string() : (dir_ / sub).string();
  }

  /// The test workload: the 8-scenario matrix over a 1-hour horizon.
  static ScenarioMatrix matrix() { return small_matrix(3600); }

  /// Runs the whole matrix in-process and renders plan.json.
  static std::string single_process_json() {
    PlanRunner runner(matrix(), PlanConfig{});
    return render_plan_json(runner.matrix(), runner.run());
  }

  fs::path dir_;
};

TEST_F(PlanRunTest, PlanJsonIsByteIdenticalAtAnyWorkerCount) {
  std::vector<std::string> renders;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    util::ThreadPool pool(threads);
    exec::ScopedPool scoped(&pool);
    renders.push_back(single_process_json());
  }
  EXPECT_EQ(renders[0], renders[1]);
  EXPECT_EQ(renders[0], renders[2]);
  // And the artifact is non-trivial: it carries every scenario id.
  for (const ScenarioSpec& spec : matrix().scenarios) {
    EXPECT_NE(renders[0].find(scenario_id(spec)), std::string::npos);
  }
}

TEST_F(PlanRunTest, ShardedCheckpointsMergeToTheSingleProcessBytes) {
  const std::string golden = single_process_json();

  std::vector<ShardResults> shards;
  for (int i = 0; i < 2; ++i) {
    PlanConfig config;
    config.shard = sweep::ShardSpec{i, 2};
    config.out_dir = dir();
    PlanRunner runner(matrix(), config);
    runner.run();
    ShardResults shard;
    ASSERT_EQ(read_results(shard_results_path(dir(), config.shard),
                           runner.matrix(), &shard),
              ReadStatus::kOk);
    EXPECT_TRUE(shard.complete);
    shards.push_back(std::move(shard));
  }
  const ScenarioMatrix m = matrix();
  const std::vector<ScenarioResult> merged = merge_results(m, shards);
  EXPECT_EQ(render_plan_json(m, merged), golden);
}

TEST_F(PlanRunTest, ResumeReusesFinishedScenariosOnly) {
  PlanConfig config;
  config.out_dir = dir();
  {
    PlanRunner runner(matrix(), config);
    runner.run();
    EXPECT_EQ(runner.resumed(), 0u);
  }
  config.resume = true;
  PlanRunner runner(matrix(), config);
  const std::vector<ScenarioResult> results = runner.run();
  EXPECT_EQ(runner.resumed(), matrix().scenarios.size());
  EXPECT_EQ(results.size(), matrix().scenarios.size());
}

TEST_F(PlanRunTest, TornCheckpointIsQuarantinedAndRerun) {
  PlanConfig config;
  config.out_dir = dir();
  PlanRunner first(matrix(), config);
  first.run();
  const std::string path = shard_results_path(dir(), config.shard);

  // Tear the checkpoint: drop the sealed tail.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 12);
  }
  ShardResults ignored;
  ASSERT_EQ(read_results(path, matrix(), &ignored), ReadStatus::kCorrupt);

  config.resume = true;
  PlanRunner runner(matrix(), config);
  runner.run();
  EXPECT_EQ(runner.resumed(), 0u);  // nothing trusted from the torn file
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  ShardResults reread;
  EXPECT_EQ(read_results(path, matrix(), &reread), ReadStatus::kOk);
  EXPECT_TRUE(reread.complete);
}

TEST_F(PlanRunTest, ResumeAgainstADifferentMatrixIsADataError) {
  PlanConfig config;
  config.out_dir = dir();
  PlanRunner first(matrix(), config);
  first.run();

  config.resume = true;
  PlanRunner other(small_matrix(7200), config);  // different digest
  EXPECT_THROW(other.run(), util::DataError);
}

TEST_F(PlanRunTest, MergeTaxonomyMatchesTheSweepContract) {
  PlanConfig config;
  config.shard = sweep::ShardSpec{0, 2};
  config.out_dir = dir();
  PlanRunner runner(matrix(), config);
  runner.run();
  ShardResults shard0;
  ASSERT_EQ(read_results(shard_results_path(dir(), config.shard), runner.matrix(),
                         &shard0),
            ReadStatus::kOk);
  const ScenarioMatrix m = matrix();

  // Missing coverage (only shard 0 of 2): transient — rerun and retry.
  EXPECT_THROW(merge_results(m, {shard0}), util::TransientError);

  // Duplicate ownership (same shard twice): the inputs conflict.
  EXPECT_THROW(merge_results(m, {shard0, shard0}), util::DataError);

  // Incomplete shard: transient.
  ShardResults incomplete = shard0;
  incomplete.complete = false;
  EXPECT_THROW(merge_results(m, {incomplete}), util::TransientError);

  // Foreign digest: a different experiment.
  ShardResults foreign = shard0;
  foreign.matrix_digest ^= 1;
  EXPECT_THROW(merge_results(m, {foreign}), util::DataError);
}

TEST_F(PlanRunTest, ScenarioFaultSiteDegradesToRecordedFailures) {
  fault::configure("plan.scenario_fail:p=1,seed=3");
  PlanRunner runner(matrix(), PlanConfig{});
  const std::vector<ScenarioResult> results = runner.run();
  ASSERT_EQ(results.size(), matrix().scenarios.size());
  for (const ScenarioResult& r : results) {
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error.rfind("transient: ", 0), 0u) << r.error;
  }
  // The artifact still renders — failed scenarios carry their error.
  const std::string json = render_plan_json(matrix(), results);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

TEST_F(PlanRunTest, CrossReplayScenariosRun) {
  // Grid-on-Cloud and Cloud-on-Grid are single scenarios, not special
  // modes: a grid workload on the heterogeneous park and vice versa.
  ScenarioSpec grid_on_cloud;
  grid_on_cloud.fleet = 4;
  grid_on_cloud.horizon = 1800;
  grid_on_cloud.workload = {{"auvergrid", 1.0}};
  grid_on_cloud.hetero_mix = 1.0;
  const ScenarioResult a = run_scenario(grid_on_cloud);
  EXPECT_TRUE(a.ok) << a.error;

  ScenarioSpec cloud_on_grid = grid_on_cloud;
  cloud_on_grid.workload = {{"google", 1.0}};
  cloud_on_grid.hetero_mix = 0.0;
  const ScenarioResult b = run_scenario(cloud_on_grid);
  EXPECT_TRUE(b.ok) << b.error;
  EXPECT_NE(a.id, b.id);
}

}  // namespace
}  // namespace cgc::plan
