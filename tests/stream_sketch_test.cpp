// Property tests for the streaming kernels: accuracy against the exact
// batch kernels (with the documented error bounds asserted) and merge
// determinism (bit-identical state regardless of shard order for the
// count-based sketches, and against the unsharded stream).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stream/sketch.hpp"
#include "util/rng.hpp"

namespace cgc {
namespace {

using stream::CounterBank;
using stream::ExtendedP2;
using stream::Moments;
using stream::StreamingEcdf;

std::vector<double> heavy_tailed_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mixture resembling task lengths: mostly short, a long tail.
    const double x = rng.bernoulli(0.9) ? rng.exponential(1.0 / 300.0)
                                        : rng.exponential(1.0 / 40000.0);
    xs.push_back(1.0 + x);
  }
  return xs;
}

std::string state_of(const StreamingEcdf& sketch) {
  std::string bytes;
  sketch.append_state(&bytes);
  return bytes;
}

TEST(StreamingEcdfTest, QuantilesWithinRelativeErrorOfExactBatch) {
  for (const double alpha : {0.05, 0.01, 0.005}) {
    const std::vector<double> xs = heavy_tailed_sample(20000, 7);
    StreamingEcdf sketch(alpha);
    for (const double x : xs) {
      sketch.add(x);
    }
    const stats::Ecdf exact(xs);
    ASSERT_EQ(sketch.count(), xs.size());
    for (const double q : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
      const double streaming = sketch.quantile(q);
      const double batch = exact.quantile(q);
      EXPECT_LE(std::abs(streaming - batch), alpha * batch * (1.0 + 1e-9))
          << "alpha=" << alpha << " q=" << q << " streaming=" << streaming
          << " batch=" << batch;
    }
    // Extremes are tracked exactly, and the mean inherits the per-value
    // bucket error.
    EXPECT_DOUBLE_EQ(sketch.min(), *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(sketch.max(), *std::max_element(xs.begin(), xs.end()));
    const double exact_mean = stats::summarize(xs).mean();
    EXPECT_LE(std::abs(sketch.mean() - exact_mean), alpha * exact_mean);
  }
}

TEST(StreamingEcdfTest, CdfMatchesBatchWithinBucketResolution) {
  const std::vector<double> xs = heavy_tailed_sample(5000, 11);
  StreamingEcdf sketch(0.01);
  for (const double x : xs) {
    sketch.add(x);
  }
  const stats::Ecdf exact(xs);
  for (const double x : {10.0, 100.0, 300.0, 2000.0, 60000.0}) {
    // The sketch's F(x) counts whole buckets, so compare against the
    // batch F evaluated at the bucket edges around x.
    const double lo = exact(x * (1.0 - 0.03));
    const double hi = exact(x * (1.0 + 0.03));
    const double streaming = sketch.cdf(x);
    EXPECT_GE(streaming, lo - 1e-12);
    EXPECT_LE(streaming, hi + 1e-12);
  }
}

TEST(StreamingEcdfTest, MergeIsOrderInvariantAndMatchesUnshardedStream) {
  const std::vector<double> xs = heavy_tailed_sample(9000, 23);
  StreamingEcdf whole(0.01);
  for (const double x : xs) {
    whole.add(x);
  }
  // Three shards of different character.
  std::vector<StreamingEcdf> shards(3, StreamingEcdf(0.01));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    shards[i % 3].add(xs[i]);
  }
  StreamingEcdf forward(0.01);
  for (const StreamingEcdf& s : shards) {
    forward.merge(s);
  }
  StreamingEcdf backward(0.01);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.merge(*it);
  }
  StreamingEcdf nested(0.01);
  {
    StreamingEcdf pair(0.01);
    pair.merge(shards[2]);
    pair.merge(shards[0]);
    nested.merge(shards[1]);
    nested.merge(pair);
  }
  const std::string expected = state_of(whole);
  EXPECT_EQ(state_of(forward), expected);
  EXPECT_EQ(state_of(backward), expected);
  EXPECT_EQ(state_of(nested), expected);
}

TEST(StreamingEcdfTest, PlotPointsAreAMonotoneCdf) {
  const std::vector<double> xs = heavy_tailed_sample(4000, 31);
  StreamingEcdf sketch(0.02);
  for (const double x : xs) {
    sketch.add(x);
  }
  const auto points = sketch.plot_points(50);
  ASSERT_FALSE(points.empty());
  ASSERT_LE(points.size(), 50u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(MomentsTest, MatchesExactMomentsAndChanMergeAgrees) {
  const std::vector<double> xs = heavy_tailed_sample(6000, 43);
  Moments whole;
  for (const double x : xs) {
    whole.add(x);
  }
  const stats::RunningStats exact = stats::summarize(xs);
  EXPECT_NEAR(whole.mean(), exact.mean(), 1e-9 * exact.mean());
  EXPECT_NEAR(whole.variance(), exact.variance(), 1e-6 * exact.variance());
  EXPECT_DOUBLE_EQ(whole.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(whole.max(), *std::max_element(xs.begin(), xs.end()));

  // Chan's merge over shards agrees with the single stream to fp noise.
  Moments a;
  Moments b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < xs.size() / 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9 * std::abs(whole.mean()));
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6 * whole.variance());
}

TEST(CounterBankTest, CountsAndDerivedTotals) {
  CounterBank bank;
  bank.add(1, trace::TaskEventType::kSubmit, 5);
  bank.add(4, trace::TaskEventType::kSubmit);
  bank.add(6, trace::TaskEventType::kSubmit, 2);
  bank.add(12, trace::TaskEventType::kSubmit, 3);
  bank.add(2, trace::TaskEventType::kFinish, 4);
  bank.add(2, trace::TaskEventType::kKill);
  bank.add(9, trace::TaskEventType::kEvict, 2);
  EXPECT_EQ(bank.total(), 18);
  EXPECT_EQ(bank.total(trace::TaskEventType::kSubmit), 11);
  EXPECT_EQ(bank.submits_in_band(trace::PriorityBand::kLow), 6);
  EXPECT_EQ(bank.submits_in_band(trace::PriorityBand::kMid), 2);
  EXPECT_EQ(bank.submits_in_band(trace::PriorityBand::kHigh), 3);
  EXPECT_EQ(bank.terminals(), 7);
  EXPECT_EQ(bank.abnormal_terminals(), 3);
  EXPECT_EQ(bank.total_at(2), 5);
}

TEST(CounterBankTest, MergeIsOrderInvariant) {
  util::Rng rng(77);
  std::vector<CounterBank> shards(4);
  CounterBank whole;
  for (int i = 0; i < 5000; ++i) {
    const int priority = static_cast<int>(rng.uniform_int(1, 12));
    const auto type = static_cast<trace::TaskEventType>(
        rng.uniform_int(0, trace::kNumTaskEventTypes - 1));
    shards[static_cast<std::size_t>(i) % 4].add(priority, type);
    whole.add(priority, type);
  }
  CounterBank forward;
  for (const CounterBank& s : shards) {
    forward.merge(s);
  }
  CounterBank shuffled;
  for (const int i : {2, 0, 3, 1}) {
    shuffled.merge(shards[static_cast<std::size_t>(i)]);
  }
  std::string expected;
  whole.append_state(&expected);
  std::string got_forward;
  forward.append_state(&got_forward);
  std::string got_shuffled;
  shuffled.append_state(&got_shuffled);
  EXPECT_EQ(got_forward, expected);
  EXPECT_EQ(got_shuffled, expected);
}

TEST(ExtendedP2Test, ExactDuringWarmupPhase) {
  ExtendedP2 probe({0.5, 0.9});  // 7 markers
  const std::vector<double> xs = {5, 1, 9, 3, 7};
  for (const double x : xs) {
    probe.add(x);
  }
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  // Rank convention: smallest order statistic with F >= q.
  EXPECT_DOUBLE_EQ(probe.estimate(0), sorted[2]);  // p50 of 5 -> rank 3
  EXPECT_DOUBLE_EQ(probe.estimate(1), sorted[4]);  // p90 of 5 -> rank 5
}

TEST(ExtendedP2Test, TracksSmoothDistributions) {
  util::Rng rng(101);
  ExtendedP2 probe;  // {0.5, 0.9, 0.95, 0.99}
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform(0.0, 1.0));
  }
  for (const double x : xs) {
    probe.add(x);
  }
  const stats::Ecdf exact(xs);
  // P² is a heuristic: assert a loose envelope, not the sketch bound.
  EXPECT_NEAR(probe.estimate(0), exact.quantile(0.50), 0.02);
  EXPECT_NEAR(probe.estimate(1), exact.quantile(0.90), 0.02);
  EXPECT_NEAR(probe.estimate(2), exact.quantile(0.95), 0.02);
  EXPECT_NEAR(probe.estimate(3), exact.quantile(0.99), 0.02);
}

TEST(ExtendedP2Test, MergeApproximatesCombinedStream) {
  util::Rng rng(103);
  ExtendedP2 a;
  ExtendedP2 b;
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), xs.size());
  const stats::Ecdf exact(xs);
  EXPECT_NEAR(a.estimate(0), exact.quantile(0.50), 0.3);
  EXPECT_NEAR(a.estimate(1), exact.quantile(0.90), 0.3);
}

}  // namespace
}  // namespace cgc
