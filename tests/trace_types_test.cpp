// Tests for the core trace data model: priority bands, the task state
// machine, and record helpers.
#include <gtest/gtest.h>

#include "trace/types.hpp"

namespace cgc::trace {
namespace {

TEST(PriorityBands, PaperClustering) {
  EXPECT_EQ(band_of(1), PriorityBand::kLow);
  EXPECT_EQ(band_of(4), PriorityBand::kLow);
  EXPECT_EQ(band_of(5), PriorityBand::kMid);
  EXPECT_EQ(band_of(8), PriorityBand::kMid);
  EXPECT_EQ(band_of(9), PriorityBand::kHigh);
  EXPECT_EQ(band_of(12), PriorityBand::kHigh);
}

TEST(PriorityBands, Names) {
  EXPECT_EQ(band_name(PriorityBand::kLow), "low");
  EXPECT_EQ(band_name(PriorityBand::kMid), "mid");
  EXPECT_EQ(band_name(PriorityBand::kHigh), "high");
}

TEST(Events, TerminalClassification) {
  EXPECT_TRUE(is_terminal(TaskEventType::kFinish));
  EXPECT_TRUE(is_terminal(TaskEventType::kFail));
  EXPECT_TRUE(is_terminal(TaskEventType::kKill));
  EXPECT_TRUE(is_terminal(TaskEventType::kEvict));
  EXPECT_TRUE(is_terminal(TaskEventType::kLost));
  EXPECT_FALSE(is_terminal(TaskEventType::kSubmit));
  EXPECT_FALSE(is_terminal(TaskEventType::kSchedule));
  EXPECT_FALSE(is_terminal(TaskEventType::kUpdate));
}

TEST(Events, AbnormalClassification) {
  EXPECT_FALSE(is_abnormal(TaskEventType::kFinish));
  EXPECT_TRUE(is_abnormal(TaskEventType::kFail));
  EXPECT_TRUE(is_abnormal(TaskEventType::kKill));
  EXPECT_TRUE(is_abnormal(TaskEventType::kEvict));
  EXPECT_TRUE(is_abnormal(TaskEventType::kLost));
  EXPECT_FALSE(is_abnormal(TaskEventType::kSubmit));
}

TEST(Events, Names) {
  EXPECT_EQ(event_name(TaskEventType::kSubmit), "SUBMIT");
  EXPECT_EQ(event_name(TaskEventType::kEvict), "EVICT");
  EXPECT_EQ(event_name(TaskEventType::kLost), "LOST");
}

TEST(StateMachine, PaperFigureOneTransitions) {
  // unsubmitted -> pending -> running -> dead -> pending (resubmit)
  TaskState s = TaskState::kUnsubmitted;
  s = apply_event(s, TaskEventType::kSubmit);
  EXPECT_EQ(s, TaskState::kPending);
  s = apply_event(s, TaskEventType::kSchedule);
  EXPECT_EQ(s, TaskState::kRunning);
  s = apply_event(s, TaskEventType::kFail);
  EXPECT_EQ(s, TaskState::kDead);
  s = apply_event(s, TaskEventType::kSubmit);  // resubmission
  EXPECT_EQ(s, TaskState::kPending);
}

TEST(StateMachine, UpdateKeepsState) {
  EXPECT_EQ(apply_event(TaskState::kPending, TaskEventType::kUpdate),
            TaskState::kPending);
  EXPECT_EQ(apply_event(TaskState::kRunning, TaskEventType::kUpdate),
            TaskState::kRunning);
}

TEST(StateMachine, LostCanStrikePendingTasks) {
  EXPECT_EQ(apply_event(TaskState::kPending, TaskEventType::kLost),
            TaskState::kDead);
}

TEST(StateMachine, IllegalTransitionsThrow) {
  EXPECT_THROW(apply_event(TaskState::kUnsubmitted, TaskEventType::kSchedule),
               util::Error);
  EXPECT_THROW(apply_event(TaskState::kPending, TaskEventType::kFinish),
               util::Error);
  EXPECT_THROW(apply_event(TaskState::kDead, TaskEventType::kSchedule),
               util::Error);
  EXPECT_THROW(apply_event(TaskState::kRunning, TaskEventType::kSubmit),
               util::Error);
  EXPECT_THROW(apply_event(TaskState::kDead, TaskEventType::kKill),
               util::Error);
}

TEST(StateMachine, LegalTransitionTable) {
  EXPECT_TRUE(is_legal_transition(TaskState::kUnsubmitted, TaskState::kPending));
  EXPECT_TRUE(is_legal_transition(TaskState::kPending, TaskState::kRunning));
  EXPECT_TRUE(is_legal_transition(TaskState::kPending, TaskState::kDead));
  EXPECT_TRUE(is_legal_transition(TaskState::kRunning, TaskState::kDead));
  EXPECT_TRUE(is_legal_transition(TaskState::kDead, TaskState::kPending));
  EXPECT_FALSE(is_legal_transition(TaskState::kUnsubmitted, TaskState::kRunning));
  EXPECT_FALSE(is_legal_transition(TaskState::kDead, TaskState::kRunning));
}

TEST(TaskRecord, RunDuration) {
  Task t;
  t.submit_time = 100;
  t.schedule_time = 150;
  t.end_time = 450;
  EXPECT_EQ(t.run_duration(), 300);
  EXPECT_TRUE(t.completed());

  t.end_time = -1;
  EXPECT_EQ(t.run_duration(), 0);
  EXPECT_FALSE(t.completed());

  t.schedule_time = -1;
  t.end_time = 200;
  EXPECT_EQ(t.run_duration(), 0);  // never ran
}

TEST(JobRecord, LengthDefinition) {
  Job j;
  j.submit_time = 1000;
  j.end_time = 4600;
  EXPECT_EQ(j.length(), 3600);
  j.end_time = -1;
  EXPECT_EQ(j.length(), -1);
  EXPECT_FALSE(j.completed());
}

}  // namespace
}  // namespace cgc::trace
