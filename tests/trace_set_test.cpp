// Tests for TraceSet: indexing, sorting, derived sample vectors.
#include <gtest/gtest.h>

#include "trace/trace_set.hpp"
#include "util/check.hpp"

namespace cgc::trace {
namespace {

TraceSet make_small_trace() {
  TraceSet trace("test");
  trace.set_duration(4 * util::kSecondsPerHour);

  Machine m;
  m.machine_id = 7;
  m.cpu_capacity = 0.5f;
  m.mem_capacity = 0.5f;
  trace.add_machine(m);

  // Two jobs: job 1 with two tasks, job 2 with one (unfinished).
  Job j1;
  j1.job_id = 1;
  j1.priority = 3;
  j1.submit_time = 100;
  j1.end_time = 1100;
  j1.num_tasks = 2;
  trace.add_job(j1);
  Job j2;
  j2.job_id = 2;
  j2.priority = 10;
  j2.submit_time = 7200;
  j2.end_time = -1;
  trace.add_job(j2);

  Task t1;
  t1.job_id = 1;
  t1.task_index = 0;
  t1.priority = 3;
  t1.submit_time = 100;
  t1.schedule_time = 110;
  t1.end_time = 510;
  trace.add_task(t1);
  Task t2 = t1;
  t2.task_index = 1;
  t2.schedule_time = 120;
  t2.end_time = 1100;
  trace.add_task(t2);
  Task t3;
  t3.job_id = 2;
  t3.task_index = 0;
  t3.priority = 10;
  t3.submit_time = 7200;
  t3.schedule_time = 7210;
  t3.end_time = -1;
  trace.add_task(t3);

  // Events deliberately added out of order: finalize() must sort.
  trace.add_event({510, 1, 0, 7, TaskEventType::kFinish, 3});
  trace.add_event({100, 1, 0, -1, TaskEventType::kSubmit, 3});
  trace.add_event({110, 1, 0, 7, TaskEventType::kSchedule, 3});

  HostLoadSeries h(7, 0, util::kSamplePeriod);
  const float cpu[kNumBands] = {0.1f, 0.05f, 0.02f};
  const float mem[kNumBands] = {0.2f, 0.1f, 0.05f};
  h.append(cpu, mem, 0.4f, 0.1f, 3, 0);
  h.append(cpu, mem, 0.45f, 0.2f, 4, 1);
  trace.add_host_load(std::move(h));

  trace.finalize();
  return trace;
}

TEST(TraceSet, FinalizeSortsEventsByTime) {
  const TraceSet trace = make_small_trace();
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, TaskEventType::kSubmit);
  EXPECT_EQ(events[1].type, TaskEventType::kSchedule);
  EXPECT_EQ(events[2].type, TaskEventType::kFinish);
}

TEST(TraceSet, MachineLookup) {
  const TraceSet trace = make_small_trace();
  ASSERT_TRUE(trace.machine_by_id(7).has_value());
  EXPECT_FLOAT_EQ(trace.machine_by_id(7)->cpu_capacity, 0.5f);
  EXPECT_FALSE(trace.machine_by_id(99).has_value());
}

TEST(TraceSet, JobLookupAndTaskRanges) {
  const TraceSet trace = make_small_trace();
  ASSERT_NE(trace.job_by_id(1), nullptr);
  EXPECT_EQ(trace.job_by_id(1)->num_tasks, 2);
  EXPECT_EQ(trace.job_by_id(42), nullptr);
  EXPECT_EQ(trace.tasks_for_job(1).size(), 2u);
  EXPECT_EQ(trace.tasks_for_job(2).size(), 1u);
  EXPECT_EQ(trace.tasks_for_job(42).size(), 0u);
  // Tasks within a job sorted by index.
  EXPECT_EQ(trace.tasks_for_job(1)[0].task_index, 0);
  EXPECT_EQ(trace.tasks_for_job(1)[1].task_index, 1);
}

TEST(TraceSet, HostLoadLookup) {
  const TraceSet trace = make_small_trace();
  ASSERT_NE(trace.host_load_for(7), nullptr);
  EXPECT_EQ(trace.host_load_for(7)->size(), 2u);
  EXPECT_EQ(trace.host_load_for(5), nullptr);
}

TEST(TraceSet, SummaryCounts) {
  const TraceSet trace = make_small_trace();
  const TraceSummary s = trace.summary();
  EXPECT_EQ(s.num_jobs, 2u);
  EXPECT_EQ(s.num_tasks, 3u);
  EXPECT_EQ(s.num_events, 3u);
  EXPECT_EQ(s.num_machines, 1u);
  EXPECT_EQ(s.num_samples, 2u);
  // One terminal event (FINISH), zero abnormal.
  EXPECT_DOUBLE_EQ(s.abnormal_completion_fraction, 0.0);
}

TEST(TraceSet, JobLengthsSkipUnfinished) {
  const TraceSet trace = make_small_trace();
  const auto lengths = trace.job_lengths();
  ASSERT_EQ(lengths.size(), 1u);
  EXPECT_DOUBLE_EQ(lengths[0], 1000.0);
}

TEST(TraceSet, TaskRunDurationsSkipUnfinished) {
  const TraceSet trace = make_small_trace();
  const auto durations = trace.task_run_durations();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_DOUBLE_EQ(durations[0], 400.0);
  EXPECT_DOUBLE_EQ(durations[1], 980.0);
}

TEST(TraceSet, SubmissionIntervals) {
  const TraceSet trace = make_small_trace();
  const auto intervals = trace.submission_intervals();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0], 7100.0);
}

TEST(TraceSet, JobsPerHourBins) {
  const TraceSet trace = make_small_trace();
  const auto hourly = trace.jobs_per_hour();
  ASSERT_EQ(hourly.size(), 4u);
  EXPECT_DOUBLE_EQ(hourly[0], 1.0);  // job 1 at t=100
  EXPECT_DOUBLE_EQ(hourly[1], 0.0);
  EXPECT_DOUBLE_EQ(hourly[2], 1.0);  // job 2 at t=7200
}

TEST(TraceSet, MemUsageScaling) {
  TraceSet cloud("c");
  Job j;
  j.job_id = 1;
  j.submit_time = 0;
  j.end_time = 10;
  j.mem_usage = 0.01f;  // normalized
  cloud.add_job(j);
  cloud.set_duration(100);
  cloud.finalize();
  // 0.01 of a 32 GB node = 327.68 MB.
  EXPECT_NEAR(cloud.job_mem_usage(32.0)[0], 327.68, 0.01);
  // Grid traces are already in MB: scaling must not apply.
  TraceSet grid("g");
  grid.set_memory_in_mb(true);
  j.mem_usage = 500.0f;
  grid.add_job(j);
  grid.set_duration(100);
  grid.finalize();
  EXPECT_DOUBLE_EQ(grid.job_mem_usage(32.0)[0], 500.0);
}

TEST(TraceSet, QueriesBeforeFinalizeThrow) {
  TraceSet trace("t");
  trace.add_job({});
  EXPECT_THROW(trace.job_by_id(1), util::Error);
  EXPECT_THROW(trace.machine_by_id(1), util::Error);
}

TEST(TraceSet, DurationInferredFromEvents) {
  TraceSet trace("t");
  trace.add_event({5000, 1, 0, -1, TaskEventType::kSubmit, 1});
  trace.finalize();
  EXPECT_EQ(trace.duration(), 5000);
}

TEST(HostLoadSeries, BandAccessorsAndMaxima) {
  HostLoadSeries h(1, 0, 300);
  const float cpu1[kNumBands] = {0.1f, 0.2f, 0.3f};
  const float mem1[kNumBands] = {0.05f, 0.05f, 0.1f};
  const float cpu2[kNumBands] = {0.05f, 0.1f, 0.15f};
  h.append(cpu1, mem1, 0.5f, 0.2f, 10, 0);
  h.append(cpu2, mem1, 0.6f, 0.1f, 8, 2);
  EXPECT_FLOAT_EQ(h.cpu_total(0), 0.6f);
  EXPECT_FLOAT_EQ(h.cpu_from_band(PriorityBand::kMid, 0), 0.5f);
  EXPECT_FLOAT_EQ(h.cpu_from_band(PriorityBand::kHigh, 0), 0.3f);
  EXPECT_FLOAT_EQ(h.max_cpu(), 0.6f);
  EXPECT_FLOAT_EQ(h.max_mem_assigned(), 0.6f);
  EXPECT_FLOAT_EQ(h.max_page_cache(), 0.2f);
  EXPECT_EQ(h.time_at(1), 300);
  // Relative series clamps into [0,1].
  const auto rel = h.cpu_relative(0.5, PriorityBand::kLow);
  EXPECT_DOUBLE_EQ(rel[0], 1.0);  // 0.6/0.5 clamped
  EXPECT_NEAR(rel[1], 0.6, 1e-6);
}

}  // namespace
}  // namespace cgc::trace
