// Tests for the empirical CDF and the two-sample KS statistic.
#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(Ecdf, BasicEvaluation) {
  const Ecdf e(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e(100.0), 1.0);
}

TEST(Ecdf, MonotoneNonDecreasing) {
  util::Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back(rng.normal(0.0, 2.0));
  }
  const Ecdf e(std::move(sample));
  double prev = 0.0;
  for (double x = -6.0; x <= 6.0; x += 0.05) {
    const double f = e(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Ecdf, QuantileIsLeftInverse) {
  const Ecdf e(std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 10.0);
}

TEST(Ecdf, QuantileRoundTripProperty) {
  util::Rng rng(42);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) {
    sample.push_back(rng.exponential(0.1));
  }
  const Ecdf e(std::move(sample));
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    // F(F^{-1}(q)) >= q and the previous sample is below q.
    EXPECT_GE(e(e.quantile(q)), q - 1e-12);
  }
}

TEST(Ecdf, MinMaxMean) {
  const Ecdf e(std::vector<double>{3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 3.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
}

TEST(Ecdf, PlotPointsEndAtOne) {
  util::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 987; ++i) {
    sample.push_back(rng.uniform());
  }
  const Ecdf e(std::move(sample));
  const auto points = e.plot_points(100);
  EXPECT_LE(points.size(), 120u);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
}

TEST(Ecdf, EmptyQuantileThrows) {
  const Ecdf e;
  EXPECT_TRUE(e.empty());
  EXPECT_THROW(e.quantile(0.5), util::Error);
}

TEST(KsStatistic, IdenticalSamplesHaveZeroDistance) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const Ecdf a(v);
  const Ecdf b(v);
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.0);
}

TEST(KsStatistic, DisjointSamplesHaveDistanceOne) {
  const Ecdf a(std::vector<double>{1.0, 2.0});
  const Ecdf b(std::vector<double>{10.0, 20.0});
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatistic, SameDistributionIsSmallDifferentIsLarge) {
  util::Rng rng(77);
  const Exponential expo(10.0);
  const LogNormal logn(10.0, 1.5);
  const Ecdf e1(sample_many(expo, 4000, rng));
  const Ecdf e2(sample_many(expo, 4000, rng));
  const Ecdf l1(sample_many(logn, 4000, rng));
  EXPECT_LT(ks_statistic(e1, e2), 0.05);
  EXPECT_GT(ks_statistic(e1, l1), 0.15);
}

}  // namespace
}  // namespace cgc::stats
