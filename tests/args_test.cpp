// util::Args contract tests: the one CLI parser every tool shares.
// The behavioural contract under test is the one stated in
// util/args.hpp: both --name value and --name=value forms, --help,
// unknown-flag and malformed-value rejection, repeatable list flags,
// and positional collection (including "-" as a flag value so
// `--input -` keeps working).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/args.hpp"
#include "util/check.hpp"

namespace cgc::util {
namespace {

/// Runs args.parse over a brace-list of C-string tokens (argv[0] is
/// the program name, as in a real invocation).
ParseStatus parse(Args& args, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return args.parse(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()));
}

Args make_args() {
  Args args("prog", "test tool");
  args.add_string("name", "default", "a string");
  args.add_int("count", 7, "an integer");
  args.add_double("rate", 0.5, "a double");
  args.add_bool("verbose", "a bool");
  args.add_list("query", "a repeatable list");
  return args;
}

TEST(ArgsTest, DefaultsApplyWhenFlagsAbsent) {
  Args args = make_args();
  ASSERT_EQ(parse(args, {}), ParseStatus::kOk);
  EXPECT_EQ(args.get_string("name"), "default");
  EXPECT_EQ(args.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 0.5);
  EXPECT_FALSE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_list("query").empty());
  EXPECT_FALSE(args.provided("name"));
}

TEST(ArgsTest, SeparateAndInlineValueFormsAreEquivalent) {
  Args a = make_args();
  ASSERT_EQ(parse(a, {"--name", "x", "--count", "3", "--rate", "2.5"}),
            ParseStatus::kOk);
  Args b = make_args();
  ASSERT_EQ(parse(b, {"--name=x", "--count=3", "--rate=2.5"}),
            ParseStatus::kOk);
  for (Args* args : {&a, &b}) {
    EXPECT_EQ(args->get_string("name"), "x");
    EXPECT_EQ(args->get_int("count"), 3);
    EXPECT_DOUBLE_EQ(args->get_double("rate"), 2.5);
    EXPECT_TRUE(args->provided("name"));
  }
}

TEST(ArgsTest, BoolIsPresenceWithOptionalInlineValue) {
  Args a = make_args();
  ASSERT_EQ(parse(a, {"--verbose"}), ParseStatus::kOk);
  EXPECT_TRUE(a.get_bool("verbose"));

  Args b = make_args();
  ASSERT_EQ(parse(b, {"--verbose=false"}), ParseStatus::kOk);
  EXPECT_FALSE(b.get_bool("verbose"));
  EXPECT_TRUE(b.provided("verbose"));

  // A bare bool flag must not eat the next token as its value.
  Args c = make_args();
  ASSERT_EQ(parse(c, {"--verbose", "pos"}), ParseStatus::kOk);
  EXPECT_TRUE(c.get_bool("verbose"));
  ASSERT_EQ(c.positionals().size(), 1u);
  EXPECT_EQ(c.positionals()[0], "pos");
}

TEST(ArgsTest, ListFlagsRepeat) {
  Args args = make_args();
  ASSERT_EQ(parse(args, {"--query", "a", "--query=b", "--query", "c"}),
            ParseStatus::kOk);
  EXPECT_EQ(args.get_list("query"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ArgsTest, PositionalsCollectInOrderIncludingDash) {
  Args args = make_args();
  ASSERT_EQ(parse(args, {"first", "--name", "-", "second"}),
            ParseStatus::kOk);
  // "-" was consumed as --name's value, not as a positional.
  EXPECT_EQ(args.get_string("name"), "-");
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(ArgsTest, HelpShortCircuits) {
  Args args = make_args();
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(parse(args, {"--help", "--bogus"}), ParseStatus::kHelp);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("usage: prog"), std::string::npos);
  EXPECT_NE(out.find("--count"), std::string::npos);
}

TEST(ArgsTest, UnknownFlagIsAnError) {
  Args args = make_args();
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse(args, {"--bogus"}), ParseStatus::kError);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unknown flag --bogus"), std::string::npos);
  EXPECT_NE(err.find("usage: prog"), std::string::npos);
}

TEST(ArgsTest, MalformedValuesAreErrors) {
  for (const char* bad : {"--count=abc", "--count=12x", "--rate=zz",
                          "--verbose=maybe"}) {
    Args args = make_args();
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(parse(args, {bad}), ParseStatus::kError) << bad;
    ::testing::internal::GetCapturedStderr();
  }
}

TEST(ArgsTest, MissingValueIsAnError) {
  Args args = make_args();
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse(args, {"--name"}), ParseStatus::kError);
  ::testing::internal::GetCapturedStderr();
}

TEST(ArgsTest, NegativeNumbersParse) {
  Args args = make_args();
  ASSERT_EQ(parse(args, {"--count", "-3", "--rate", "-0.25"}),
            ParseStatus::kOk);
  EXPECT_EQ(args.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), -0.25);
}

TEST(ArgsTest, UndeclaredOrWrongTypeAccessIsAProgrammerError) {
  Args args = make_args();
  ASSERT_EQ(parse(args, {}), ParseStatus::kOk);
  EXPECT_THROW(args.get_string("nope"), cgc::util::Error);
  EXPECT_THROW(args.get_int("name"), cgc::util::Error);
  EXPECT_THROW(args.provided("nope"), cgc::util::Error);
}

TEST(ArgsTest, UsageListsFlagsDefaultsAndNotes) {
  Args args = make_args();
  args.set_positional_help("<file>", "the input file");
  args.add_usage_note("Exit codes: 0 ok; 2 usage.");
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("usage: prog [flags] <file>"), std::string::npos);
  EXPECT_NE(usage.find("(default 7)"), std::string::npos);
  EXPECT_NE(usage.find("(default 0.5)"), std::string::npos);
  EXPECT_NE(usage.find("Exit codes: 0 ok; 2 usage."), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace cgc::util
