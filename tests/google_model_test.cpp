// Calibration tests for the Google workload model: the generated trace
// must reproduce the paper's reported statistics (within tolerance).
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/calibration.hpp"
#include "gen/google_model.hpp"
#include "stats/descriptive.hpp"
#include "stats/fairness.hpp"
#include "trace/validate.hpp"
#include "util/check.hpp"

namespace cgc::gen {
namespace {

/// One shared workload for all calibration checks (generation is cheap
/// but not free; 4 days at full rate ~ 50k jobs).
const trace::TraceSet& workload() {
  static const trace::TraceSet trace = [] {
    GoogleWorkloadModel model;
    return model.generate_workload(4 * util::kSecondsPerDay);
  }();
  return trace;
}

TEST(GoogleModel, GeneratedTraceIsValid) {
  trace::validate_or_throw(workload());
}

TEST(GoogleModel, SubmissionRateMatchesTableI) {
  const auto hourly = workload().jobs_per_hour();
  const auto s = stats::summarize(std::span<const double>(hourly));
  // Paper: avg 552 jobs/hour.
  EXPECT_NEAR(s.mean() / paper::kTableI[0].avg_per_hour, 1.0, 0.15);
}

TEST(GoogleModel, SubmissionFairnessIsHigh) {
  const auto hourly = workload().jobs_per_hour();
  // Paper: fairness 0.94 — far above any Grid system.
  EXPECT_GT(stats::jain_fairness(hourly), 0.85);
}

TEST(GoogleModel, PriorityHistogramMatchesFig2) {
  std::array<std::int64_t, 12> counts{};
  for (const trace::Job& j : workload().jobs()) {
    ++counts[static_cast<std::size_t>(j.priority - 1)];
  }
  const auto total = static_cast<double>(workload().jobs().size());
  // Low band (1-4) dominates: paper shows ~85% of jobs there.
  const double low_share =
      static_cast<double>(counts[0] + counts[1] + counts[2] + counts[3]) /
      total;
  EXPECT_GT(low_share, 0.70);
  // Priority 3 is the largest bar (17e4 of 67e4).
  const auto max_it = std::max_element(counts.begin(), counts.begin() + 4);
  EXPECT_EQ(max_it - counts.begin(), 2);  // zero-based priority 3
  // All twelve priorities occur.
  for (int p = 0; p < 12; ++p) {
    EXPECT_GT(counts[static_cast<std::size_t>(p)], 0) << "priority " << p + 1;
  }
}

TEST(GoogleModel, JobLengthCdfMatchesFig3) {
  const auto lengths = workload().job_lengths();
  ASSERT_GT(lengths.size(), 1000u);
  // Paper: "over 80% Google jobs' lengths are shorter than 1000 seconds";
  // our generator lands in the high-70s — band-accurate for Fig 3.
  EXPECT_GT(stats::fraction_below(lengths, 1000.0), 0.70);
  EXPECT_LT(stats::fraction_below(lengths, 1000.0), 0.92);
}

TEST(GoogleModel, TaskLengthQuantilesMatchSectionIII) {
  const auto durations = workload().task_run_durations();
  ASSERT_GT(durations.size(), 10000u);
  // ~55% under 10 minutes.
  EXPECT_NEAR(stats::fraction_below(durations, 600.0), 0.55, 0.12);
  // ~90% under 1 hour.
  EXPECT_NEAR(stats::fraction_below(durations, 3600.0), 0.90, 0.06);
  // ~94% under 3 hours.
  EXPECT_NEAR(stats::fraction_below(durations, 3.0 * 3600), 0.94, 0.05);
}

TEST(GoogleModel, SingleTaskJobsDominate) {
  std::size_t single = 0;
  for (const trace::Job& j : workload().jobs()) {
    if (j.num_tasks == 1) {
      ++single;
    }
  }
  const double share =
      static_cast<double>(single) /
      static_cast<double>(workload().jobs().size());
  EXPECT_NEAR(share, 0.75, 0.05);
}

TEST(GoogleModel, JobCpuUsageIsSubCoreMostly) {
  const auto cpu = workload().job_cpu_usage();
  // Fig 6a: the large majority of Google jobs need at most ~1 processor.
  EXPECT_GT(stats::fraction_below(cpu, 1.0), 0.75);
  EXPECT_GT(stats::fraction_below(cpu, 2.0), 0.95);
}

TEST(GoogleModel, MachineCapacitiesMatchFig7Groups) {
  GoogleWorkloadModel model;
  const auto machines = model.make_machines(4000);
  ASSERT_EQ(machines.size(), 4000u);
  std::map<float, int> cpu_groups, mem_groups;
  for (const trace::Machine& m : machines) {
    ++cpu_groups[m.cpu_capacity];
    ++mem_groups[m.mem_capacity];
    EXPECT_FLOAT_EQ(m.page_cache_capacity, 1.0f);
  }
  // Attribute bits are assigned with the configured density.
  std::size_t with_ssd = 0;
  for (const trace::Machine& m : machines) {
    if (m.satisfies(trace::kAttrLocalSsd)) {
      ++with_ssd;
    }
  }
  EXPECT_NEAR(static_cast<double>(with_ssd) / 4000.0,
              GoogleModelConfig{}.machine_attribute_density, 0.05);
  // Exactly the capacity values of Fig 7's dashed lines.
  ASSERT_EQ(cpu_groups.size(), 3u);
  EXPECT_TRUE(cpu_groups.count(0.25f));
  EXPECT_TRUE(cpu_groups.count(0.5f));
  EXPECT_TRUE(cpu_groups.count(1.0f));
  ASSERT_EQ(mem_groups.size(), 4u);
  EXPECT_TRUE(mem_groups.count(0.75f));
  // The middle CPU class dominates.
  EXPECT_GT(cpu_groups[0.5f], cpu_groups[1.0f]);
  EXPECT_GT(cpu_groups[0.5f], cpu_groups[0.25f]);
}

TEST(GoogleModel, SimWorkloadHasScriptedFateMix) {
  GoogleModelConfig config;
  config.scavenger_per_machine = 0;  // isolate the primary stream's mix
  GoogleWorkloadModel model(config);
  const sim::Workload specs =
      model.generate_sim_workload(util::kSecondsPerDay, 16);
  ASSERT_GT(specs.size(), 500u);
  std::size_t fails = 0, kills = 0, losts = 0;
  for (const sim::TaskSpec& s : specs) {
    switch (s.fate) {
      case trace::TaskEventType::kFail:
        ++fails;
        EXPECT_TRUE(s.resubmit_on_abnormal);
        EXPECT_GT(s.abnormal_after, 0);
        break;
      case trace::TaskEventType::kKill:
        ++kills;
        EXPECT_FALSE(s.resubmit_on_abnormal);
        break;
      case trace::TaskEventType::kLost:
        ++losts;
        break;
      default:
        break;
    }
  }
  const double n = static_cast<double>(specs.size());
  EXPECT_NEAR(fails / n, model.config().fail_fraction, 0.04);
  EXPECT_NEAR(kills / n, model.config().kill_fraction, 0.04);
  EXPECT_NEAR(losts / n, model.config().lost_fraction, 0.02);
}

TEST(GoogleModel, SimWorkloadPrioritiesAreValid) {
  GoogleWorkloadModel model;
  const sim::Workload specs =
      model.generate_sim_workload(util::kSecondsPerDay / 2, 8);
  for (const sim::TaskSpec& s : specs) {
    EXPECT_GE(s.priority, trace::kMinPriority);
    EXPECT_LE(s.priority, trace::kMaxPriority);
    EXPECT_GT(s.duration, 0);
    EXPECT_GT(s.cpu_request, 0.0f);
    EXPECT_GT(s.mem_request, 0.0f);
    EXPECT_GE(s.cpu_usage_ratio, 0.0f);
    // Bursty tasks may use idle cycles beyond their request, but the
    // simulator clamps at machine capacity.
    EXPECT_LE(s.cpu_usage_ratio, 2.0f);
  }
}

TEST(GoogleModel, DeterministicForSameSeed) {
  GoogleWorkloadModel a, b;
  const auto ta = a.generate_workload(util::kSecondsPerHour * 6);
  const auto tb = b.generate_workload(util::kSecondsPerHour * 6);
  ASSERT_EQ(ta.jobs().size(), tb.jobs().size());
  for (std::size_t i = 0; i < ta.jobs().size(); ++i) {
    EXPECT_EQ(ta.jobs()[i].submit_time, tb.jobs()[i].submit_time);
    EXPECT_EQ(ta.jobs()[i].priority, tb.jobs()[i].priority);
  }
}

TEST(GoogleModel, DifferentSeedsDiffer) {
  GoogleModelConfig config;
  config.seed = 1;
  GoogleWorkloadModel a(config);
  config.seed = 2;
  GoogleWorkloadModel b(config);
  const auto ta = a.generate_workload(util::kSecondsPerHour * 6);
  const auto tb = b.generate_workload(util::kSecondsPerHour * 6);
  EXPECT_NE(ta.jobs().size(), tb.jobs().size());
}

TEST(GoogleModel, InvalidConfigThrows) {
  GoogleModelConfig config;
  config.fail_fraction = 0.9;
  config.kill_fraction = 0.2;  // sums past 1
  EXPECT_THROW(GoogleWorkloadModel{config}, util::Error);
}

TEST(GoogleModel, TasksAreCensoredAtHorizon) {
  GoogleWorkloadModel model;
  const auto trace = model.generate_workload(util::kSecondsPerDay);
  for (const trace::Task& t : trace.tasks()) {
    if (t.completed()) {
      EXPECT_LE(t.end_time, trace.duration());
    }
  }
}

}  // namespace
}  // namespace cgc::gen
