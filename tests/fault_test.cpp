// Tests for cgc::fault: spec parsing, trigger semantics, error-kind
// mapping, and — the property everything else leans on — determinism
// of fire decisions at any worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::fault {
namespace {

/// Every test leaves the process disarmed, whatever happens inside.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { configure(""); }
};

TEST_F(FaultTest, DisarmedByDefault) {
  configure("");
  EXPECT_FALSE(armed());
  EXPECT_FALSE(inject("store.chunk_crc", 0));
  EXPECT_NO_THROW(maybe_throw("store.chunk_crc", 0));
  EXPECT_EQ(active_spec(), "");
}

TEST_F(FaultTest, MalformedSpecsThrowFatal) {
  EXPECT_THROW(configure("site"), util::FatalError);          // no items
  EXPECT_THROW(configure("site:"), util::FatalError);         // empty items
  EXPECT_THROW(configure("site:seed=1"), util::FatalError);   // no trigger
  EXPECT_THROW(configure("site:p=2"), util::FatalError);      // p out of range
  EXPECT_THROW(configure("site:p=-0.5"), util::FatalError);
  EXPECT_THROW(configure("site:every=0"), util::FatalError);
  EXPECT_THROW(configure("site:every=x"), util::FatalError);
  EXPECT_THROW(configure("site:bogus=1"), util::FatalError);  // unknown key
  EXPECT_THROW(configure("site:kind=nope,p=1"), util::FatalError);
  EXPECT_THROW(configure(":p=1"), util::FatalError);          // empty site
  // A failed configure must not leave a half-armed state.
  EXPECT_FALSE(armed());
}

TEST_F(FaultTest, EveryTrigger) {
  configure("s:every=10");
  EXPECT_TRUE(armed());
  EXPECT_EQ(active_spec(), "s:every=10");
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(inject("s", key), key % 10 == 0) << key;
  }
  EXPECT_FALSE(inject("other_site", 0));  // unnamed sites never fire
}

TEST_F(FaultTest, OnceTrigger) {
  configure("s:once=42");
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(inject("s", key), key == 42) << key;
  }
  // `once` is keyed, not counted: asking again gives the same answer.
  EXPECT_TRUE(inject("s", 42));
}

TEST_F(FaultTest, ProbabilityExtremes) {
  configure("s:p=1");
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_TRUE(inject("s", key));
  }
  configure("s:p=0");
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(inject("s", key));
  }
}

TEST_F(FaultTest, ProbabilityRoughlyCalibrated) {
  configure("s:p=0.1,seed=7");
  int fired = 0;
  for (std::uint64_t key = 0; key < 10000; ++key) {
    fired += inject("s", key) ? 1 : 0;
  }
  // ~30 sigma around the binomial mean of 1000 — deterministic anyway,
  // the bound only documents the intent.
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
}

TEST_F(FaultTest, ProbabilityIsPureInSpecSiteKey) {
  const auto fired_set = [](const std::string& spec) {
    configure(spec);
    std::set<std::uint64_t> fired;
    for (std::uint64_t key = 0; key < 2000; ++key) {
      if (inject("s", key)) {
        fired.insert(key);
      }
    }
    return fired;
  };
  const auto a = fired_set("s:p=0.05,seed=42");
  const auto b = fired_set("s:p=0.05,seed=42");
  EXPECT_EQ(a, b);  // same spec -> identical decisions
  const auto c = fired_set("s:p=0.05,seed=43");
  EXPECT_NE(a, c);  // different seed -> different pattern
}

TEST_F(FaultTest, SitesAreIndependent) {
  configure("a:every=2;b:every=3,seed=5");
  for (std::uint64_t key = 0; key < 30; ++key) {
    EXPECT_EQ(inject("a", key), key % 2 == 0);
    EXPECT_EQ(inject("b", key), key % 3 == 0);
  }
}

TEST_F(FaultTest, MaybeThrowKinds) {
  configure("s:every=1");
  EXPECT_THROW(maybe_throw("s", 0), util::DataError);  // default fallback
  EXPECT_THROW(maybe_throw("s", 0, ErrorKind::kTransient),
               util::TransientError);
  configure("s:every=1,kind=transient");
  EXPECT_THROW(maybe_throw("s", 0), util::TransientError);
  configure("s:every=1,kind=data");
  EXPECT_THROW(maybe_throw("s", 0, ErrorKind::kTransient), util::DataError);
  configure("s:every=1,kind=fatal");
  EXPECT_THROW(maybe_throw("s", 0), util::FatalError);
  // The error message names the site, so a surfaced failure is
  // attributable.
  try {
    maybe_throw("s", 7);
    FAIL() << "expected an injected error";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("s"), std::string::npos);
  }
}

TEST_F(FaultTest, DecisionsIndependentOfWorkerCount) {
  configure("s:p=0.2,seed=11");
  constexpr std::uint64_t kKeys = 4096;

  const auto collect = [] {
    std::vector<char> fired(kKeys, 0);
    exec::parallel_for_chunked(
        0, kKeys, [&fired](std::size_t lo, std::size_t hi) {
          for (std::size_t key = lo; key < hi; ++key) {
            fired[key] = inject("s", key) ? 1 : 0;
          }
        });
    return fired;
  };

  util::ThreadPool one(1);
  std::vector<char> serial;
  {
    exec::ScopedPool scoped(&one);
    serial = collect();
  }
  util::ThreadPool eight(8);
  std::vector<char> parallel;
  {
    exec::ScopedPool scoped(&eight);
    parallel = collect();
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace cgc::fault
