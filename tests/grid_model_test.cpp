// Calibration tests for the Grid system presets (Table I and the
// Section III comparisons).
#include <gtest/gtest.h>

#include "gen/calibration.hpp"
#include "gen/grid_model.hpp"
#include "stats/descriptive.hpp"
#include "stats/fairness.hpp"
#include "trace/validate.hpp"
#include "util/check.hpp"

namespace cgc::gen {
namespace {

/// Per-preset calibration sweep.
class GridPresetTest : public ::testing::TestWithParam<GridSystemPreset> {
 protected:
  trace::TraceSet generate(util::TimeSec horizon =
                               14 * util::kSecondsPerDay) const {
    return GridWorkloadModel(GetParam()).generate_workload(horizon);
  }
};

TEST_P(GridPresetTest, TraceIsValid) {
  trace::validate_or_throw(generate(4 * util::kSecondsPerDay));
}

TEST_P(GridPresetTest, MeanSubmissionRateInBand) {
  const trace::TraceSet trace = generate();
  const auto hourly = trace.jobs_per_hour();
  const double mean = stats::summarize(std::span<const double>(hourly)).mean();
  // Bursty processes have noisy realized means; require the right scale.
  EXPECT_GT(mean, GetParam().jobs_per_hour * 0.4) << GetParam().name;
  EXPECT_LT(mean, GetParam().jobs_per_hour * 3.0) << GetParam().name;
}

TEST_P(GridPresetTest, FairnessIsGridLike) {
  const trace::TraceSet trace = generate();
  const double fairness = stats::jain_fairness(trace.jobs_per_hour());
  // Every Grid system in Table I is far below Google's 0.94.
  EXPECT_LT(fairness, 0.75) << GetParam().name;
  EXPECT_GT(fairness, 0.005) << GetParam().name;
}

TEST_P(GridPresetTest, JobLengthsRespectCap) {
  const trace::TraceSet trace = generate();
  const auto lengths = trace.job_lengths();
  ASSERT_FALSE(lengths.empty()) << GetParam().name;
  for (const double l : lengths) {
    // Wait time rides on top of the execution-time cap.
    EXPECT_LE(l, GetParam().max_length_s + 12 * 3600.0) << GetParam().name;
  }
}

TEST_P(GridPresetTest, JobsAreLongerThanCloudJobs) {
  const trace::TraceSet trace = generate();
  const auto lengths = trace.job_lengths();
  // Fig 3: most Grid jobs exceed 2000 s while most Google jobs sit under
  // 1000 s. DAS-2 (interactive research cluster) is the one exception the
  // paper's own plot shows as short.
  if (GetParam().name == "DAS-2") {
    return;
  }
  EXPECT_GT(stats::median(lengths), 2000.0) << GetParam().name;
}

TEST_P(GridPresetTest, ParallelismMatchesPreset) {
  const trace::TraceSet trace = generate(4 * util::kSecondsPerDay);
  int max_procs = 0;
  for (const ProcsChoice& c : GetParam().procs) {
    max_procs = std::max(max_procs, c.procs);
  }
  for (const trace::Job& j : trace.jobs()) {
    EXPECT_GE(j.cpu_parallelism, 0.4f) << GetParam().name;
    EXPECT_LE(j.cpu_parallelism, static_cast<float>(max_procs))
        << GetParam().name;
  }
}

TEST_P(GridPresetTest, MemoryIsInMegabytes) {
  const trace::TraceSet trace = generate(2 * util::kSecondsPerDay);
  EXPECT_TRUE(trace.memory_in_mb());
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, GridPresetTest, ::testing::ValuesIn(presets::all()),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(GridPresets, AllEightSystemsPresent) {
  const auto all = presets::all();
  ASSERT_EQ(all.size(), 8u);
  // The seven Table I grids plus DAS-2 (used in Fig 6).
  EXPECT_EQ(all[0].name, "AuverGrid");
  EXPECT_EQ(all[1].name, "NorduGrid");
  EXPECT_EQ(all[2].name, "SHARCNET");
  EXPECT_EQ(all[7].name, "DAS-2");
}

TEST(GridPresets, TableIRatesEncoded) {
  // Spot-check the preset rates against the calibration table.
  EXPECT_DOUBLE_EQ(presets::auvergrid().jobs_per_hour, 45);
  EXPECT_DOUBLE_EQ(presets::sharcnet().jobs_per_hour, 126);
  EXPECT_DOUBLE_EQ(presets::llnl_atlas().jobs_per_hour, 8.4);
  EXPECT_DOUBLE_EQ(presets::anl().target_fairness, 0.51);
  EXPECT_DOUBLE_EQ(presets::metacentrum().target_fairness, 0.04);
}

TEST(GridModel, AuverGridTaskLengthCalibration) {
  // Section III.2: AuverGrid mean task ~7.2 h; ~70% under 12 h. Use a
  // month so the long tail is represented.
  GridWorkloadModel model(presets::auvergrid());
  const trace::TraceSet trace =
      model.generate_workload(util::kSecondsPerMonth);
  const auto durations = trace.task_run_durations();
  ASSERT_GT(durations.size(), 5000u);
  const double mean_h =
      stats::summarize(std::span<const double>(durations)).mean() / 3600.0;
  EXPECT_NEAR(mean_h / 7.2, 1.0, 0.35);
  EXPECT_NEAR(stats::fraction_below(durations, 12.0 * 3600), 0.75, 0.10);
}

TEST(GridModel, SimWorkloadIsGridShaped) {
  GridWorkloadModel model(presets::auvergrid());
  const sim::Workload specs =
      model.generate_sim_workload(2 * util::kSecondsPerDay, 8);
  ASSERT_FALSE(specs.empty());
  for (const sim::TaskSpec& s : specs) {
    EXPECT_EQ(s.priority, 1);  // no Google-style priorities
    EXPECT_EQ(s.fate, trace::TaskEventType::kFinish);
    EXPECT_GE(s.duration, 60);
    // Quarter-node core slots, compute-bound.
    EXPECT_NEAR(s.cpu_request, 0.98f / 4.0f, 1e-5);
    EXPECT_GT(s.cpu_usage_ratio, 0.5f);
  }
}

TEST(GridModel, ApplyGridSimDefaultsDisablesPreemption) {
  sim::SimConfig config;
  GridWorkloadModel::apply_grid_sim_defaults(&config);
  EXPECT_FALSE(config.preemption);
  EXPECT_LT(config.machine_cpu_jitter, 0.01);
  EXPECT_EQ(config.placement, sim::PlacementPolicy::kFirstFit);
}

TEST(GridModel, MachinesAreHomogeneousFullNodes) {
  GridWorkloadModel model(presets::sharcnet());
  const auto machines = model.make_machines(10);
  ASSERT_EQ(machines.size(), 10u);
  for (const trace::Machine& m : machines) {
    EXPECT_FLOAT_EQ(m.cpu_capacity, 1.0f);
    EXPECT_FLOAT_EQ(m.mem_capacity, 1.0f);
  }
}

TEST(GridModel, EmptyProcsThrows) {
  GridSystemPreset preset = presets::auvergrid();
  preset.procs.clear();
  EXPECT_THROW(GridWorkloadModel{preset}, util::Error);
}

}  // namespace
}  // namespace cgc::gen
