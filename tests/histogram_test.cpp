// Tests for Histogram and CategoryCounts.
#include <gtest/gtest.h>

#include "stats/histogram.hpp"
#include "util/check.hpp"

namespace cgc::stats {
namespace {

TEST(Histogram, BinIndexing) {
  Histogram h(0.0, 1.0, 10);
  EXPECT_EQ(h.bin_index(0.05), 0u);
  EXPECT_EQ(h.bin_index(0.95), 9u);
  EXPECT_EQ(h.bin_index(0.5), 5u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, PmfSumsToOne) {
  Histogram h(0.0, 10.0, 5);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i % 10));
  }
  double total = 0.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    total += h.pmf(b);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, PdfIsPmfOverWidth) {
  Histogram h(0.0, 2.0, 4);  // width 0.5
  h.add(0.25);
  EXPECT_DOUBLE_EQ(h.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(h.pdf(0), 2.0);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1, 3.0);
  h.add(0.9, 1.0);
  EXPECT_DOUBLE_EQ(h.pmf(0), 0.75);
  EXPECT_DOUBLE_EQ(h.pmf(1), 0.25);
}

TEST(Histogram, BinCentersAndEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), util::Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), util::Error);
}

TEST(Histogram, AddAllFromSpan) {
  Histogram h(0.0, 1.0, 2);
  const std::vector<double> values = {0.1, 0.2, 0.8};
  h.add_all(values);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(CategoryCounts, CountsAndFractions) {
  CategoryCounts c(3);
  c.add(0);
  c.add(1, 3);
  EXPECT_EQ(c.count(0), 1);
  EXPECT_EQ(c.count(1), 3);
  EXPECT_EQ(c.count(2), 0);
  EXPECT_EQ(c.total(), 4);
  EXPECT_DOUBLE_EQ(c.fraction(1), 0.75);
}

TEST(CategoryCounts, OutOfRangeThrows) {
  CategoryCounts c(2);
  EXPECT_THROW(c.add(2), util::Error);
  EXPECT_THROW(c.count(5), util::Error);
}

TEST(CategoryCounts, MergeAddsCounts) {
  CategoryCounts a(2);
  CategoryCounts b(2);
  a.add(0, 2);
  b.add(0, 1);
  b.add(1, 5);
  a.merge(b);
  EXPECT_EQ(a.count(0), 3);
  EXPECT_EQ(a.count(1), 5);
  EXPECT_EQ(a.total(), 8);
}

TEST(CategoryCounts, MergeSizeMismatchThrows) {
  CategoryCounts a(2);
  CategoryCounts b(3);
  EXPECT_THROW(a.merge(b), util::Error);
}

}  // namespace
}  // namespace cgc::stats
