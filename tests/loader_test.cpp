// Tests for the unified trace-loading facade (cgc::trace::Loader):
// format autodetection (directory / extension / magic / field sniff),
// kAuto round-trips through all four on-disk formats, and the mapping
// of LoadOptions::strictness and ::on_damage onto the per-format
// tolerant-parse and degraded-read machinery.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "store/cgcs_format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/google_format.hpp"
#include "trace/gwa_format.hpp"
#include "trace/loader.hpp"
#include "trace/swf_format.hpp"
#include "trace/trace_set.hpp"
#include "util/check.hpp"

namespace cgc::trace {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_loader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

/// Job-level trace for the SWF/GWA formats.
TraceSet make_job_trace() {
  TraceSet trace("loader-jobs");
  trace.set_memory_in_mb(true);
  for (int i = 0; i < 5; ++i) {
    Job j;
    j.job_id = i + 1;
    j.user_id = i % 2;
    j.submit_time = 600 * i;
    j.end_time = 600 * i + 1200;
    j.num_tasks = 1;
    j.cpu_parallelism = 2.0f;
    j.mem_usage = 512.0f;
    trace.add_job(j);
  }
  trace.set_duration(86400);
  trace.finalize();
  return trace;
}

/// Event-level trace for the Google CSV directory and CGCS formats.
TraceSet make_event_trace() {
  TraceSet trace("loader-events");
  Machine m;
  m.machine_id = 3;
  m.cpu_capacity = 0.5f;
  m.mem_capacity = 0.25f;
  trace.add_machine(m);
  trace.add_event({10, 1, 0, -1, TaskEventType::kSubmit, 2});
  trace.add_event({12, 1, 0, 3, TaskEventType::kSchedule, 2});
  trace.add_event({500, 1, 0, 3, TaskEventType::kFinish, 2});
  trace.add_event({20, 2, 0, -1, TaskEventType::kSubmit, 9});
  trace.add_event({25, 2, 0, 3, TaskEventType::kSchedule, 9});
  trace.add_event({900, 2, 0, 3, TaskEventType::kFinish, 9});
  trace.finalize();
  return trace;
}

void append_line(const std::string& p, const std::string& line) {
  std::ofstream out(p, std::ios::app);
  out << line;
}

TEST_F(LoaderTest, DetectByDirectoryAndExtension) {
  const std::string google_dir = path("google_trace");
  write_google_trace(make_event_trace(), google_dir);
  EXPECT_EQ(Loader::detect(google_dir), TraceFormat::kGoogleCsv);

  write_swf(make_job_trace(), path("jobs.swf"));
  EXPECT_EQ(Loader::detect(path("jobs.swf")), TraceFormat::kSwf);
  write_gwa(make_job_trace(), path("jobs.gwa"));
  EXPECT_EQ(Loader::detect(path("jobs.gwa")), TraceFormat::kGwa);
  write_gwa(make_job_trace(), path("jobs.gwf"));
  EXPECT_EQ(Loader::detect(path("jobs.gwf")), TraceFormat::kGwa);
  store::write_cgcs(make_event_trace(), path("events.cgcs"));
  EXPECT_EQ(Loader::detect(path("events.cgcs")), TraceFormat::kCgcs);

  // Extension match is case-insensitive.
  write_swf(make_job_trace(), path("JOBS.SWF"));
  EXPECT_EQ(Loader::detect(path("JOBS.SWF")), TraceFormat::kSwf);
}

TEST_F(LoaderTest, DetectByMagicWhenExtensionIsUnknown) {
  store::write_cgcs(make_event_trace(), path("blob.bin"));
  EXPECT_EQ(Loader::detect(path("blob.bin")), TraceFormat::kCgcs);
}

TEST_F(LoaderTest, DetectBySniffedFieldCount) {
  // 18 whitespace-separated fields after comments -> SWF.
  {
    std::ofstream out(path("swf_data.txt"));
    out << "; SWF fixture\n";
    out << "1 0 30 3600 4 -1 102400 4 7200 -1 1 12 -1 -1 1 -1 -1 -1\n";
  }
  EXPECT_EQ(Loader::detect(path("swf_data.txt")), TraceFormat::kSwf);

  // 11 fields -> GWA.
  {
    std::ofstream out(path("gwa_data.txt"));
    out << "# GWA fixture\n";
    out << "7 0 10 100 1 -1 -1 1 -1 -1 1\n";
  }
  EXPECT_EQ(Loader::detect(path("gwa_data.txt")), TraceFormat::kGwa);

  {
    std::ofstream out(path("junk.txt"));
    out << "this is not a trace\n";
  }
  EXPECT_THROW(Loader::detect(path("junk.txt")), util::DataError);
  EXPECT_THROW(Loader::detect(path("does_not_exist")), util::DataError);
}

TEST_F(LoaderTest, AutoRoundTripAllFourFormats) {
  const TraceSet jobs = make_job_trace();
  const TraceSet events = make_event_trace();

  const std::string google_dir = path("rt_google");
  write_google_trace(events, google_dir);
  write_swf(jobs, path("rt.swf"));
  write_gwa(jobs, path("rt.gwa"));
  store::write_cgcs(events, path("rt.cgcs"));

  const std::pair<std::string, TraceFormat> cases[] = {
      {google_dir, TraceFormat::kGoogleCsv},
      {path("rt.swf"), TraceFormat::kSwf},
      {path("rt.gwa"), TraceFormat::kGwa},
      {path("rt.cgcs"), TraceFormat::kCgcs},
  };
  for (const auto& [target, expected_format] : cases) {
    LoadReport report;
    const TraceSet loaded = load_trace(target, {}, &report);
    EXPECT_EQ(report.format, expected_format) << target;
    EXPECT_TRUE(report.clean()) << report.summary();
    if (expected_format == TraceFormat::kSwf ||
        expected_format == TraceFormat::kGwa) {
      EXPECT_EQ(loaded.jobs().size(), jobs.jobs().size()) << target;
    } else {
      EXPECT_EQ(loaded.events().size(), events.events().size()) << target;
    }
  }
}

TEST_F(LoaderTest, SystemNameDefaultsAndOverride) {
  write_swf(make_job_trace(), path("name.swf"));
  EXPECT_EQ(load_trace(path("name.swf")).system_name(), "swf-trace");
  LoadOptions options;
  options.system_name = "custom-name";
  EXPECT_EQ(load_trace(path("name.swf"), options).system_name(),
            "custom-name");
}

TEST_F(LoaderTest, StrictnessMapsToTolerantParsing) {
  write_swf(make_job_trace(), path("dirty.swf"));
  append_line(path("dirty.swf"), "garbage line that is not swf\n");

  EXPECT_THROW(load_trace(path("dirty.swf")), util::Error);

  LoadOptions tolerant;
  tolerant.strictness = Strictness::kTolerant;
  LoadReport report;
  const TraceSet loaded = load_trace(path("dirty.swf"), tolerant, &report);
  EXPECT_EQ(loaded.jobs().size(), make_job_trace().jobs().size());
  EXPECT_GE(report.parse.lines_bad, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.summary().find("bad"), std::string::npos);
}

TEST_F(LoaderTest, OnDamageMapsToDegradedReads) {
  const std::string victim = path("victim.cgcs");
  store::WriteOptions write_options;
  write_options.chunks.rows_per_chunk = 256;
  store::write_cgcs(make_event_trace(), victim, write_options);

  // Flip one byte inside the first events payload chunk.
  const store::StoreReader reader(victim);
  std::uint64_t offset = 0;
  for (const store::ChunkMeta& c : reader.chunks()) {
    if (c.section == store::SectionId::kEvents && c.payload_size > 0) {
      offset = c.offset;
      break;
    }
  }
  ASSERT_GT(offset, 0u);
  {
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x01;
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
  }

  EXPECT_THROW(load_trace(victim), util::DataError);

  LoadOptions degraded;
  degraded.on_damage = OnDamage::kQuarantine;
  LoadReport report;
  const TraceSet loaded = load_trace(victim, degraded, &report);
  EXPECT_FALSE(report.damage.clean());
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.format, TraceFormat::kCgcs);
  (void)loaded;
}

TEST_F(LoaderTest, ExplicitFormatSkipsDetection) {
  // A .txt SWF file loads when the format is forced, bypassing sniffing.
  write_swf(make_job_trace(), path("forced.txt"));
  LoadOptions options;
  options.format = TraceFormat::kSwf;
  const TraceSet loaded = load_trace(path("forced.txt"), options);
  EXPECT_EQ(loaded.jobs().size(), make_job_trace().jobs().size());
}

TEST_F(LoaderTest, DelegatingWrappersMatchLoader) {
  // The legacy per-format entry points are now thin wrappers; both
  // paths must produce identical traces.
  write_gwa(make_job_trace(), path("wrap.gwa"));
  const TraceSet via_wrapper = read_gwa(path("wrap.gwa"), "same-name");
  LoadOptions options;
  options.system_name = "same-name";
  const TraceSet via_loader = load_trace(path("wrap.gwa"), options);
  EXPECT_EQ(via_wrapper.jobs().size(), via_loader.jobs().size());
  EXPECT_EQ(via_wrapper.system_name(), via_loader.system_name());
}

}  // namespace
}  // namespace cgc::trace
