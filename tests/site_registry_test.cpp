// The executable half of the fault/metric site registry.
//
// `tools/cgc_lint.py --check site-registry` verifies every site string
// three ways: README table, DESIGN.md, and "appears in at least one
// test". This file is that third leg for the full registry — and it is
// not a string dump: every fault site is armed and proven routable
// (the spec parser accepts it, the fire decision keys correctly), and
// every metric site is registered at its real kind, which the registry
// CHECK-enforces process-wide (a kind mismatch against production code
// aborts). Add a site to the matching list when you add one to code;
// the lint job fails the build if the two drift apart.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace cgc {
namespace {

/// Every fault::inject / fault::maybe_throw site in src + bench.
const char* const kFaultSites[] = {
    "io.read",
    "plan.scenario_fail",
    "report.case",
    "report.case_stall",
    "sim.machine_outage",
    "sim.task_lost",
    "store.chunk_crc",
    "stream.drop",
    "stream.dup",
    "sweep.lease_steal",
    "sweep.torn_merge_input",
    "sweep.worker_kill",
};

/// Every obs::counter site in src + bench.
const char* const kCounterSites[] = {
    "exec.chunks",
    "exec.regions",
    "plan.scenarios",
    "sim.events",
    "sim.evictions",
    "sim.samples",
    "sim.schedule_passes",
    "store.bytes_mapped",
    "store.chunks_decoded",
    "store.chunks_quarantined",
    "store.chunks_verified",
    "store.files_opened",
    "stream.events_ingested",
    "stream.late_dropped",
    "stream.windows_closed",
    "sweep.cache_builds",
    "sweep.cache_hits",
    "sweep.cases_merged",
    "sweep.files_merged",
    "sweep.respawns",
};

/// Every obs::gauge site in src + bench.
const char* const kGaugeSites[] = {
    "exec.queue_depth",
    "sim.pending_depth",
    "stream.open_windows",
    "sweep.live_workers",
};

/// Every obs::histogram / obs::ScopedTimer site in src + bench.
const char* const kHistogramSites[] = {
    "exec.chunk_ns",
    "plan.scenario_ns",
    "store.crc_ns",
    "store.decode_ns",
    "store.load_trace_set",
    "store.scan",
    "stream.window_close_ns",
    "trace.load",
};

class SiteRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::configure(""); }
};

TEST_F(SiteRegistryTest, EveryFaultSiteIsRoutable) {
  for (const char* site : kFaultSites) {
    fault::configure(std::string(site) + ":once=7");
    EXPECT_TRUE(fault::armed()) << site;
    EXPECT_TRUE(fault::inject(site, 7)) << site;
    EXPECT_FALSE(fault::inject(site, 8)) << site;
    // The armed site must not bleed into any other registry entry.
    for (const char* other : kFaultSites) {
      if (std::string(other) != site) {
        EXPECT_FALSE(fault::inject(other, 7)) << site << " -> " << other;
      }
    }
  }
}

TEST_F(SiteRegistryTest, EveryCounterSiteRegistersAtItsKind) {
  for (const char* site : kCounterSites) {
    obs::Counter& c = obs::counter(site);
    const std::uint64_t before = c.value();
    c.add(3);
    EXPECT_EQ(obs::counter(site).value(), before + 3) << site;
  }
}

TEST_F(SiteRegistryTest, EveryGaugeSiteRegistersAtItsKind) {
  for (const char* site : kGaugeSites) {
    obs::Gauge& g = obs::gauge(site);
    g.set(5);
    EXPECT_EQ(obs::gauge(site).value(), 5) << site;
    EXPECT_GE(obs::gauge(site).max(), 5) << site;
  }
}

TEST_F(SiteRegistryTest, EveryHistogramSiteRegistersAtItsKind) {
  for (const char* site : kHistogramSites) {
    obs::Histogram& h = obs::histogram(site);
    const std::uint64_t before = h.count();
    h.observe(1024);
    EXPECT_EQ(obs::histogram(site).count(), before + 1) << site;
  }
}

}  // namespace
}  // namespace cgc
