// Tests for degraded-mode CGCS reads: quarantine-and-continue under
// chunk corruption, exact damage accounting (including against seeded
// fault injection at multiple worker counts), and repair via rewrite.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "store/cgcs_format.hpp"
#include "store/encoding.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/trace_set.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cgc::store {
namespace {

using trace::HostLoadSeries;
using trace::Job;
using trace::kNumBands;
using trace::Machine;
using trace::Task;
using trace::TaskEvent;
using trace::TaskEventType;
using trace::TraceSet;

/// Small rows_per_chunk so a modest trace spans many row groups and a
/// single damaged chunk loses a small, precisely known row range.
constexpr std::size_t kRowsPerChunk = 256;
constexpr std::size_t kNumEvents = 2000;
constexpr std::size_t kNumTasks = 600;

TraceSet make_trace() {
  TraceSet trace("degraded-test");
  for (std::size_t i = 0; i < kNumTasks; ++i) {
    const auto id = static_cast<std::int64_t>(i);
    Job job;
    job.job_id = id;
    job.user_id = id % 13;
    job.priority = static_cast<std::uint8_t>(1 + i % 12);
    job.submit_time = static_cast<util::TimeSec>(10 * i);
    job.end_time = job.submit_time + 500;
    job.num_tasks = 1;
    job.cpu_parallelism = 1.0f + static_cast<float>(i % 7);
    job.mem_usage = 0.25f * static_cast<float>(i % 5);
    trace.add_job(job);

    Task task;
    task.job_id = id;
    task.task_index = 0;
    task.priority = job.priority;
    task.submit_time = job.submit_time;
    task.schedule_time = job.submit_time + 5;
    task.end_time = job.end_time;
    task.end_event = i % 3 == 0 ? TaskEventType::kFinish : TaskEventType::kKill;
    task.machine_id = static_cast<std::int64_t>(i % 16);
    task.cpu_request = job.cpu_parallelism;
    task.cpu_usage = 0.5f * job.cpu_parallelism;
    task.mem_usage = job.mem_usage;
    trace.add_task(task);
  }
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    trace.add_event({static_cast<util::TimeSec>(3 * i),
                     static_cast<std::int64_t>(i % kNumTasks), 0,
                     static_cast<std::int64_t>(i % 16),
                     i % 2 == 0 ? TaskEventType::kSubmit
                                : TaskEventType::kSchedule,
                     static_cast<std::uint8_t>(1 + i % 12)});
  }
  for (std::int64_t machine_id = 0; machine_id < 16; ++machine_id) {
    Machine m;
    m.machine_id = machine_id;
    m.cpu_capacity = 1.0f;
    m.mem_capacity = 0.5f;
    trace.add_machine(m);

    HostLoadSeries h(machine_id, /*start=*/300, /*period=*/300);
    for (int i = 0; i < 20; ++i) {
      const float cpu[kNumBands] = {0.1f, 0.2f, 0.3f};
      const float mem[kNumBands] = {0.1f, 0.1f, 0.2f};
      h.append(cpu, mem, 0.4f, 0.1f, i, i % 3);
    }
    trace.add_host_load(std::move(h));
  }
  trace.finalize();
  return trace;
}

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class StoreDegradedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::configure("");
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_degraded_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "victim.cgcs").string();
    trace_ = make_trace();
    WriteOptions options;
    options.chunks.rows_per_chunk = kRowsPerChunk;
    write_cgcs(trace_, path_, options);
    bytes_ = slurp(path_);
  }
  void TearDown() override {
    fault::configure("");
    std::filesystem::remove_all(dir_);
  }

  /// First chunk of `section` with a payload, from a healthy reader.
  ChunkMeta find_chunk(SectionId section) const {
    const StoreReader reader(path_);
    for (const ChunkMeta& c : reader.chunks()) {
      if (c.section == section && c.payload_size > 0) {
        return c;
      }
    }
    ADD_FAILURE() << "no payload chunk in section "
                  << static_cast<int>(section);
    return {};
  }

  void corrupt_payload_byte(std::uint64_t offset) {
    std::string mutated = bytes_;
    ASSERT_LT(offset, mutated.size());
    mutated[offset] ^= 0x01;
    spit(path_, mutated);
  }

  std::filesystem::path dir_;
  std::string path_;
  std::string bytes_;
  TraceSet trace_;
};

TEST_F(StoreDegradedTest, EventChunkCorruptionDropsExactlyThatGroup) {
  const ChunkMeta victim = find_chunk(SectionId::kEvents);
  corrupt_payload_byte(victim.offset);

  // Strict mode still refuses the file outright.
  {
    const StoreReader strict(path_);
    EXPECT_THROW(strict.load_trace_set(), util::DataError);
  }

  const StoreReader reader(path_, ReadMode::kDegraded);
  const TraceSet degraded = reader.load_trace_set();
  const DamageReport damage = reader.damage();

  EXPECT_FALSE(damage.clean());
  EXPECT_EQ(damage.rows_lost, victim.row_count);
  EXPECT_EQ(degraded.events().size(), kNumEvents - victim.row_count);
  EXPECT_EQ(degraded.tasks().size(), kNumTasks);
  ASSERT_EQ(damage.chunks_quarantined(), 1u);
  EXPECT_EQ(damage.chunks[0].offset, victim.offset);
  EXPECT_NE(damage.chunks[0].reason.find("CRC"), std::string::npos)
      << damage.chunks[0].reason;

  // The surviving events are exactly the written ones minus the dropped
  // row range [row_begin, row_begin + row_count).
  for (std::size_t i = 0; i < degraded.events().size(); ++i) {
    const std::size_t original =
        i < victim.row_begin ? i : i + victim.row_count;
    EXPECT_EQ(degraded.events()[i].time, trace_.events()[original].time);
    EXPECT_EQ(degraded.events()[i].job_id, trace_.events()[original].job_id);
  }
}

TEST_F(StoreDegradedTest, ScanSkipsDamagedGroupAndAccounts) {
  const ChunkMeta victim = find_chunk(SectionId::kEvents);
  corrupt_payload_byte(victim.offset);

  const StoreReader reader(path_, ReadMode::kDegraded);
  std::size_t seen = 0;
  const ScanStats stats = reader.scan(
      EventPredicate{}, [&seen](std::span<const TaskEvent> batch) {
        seen += batch.size();
      });
  EXPECT_EQ(seen, kNumEvents - victim.row_count);
  EXPECT_EQ(stats.rows_decoded, kNumEvents - victim.row_count);
  EXPECT_EQ(reader.damage().rows_lost, victim.row_count);
}

TEST_F(StoreDegradedTest, SmallSectionDamageZeroFillsNotDrops) {
  const ChunkMeta victim = find_chunk(SectionId::kJobs);
  corrupt_payload_byte(victim.offset);

  const StoreReader reader(path_, ReadMode::kDegraded);
  const TraceSet degraded = reader.load_trace_set();
  const DamageReport damage = reader.damage();

  // Row counts are preserved; only the damaged column's values default.
  EXPECT_EQ(degraded.jobs().size(), kNumTasks);
  EXPECT_EQ(damage.rows_lost, 0u);
  EXPECT_EQ(damage.values_defaulted, victim.row_count);
}

TEST_F(StoreDegradedTest, InjectedCorruptionAccountsExactly) {
  fault::configure("store.chunk_crc:p=0.2,seed=17");

  // Expected damage, computed from the chunk directory and the same
  // pure fire function the reader consults.
  std::uint64_t expected_event_rows = 0;
  std::uint64_t expected_task_rows = 0;
  std::uint64_t expected_defaulted = 0;
  std::set<std::uint64_t> expected_offsets;
  {
    const StoreReader probe(path_);  // strict: directory only, no loads
    std::set<std::pair<int, std::uint64_t>> damaged_groups;
    for (const ChunkMeta& c : probe.chunks()) {
      if (!fault::inject("store.chunk_crc", c.offset)) {
        continue;
      }
      expected_offsets.insert(c.offset);
      if (c.section == SectionId::kTasks ||
          c.section == SectionId::kEvents) {
        damaged_groups.emplace(static_cast<int>(c.section), c.row_begin);
      } else {
        expected_defaulted += c.row_count;
      }
    }
    for (const ChunkMeta& c : probe.chunks()) {
      // Count each damaged row group once, via its first column chunk.
      if (damaged_groups.count(
              {static_cast<int>(c.section), c.row_begin}) == 0) {
        continue;
      }
      damaged_groups.erase({static_cast<int>(c.section), c.row_begin});
      (c.section == SectionId::kEvents ? expected_event_rows
                                       : expected_task_rows) += c.row_count;
    }
  }
  ASSERT_GT(expected_offsets.size(), 0u) << "spec injected nothing; tune p=";

  const auto run_degraded = [&](std::size_t workers) {
    util::ThreadPool pool(workers);
    exec::ScopedPool scoped(&pool);
    const StoreReader reader(path_, ReadMode::kDegraded);
    const TraceSet degraded = reader.load_trace_set();
    EXPECT_EQ(degraded.events().size(), kNumEvents - expected_event_rows);
    EXPECT_EQ(degraded.tasks().size(), kNumTasks - expected_task_rows);
    return reader.damage();
  };

  const DamageReport serial = run_degraded(1);
  EXPECT_EQ(serial.rows_lost, expected_event_rows + expected_task_rows);
  EXPECT_EQ(serial.values_defaulted, expected_defaulted);
  std::set<std::uint64_t> quarantined;
  for (const QuarantinedChunk& q : serial.chunks) {
    quarantined.insert(q.offset);
    EXPECT_NE(q.reason.find("injected fault"), std::string::npos)
        << q.reason;
  }
  EXPECT_EQ(quarantined, expected_offsets);

  // Same spec, different worker count: identical damage.
  const DamageReport parallel = run_degraded(8);
  EXPECT_EQ(parallel.rows_lost, serial.rows_lost);
  EXPECT_EQ(parallel.values_defaulted, serial.values_defaulted);
  EXPECT_EQ(parallel.chunks_quarantined(), serial.chunks_quarantined());
}

TEST_F(StoreDegradedTest, RepairRewritesCleanScanningFile) {
  const ChunkMeta victim = find_chunk(SectionId::kEvents);
  corrupt_payload_byte(victim.offset);

  DamageReport damage;
  const TraceSet salvaged = read_cgcs_degraded(path_, &damage);
  EXPECT_EQ(damage.rows_lost, victim.row_count);

  const std::string repaired = (dir_ / "repaired.cgcs").string();
  write_cgcs(salvaged, repaired);

  // The rewrite must scan clean in strict mode and keep the survivors.
  const TraceSet clean = read_cgcs(repaired);
  EXPECT_EQ(clean.events().size(), kNumEvents - victim.row_count);
  EXPECT_EQ(clean.tasks().size(), kNumTasks);
}

TEST_F(StoreDegradedTest, BoundsInvalidChunkQuarantinedAtOpen) {
  // Point the last directory entry's offset past EOF and re-seal the
  // footer CRC, so only chunk-level validation can object. Directory
  // entries are fixed-size (3x u8 + 4x u64 + 2x i64 + 2x f64 + u32 =
  // 71 bytes) and the directory is the footer's tail.
  constexpr std::size_t kEntrySize = 71;
  const std::size_t trailer_at = bytes_.size() - kTrailerSize;
  std::uint64_t footer_offset = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    footer_offset |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(bytes_[trailer_at + i]))
                     << (8 * i);
  }
  std::string mutated = bytes_;
  // Re-point the chunk at the footer itself: its payload then ends past
  // footer_offset, tripping "chunk payload out of bounds" without the
  // u64 overflow an all-FF offset would invite.
  const std::size_t offset_field = trailer_at - kEntrySize + 3;
  for (std::size_t i = 0; i < 8; ++i) {
    mutated[offset_field + i] =
        static_cast<char>((footer_offset >> (8 * i)) & 0xFF);
  }
  const std::uint32_t new_crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(mutated.data()) + footer_offset,
      trailer_at - footer_offset));
  for (std::size_t i = 0; i < 4; ++i) {
    mutated[trailer_at + 8 + i] =
        static_cast<char>((new_crc >> (8 * i)) & 0xFF);
  }
  spit(path_, mutated);

  EXPECT_THROW(StoreReader{path_}, util::DataError);

  const StoreReader reader(path_, ReadMode::kDegraded);
  const DamageReport damage = reader.damage();
  ASSERT_GE(damage.chunks_quarantined(), 1u);
  EXPECT_NE(damage.chunks[0].reason.find("out of bounds"),
            std::string::npos)
      << damage.chunks[0].reason;
  // The rest of the file still loads.
  EXPECT_NO_THROW(reader.load_trace_set());
}

}  // namespace
}  // namespace cgc::store
