// Tests for MLE fitting: sample -> fit -> recovered parameters.
#include <gtest/gtest.h>

#include "stats/distributions.hpp"
#include "stats/fit.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::stats {
namespace {

TEST(FitExponential, RecoversMean) {
  util::Rng rng(1);
  const Exponential d(37.0);
  const auto v = sample_many(d, 50000, rng);
  EXPECT_NEAR(fit_exponential_mean(v) / 37.0, 1.0, 0.02);
}

TEST(FitExponential, EmptyThrows) {
  EXPECT_THROW(fit_exponential_mean(std::vector<double>{}), util::Error);
}

/// Round-trip property across Pareto shapes.
class ParetoRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ParetoRoundTrip, RecoversAlpha) {
  util::Rng rng(2);
  const double alpha = GetParam();
  const Pareto d(5.0, alpha);
  const auto v = sample_many(d, 50000, rng);
  const ParetoFit fit = fit_pareto(v);
  EXPECT_NEAR(fit.xm, 5.0, 0.05);
  EXPECT_NEAR(fit.alpha / alpha, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ParetoRoundTrip,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.5, 4.0));

TEST(FitPareto, DegenerateSampleGivesInfiniteAlpha) {
  const std::vector<double> v(10, 3.0);
  EXPECT_TRUE(std::isinf(fit_pareto(v).alpha));
}

/// Round-trip property across lognormal shapes.
struct LogNormalCase {
  double median;
  double sigma;
};
class LogNormalRoundTrip : public ::testing::TestWithParam<LogNormalCase> {};

TEST_P(LogNormalRoundTrip, RecoversParameters) {
  util::Rng rng(3);
  const LogNormal d(GetParam().median, GetParam().sigma);
  const auto v = sample_many(d, 50000, rng);
  const LogNormalFit fit = fit_lognormal(v);
  EXPECT_NEAR(fit.median / GetParam().median, 1.0, 0.03);
  EXPECT_NEAR(fit.sigma / GetParam().sigma, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LogNormalRoundTrip,
    ::testing::Values(LogNormalCase{10.0, 0.3}, LogNormalCase{100.0, 1.0},
                      LogNormalCase{500.0, 1.5}, LogNormalCase{1.0, 2.0}));

TEST(FitLogNormal, NonPositiveValueThrows) {
  const std::vector<double> v = {1.0, 0.0};
  EXPECT_THROW(fit_lognormal(v), util::Error);
}

TEST(KsGoodnessOfFit, CorrectModelScoresSmall) {
  util::Rng rng(4);
  const LogNormal d(50.0, 1.0);
  const auto v = sample_many(d, 5000, rng);
  EXPECT_LT(ks_lognormal(v, 50.0, 1.0), 0.03);
}

TEST(KsGoodnessOfFit, WrongModelScoresLarge) {
  util::Rng rng(5);
  const LogNormal d(50.0, 1.5);
  const auto v = sample_many(d, 5000, rng);
  // An exponential with the same mean is a bad fit for a wide lognormal.
  EXPECT_GT(ks_exponential(v, d.mean()), 0.15);
}

TEST(KsGoodnessOfFit, FittedParamsBeatWrongParams) {
  util::Rng rng(6);
  const LogNormal d(200.0, 0.8);
  const auto v = sample_many(d, 5000, rng);
  const LogNormalFit fit = fit_lognormal(v);
  const double good = ks_lognormal(v, fit.median, fit.sigma);
  const double bad = ks_lognormal(v, fit.median * 3.0, fit.sigma);
  EXPECT_LT(good, bad);
}

TEST(KsExponential, SelfFitIsSmall) {
  util::Rng rng(7);
  const Exponential d(10.0);
  const auto v = sample_many(d, 5000, rng);
  EXPECT_LT(ks_exponential(v, fit_exponential_mean(v)), 0.03);
}

}  // namespace
}  // namespace cgc::stats
