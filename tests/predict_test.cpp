// Tests for the host-load prediction module.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/characterization.hpp"
#include "predict/evaluation.hpp"
#include "predict/predictors.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace cgc::predict {
namespace {

TEST(LastValue, PredictsLastObservation) {
  LastValuePredictor p;
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.observe(7.0);
  EXPECT_DOUBLE_EQ(p.predict(), 7.0);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict(), 0.0);
}

TEST(MovingAverage, AveragesWindow) {
  MovingAveragePredictor p(3);
  p.observe(1.0);
  p.observe(2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 1.5);  // partial window
  p.observe(3.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.observe(10.0);  // 1.0 slides out
  EXPECT_DOUBLE_EQ(p.predict(), 5.0);
}

TEST(MovingAverage, WindowOneIsLastValue) {
  MovingAveragePredictor p(1);
  p.observe(4.0);
  p.observe(9.0);
  EXPECT_DOUBLE_EQ(p.predict(), 9.0);
}

TEST(MovingAverage, ZeroWindowThrows) {
  EXPECT_THROW(MovingAveragePredictor{0}, util::Error);
}

TEST(ExpSmoothing, ConvergesToConstant) {
  ExpSmoothingPredictor p(0.5);
  for (int i = 0; i < 50; ++i) {
    p.observe(4.0);
  }
  EXPECT_NEAR(p.predict(), 4.0, 1e-9);
}

TEST(ExpSmoothing, FirstObservationInitializes) {
  ExpSmoothingPredictor p(0.1);
  p.observe(10.0);
  EXPECT_DOUBLE_EQ(p.predict(), 10.0);
}

TEST(ExpSmoothing, InvalidAlphaThrows) {
  EXPECT_THROW(ExpSmoothingPredictor{0.0}, util::Error);
  EXPECT_THROW(ExpSmoothingPredictor{1.5}, util::Error);
}

TEST(Ar1, LearnsHighPhiOnPersistentSeries) {
  Ar1Predictor p;
  // Slow sine: strongly autocorrelated.
  for (int i = 0; i < 2000; ++i) {
    p.observe(std::sin(2.0 * std::numbers::pi * i / 500.0));
  }
  EXPECT_GT(p.phi(), 0.95);
}

TEST(Ar1, LearnsLowPhiOnWhiteNoise) {
  util::Rng rng(1);
  Ar1Predictor p;
  for (int i = 0; i < 5000; ++i) {
    p.observe(rng.normal(0.5, 0.1));
  }
  EXPECT_LT(std::abs(p.phi()), 0.1);
  // With phi ~ 0, the prediction shrinks to the mean.
  EXPECT_NEAR(p.predict(), 0.5, 0.05);
}

TEST(Ar1, ShrinkageBeatsLastValueOnNoise) {
  util::Rng rng(2);
  std::vector<double> noise(4000);
  for (double& x : noise) {
    x = rng.normal(0.4, 0.08);
  }
  Ar1Predictor ar1;
  LastValuePredictor last;
  const EvaluationResult e_ar1 = evaluate_series(ar1, noise, 50);
  const EvaluationResult e_last = evaluate_series(last, noise, 50);
  // For iid noise the optimal predictor is the mean; AR(1) approximates
  // it while last-value pays sqrt(2) of the noise sigma.
  EXPECT_LT(e_ar1.mae, e_last.mae);
}

TEST(EvaluateSeries, PerfectPredictorHasZeroError) {
  // A constant series is perfectly predicted by every predictor.
  const std::vector<double> v(100, 2.0);
  LastValuePredictor p;
  const EvaluationResult r = evaluate_series(p, v, 3);
  EXPECT_DOUBLE_EQ(r.mae, 0.0);
  EXPECT_DOUBLE_EQ(r.rmse, 0.0);
  EXPECT_EQ(r.num_predictions, 97u);  // 99 transitions, first 2 warm up
}

TEST(EvaluateSeries, RmseAtLeastMae) {
  util::Rng rng(3);
  std::vector<double> v(500);
  for (double& x : v) {
    x = rng.uniform();
  }
  MovingAveragePredictor p(5);
  const EvaluationResult r = evaluate_series(p, v, 3);
  EXPECT_GE(r.rmse, r.mae);
  EXPECT_GT(r.num_predictions, 0u);
}

TEST(StandardSuite, HasSixPredictors) {
  const auto suite = standard_predictors();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0]->name(), "last-value");
  EXPECT_EQ(suite[5]->name(), "ar1");
}

class TraceEvaluation : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::GoogleModelConfig config;
    sim::SimConfig sim_config;
    cloud_ = new trace::TraceSet(Characterization::simulate_google_hostload(
        config, sim_config, 8, 2 * util::kSecondsPerDay));
    grid_ = new trace::TraceSet(Characterization::simulate_grid_hostload(
        gen::presets::auvergrid(), 6, 2 * util::kSecondsPerDay));
  }
  static void TearDownTestSuite() {
    delete cloud_;
    delete grid_;
    cloud_ = nullptr;
    grid_ = nullptr;
  }
  static trace::TraceSet* cloud_;
  static trace::TraceSet* grid_;
};

trace::TraceSet* TraceEvaluation::cloud_ = nullptr;
trace::TraceSet* TraceEvaluation::grid_ = nullptr;

TEST_F(TraceEvaluation, EvaluatesAcrossMachines) {
  const EvaluationResult r = evaluate_trace(
      [] { return std::make_unique<LastValuePredictor>(); }, *cloud_,
      analysis::Metric::kCpu);
  EXPECT_GT(r.num_predictions, 1000u);
  EXPECT_GT(r.mae, 0.0);
  EXPECT_LT(r.mae, 0.5);
}

TEST_F(TraceEvaluation, CloudCpuHarderThanGridCpu) {
  const EvaluationResult cloud = evaluate_trace(
      [] { return std::make_unique<LastValuePredictor>(); }, *cloud_,
      analysis::Metric::kCpu);
  const EvaluationResult grid = evaluate_trace(
      [] { return std::make_unique<LastValuePredictor>(); }, *grid_,
      analysis::Metric::kCpu);
  // The paper's punchline, operationalized.
  EXPECT_GT(cloud.mae, grid.mae);
}

TEST_F(TraceEvaluation, StandardSuiteRunsOnTrace) {
  const auto results =
      evaluate_standard_suite(*cloud_, analysis::Metric::kCpu);
  ASSERT_EQ(results.size(), 6u);
  for (const EvaluationResult& r : results) {
    EXPECT_GT(r.num_predictions, 0u) << r.predictor;
    EXPECT_GE(r.rmse, r.mae) << r.predictor;
  }
}

TEST_F(TraceEvaluation, ComparisonTableRenders) {
  const auto a = evaluate_standard_suite(*cloud_, analysis::Metric::kCpu);
  const auto b = evaluate_standard_suite(*grid_, analysis::Metric::kCpu);
  const std::string table = render_comparison("google", a, "auvergrid", b);
  EXPECT_NE(table.find("last-value"), std::string::npos);
  EXPECT_NE(table.find("ar1"), std::string::npos);
  EXPECT_NE(table.find("google MAE"), std::string::npos);
}

}  // namespace
}  // namespace cgc::predict
