// Round-trip and schema tests for the Google clusterdata, SWF, and GWA
// trace formats.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/google_format.hpp"
#include "trace/gwa_format.hpp"
#include "trace/swf_format.hpp"
#include "util/check.hpp"

namespace cgc::trace {
namespace {

class FormatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgc_fmt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TraceSet make_event_trace() {
  TraceSet trace("roundtrip");
  Machine m;
  m.machine_id = 3;
  m.cpu_capacity = 0.5f;
  m.mem_capacity = 0.25f;
  m.attributes = kAttrLocalSsd | kAttrExternalIp;
  trace.add_machine(m);

  // Task 1/0: submit -> schedule -> finish.
  trace.add_event({10, 1, 0, -1, TaskEventType::kSubmit, 2});
  trace.add_event({12, 1, 0, 3, TaskEventType::kSchedule, 2});
  trace.add_event({500, 1, 0, 3, TaskEventType::kFinish, 2});
  // Task 2/0: submit -> schedule -> fail -> resubmit -> schedule -> finish.
  trace.add_event({20, 2, 0, -1, TaskEventType::kSubmit, 11});
  trace.add_event({25, 2, 0, 3, TaskEventType::kSchedule, 11});
  trace.add_event({100, 2, 0, 3, TaskEventType::kFail, 11});
  trace.add_event({160, 2, 0, -1, TaskEventType::kSubmit, 11});
  trace.add_event({170, 2, 0, 3, TaskEventType::kSchedule, 11});
  trace.add_event({900, 2, 0, 3, TaskEventType::kFinish, 11});

  HostLoadSeries h(3, 0, util::kSamplePeriod);
  const float cpu[kNumBands] = {0.12f, 0.0f, 0.08f};
  const float mem[kNumBands] = {0.05f, 0.01f, 0.02f};
  h.append(cpu, mem, 0.2f, 0.15f, 2, 0);
  h.append(cpu, mem, 0.22f, 0.18f, 2, 1);
  trace.add_host_load(std::move(h));
  trace.finalize();
  return trace;
}

TEST_F(FormatsTest, GoogleTraceRoundTrip) {
  const TraceSet original = make_event_trace();
  const std::string dir = path("google_trace");
  write_google_trace(original, dir);

  const TraceSet loaded = read_google_trace(dir, "loaded");
  EXPECT_EQ(loaded.system_name(), "loaded");
  EXPECT_EQ(loaded.events().size(), original.events().size());
  EXPECT_EQ(loaded.machines().size(), 1u);
  EXPECT_FLOAT_EQ(loaded.machine_by_id(3)->cpu_capacity, 0.5f);
  // Attribute bits ride through the platform_id column.
  EXPECT_EQ(loaded.machine_by_id(3)->attributes,
            kAttrLocalSsd | kAttrExternalIp);
  EXPECT_TRUE(loaded.machine_by_id(3)->satisfies(kAttrLocalSsd));
  EXPECT_FALSE(loaded.machine_by_id(3)->satisfies(kAttrNewKernel));

  // Tasks reconstructed from the event stream.
  ASSERT_EQ(loaded.tasks().size(), 2u);
  const auto t1 = loaded.tasks_for_job(1);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].submit_time, 10);
  EXPECT_EQ(t1[0].schedule_time, 12);
  EXPECT_EQ(t1[0].end_time, 500);
  EXPECT_EQ(t1[0].end_event, TaskEventType::kFinish);
  EXPECT_EQ(t1[0].priority, 2);
  EXPECT_EQ(t1[0].resubmits, 0);
  const auto t2 = loaded.tasks_for_job(2);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t2[0].resubmits, 1);
  EXPECT_EQ(t2[0].end_time, 900);

  // Jobs aggregated from tasks.
  ASSERT_EQ(loaded.jobs().size(), 2u);
  EXPECT_EQ(loaded.job_by_id(1)->priority, 2);
  EXPECT_EQ(loaded.job_by_id(2)->priority, 11);

  // Host load restored.
  ASSERT_NE(loaded.host_load_for(3), nullptr);
  EXPECT_EQ(loaded.host_load_for(3)->size(), 2u);
  EXPECT_NEAR(loaded.host_load_for(3)->cpu(PriorityBand::kHigh, 0), 0.08f,
              1e-6);
  EXPECT_EQ(loaded.host_load_for(3)->running(0), 2);
}

TEST_F(FormatsTest, GoogleEventPrioritiesAreZeroBasedOnDisk) {
  const TraceSet original = make_event_trace();
  const std::string dir = path("pri_check");
  write_google_trace(original, dir);
  std::ifstream in(dir + "/task_events.csv");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // First event is priority 2 in memory -> "1" in the 9th column.
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) {
    fields.push_back(field);
  }
  ASSERT_GE(fields.size(), 9u);
  EXPECT_EQ(fields[8], "1");
}

TEST_F(FormatsTest, GoogleMissingDirectoryThrows) {
  EXPECT_THROW(read_google_trace(path("nope")), util::Error);
}

TEST_F(FormatsTest, SwfRoundTrip) {
  TraceSet original("swf-system");
  original.set_memory_in_mb(true);
  Job j;
  j.job_id = 17;
  j.user_id = 4;
  j.submit_time = 3600;
  j.end_time = 3600 + 7200;
  j.num_tasks = 1;
  j.cpu_parallelism = 8.0f;
  j.mem_usage = 2048.0f;  // MB across the job
  original.add_job(j);
  original.set_duration(86400);
  original.finalize();

  const std::string p = path("trace.swf");
  write_swf(original, p);
  const TraceSet loaded = read_swf(p, "swf-system");
  ASSERT_EQ(loaded.jobs().size(), 1u);
  const Job& lj = loaded.jobs()[0];
  EXPECT_EQ(lj.job_id, 17);
  EXPECT_EQ(lj.submit_time, 3600);
  EXPECT_EQ(lj.length(), 7200);
  EXPECT_FLOAT_EQ(lj.cpu_parallelism, 8.0f);
  EXPECT_NEAR(lj.mem_usage, 2048.0f, 8.0f);
  EXPECT_TRUE(loaded.memory_in_mb());
  ASSERT_EQ(loaded.tasks().size(), 1u);
  EXPECT_EQ(loaded.tasks()[0].end_event, TaskEventType::kFinish);
}

TEST_F(FormatsTest, SwfParsesStandardFixture) {
  const std::string p = path("fixture.swf");
  {
    std::ofstream out(p);
    out << "; Version: 2\n";
    out << "; UnixStartTime: 0\n";
    // job submit wait run procs avgcpu mem reqprocs reqtime reqmem status
    // uid gid exe queue partition preceding think
    out << "1 0 30 3600 4 -1 102400 4 7200 -1 1 12 -1 -1 1 -1 -1 -1\n";
    out << "2 100 -1 -1 1 -1 -1 1 600 -1 0 13 -1 -1 1 -1 -1 -1\n";
  }
  const TraceSet loaded = read_swf(p, "fixture");
  ASSERT_EQ(loaded.jobs().size(), 2u);
  EXPECT_EQ(loaded.jobs()[0].length(), 3630);  // wait + run
  // used_memory is KB/proc: 102400 KB * 4 procs = 400 MB.
  EXPECT_NEAR(loaded.jobs()[0].mem_usage, 400.0f, 0.5f);
  EXPECT_FALSE(loaded.jobs()[1].completed());  // run_time = -1
}

TEST_F(FormatsTest, SwfTooFewFieldsThrows) {
  const std::string p = path("bad.swf");
  {
    std::ofstream out(p);
    out << "1 0 30 3600\n";
  }
  EXPECT_THROW(read_swf(p, "bad"), util::Error);
}

TEST_F(FormatsTest, GwaRoundTrip) {
  TraceSet original("gwa-system");
  original.set_memory_in_mb(true);
  Job j;
  j.job_id = 5;
  j.submit_time = 500;
  j.end_time = 500 + 1800;
  j.cpu_parallelism = 2.0f;
  j.mem_usage = 768.0f;
  original.add_job(j);
  original.set_duration(10000);
  original.finalize();

  const std::string p = path("trace.gwf");
  write_gwa(original, p);
  const TraceSet loaded = read_gwa(p, "gwa-system");
  ASSERT_EQ(loaded.jobs().size(), 1u);
  EXPECT_EQ(loaded.jobs()[0].job_id, 5);
  EXPECT_EQ(loaded.jobs()[0].length(), 1800);
  EXPECT_FLOAT_EQ(loaded.jobs()[0].cpu_parallelism, 2.0f);
  EXPECT_NEAR(loaded.jobs()[0].mem_usage, 768.0f, 1.0f);
}

TEST_F(FormatsTest, GwaSkipsHeaderComments) {
  const std::string p = path("hdr.gwf");
  {
    std::ofstream out(p);
    out << "; GWA header\n";
    out << "7 0 10 100 1 -1 -1 1 -1 -1 1\n";
  }
  const TraceSet loaded = read_gwa(p, "hdr");
  ASSERT_EQ(loaded.jobs().size(), 1u);
  EXPECT_EQ(loaded.jobs()[0].length(), 110);
}

TEST_F(FormatsTest, GoogleTruncatedFinalRecordReportsLine) {
  const TraceSet original = make_event_trace();
  const std::string dir = path("trunc_trace");
  write_google_trace(original, dir);
  // Simulate a copy cut off mid-write: append a final record that stops
  // partway through its fields.
  {
    std::ofstream out(dir + "/task_events.csv", std::ios::app);
    out << "999000000,,42,0";  // 4 of the >= 9 required fields
  }
  try {
    read_google_trace(dir, "trunc");
    FAIL() << "expected Error for truncated record";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task_events.csv:"), std::string::npos) << what;
    EXPECT_NE(what.find("too short"), std::string::npos) << what;
  }
}

TEST_F(FormatsTest, GoogleGarbledFieldReportsPathAndLine) {
  const TraceSet original = make_event_trace();
  const std::string dir = path("garbled_trace");
  write_google_trace(original, dir);
  {
    std::ofstream out(dir + "/task_events.csv", std::ios::app);
    out << "not_a_number,,1,0,,0,,0,1\n";
  }
  try {
    read_google_trace(dir, "garbled");
    FAIL() << "expected Error for garbled field";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task_events.csv:"), std::string::npos) << what;
    EXPECT_NE(what.find("bad integer"), std::string::npos) << what;
  }
}

TEST_F(FormatsTest, GoogleCrLfTraceParses) {
  const TraceSet original = make_event_trace();
  const std::string dir = path("crlf_trace");
  write_google_trace(original, dir);
  // Rewrite every file with CRLF line endings (as from a Windows unzip).
  for (const char* name :
       {"task_events.csv", "machine_events.csv", "host_usage.csv"}) {
    const std::string p = dir + "/" + name;
    std::string contents;
    {
      std::ifstream in(p, std::ios::binary);
      std::string line;
      while (std::getline(in, line)) {
        contents += line + "\r\n";
      }
    }
    std::ofstream(p, std::ios::binary) << contents;
  }
  const TraceSet loaded = read_google_trace(dir, "crlf");
  EXPECT_EQ(loaded.events().size(), original.events().size());
  EXPECT_EQ(loaded.machines().size(), original.machines().size());
  ASSERT_NE(loaded.host_load_for(3), nullptr);
  EXPECT_EQ(loaded.host_load_for(3)->size(), 2u);
}

TEST_F(FormatsTest, SwfTruncatedFinalRecordReportsLine) {
  const std::string p = path("trunc.swf");
  {
    std::ofstream out(p, std::ios::binary);
    out << "; header\n";
    out << "1 0 30 3600 4 -1 102400 4 7200 -1 1 12 -1 -1 1 -1 -1 -1\n";
    out << "2 100 -1 -1 1 -1";  // cut off mid-record
  }
  try {
    read_swf(p, "trunc");
    FAIL() << "expected Error for truncated record";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST_F(FormatsTest, GwaTruncatedFinalRecordReportsLine) {
  const std::string p = path("trunc.gwf");
  {
    std::ofstream out(p, std::ios::binary);
    out << "7 0 10 100 1 -1 -1 1 -1 -1 1\n";
    out << "8 5 10 100";  // cut off mid-record
  }
  try {
    read_gwa(p, "trunc");
    FAIL() << "expected Error for truncated record";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":2:"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST_F(FormatsTest, RebuildHandlesUnfinishedTasks) {
  TraceSet trace("partial");
  trace.add_event({10, 1, 0, -1, TaskEventType::kSubmit, 1});
  trace.add_event({15, 1, 0, 2, TaskEventType::kSchedule, 1});
  // No terminal event: still running at trace end.
  trace.finalize();
  rebuild_tasks_and_jobs(&trace);
  trace.finalize();
  ASSERT_EQ(trace.tasks().size(), 1u);
  EXPECT_EQ(trace.tasks()[0].end_time, -1);
  ASSERT_EQ(trace.jobs().size(), 1u);
  EXPECT_FALSE(trace.jobs()[0].completed());
}

}  // namespace
}  // namespace cgc::trace
