// Tests for the daemon's graceful-shutdown path and spill verification:
// SIGTERM/SIGINT raise a cooperative flag, ingest stops at the next
// batch boundary, the open window still spills through the normal
// flush, the summary stamps `interrupted`, and `verify_spill` vouches
// for (or indicts) what landed on disk.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <istream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "stream/daemon.hpp"
#include "stream/shutdown.hpp"
#include "util/check.hpp"

namespace cgc::stream {
namespace {

namespace fs = std::filesystem;

/// Streams the given lines one underflow at a time, raising the
/// shutdown flag just before line `cutoff` — a SIGTERM landing
/// mid-stream, made deterministic.
class ShutdownAtLineBuf : public std::streambuf {
 public:
  ShutdownAtLineBuf(std::vector<std::string> lines, std::size_t cutoff)
      : lines_(std::move(lines)), cutoff_(cutoff) {}

 protected:
  int_type underflow() override {
    if (next_ >= lines_.size()) {
      return traits_type::eof();
    }
    if (next_ == cutoff_) {
      request_shutdown();
    }
    current_ = lines_[next_++] + "\n";
    setg(current_.data(), current_.data(),
         current_.data() + current_.size());
    return traits_type::to_int_type(current_[0]);
  }

 private:
  std::vector<std::string> lines_;
  std::size_t cutoff_;
  std::size_t next_ = 0;
  std::string current_;
};

/// A valid Google task_events row: time (us), job, task, submit event,
/// file priority 1.
std::string event_line(std::int64_t time_s, int job, int task) {
  return std::to_string(time_s * 1000000) + ",," + std::to_string(job) +
         "," + std::to_string(task) + ",,0,user,0,1";
}

class StreamDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_shutdown();
    dir_ = fs::temp_directory_path() /
           ("cgc_stream_daemon_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    clear_shutdown();
    fs::remove_all(dir_);
  }

  std::string spill_dir() const { return (dir_ / "spill").string(); }

  fs::path dir_;
};

TEST_F(StreamDaemonTest, SignalHandlersRaiseTheFlag) {
  install_shutdown_handlers();
  ASSERT_FALSE(shutdown_requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(shutdown_requested());
  clear_shutdown();
  std::raise(SIGINT);
  EXPECT_TRUE(shutdown_requested());
}

TEST_F(StreamDaemonTest, UninterruptedRunSpillsVerifiableWindows) {
  DaemonConfig config;
  config.generate = true;
  config.generate_days = 0.1;  // ~8640 s: at least two hourly windows
  config.spill_dir = spill_dir();
  std::istringstream in;
  std::ostringstream out;
  DaemonStats stats;
  const int rc = run_daemon(config, in, out, &stats);
  EXPECT_EQ(rc, util::kExitOk);
  EXPECT_FALSE(stats.interrupted);
  EXPECT_GE(stats.windows_spilled, 2u);
  EXPECT_NE(out.str().find("\"interrupted\": false"), std::string::npos);

  const SpillAudit audit = verify_spill(spill_dir());
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.windows, stats.windows_spilled);
  EXPECT_EQ(audit.windows_clean, audit.windows);
}

TEST_F(StreamDaemonTest, MidStreamShutdownSpillsTheOpenWindow) {
  // 20 rows, one every 10 minutes; the flag goes up before row 5, so
  // ingest stops inside the first hourly window.
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) {
    lines.push_back(event_line(i * 600, /*job=*/1, /*task=*/i));
  }
  ShutdownAtLineBuf buf(std::move(lines), /*cutoff=*/5);
  std::istream in(&buf);

  DaemonConfig config;
  config.input = "-";
  config.batch_size = 2;
  config.spill_dir = spill_dir();
  std::ostringstream out;
  DaemonStats stats;
  const int rc = run_daemon(config, in, out, &stats);

  // An operator's shutdown is not an error — and nothing was lost.
  EXPECT_EQ(rc, util::kExitOk);
  EXPECT_TRUE(stats.interrupted);
  EXPECT_GT(stats.events, 0u);
  EXPECT_LT(stats.events, 20u);
  EXPECT_GE(stats.windows_spilled, 1u);  // the open window, via flush
  EXPECT_NE(out.str().find("\"interrupted\": true"), std::string::npos);

  const SpillAudit audit = verify_spill(spill_dir());
  EXPECT_TRUE(audit.clean());
  EXPECT_EQ(audit.windows, stats.windows_spilled);
}

TEST_F(StreamDaemonTest, VerifySpillFlagsCorruptedWindowStore) {
  DaemonConfig config;
  config.generate = true;
  config.generate_days = 0.1;
  config.spill_dir = spill_dir();
  std::istringstream in;
  std::ostringstream out;
  ASSERT_EQ(run_daemon(config, in, out), util::kExitOk);

  {
    std::ofstream corrupt(spill_dir() + "/window-000000.cgcs",
                          std::ios::binary | std::ios::trunc);
    corrupt << "not a store file";
  }
  const SpillAudit audit = verify_spill(spill_dir());
  EXPECT_FALSE(audit.clean());
  EXPECT_TRUE(audit.fatal());
  EXPECT_EQ(audit.windows_clean + 1, audit.windows);
}

TEST_F(StreamDaemonTest, VerifySpillFlagsManifestCountMismatch) {
  DaemonConfig config;
  config.generate = true;
  config.generate_days = 0.1;
  config.spill_dir = spill_dir();
  std::istringstream in;
  std::ostringstream out;
  ASSERT_EQ(run_daemon(config, in, out), util::kExitOk);

  // Tamper the first manifest row's raw_events stamp.
  const std::string manifest = spill_dir() + "/windows.jsonl";
  std::string content;
  {
    std::ifstream f(manifest, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(f), {});
  }
  const std::string needle = "\"raw_events\": ";
  const std::string::size_type pos = content.find(needle);
  ASSERT_NE(pos, std::string::npos);
  content.insert(pos + needle.size(), "9");  // prepend a digit
  {
    std::ofstream f(manifest, std::ios::binary | std::ios::trunc);
    f << content;
  }
  const SpillAudit audit = verify_spill(spill_dir());
  EXPECT_FALSE(audit.clean());
  EXPECT_TRUE(audit.fatal());
}

TEST_F(StreamDaemonTest, VerifySpillThrowsWithoutManifest) {
  EXPECT_THROW(verify_spill((dir_ / "nowhere").string()), util::Error);
}

}  // namespace
}  // namespace cgc::stream
