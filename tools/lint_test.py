#!/usr/bin/env python3
"""Self-test for tools/cgc_lint.py against the seeded fixture trees.

Three legs, mirroring how CI consumes the linter:

  1. tests/lint_fixtures/violations must produce EXACTLY the expected
     findings — every seeded violation reported at its pinned path:line
     with the right check name (proves each check fires), and nothing
     else (pins the finding count, so a regression that adds noise or
     swallows a finding fails either way). Exit code must be 1.
  2. tests/lint_fixtures/clean must produce zero findings and exit 0
     (proves the sorted-container idioms, taxonomy errors, documented
     headers, and a *justified* allow() are not false positives).
  3. Usage errors (unknown check, bad root) must exit 2.

Run from anywhere: paths resolve relative to this file's repo.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "cgc_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

# (relative path, line, check) — one entry per seeded violation.
EXPECTED_VIOLATIONS = {
    ("src/nondet.cpp", 9, "nondeterminism"),
    ("src/nondet.cpp", 14, "nondeterminism"),
    ("src/nondet.cpp", 18, "nondeterminism"),
    ("src/nondet.cpp", 23, "nondeterminism"),
    ("src/unordered.cpp", 9, "unordered-iteration"),
    ("src/sites.cpp", 8, "site-registry"),       # missing all three legs
    ("README.md", 8, "site-registry"),           # ghost site, table row
    ("DESIGN.md", 3, "site-registry"),           # ghost site, prose
    ("src/exit.cpp", 6, "exit-taxonomy"),        # throw std::
    ("src/exit.cpp", 10, "exit-taxonomy"),       # exit(64)
    ("src/exit.cpp", 15, "suppression"),         # allow() without reason
    ("src/exit.cpp", 16, "exit-taxonomy"),       # return 42 in main
    ("src/sim/bad_docs.hpp", 9, "doc-coverage"),
}


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


def parse_findings(stdout):
    found = set()
    for line in stdout.splitlines():
        if line.startswith("cgc_lint"):
            continue
        loc, _, rest = line.partition(": [")
        check = rest.partition("]")[0]
        path, _, lineno = loc.rpartition(":")
        found.add((path, int(lineno), check))
    return found


def fail(message):
    print(f"lint_test: FAIL: {message}", file=sys.stderr)
    return 1


def main():
    # Leg 1: every seeded violation fires at its pinned location.
    proc = run_lint("--root", str(FIXTURES / "violations"), "src")
    if proc.returncode != 1:
        return fail(f"violations tree: expected exit 1, got "
                    f"{proc.returncode}\n{proc.stdout}{proc.stderr}")
    found = parse_findings(proc.stdout)
    missing = EXPECTED_VIOLATIONS - found
    extra = found - EXPECTED_VIOLATIONS
    if missing:
        return fail(f"checks did not fire: {sorted(missing)}\n{proc.stdout}")
    if extra:
        return fail(f"unexpected findings (false positives): "
                    f"{sorted(extra)}\n{proc.stdout}")

    # Leg 2: the clean tree has zero findings.
    proc = run_lint("--root", str(FIXTURES / "clean"), "src")
    if proc.returncode != 0:
        return fail(f"clean tree: expected exit 0, got {proc.returncode}\n"
                    f"{proc.stdout}{proc.stderr}")

    # Leg 3: usage errors exit 2.
    if run_lint("--check", "no-such-check").returncode != 2:
        return fail("unknown check should exit 2")
    if run_lint("--root", "/no/such/dir").returncode != 2:
        return fail("bad --root should exit 2")

    # Single-check runs stay scoped: nondeterminism alone must not
    # report the doc or site findings. Malformed allow() comments are
    # the one exception — they surface in every run by design.
    proc = run_lint("--root", str(FIXTURES / "violations"), "src",
                    "--check", "nondeterminism")
    checks_seen = {c for (_, _, c) in parse_findings(proc.stdout)}
    if not checks_seen <= {"nondeterminism", "suppression"} or \
            "nondeterminism" not in checks_seen:
        return fail(f"--check nondeterminism leaked other checks:\n"
                    f"{proc.stdout}")

    print("lint_test ok: all checks fire at pinned locations, "
          "clean tree is clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
