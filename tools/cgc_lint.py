#!/usr/bin/env python3
"""cgc_lint — project-specific static checks for the cgc codebase.

Generic tools cannot know this project's two load-bearing contracts:
outputs are bit-identical at any CGC_THREADS (the determinism contract,
DESIGN.md §15), and every process exit flows through the normalized
0/1/2/3 taxonomy (util/check.hpp). cgc_lint turns both, plus the
fault/metric site registry and the public-header docs gate, into
lint-time errors:

  nondeterminism       banned wall-clock/PRNG/pointer-order constructs
  unordered-iteration  range-for over std::unordered_{map,set} values
  site-registry        fault/metric site strings: code <-> README table
                       <-> DESIGN.md <-> at least one test, both ways
  exit-taxonomy        exit codes outside 0..3, raw `throw std::...`
  doc-coverage         public members of enforced headers documented

Findings print as `path:line: [check] message` and exit 1; a clean run
exits 0; usage errors exit 2 (matching the repo's own taxonomy).

Any finding can be suppressed where it fires:

    ... flagged code ...  // cgc-lint: allow(<check>) <reason>

on the finding's line or the line above. The reason text is mandatory —
a bare allow() is itself reported — so every exception stays auditable
with `grep -rn cgc-lint:`.

`--root` rebases everything (code dirs, README.md, DESIGN.md, tests/)
onto another tree; the lint_test fixtures use this to prove each check
fires. See DESIGN.md §15 for the full catalog and rationale.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_EXTS = {".cpp", ".hpp", ".h"}

ALL_CHECKS = (
    "nondeterminism",
    "unordered-iteration",
    "site-registry",
    "exit-taxonomy",
    "doc-coverage",
)

# Directories whose code may register fault/metric sites. tools/ and
# tests/ are excluded: tests *reference* sites (that is the third leg of
# the registry), they do not define them.
SITE_CODE_DIRS = ("src", "bench", "examples")

# Subsystem prefixes a site string may use. A backticked `foo.bar` token
# in the docs with one of these prefixes is treated as a site claim and
# verified against the code (the "vice versa" leg).
SITE_PREFIXES = (
    "exec",
    "io",
    "plan",
    "report",
    "sim",
    "store",
    "stream",
    "sweep",
    "trace",
)

# Dotted doc tokens that are file names, not sites (`report.json`,
# `worker.lease`, ...).
NON_SITE_SUFFIXES = (
    ".json", ".jsonl", ".md", ".py", ".cpp", ".hpp", ".h", ".txt",
    ".dat", ".log", ".lock", ".cgcs", ".tmp", ".lease", ".yml",
    ".yaml", ".gz", ".csv", ".out", ".swf", ".gwf", ".sh",
)

# Headers whose public members must all carry doc comments when no
# explicit path is given. The gate grows subsystem by subsystem; sim was
# first (analyst-facing knobs), the concurrency/observability layers
# (exec, util, fault, obs) joined with the static-analysis contract.
DOC_ENFORCED_ROOTS = (
    "src/sim", "src/exec", "src/util", "src/fault", "src/obs", "src/plan")

SUPPRESS_RE = re.compile(r"//\s*cgc-lint:\s*allow\(([a-z-]+)\)\s*(.*)$")


class Finding:
    """One lint finding, printable as `path:line: [check] message`."""

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def render(self, root):
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.check}] {self.message}"


class FileCache:
    """Reads each file once; parses suppression comments alongside."""

    def __init__(self):
        self._lines = {}
        self._allows = {}   # path -> {lineno: set(check names)}
        self._bad_allows = {}  # path -> [(lineno, message)]

    def lines(self, path):
        if path not in self._lines:
            text = path.read_text(errors="replace")
            self._lines[path] = text.splitlines()
            self._parse_allows(path)
        return self._lines[path]

    def text(self, path):
        return "\n".join(self.lines(path))

    def _parse_allows(self, path):
        allows, bad = {}, []
        for lineno, line in enumerate(self._lines[path], 1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            check, reason = m.group(1), m.group(2).strip()
            if check not in ALL_CHECKS:
                bad.append((lineno, f"unknown check '{check}' in suppression"))
                continue
            if not reason:
                bad.append(
                    (lineno,
                     f"suppression of '{check}' without a reason — "
                     "write `// cgc-lint: allow(" + check + ") <why>`"))
                continue
            allows.setdefault(lineno, set()).add(check)
        self._allows[path] = allows
        self._bad_allows[path] = bad

    def suppressed(self, path, lineno, check):
        """allow(<check>) on the finding's line, or in the comment block
        immediately above it (a justification may span several comment
        lines)."""
        allows = self._allows.get(path, {})
        if check in allows.get(lineno, ()):
            return True
        lines = self._lines.get(path, [])
        probe = lineno - 1
        while probe >= 1 and lines[probe - 1].strip().startswith("//"):
            if check in allows.get(probe, ()):
                return True
            probe -= 1
        return False

    def bad_allows(self, path):
        self.lines(path)
        return self._bad_allows[path]


def iter_cpp_files(paths):
    for path in paths:
        if path.is_file() and path.suffix in CPP_EXTS:
            yield path
        elif path.is_dir():
            for f in sorted(path.rglob("*")):
                if f.suffix in CPP_EXTS and f.is_file():
                    yield f


# --------------------------------------------------------------------
# nondeterminism
# --------------------------------------------------------------------

# Constructs whose value depends on the machine, the wall clock, or the
# address-space layout. Any of them on an output path breaks the
# bit-identical contract; none has a legitimate use here that a seeded
# splitmix64 / CLOCK_MONOTONIC / value-keyed container cannot serve.
NONDET_PATTERNS = (
    (re.compile(r"\bstd::random_device\b|(?<!:)\brandom_device\b"),
     "std::random_device is machine entropy — seed splitmix64 from the "
     "run config instead (determinism contract, DESIGN.md §15)"),
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() draw from hidden global state — use the seeded "
     "generators in cgc::gen"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr) is wall-clock — outputs must not depend on when "
     "they were produced (use CLOCK_MONOTONIC for intervals)"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock is wall-clock and can step backwards — use "
     "steady_clock for intervals; timestamps must come from the trace"),
    (re.compile(r"\bstd::(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
     "pointer-keyed ordered container — iteration order is the "
     "allocator's address order, different every run; key by a stable "
     "id instead"),
    (re.compile(r"\bstd::atomic\s*<\s*(?:float|double)\s*>"),
     "atomic float accumulation commits in scheduling order — route "
     "reductions through cgc::exec's deterministic chunk combiner"),
)


def check_nondeterminism(files, cache, findings):
    for path in files:
        for lineno, line in enumerate(cache.lines(path), 1):
            code = line.split("//", 1)[0]
            for pattern, why in NONDET_PATTERNS:
                if pattern.search(code):
                    findings.append(Finding(path, lineno, "nondeterminism", why))


# --------------------------------------------------------------------
# unordered-iteration
# --------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(\w+)\s*(?:[;={(]|CGC_GUARDED_BY)")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[^;()]*?:\s*"
    r"((?:\w+(?:\.|->))*)(\w+)\s*\)")


def check_unordered_iteration(files, cache, findings):
    """Range-for over a name declared as an unordered container.

    Heuristic and file-local by design: it catches the pattern that has
    actually bitten this codebase (emitting rows straight out of an
    unordered_map), while sorted snapshots, sorted containers, or an
    explicit allow() express the fix.
    """
    for path in files:
        text = cache.text(path)
        unordered = set(UNORDERED_DECL_RE.findall(text))
        if not unordered:
            continue
        for lineno, line in enumerate(cache.lines(path), 1):
            code = line.split("//", 1)[0]
            for m in RANGE_FOR_RE.finditer(code):
                name = m.group(2)
                if name in unordered:
                    findings.append(Finding(
                        path, lineno, "unordered-iteration",
                        f"range-for over unordered container '{name}' — "
                        "iteration order is unspecified and can reach "
                        "output; sort first (std::map, sorted snapshot) "
                        "or justify with an allow()"))


# --------------------------------------------------------------------
# site-registry
# --------------------------------------------------------------------

FAULT_SITE_RE = re.compile(
    r"fault::(?:inject|maybe_throw)\(\s*\"([^\"]+)\"")
METRIC_SITE_RE = re.compile(
    r"obs::(?:counter|gauge|histogram)\(\s*\"([^\"]+)\"")
TIMER_SITE_RE = re.compile(
    r"obs::ScopedTimer\s+\w+\(\s*\"([^\"]+)\"")
DOC_TOKEN_RE = re.compile(r"`([a-z][a-z0-9_]*\.[a-z0-9_.]+)`")


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def _is_site_token(token):
    if token.endswith(NON_SITE_SUFFIXES):
        return False
    prefix = token.split(".", 1)[0]
    return prefix in SITE_PREFIXES


def check_site_registry(root, cache, findings):
    """Two-way fault/metric site consistency.

    Forward: every site literal the code can fire must be documented in
    the README table, mentioned in DESIGN.md, and exercised by at least
    one test — otherwise it is an undocumented knob or untested fault
    leg. Reverse: every site the docs claim must exist in code —
    otherwise the docs describe behavior the binaries no longer have.
    """
    readme = root / "README.md"
    design = root / "DESIGN.md"
    tests_dir = root / "tests"
    for required in (readme, design):
        if not required.is_file():
            findings.append(Finding(
                required, 1, "site-registry",
                f"missing {required.name} — site tables cannot be verified"))
            return

    # Code sites, with the first line each fires from.
    sites = {}  # name -> (path, line, kind)
    for code_dir in SITE_CODE_DIRS:
        base = root / code_dir
        if not base.is_dir():
            continue
        for path in iter_cpp_files([base]):
            if (root / "src" / "fault") in path.parents:
                continue  # the injection framework, not a site
            text = cache.text(path)
            for kind, pattern in (("fault", FAULT_SITE_RE),
                                  ("metric", METRIC_SITE_RE),
                                  ("metric", TIMER_SITE_RE)):
                for m in pattern.finditer(text):
                    sites.setdefault(
                        m.group(1), (path, _line_of(text, m.start()), kind))

    readme_tokens = set(DOC_TOKEN_RE.findall(cache.text(readme)))
    design_tokens = set(DOC_TOKEN_RE.findall(cache.text(design)))

    test_text = ""
    if tests_dir.is_dir():
        for path in sorted(tests_dir.rglob("*")):
            if path.suffix in CPP_EXTS | {".py"} and path.is_file():
                test_text += cache.text(path)

    for name in sorted(sites):
        path, line, kind = sites[name]
        legs = []
        if name not in readme_tokens:
            legs.append("README.md site table")
        if name not in design_tokens:
            legs.append("DESIGN.md")
        if name not in test_text:
            legs.append("any test under tests/")
        if legs:
            findings.append(Finding(
                path, line, "site-registry",
                f"{kind} site '{name}' is missing from: " + ", ".join(legs)))

    # Reverse: doc tokens that look like sites but match no code site.
    for doc in (readme, design):
        text = cache.text(doc)
        for m in DOC_TOKEN_RE.finditer(text):
            token = m.group(1)
            if _is_site_token(token) and token not in sites:
                findings.append(Finding(
                    doc, _line_of(text, m.start()), "site-registry",
                    f"documented site '{token}' does not exist in code "
                    "(stale docs, or the site was renamed)"))


# --------------------------------------------------------------------
# exit-taxonomy
# --------------------------------------------------------------------

THROW_STD_RE = re.compile(r"\bthrow\s+std::")
EXIT_CALL_RE = re.compile(r"(?:std::)?(?:_?exit|quick_exit)\s*\(\s*(\d+)\s*\)")
MAIN_RE = re.compile(r"\bint\s+main\s*\(")
RETURN_LIT_RE = re.compile(r"\breturn\s+(\d+)\s*;")


def check_exit_taxonomy(files, cache, findings):
    """Exit codes stay in the normalized 0/1/2/3 set; errors that cross
    layer boundaries are taxonomy types (cgc::util::{Transient,Data,
    Fatal}Error), not raw std exceptions — that is what lets the sweep
    driver classify a failed case as retryable without string-matching.
    """
    for path in files:
        lines = cache.lines(path)
        main_line = None
        for lineno, line in enumerate(lines, 1):
            code = line.split("//", 1)[0]
            if THROW_STD_RE.search(code):
                findings.append(Finding(
                    path, lineno, "exit-taxonomy",
                    "raw `throw std::...` — throw a taxonomy error "
                    "(cgc::util::TransientError/DataError/FatalError) so "
                    "callers can classify it (util/check.hpp)"))
            m = EXIT_CALL_RE.search(code)
            if m and int(m.group(1)) > 3:
                findings.append(Finding(
                    path, lineno, "exit-taxonomy",
                    f"exit({m.group(1)}) is outside the normalized exit "
                    "set 0/1/2/3 (kExitOk/kExitFailure/kExitUsage/"
                    "kExitFatal)"))
            if main_line is None and MAIN_RE.search(code):
                main_line = lineno
            if main_line is not None and lineno >= main_line:
                r = RETURN_LIT_RE.search(code)
                if r and int(r.group(1)) > 3:
                    findings.append(Finding(
                        path, lineno, "exit-taxonomy",
                        f"main() returns {r.group(1)} — exit codes are "
                        "normalized to 0/1/2/3 (util/check.hpp)"))


# --------------------------------------------------------------------
# doc-coverage (ported from the retired check_sim_doc_coverage.py, now
# generalized to any header directory)
# --------------------------------------------------------------------

DECL_SKIP = re.compile(
    r"^\s*(public:|private:|protected:|using\s|friend\s|template\s*<"
    r"|static_assert|#|\}|\{|$)")
AGGREGATE_OPEN = re.compile(r"^\s*(struct|class|enum(\s+class)?|union)\b")


def _doc_check_header(path, cache, findings):
    lines = cache.lines(path)
    # Stack of (kind, visible) per open brace scope. kind is
    # "aggregate", "enum", "namespace", or None (function body /
    # initializer — contents are never member declarations). `visible`
    # means: this scope's current access region AND every enclosing one
    # is public.
    scope = []
    prev_was_comment = False
    pending_decl = None  # first line of a multi-line declaration
    pending_doc = False

    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()
        if not stripped:
            prev_was_comment = False
            continue
        if stripped.startswith("//"):
            prev_was_comment = True
            continue

        code = re.sub(r"\s*//.*$", "", stripped)
        in_enum = bool(scope) and scope[-1][0] == "enum"
        visible = bool(scope) and scope[-1][0] in ("aggregate", "enum") and \
            scope[-1][1]
        opens_aggregate = bool(AGGREGATE_OPEN.match(code)) and not \
            code.endswith(";")

        if code == "public:":
            if scope:
                enclosing = len(scope) < 2 or scope[-2][1]
                scope[-1] = (scope[-1][0], enclosing)
        elif code in ("private:", "protected:"):
            if scope:
                scope[-1] = (scope[-1][0], False)

        # Deleted members are not usable API — nothing to document.
        if code.endswith("= delete;"):
            prev_was_comment = False
            continue
        # A doc comment above `template <...>` documents the declaration
        # that follows it — carry the comment state through.
        if re.match(r"template\s*<[^;{}]*>$", code):
            continue
        member = visible and (
            pending_decl is not None or not DECL_SKIP.match(code))
        if member:
            first_line = pending_decl if pending_decl is not None else lineno
            complete = (
                in_enum
                or code.endswith((";", "{", "}"))
                or opens_aggregate)
            if complete:
                documented = "///<" in raw or (
                    pending_doc if pending_decl is not None
                    else prev_was_comment)
                if not documented:
                    findings.append(Finding(
                        path, first_line, "doc-coverage",
                        "undocumented public member: " +
                        lines[first_line - 1].strip()))
                pending_decl = None
            elif pending_decl is None:
                pending_decl = lineno
                pending_doc = prev_was_comment

        # Brace tracking on the comment-stripped code.
        for ch in code:
            if ch == "{":
                if opens_aggregate:
                    kind = "enum" if code.startswith("enum") else "aggregate"
                    default_public = not code.startswith("class")
                    parent_visible = not scope or (
                        scope[-1][0] in ("aggregate", "enum", "namespace")
                        and scope[-1][1])
                    scope.append((kind, default_public and parent_visible))
                    opens_aggregate = False
                elif code.startswith("namespace"):
                    scope.append(("namespace", True))
                else:
                    scope.append((None, False))
            elif ch == "}":
                if scope:
                    scope.pop()

        prev_was_comment = False


def check_doc_coverage(root, paths, explicit, cache, findings):
    """Every public member (field, method, enumerator, nested type) of
    an enforced header needs a doc comment: `//`/`///` line(s) above the
    declaration or a trailing `///<`. Run as the standalone
    `--check doc-coverage <path>` subcommand it audits exactly the
    given paths (any src/* dir); in an all-checks run the gate covers
    DOC_ENFORCED_ROOTS.
    """
    if explicit:
        roots = paths
    else:
        roots = [root / r for r in DOC_ENFORCED_ROOTS]
    headers = []
    for r in roots:
        if r.is_file():
            headers.append(r)
        elif r.is_dir():
            headers.extend(sorted(r.rglob("*.hpp")))
            headers.extend(sorted(r.rglob("*.h")))
    for header in sorted(set(headers)):
        _doc_check_header(header, cache, findings)


# --------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(
        prog="cgc_lint",
        description="project-specific static checks (see DESIGN.md §15)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/dirs to lint (default: <root>/src)")
    parser.add_argument("--root", default=".",
                        help="repo (or fixture) root holding README.md, "
                             "DESIGN.md, tests/")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="run only these checks (repeatable or "
                             "comma-separated); default: all")
    parser.add_argument("--list-checks", action="store_true",
                        help="print check names and exit")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in ALL_CHECKS:
            print(name)
        return 0

    checks = []
    for spec in args.check or []:
        checks.extend(c.strip() for c in spec.split(",") if c.strip())
    for c in checks:
        if c not in ALL_CHECKS:
            print(f"cgc_lint: unknown check '{c}' "
                  f"(known: {', '.join(ALL_CHECKS)})", file=sys.stderr)
            return 2
    if not checks:
        checks = list(ALL_CHECKS)

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"cgc_lint: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2
    explicit_paths = bool(args.paths)
    paths = [Path(p) if Path(p).is_absolute() else root / p
             for p in (args.paths or ["src"])]
    for p in paths:
        if not p.exists():
            print(f"cgc_lint: no such path: {p}", file=sys.stderr)
            return 2

    cache = FileCache()
    findings = []
    files = list(iter_cpp_files(paths))

    if "nondeterminism" in checks:
        check_nondeterminism(files, cache, findings)
    if "unordered-iteration" in checks:
        check_unordered_iteration(files, cache, findings)
    if "site-registry" in checks:
        check_site_registry(root, cache, findings)
    if "exit-taxonomy" in checks:
        check_exit_taxonomy(files, cache, findings)
    if "doc-coverage" in checks:
        check_doc_coverage(root, paths, explicit_paths and checks == ["doc-coverage"],
                           cache, findings)

    kept = [f for f in findings
            if not cache.suppressed(f.path, f.line, f.check)]
    # Malformed suppressions are findings too — an allow() nobody can
    # audit is a hole in the contract.
    for path in files:
        for lineno, message in cache.bad_allows(path):
            kept.append(Finding(path, lineno, "suppression", message))

    kept.sort(key=lambda f: (str(f.path), f.line, f.check))
    for f in kept:
        print(f.render(root))
    if kept:
        print(f"cgc_lint: {len(kept)} finding(s) "
              f"[checks: {', '.join(checks)}]", file=sys.stderr)
        return 1
    print(f"cgc_lint ok: {len(files)} file(s), "
          f"checks: {', '.join(checks)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
