#!/usr/bin/env python3
"""Docs-coverage gate for the simulator's public headers.

Every public member (field, method, enumerator, or nested type) declared
in src/sim/*.hpp must carry a doc comment: either `//`/`///` line(s)
immediately above the declaration, or a trailing `///<`. The simulator
is the subsystem whose knobs analysts actually touch (SimConfig,
SimStats, the queue/bank internals documented for DESIGN.md §13), so
"every public member documented" is enforced by CI, not convention.

Heuristic single-pass parser: tracks brace depth, struct/class access
regions (nested aggregates inherit the enclosing visibility), and the
comment state of the preceding line. Exits non-zero listing every
undocumented member.
"""

import re
import sys
from pathlib import Path

DECL_SKIP = re.compile(
    r"^\s*(public:|private:|protected:|using\s|friend\s|template\s*<"
    r"|static_assert|#|\}|\{|$)"
)
AGGREGATE_OPEN = re.compile(r"^\s*(struct|class|enum(\s+class)?|union)\b")


def strip_trailing_comment(code: str) -> str:
    return re.sub(r"\s*//.*$", "", code)


def check_file(path: Path) -> list:
    lines = path.read_text().splitlines()
    problems = []
    # Stack of (kind, visible) per open brace scope. kind is "aggregate",
    # "enum", or None (function body / initializer — contents are never
    # member declarations). `visible` means: this scope's current access
    # region AND every enclosing one is public.
    scope = []
    prev_was_comment = False
    pending_decl = None  # first line of a multi-line declaration
    pending_doc = False

    for lineno, raw in enumerate(lines, 1):
        line = raw.rstrip()
        stripped = line.strip()

        if not stripped:
            prev_was_comment = False
            continue
        if stripped.startswith("//"):
            prev_was_comment = True
            continue

        code = strip_trailing_comment(stripped)
        in_enum = bool(scope) and scope[-1][0] == "enum"
        visible = bool(scope) and scope[-1][0] in ("aggregate", "enum") and \
            scope[-1][1]
        opens_aggregate = bool(AGGREGATE_OPEN.match(code)) and not \
            code.endswith(";")

        if code == "public:":
            if scope:
                enclosing = len(scope) < 2 or scope[-2][1]
                scope[-1] = (scope[-1][0], enclosing)
        elif code in ("private:", "protected:"):
            if scope:
                scope[-1] = (scope[-1][0], False)

        member = visible and (
            pending_decl is not None or not DECL_SKIP.match(code)
        )
        if member:
            first_line = pending_decl if pending_decl is not None else lineno
            complete = (
                in_enum
                or code.endswith((";", "{", "}"))
                or opens_aggregate
            )
            if complete:
                documented = "///<" in line or (
                    pending_doc if pending_decl is not None
                    else prev_was_comment
                )
                if not documented:
                    problems.append(
                        (first_line, lines[first_line - 1].strip())
                    )
                pending_decl = None
            elif pending_decl is None:
                pending_decl = lineno
                pending_doc = prev_was_comment

        # Brace tracking on the comment-stripped code.
        for ch in code:
            if ch == "{":
                if opens_aggregate:
                    kind = "enum" if code.startswith("enum") else "aggregate"
                    default_public = not code.startswith("class")
                    # Aggregates at namespace/file scope are visible;
                    # nested ones only inside a public region of a
                    # visible parent.
                    parent_visible = not scope or (
                        scope[-1][0] in ("aggregate", "enum", "namespace")
                        and scope[-1][1]
                    )
                    scope.append((kind, default_public and parent_visible))
                    opens_aggregate = False
                elif code.startswith("namespace"):
                    scope.append(("namespace", True))
                else:
                    scope.append((None, False))
            elif ch == "}":
                if scope:
                    scope.pop()

        prev_was_comment = False

    return problems


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else "src/sim")
    headers = sorted(root.glob("*.hpp"))
    if not headers:
        print(f"error: no headers found under {root}", file=sys.stderr)
        return 2
    failed = False
    for header in headers:
        for lineno, decl in check_file(header):
            print(f"{header}:{lineno}: undocumented public member: {decl}")
            failed = True
    if failed:
        print(
            "\nEvery public member in src/sim/*.hpp needs a doc comment "
            "(`//` above the declaration or trailing `///<`).",
            file=sys.stderr,
        )
        return 1
    print(f"doc coverage ok: {len(headers)} header(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
