#include "gen/google_model.hpp"

#include <algorithm>
#include <cmath>

#include "gen/calibration.hpp"
#include "stats/distributions.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cgc::gen {

namespace {

using stats::BoundedPareto;
using stats::LogNormal;
using stats::Uniform;
using trace::TaskEventType;
using trace::TimeSec;
using util::Rng;

/// Per-job draw shared by the workload and sim products.
struct JobDraw {
  std::uint8_t priority = 1;
  bool is_service = false;
  double base_length = 0.0;  ///< seconds; tasks vary around it
  std::int32_t num_tasks = 1;
};

class Sampler {
 public:
  Sampler(const GoogleModelConfig& cfg, Rng rng)
      : cfg_(cfg),
        rng_(rng),
        short_length_(cfg.short_length_median_s, cfg.short_length_sigma),
        service_length_(cfg.service_length_lo_s, cfg.service_length_hi_s,
                        cfg.service_length_alpha),
        long_service_length_(cfg.long_service_lo_s, cfg.long_service_hi_s) {
    double total = 0.0;
    for (const double w : paper::kJobPriorityWeights) {
      total += w;
      priority_cdf_.push_back(total);
    }
    for (double& c : priority_cdf_) {
      c /= total;
    }
  }

  Rng& rng() { return rng_; }

  /// Mean task length implied by the config (used for rate scaling).
  double mean_task_length() const {
    const double short_frac =
        1.0 - cfg_.service_fraction - cfg_.long_service_fraction;
    return short_frac * short_length_.mean() +
           cfg_.service_fraction * service_length_.mean() +
           cfg_.long_service_fraction * long_service_length_.mean();
  }

  std::uint8_t draw_priority(bool is_service) {
    const double u = rng_.uniform();
    std::uint8_t p = 1;
    for (std::size_t i = 0; i < priority_cdf_.size(); ++i) {
      if (u <= priority_cdf_[i]) {
        p = static_cast<std::uint8_t>(i + 1);
        break;
      }
    }
    // Long-running services skew to the production/high band: they are
    // few in job count (Fig 2) but dominate high-priority host load.
    if (is_service && rng_.bernoulli(0.9)) {
      p = static_cast<std::uint8_t>(rng_.uniform_int(9, 12));
    }
    return p;
  }

  JobDraw draw_job() {
    JobDraw job;
    const double u = rng_.uniform();
    if (u < cfg_.long_service_fraction) {
      job.is_service = true;
      job.base_length = long_service_length_.sample(rng_);
    } else if (u < cfg_.long_service_fraction + cfg_.service_fraction) {
      job.is_service = true;
      job.base_length = service_length_.sample(rng_);
    } else {
      job.base_length = short_length_.sample(rng_);
    }
    job.base_length = std::max(1.0, job.base_length);
    job.priority = draw_priority(job.is_service);
    if (!rng_.bernoulli(cfg_.single_task_fraction)) {
      // Log-uniform tasks-per-job in [2, max]: most multi-task jobs are
      // small, a few map-reduce-style jobs are huge (mean ~ 10^2).
      const double log_n = rng_.uniform(
          std::log(2.0), std::log(static_cast<double>(cfg_.max_tasks_per_job)));
      job.num_tasks =
          std::max<std::int32_t>(2, static_cast<std::int32_t>(std::exp(log_n)));
    }
    return job;
  }

  double task_length(const JobDraw& job) {
    return std::max(1.0, job.base_length * rng_.uniform(0.85, 1.15));
  }

  TaskEventType draw_fate() {
    const double u = rng_.uniform();
    if (u < cfg_.fail_fraction) {
      return TaskEventType::kFail;
    }
    if (u < cfg_.fail_fraction + cfg_.kill_fraction) {
      return TaskEventType::kKill;
    }
    if (u < cfg_.fail_fraction + cfg_.kill_fraction + cfg_.lost_fraction) {
      return TaskEventType::kLost;
    }
    return TaskEventType::kFinish;
  }

  float cpu_request(bool is_service) {
    const double median = is_service ? cfg_.service_cpu_request_median
                                     : cfg_.short_cpu_request_median;
    const double v =
        median * std::exp(cfg_.cpu_request_sigma * rng_.normal());
    return static_cast<float>(std::clamp(v, 0.001, 0.20));
  }

  float mem_request(bool is_service) {
    const double median = is_service ? cfg_.service_mem_request_median
                                     : cfg_.short_mem_request_median;
    const double v =
        median * std::exp(cfg_.mem_request_sigma * rng_.normal());
    return static_cast<float>(std::clamp(v, 0.001, 0.20));
  }

  float cpu_usage_ratio(bool busy_period) {
    double ratio;
    if (rng_.bernoulli(cfg_.cpu_burst_fraction)) {
      ratio = cfg_.cpu_burst_ratio;
    } else {
      ratio = std::clamp(rng_.normal(cfg_.cpu_usage_ratio_mean, 0.13), 0.05,
                         0.90);
    }
    if (busy_period) {
      ratio = std::min(1.8, ratio * cfg_.busy_cpu_ratio_boost);
    }
    return static_cast<float>(ratio);
  }

  float mem_usage_ratio() {
    return static_cast<float>(
        std::clamp(rng_.normal(cfg_.mem_usage_ratio_mean, 0.05), 0.55, 1.0));
  }

  float page_cache() {
    const double median = rng_.bernoulli(cfg_.page_cache_large_fraction)
                              ? cfg_.page_cache_large_median
                              : cfg_.page_cache_small_median;
    return static_cast<float>(
        std::clamp(median * std::exp(0.4 * rng_.normal()), 0.0, 0.08));
  }

  /// Per-job CPU parallelism for Fig 6a: sub-core for the vast majority.
  float job_cpu_parallelism() {
    const double v = 0.55 * std::exp(0.45 * rng_.normal());
    return static_cast<float>(std::clamp(v, 0.05, 5.0));
  }

  /// Per-job normalized memory usage for Fig 6b.
  float job_mem_usage() {
    const double v = 0.004 * std::exp(0.9 * rng_.normal());
    return static_cast<float>(std::clamp(v, 1e-4, 0.5));
  }

 private:
  const GoogleModelConfig& cfg_;
  Rng rng_;
  LogNormal short_length_;
  BoundedPareto service_length_;
  Uniform long_service_length_;
  std::vector<double> priority_cdf_;
};

}  // namespace

GoogleWorkloadModel::GoogleWorkloadModel(GoogleModelConfig config)
    : config_(config) {
  CGC_CHECK(config_.service_fraction >= 0.0 &&
            config_.service_fraction + config_.long_service_fraction < 1.0);
  CGC_CHECK(config_.fail_fraction + config_.kill_fraction +
                config_.lost_fraction <
            1.0);
}

trace::TraceSet GoogleWorkloadModel::generate_workload(
    util::TimeSec horizon) const {
  Rng rng(config_.seed);
  Sampler sampler(config_, rng.split());
  trace::TraceSet out("google");
  out.set_duration(horizon);

  Rng arrival_rng = rng.split();
  const std::vector<TimeSec> arrivals =
      arrival_times(config_.arrival, horizon, arrival_rng);
  out.reserve_jobs(arrivals.size());

  std::int64_t job_id = 1;
  for (TimeSec submit : arrivals) {
    const JobDraw draw = sampler.draw_job();
    // Month-scale services start early enough to complete within the
    // window — the trace's 29-day maximum execution times are tasks that
    // ran nearly wall-to-wall.
    if (draw.is_service && draw.base_length >= config_.long_service_lo_s) {
      const auto length = static_cast<TimeSec>(draw.base_length * 1.15);
      if (horizon > length + util::kSecondsPerHour) {
        submit = sampler.rng().uniform_int(0, horizon - length - 1);
      }
    }
    trace::Job job;
    job.job_id = job_id;
    job.user_id = sampler.rng().uniform_int(1, 900);
    job.priority = draw.priority;
    job.submit_time = submit;
    job.num_tasks = draw.num_tasks;
    job.cpu_parallelism = sampler.job_cpu_parallelism();
    job.mem_usage = sampler.job_mem_usage();

    TimeSec job_end = submit;
    for (std::int32_t t = 0; t < draw.num_tasks; ++t) {
      trace::Task task;
      task.job_id = job_id;
      task.task_index = t;
      task.priority = draw.priority;
      task.submit_time = submit;
      // Google pending times are near zero (Fig 8b).
      task.schedule_time = submit + sampler.rng().uniform_int(0, 10);
      const auto duration =
          static_cast<TimeSec>(sampler.task_length(draw));
      task.end_time = task.schedule_time + std::max<TimeSec>(1, duration);
      task.end_event = sampler.draw_fate();
      task.cpu_request = sampler.cpu_request(draw.is_service);
      task.mem_request = sampler.mem_request(draw.is_service);
      task.cpu_usage = task.cpu_request * sampler.cpu_usage_ratio(false);
      task.mem_usage = task.mem_request * sampler.mem_usage_ratio();
      job_end = std::max(job_end, task.end_time);
      if (task.end_time > horizon) {
        task.end_time = -1;  // right-censored at the trace boundary
      }
      // Sampling drops the record, not the draw: job lengths and the
      // rng stream are unaffected.
      if (config_.task_sampling_rate >= 1.0 ||
          sampler.rng().bernoulli(config_.task_sampling_rate)) {
        out.add_task(task);
      }
    }
    job.end_time = job_end;
    // Jobs running past the trace window are right-censored, as in the
    // real trace.
    if (job.end_time > horizon) {
      job.end_time = -1;
    }
    out.add_job(job);
    ++job_id;
  }
  out.finalize();
  return out;
}

std::vector<trace::Machine> GoogleWorkloadModel::make_machines(
    std::size_t count) const {
  Rng rng(config_.seed ^ 0xabcdef12345ULL);
  std::vector<trace::Machine> machines;
  machines.reserve(count);
  const auto pick = [&rng](const auto& values, const auto& shares) {
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      acc += shares[i];
      if (u <= acc) {
        return values[i];
      }
    }
    return values[values.size() - 1];
  };
  for (std::size_t i = 0; i < count; ++i) {
    trace::Machine m;
    m.machine_id = static_cast<std::int64_t>(i + 1);
    m.cpu_capacity = static_cast<float>(
        pick(paper::kCpuCapacityValues, paper::kCpuCapacityShares));
    m.mem_capacity = static_cast<float>(
        pick(paper::kMemCapacityValues, paper::kMemCapacityShares));
    m.page_cache_capacity = 1.0f;
    for (int bit = 0; bit < 4; ++bit) {
      if (rng.bernoulli(config_.machine_attribute_density)) {
        m.attributes |= static_cast<std::uint8_t>(1U << bit);
      }
    }
    machines.push_back(m);
  }
  return machines;
}

sim::Workload GoogleWorkloadModel::generate_sim_workload(
    util::TimeSec horizon, std::size_t num_machines) const {
  CGC_CHECK_MSG(num_machines > 0, "need at least one machine");
  Rng rng(config_.seed ^ 0x5151515151ULL);
  Sampler sampler(config_, rng.split());

  // Scale the arrival rate so that steady-state running tasks per machine
  // approach the target: concurrency = task_rate * mean_duration. The
  // arrival process is drawn at TASK granularity (tasks arrive in small
  // job batches) — drawing whole heavy-tailed jobs at a scaled-down rate
  // would leave the realized task rate dominated by rare huge jobs.
  const double mean_len = sampler.mean_task_length();
  constexpr double kMeanBatch = 4.0;  // tasks per submission batch (job)
  const double tasks_per_hour =
      config_.target_running_per_machine *
      static_cast<double>(num_machines) * util::kSecondsPerHour / mean_len;
  ArrivalModel arrival = config_.arrival;
  arrival.mean_per_hour = tasks_per_hour / kMeanBatch;

  // Warm-up: arrivals begin before the sampling window opens at t=0.
  const auto warmup =
      static_cast<TimeSec>(config_.warmup_days * util::kSecondsPerDay);
  Rng arrival_rng = rng.split();
  std::vector<TimeSec> arrivals =
      arrival_times(arrival, horizon + warmup, arrival_rng);
  for (TimeSec& t : arrivals) {
    t -= warmup;
  }
  // Busy-period surge (Fig 10a, days 21-25): extra arrivals on top.
  const TimeSec busy_lo =
      static_cast<TimeSec>(config_.busy_day_start * util::kSecondsPerDay);
  const TimeSec busy_hi =
      static_cast<TimeSec>(config_.busy_day_end * util::kSecondsPerDay);
  if (busy_hi > busy_lo && busy_lo < horizon &&
      config_.busy_rate_factor > 1.0) {
    ArrivalModel surge = arrival;
    surge.mean_per_hour *= config_.busy_rate_factor - 1.0;
    Rng surge_rng = rng.split();
    const std::vector<TimeSec> extra = arrival_times(
        surge, std::min(horizon, busy_hi) - busy_lo, surge_rng);
    for (const TimeSec t : extra) {
      arrivals.push_back(t + busy_lo);
    }
    std::sort(arrivals.begin(), arrivals.end());
  }

  sim::Workload workload;
  workload.reserve(static_cast<std::size_t>(
      static_cast<double>(arrivals.size()) * kMeanBatch) + 16);
  std::int64_t job_id = 1;
  for (TimeSec submit : arrivals) {
    // A submission batch = one job of a few sibling tasks. Type (service
    // vs short) and priority are drawn per batch; lengths per task.
    JobDraw draw = sampler.draw_job();
    draw.num_tasks = static_cast<std::int32_t>(
        1 + sampler.rng().poisson(kMeanBatch - 1.0));
    // Month-scale services are pinned to a feasible start so they can
    // complete within the window (matching the observed 29-day maximum
    // execution times): they are brought up early and run for weeks.
    const bool is_long_service =
        draw.is_service && draw.base_length >= config_.long_service_lo_s;
    if (is_long_service) {
      const auto length = static_cast<TimeSec>(draw.base_length * 1.15);
      if (horizon > length + util::kSecondsPerHour) {
        submit = sampler.rng().uniform_int(0, horizon - length - 1);
      }
    }
    const bool busy = submit >= busy_lo && submit < busy_hi;
    for (std::int32_t t = 0; t < draw.num_tasks; ++t) {
      sim::TaskSpec spec;
      spec.job_id = job_id;
      spec.task_index = t;
      spec.priority = draw.priority;
      spec.submit_time = submit;
      spec.duration = std::max<TimeSec>(
          1, static_cast<TimeSec>(sampler.task_length(draw)));
      spec.cpu_request = sampler.cpu_request(draw.is_service);
      spec.mem_request = sampler.mem_request(draw.is_service);
      spec.cpu_usage_ratio = sampler.cpu_usage_ratio(busy);
      spec.mem_usage_ratio = sampler.mem_usage_ratio();
      spec.page_cache = sampler.page_cache();
      if (sampler.rng().bernoulli(config_.constrained_task_fraction)) {
        spec.required_attributes = static_cast<std::uint8_t>(
            1U << sampler.rng().uniform_int(0, 3));
      }
      spec.fate = sampler.draw_fate();
      if (spec.fate != TaskEventType::kFinish) {
        // The scripted death strikes partway through the intended run.
        spec.abnormal_after = std::max<TimeSec>(
            1, static_cast<TimeSec>(static_cast<double>(spec.duration) *
                                    sampler.rng().uniform(0.3, 0.9)));
      }
      spec.resubmit_on_abnormal = spec.fate == TaskEventType::kFail;
      spec.max_resubmits =
          spec.fate == TaskEventType::kFail ? config_.fail_resubmits : 0;
      workload.push_back(spec);
    }
    ++job_id;
  }
  // Best-effort scavenger stream: low-priority backfill tasks arriving
  // at a steady Poisson rate, sized to hold ~scavenger_per_machine slots.
  if (config_.scavenger_per_machine > 0.0) {
    Rng scav_rng = rng.split();
    const LogNormal scav_length(config_.scavenger_length_median_s,
                                config_.scavenger_length_sigma);
    const double scav_rate_per_hour =
        config_.scavenger_per_machine * static_cast<double>(num_machines) *
        util::kSecondsPerHour / scav_length.mean();
    ArrivalModel scav_arrival;  // flat Poisson backfill
    scav_arrival.mean_per_hour = scav_rate_per_hour;
    std::vector<TimeSec> scav_times =
        arrival_times(scav_arrival, horizon + warmup, scav_rng);
    for (const TimeSec t : scav_times) {
      sim::TaskSpec spec;
      spec.job_id = job_id++;
      spec.task_index = 0;
      spec.priority = static_cast<std::uint8_t>(scav_rng.uniform_int(1, 2));
      spec.submit_time = t - warmup;
      spec.duration = std::max<TimeSec>(
          60, static_cast<TimeSec>(scav_length.sample(scav_rng)));
      spec.cpu_request = 0.008f;
      spec.mem_request = static_cast<float>(std::clamp(
          0.018 * std::exp(0.4 * scav_rng.normal()), 0.004, 0.06));
      spec.cpu_usage_ratio = 0.3f;
      spec.mem_usage_ratio = 0.85f;
      spec.page_cache = 0.004f;
      spec.fate = TaskEventType::kFinish;
      // Evicted backfill is abandoned; the steady arrival stream
      // replenishes the population instead (bounding eviction churn).
      spec.resubmit_on_abnormal = false;
      spec.max_resubmits = 0;
      workload.push_back(spec);
    }
  }
  CGC_LOG(kDebug) << "google sim workload: " << workload.size()
                  << " tasks across " << (job_id - 1) << " jobs";
  return workload;
}

}  // namespace cgc::gen
