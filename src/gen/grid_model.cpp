#include "gen/grid_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "stats/distributions.hpp"
#include "util/check.hpp"

namespace cgc::gen {

namespace {

using trace::TimeSec;
using util::Rng;

double draw_length(const GridSystemPreset& p, Rng& rng) {
  const bool long_tail = rng.bernoulli(p.long_fraction);
  const double median = long_tail ? p.long_median_s : p.body_median_s;
  const double sigma = long_tail ? p.long_sigma : p.body_sigma;
  const double v = median * std::exp(sigma * rng.normal());
  return std::clamp(v, 1.0, p.max_length_s);
}

int draw_procs(const GridSystemPreset& p, Rng& rng) {
  double total = 0.0;
  for (const ProcsChoice& c : p.procs) {
    total += c.weight;
  }
  CGC_CHECK_MSG(total > 0.0, "preset has no processor choices");
  double u = rng.uniform() * total;
  for (const ProcsChoice& c : p.procs) {
    u -= c.weight;
    if (u <= 0.0) {
      return c.procs;
    }
  }
  return p.procs.back().procs;
}

ArrivalModel arrival_for(const GridSystemPreset& p) {
  ArrivalModel m;
  m.mean_per_hour = p.jobs_per_hour;
  m.diurnal_amplitude = p.diurnal_amplitude;
  m.weekly_amplitude = p.weekly_amplitude;
  m.burst_sigma =
      burst_sigma_for_fairness(p.target_fairness, p.diurnal_amplitude);
  m.burst_ar1 = p.burst_ar1;
  return m;
}

}  // namespace

GridWorkloadModel::GridWorkloadModel(GridSystemPreset preset)
    : preset_(std::move(preset)) {
  CGC_CHECK(!preset_.procs.empty());
  CGC_CHECK(preset_.jobs_per_hour > 0.0);
  name_.reserve(preset_.name.size());
  for (char c : preset_.name) {
    name_.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
}

trace::TraceSet GridWorkloadModel::generate_workload(
    util::TimeSec horizon) const {
  Rng rng(preset_.seed);
  trace::TraceSet out(preset_.name);
  out.set_duration(horizon);
  out.set_memory_in_mb(true);

  Rng arrival_rng = rng.split();
  const std::vector<TimeSec> arrivals =
      arrival_times(arrival_for(preset_), horizon, arrival_rng);
  out.reserve_jobs(arrivals.size());

  std::int64_t job_id = 1;
  for (const TimeSec submit : arrivals) {
    const double length = draw_length(preset_, rng);
    const int procs = draw_procs(preset_, rng);
    // Grid queues are non-trivial: batch systems hold jobs for minutes
    // to hours (contrast with Google's empty pending queue, Fig 8b).
    const auto wait = static_cast<TimeSec>(
        rng.exponential(1.0 / (20.0 * util::kSecondsPerMinute)));
    const double efficiency =
        std::clamp(rng.normal(preset_.cpu_efficiency_mean, 0.06), 0.5, 1.0);
    const double mem_mb =
        preset_.mem_per_proc_mb_median *
        std::exp(preset_.mem_per_proc_mb_sigma * rng.normal()) *
        static_cast<double>(procs);

    trace::Job job;
    job.job_id = job_id;
    job.user_id = rng.uniform_int(1, 200);
    job.priority = 1;
    job.submit_time = submit;
    job.end_time = submit + wait + static_cast<TimeSec>(length);
    job.num_tasks = 1;
    job.cpu_parallelism = static_cast<float>(procs * efficiency);
    job.mem_usage = static_cast<float>(mem_mb);
    if (job.end_time > horizon) {
      job.end_time = -1;  // right-censored at the trace boundary
    }
    out.add_job(job);

    trace::Task task;
    task.job_id = job_id;
    task.task_index = 0;
    task.priority = 1;
    task.submit_time = submit;
    task.schedule_time = submit + wait;
    task.end_time = job.end_time;  // -1 when right-censored
    task.end_event = trace::TaskEventType::kFinish;
    task.cpu_request = static_cast<float>(procs);
    task.cpu_usage = job.cpu_parallelism;
    task.mem_usage = job.mem_usage;
    out.add_task(task);
    ++job_id;
  }
  out.finalize();
  return out;
}

std::vector<trace::Machine> GridWorkloadModel::make_machines(
    std::size_t count) const {
  std::vector<trace::Machine> machines;
  machines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::Machine m;
    m.machine_id = static_cast<std::int64_t>(i + 1);
    m.cpu_capacity = 1.0f;
    m.mem_capacity = 1.0f;
    m.page_cache_capacity = 1.0f;
    machines.push_back(m);
  }
  return machines;
}

sim::Workload GridWorkloadModel::generate_sim_workload(
    util::TimeSec horizon, std::size_t num_machines) const {
  CGC_CHECK(num_machines > 0);
  Rng rng(preset_.seed ^ 0x600d600dULL);

  // Mean job length and processor demand imply the arrival rate hitting
  // the preset's CPU-utilization target:
  //   utilization = job_rate * mean_procs * mean_len / (machines * slots).
  const double mean_len =
      (1.0 - preset_.long_fraction) * preset_.body_median_s *
          std::exp(0.5 * preset_.body_sigma * preset_.body_sigma) +
      preset_.long_fraction * preset_.long_median_s *
          std::exp(0.5 * preset_.long_sigma * preset_.long_sigma);
  double mean_procs = 0.0;
  double total_weight = 0.0;
  for (const ProcsChoice& c : preset_.procs) {
    mean_procs += c.weight * c.procs;
    total_weight += c.weight;
  }
  mean_procs /= total_weight;
  const double slots = std::max(1, preset_.slots_per_node);
  const double jobs_per_hour =
      preset_.node_utilization * static_cast<double>(num_machines) * slots *
      util::kSecondsPerHour / (mean_len * mean_procs);
  ArrivalModel arrival = arrival_for(preset_);
  arrival.mean_per_hour = jobs_per_hour;

  Rng arrival_rng = rng.split();
  const std::vector<TimeSec> arrivals =
      arrival_times(arrival, horizon, arrival_rng);

  sim::Workload workload;
  workload.reserve(arrivals.size() * static_cast<std::size_t>(mean_procs));
  std::int64_t job_id = 1;
  // A parallel job cannot exceed the cluster's total slot count.
  const int max_procs_fit = std::max(
      1, static_cast<int>(static_cast<double>(num_machines) * slots / 2.0));
  // Each grid process claims one core slot of a node, and burns it almost
  // fully — grid jobs are compute-bound (Fig 13 discussion).
  const float slot_cpu_request = static_cast<float>(0.98 / slots);
  for (const TimeSec submit : arrivals) {
    const auto length = static_cast<TimeSec>(draw_length(preset_, rng));
    const int procs = std::min(draw_procs(preset_, rng), max_procs_fit);
    const double efficiency =
        std::clamp(rng.normal(preset_.cpu_efficiency_mean, 0.06), 0.5, 1.0);
    for (int t = 0; t < procs; ++t) {
      const double mem_request = std::clamp(
          preset_.sim_mem_request_median *
              std::exp(preset_.sim_mem_request_sigma * rng.normal()),
          0.005, 0.9 / slots);
      sim::TaskSpec spec;
      spec.job_id = job_id;
      spec.task_index = t;
      spec.priority = 1;
      spec.submit_time = submit;
      spec.duration = std::max<TimeSec>(60, length);
      spec.cpu_request = slot_cpu_request;
      spec.mem_request = static_cast<float>(mem_request);
      spec.cpu_usage_ratio = static_cast<float>(efficiency);
      spec.mem_usage_ratio = 0.9f;
      spec.page_cache = 0.01f;
      spec.fate = trace::TaskEventType::kFinish;
      spec.resubmit_on_abnormal = false;
      spec.max_resubmits = 0;
      workload.push_back(spec);
    }
    ++job_id;
  }
  return workload;
}

void GridWorkloadModel::apply_grid_sim_defaults(sim::SimConfig* config) {
  CGC_CHECK(config != nullptr);
  config->preemption = false;  // batch queues do not preempt
  // Dedicated scientific processes: steady load, negligible interference.
  config->cpu_usage_jitter = 0.004;
  config->mem_usage_jitter = 0.002;
  config->machine_cpu_jitter = 0.002;
  config->machine_mem_jitter = 0.001;
  config->cpu_spike_probability = 0.0;
  config->mem_admission_headroom = 0.95;
  // Batch schedulers pack nodes in order, leaving hot nodes continuously
  // busy for days (the plateaus of Fig 13 d-i).
  config->placement = sim::PlacementPolicy::kFirstFit;
}

namespace presets {

namespace {
GridSystemPreset base() {
  GridSystemPreset p;
  p.procs = {{1, 1.0}};
  return p;
}
}  // namespace

GridSystemPreset auvergrid() {
  GridSystemPreset p = base();
  p.name = "AuverGrid";
  p.jobs_per_hour = 45;
  p.target_fairness = 0.35;
  p.diurnal_amplitude = 0.55;
  p.weekly_amplitude = 0.15;
  // Section III.2: mean task 7.2 h, max 18 d, ~70% under 12 h,
  // mass-count joint ratio ~24/76.
  p.body_median_s = 3.2 * 3600;
  p.body_sigma = 0.95;
  p.long_fraction = 0.28;
  p.long_median_s = 11.0 * 3600;
  p.long_sigma = 0.75;
  p.max_length_s = 18.0 * 86400;
  // EGEE-style serial jobs.
  p.procs = {{1, 0.97}, {2, 0.03}};
  p.mem_per_proc_mb_median = 350;
  // EGEE production VO: effectively saturated (persistent queue) — the
  // regime behind the flat, low-noise host load of Fig 13 d-f.
  p.node_utilization = 1.15;
  p.seed = 101;
  return p;
}

GridSystemPreset nordugrid() {
  GridSystemPreset p = base();
  p.name = "NorduGrid";
  p.jobs_per_hour = 27;
  p.target_fairness = 0.11;
  p.diurnal_amplitude = 0.6;
  p.body_median_s = 5.0 * 3600;
  p.body_sigma = 1.4;
  p.long_fraction = 0.25;
  p.long_median_s = 30.0 * 3600;
  p.long_sigma = 0.9;
  p.max_length_s = 30.0 * 86400;
  p.procs = {{1, 0.95}, {2, 0.03}, {4, 0.02}};
  p.mem_per_proc_mb_median = 500;
  p.seed = 102;
  return p;
}

GridSystemPreset sharcnet() {
  GridSystemPreset p = base();
  p.name = "SHARCNET";
  p.jobs_per_hour = 126;
  p.target_fairness = 0.04;  // extreme bursts: max 22334 in one hour
  p.diurnal_amplitude = 0.5;
  p.burst_ar1 = 0.35;
  p.body_median_s = 1.6 * 3600;
  p.body_sigma = 1.6;
  p.long_fraction = 0.18;
  p.long_median_s = 20.0 * 3600;
  p.long_sigma = 1.0;
  p.max_length_s = 28.0 * 86400;
  p.procs = {{1, 0.72}, {2, 0.08}, {4, 0.08}, {8, 0.06}, {16, 0.03},
             {32, 0.02}, {64, 0.01}};
  p.mem_per_proc_mb_median = 550;
  p.node_utilization = 1.15;
  p.seed = 103;
  return p;
}

GridSystemPreset das2() {
  GridSystemPreset p = base();
  p.name = "DAS-2";
  p.jobs_per_hour = 30;
  p.target_fairness = 0.30;
  p.diurnal_amplitude = 0.7;  // research cluster: strongly office-hours
  // DAS-2 jobs are famously short (interactive research runs).
  p.body_median_s = 8.0 * 60;
  p.body_sigma = 1.5;
  p.long_fraction = 0.08;
  p.long_median_s = 2.0 * 3600;
  p.long_sigma = 1.0;
  p.max_length_s = 3.0 * 86400;
  p.procs = {{1, 0.25}, {2, 0.25}, {4, 0.2}, {8, 0.15}, {16, 0.1},
             {32, 0.04}, {64, 0.01}};
  p.mem_per_proc_mb_median = 150;
  p.seed = 104;
  return p;
}

GridSystemPreset anl() {
  GridSystemPreset p = base();
  p.name = "ANL";
  p.jobs_per_hour = 10;
  p.target_fairness = 0.51;
  p.diurnal_amplitude = 0.45;
  p.body_median_s = 1.5 * 3600;
  p.body_sigma = 1.1;
  p.long_fraction = 0.15;
  p.long_median_s = 8.0 * 3600;
  p.long_sigma = 0.6;
  p.max_length_s = 2.0 * 86400;  // BlueGene queue limits
  p.procs = {{256, 0.35}, {512, 0.3}, {1024, 0.2}, {2048, 0.1},
             {4096, 0.05}};
  p.mem_per_proc_mb_median = 250;
  p.seed = 105;
  return p;
}

GridSystemPreset ricc() {
  GridSystemPreset p = base();
  p.name = "RICC";
  p.jobs_per_hour = 121;
  p.target_fairness = 0.14;
  p.diurnal_amplitude = 0.5;
  p.body_median_s = 0.8 * 3600;
  p.body_sigma = 1.7;
  p.long_fraction = 0.12;
  p.long_median_s = 16.0 * 3600;
  p.long_sigma = 0.9;
  p.max_length_s = 14.0 * 86400;
  p.procs = {{1, 0.5}, {4, 0.2}, {8, 0.15}, {32, 0.1}, {128, 0.04},
             {1024, 0.01}};
  p.mem_per_proc_mb_median = 450;
  p.seed = 106;
  return p;
}

GridSystemPreset metacentrum() {
  GridSystemPreset p = base();
  p.name = "METACENTRUM";
  p.jobs_per_hour = 24;
  p.target_fairness = 0.04;
  p.diurnal_amplitude = 0.55;
  p.body_median_s = 2.2 * 3600;
  p.body_sigma = 1.8;
  p.long_fraction = 0.15;
  p.long_median_s = 30.0 * 3600;
  p.long_sigma = 1.0;
  p.max_length_s = 30.0 * 86400;
  p.procs = {{1, 0.7}, {2, 0.15}, {4, 0.1}, {8, 0.04}, {16, 0.01}};
  p.mem_per_proc_mb_median = 500;
  p.seed = 107;
  return p;
}

GridSystemPreset llnl_atlas() {
  GridSystemPreset p = base();
  p.name = "LLNL-Atlas";
  p.jobs_per_hour = 8.4;
  p.target_fairness = 0.23;
  p.diurnal_amplitude = 0.5;
  p.body_median_s = 1.8 * 3600;
  p.body_sigma = 1.2;
  p.long_fraction = 0.2;
  p.long_median_s = 10.0 * 3600;
  p.long_sigma = 0.7;
  p.max_length_s = 5.0 * 86400;
  p.procs = {{8, 0.3}, {16, 0.2}, {32, 0.2}, {64, 0.15}, {128, 0.1},
             {256, 0.05}};
  p.mem_per_proc_mb_median = 700;
  p.seed = 108;
  return p;
}

std::vector<GridSystemPreset> all() {
  return {auvergrid(),  nordugrid(),   sharcnet(), anl(),
          ricc(),       metacentrum(), llnl_atlas(), das2()};
}

}  // namespace presets

}  // namespace cgc::gen
