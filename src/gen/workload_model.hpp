// gen::WorkloadModel — the polymorphic face of the workload generators.
//
// GoogleWorkloadModel and GridWorkloadModel grew up independently with
// structurally identical surfaces (make_machines / generate_workload /
// generate_sim_workload). cgc::plan needs to swap and *blend* them
// behind one interface — a scenario says "70% cloud + 30% auvergrid"
// without caring which concrete generator produces each component, and
// Grid-on-Cloud / Cloud-on-Grid cross-replays are just a model name
// paired with a foreign machine park. This header introduces the
// abstract base both concrete models now inherit (existing call sites
// that hold the concrete types stay source-compatible) plus a name →
// model factory used by plan scenario specs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/task_spec.hpp"
#include "trace/trace_set.hpp"

namespace cgc::gen {

/// Abstract workload generator: machines, full-rate workload traces,
/// and sim task streams, behind one interface so callers (cgc::plan in
/// particular) can mix concrete models polymorphically.
class WorkloadModel {
 public:
  virtual ~WorkloadModel() = default;

  /// Stable lowercase identifier ("google", "auvergrid", ...). Used in
  /// scenario keys, so renaming one changes scenario ids.
  virtual const std::string& name() const = 0;

  /// Machine park this model was calibrated for (heterogeneous capacity
  /// groups for the cloud model, uniform nodes for grid systems).
  virtual std::vector<trace::Machine> make_machines(
      std::size_t count) const = 0;

  /// Full-rate workload-only trace (jobs + tasks; no machines).
  virtual trace::TraceSet generate_workload(util::TimeSec horizon) const = 0;

  /// Task specs for a host-load simulation over `num_machines` machines,
  /// arrival rate scaled to the model's steady-state concurrency target.
  virtual sim::Workload generate_sim_workload(
      util::TimeSec horizon, std::size_t num_machines) const = 0;

  /// Adjusts simulator settings to this model's system type. The base
  /// implementation is a no-op (cloud defaults); grid models disable
  /// preemption and usage jitter (GridWorkloadModel::apply_grid_sim_defaults).
  virtual void apply_sim_defaults(sim::SimConfig* config) const;

  /// Base RNG seed the model generates from. Plan scenarios re-seed
  /// components per scenario so replicas decorrelate.
  virtual std::uint64_t base_seed() const = 0;
};

/// Names accepted by make_workload_model(): "google" plus the eight
/// grid presets, in registry order.
std::vector<std::string> workload_model_names();

/// Builds the named model with its default calibration, re-seeded with
/// `seed` when non-zero. Throws util::FatalError for an unknown name
/// (exit 2/3 per taxonomy — a bad name is a usage/spec bug).
std::unique_ptr<WorkloadModel> make_workload_model(const std::string& name,
                                                   std::uint64_t seed = 0);

}  // namespace cgc::gen
