// Job arrival processes.
//
// Arrivals are modeled as a doubly-stochastic (Cox) process: an hourly
// rate process — diurnal/weekly modulation times AR(1)-lognormal noise,
// with optional quiet "dips" — drives a per-hour Poisson count, and
// arrival instants are uniform within the hour. This family spans the
// paper's observations: Google submissions are high-rate and stable
// (fairness 0.94), Grid submissions are bursty and diurnal (fairness
// 0.04-0.51) — see Table I and Fig 5.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time_util.hpp"

namespace cgc::gen {

/// Parameters of the hourly rate process.
struct ArrivalModel {
  /// Long-run mean submissions per hour.
  double mean_per_hour = 100.0;
  /// Diurnal (24 h) sinusoidal modulation amplitude in [0, 1).
  double diurnal_amplitude = 0.0;
  /// Weekly (168 h) modulation amplitude in [0, 1).
  double weekly_amplitude = 0.0;
  /// Sigma of the lognormal multiplicative noise (burstiness knob).
  double burst_sigma = 0.0;
  /// AR(1) coefficient of the log-noise (bursts persist across hours).
  double burst_ar1 = 0.0;
  /// Probability that an hour is a quiet "dip" (maintenance, outage).
  double dip_probability = 0.0;
  /// Rate multiplier during a dip.
  double dip_factor = 0.1;
};

/// Hourly mean rates over `num_hours` (deterministic given rng state).
std::vector<double> hourly_rates(const ArrivalModel& model,
                                 std::size_t num_hours, util::Rng& rng);

/// Sorted arrival timestamps over [0, horizon).
std::vector<util::TimeSec> arrival_times(const ArrivalModel& model,
                                         util::TimeSec horizon,
                                         util::Rng& rng);

/// Burst sigma that makes the hourly-count Jain fairness approximately
/// `target_fairness`, given the model's diurnal amplitude (derived from
/// CV² = 1/f - 1 and the lognormal/sinusoid variance decomposition).
double burst_sigma_for_fairness(double target_fairness,
                                double diurnal_amplitude);

}  // namespace cgc::gen
