// GoogleWorkloadModel — synthetic Google-data-center workload calibrated
// to the paper's reported statistics (see gen/calibration.hpp and
// DESIGN.md §2 for the substitution rationale).
//
// Two products:
//   * generate_workload()     — a workload-only TraceSet (jobs + tasks)
//     at the paper's full submission rate, for the work-load analyses
//     (Figs 2-6, Table I);
//   * generate_sim_workload() — sim::TaskSpecs at a per-machine-scaled
//     rate, to be run through sim::ClusterSim for the host-load analyses
//     (Figs 7-13, Tables II-III).
#pragma once

#include <cstdint>
#include <vector>

#include "gen/arrival.hpp"
#include "gen/workload_model.hpp"
#include "sim/task_spec.hpp"
#include "trace/trace_set.hpp"

namespace cgc::gen {

struct GoogleModelConfig {
  // ---- arrivals (Table I row 1) -------------------------------------------
  ArrivalModel arrival{
      /*mean_per_hour=*/552.0,
      /*diurnal_amplitude=*/0.18,
      /*weekly_amplitude=*/0.05,
      /*burst_sigma=*/0.16,
      /*burst_ar1=*/0.6,
      /*dip_probability=*/0.004,
      /*dip_factor=*/0.07,
  };

  // ---- job structure ---------------------------------------------------------
  /// Fraction of single-task jobs ("each Google job usually consists of
  /// only a single task").
  double single_task_fraction = 0.75;
  /// Multi-task jobs: tasks-per-job is log-uniform in [2, max].
  std::int32_t max_tasks_per_job = 600;
  /// Shape of the tasks-per-job tail (higher = heavier tail).
  double tasks_per_job_log_sigma = 1.0;

  // ---- lengths (Fig 3, Fig 4, Section III.2) ----------------------------------
  /// Short/interactive tasks: lognormal, calibrated to 55% < 10 min,
  /// ~90% < 1 h, 94% < 3 h.
  double short_length_median_s = 390.0;
  double short_length_sigma = 1.05;
  /// Mid-length services: bounded Pareto over [3 h, 20 d]; with the
  /// long-service spike below this reproduces the 6/94 joint ratio and
  /// the ~23-day mass median (mm-distance) of Fig 4a.
  double service_fraction = 0.05;
  double service_length_lo_s = 3.0 * 3600;
  double service_length_hi_s = 20.0 * 86400;
  double service_length_alpha = 0.35;
  /// Month-scale services (uniform in [lo, hi]): few in count, they carry
  /// the bulk of the task-second mass ("a handful of tasks last for
  /// several days or weeks and likely correspond to long-running
  /// services").
  double long_service_fraction = 0.006;
  double long_service_lo_s = 20.0 * 86400;
  double long_service_hi_s = 29.0 * 86400;

  // ---- fates (Fig 8: 59.2% abnormal; 50% fail / 30.7% kill) --------------------
  double fail_fraction = 0.37;
  std::int32_t fail_resubmits = 2;
  double kill_fraction = 0.28;
  double lost_fraction = 0.04;

  // ---- resources ---------------------------------------------------------------
  /// Request distributions (normalized units; lognormal median/sigma).
  double short_cpu_request_median = 0.010;
  double service_cpu_request_median = 0.008;
  double cpu_request_sigma = 0.6;
  double short_mem_request_median = 0.006;
  double service_mem_request_median = 0.0115;
  double mem_request_sigma = 0.5;
  /// Mean fraction of the CPU request actually burned (Fig 11: ~35%).
  double cpu_usage_ratio_mean = 0.34;
  /// Fraction of CPU-bursty tasks and their usage-to-request ratio.
  /// Ratios above 1 model opportunistic use of idle cycles beyond the
  /// request — that is what pushes hosts to their CPU capacity and
  /// produces the Fig 7a mass at the capacity value.
  double cpu_burst_fraction = 0.10;
  double cpu_burst_ratio = 1.5;
  /// Memory usage ratio (Fig 7b: max consumed ~ 80% of capacity).
  double mem_usage_ratio_mean = 0.82;
  /// Page-cache footprint mixture (Fig 7d bimodality): most tasks touch
  /// little page cache; file-heavy tasks touch a lot.
  double page_cache_small_median = 0.002;
  double page_cache_large_median = 0.020;
  double page_cache_large_fraction = 0.30;

  // ---- host-load simulation scale ----------------------------------------------
  /// Target steady-state running tasks per machine (Fig 8b: ~40).
  double target_running_per_machine = 33.0;
  /// Fraction of tasks submitted with a placement constraint (one
  /// required machine attribute; see trace::MachineAttribute). Sharma et
  /// al. (cited in Section V) report constraints measurably increase
  /// scheduling delay — bench_ablation_constraints sweeps this.
  double constrained_task_fraction = 0.12;
  /// Probability that a machine offers each attribute bit.
  double machine_attribute_density = 0.62;
  /// Best-effort scavenger population (steady-state tasks per machine):
  /// low-priority backfill work that soaks the overcommit memory slice
  /// and is continuously evicted by mid/high-priority arrivals — the
  /// structural source of Fig 8's EVICT events.
  double scavenger_per_machine = 2.5;
  double scavenger_length_median_s = 2.0 * 3600;
  double scavenger_length_sigma = 0.9;
  /// Warm-up: the simulated workload starts this many days before the
  /// sampling window, so the short/mid-service population is at steady
  /// state at t=0 (the real trace observes a long-running cluster, not a
  /// cold start).
  double warmup_days = 4.0;
  /// Busy period (Fig 10a: days 21-25): arrival and usage surge.
  double busy_day_start = 21.0;
  double busy_day_end = 25.0;
  double busy_rate_factor = 1.8;
  double busy_cpu_ratio_boost = 1.8;

  /// Fraction of tasks materialized into the workload TraceSet (jobs
  /// always carry their full num_tasks). Month-long full-rate runs have
  /// ~10M tasks; sampling keeps memory bounded without biasing the
  /// task-length or priority statistics. 0 disables task records.
  double task_sampling_rate = 1.0;

  std::uint64_t seed = 20120924;  // CLUSTER'12 conference date
};

class GoogleWorkloadModel : public WorkloadModel {
 public:
  explicit GoogleWorkloadModel(GoogleModelConfig config = {});

  const GoogleModelConfig& config() const { return config_; }

  /// Always "google" — the paper's cloud system.
  const std::string& name() const override { return name_; }

  /// Full-rate workload-only trace (jobs and tasks; no machines).
  trace::TraceSet generate_workload(util::TimeSec horizon) const override;

  /// Heterogeneous machine park with the paper's capacity groups (Fig 7).
  std::vector<trace::Machine> make_machines(
      std::size_t count) const override;

  /// Task specs for a host-load simulation over `num_machines` machines;
  /// arrival rate is scaled so steady-state concurrency matches
  /// config.target_running_per_machine.
  sim::Workload generate_sim_workload(util::TimeSec horizon,
                                      std::size_t num_machines) const override;

  /// The calibration seed (GoogleModelConfig::seed).
  std::uint64_t base_seed() const override { return config_.seed; }

 private:
  GoogleModelConfig config_;
  std::string name_ = "google";
};

}  // namespace cgc::gen
