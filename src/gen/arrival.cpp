#include "gen/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace cgc::gen {

std::vector<double> hourly_rates(const ArrivalModel& model,
                                 std::size_t num_hours, util::Rng& rng) {
  CGC_CHECK_MSG(model.mean_per_hour >= 0.0, "negative arrival rate");
  CGC_CHECK_MSG(model.diurnal_amplitude >= 0.0 &&
                    model.diurnal_amplitude < 1.0,
                "diurnal amplitude out of [0,1)");
  CGC_CHECK_MSG(model.weekly_amplitude >= 0.0 && model.weekly_amplitude < 1.0,
                "weekly amplitude out of [0,1)");
  std::vector<double> rates(num_hours);
  // AR(1) log-noise with stationary variance burst_sigma^2: innovations
  // have sigma_e = sigma * sqrt(1 - phi^2).
  const double phi = model.burst_ar1;
  const double sigma_e =
      model.burst_sigma * std::sqrt(std::max(0.0, 1.0 - phi * phi));
  double log_noise = model.burst_sigma * rng.normal();
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t h = 0; h < num_hours; ++h) {
    const double t = static_cast<double>(h);
    const double diurnal =
        1.0 + model.diurnal_amplitude *
                  std::sin(2.0 * std::numbers::pi * t / 24.0 + phase);
    const double weekly =
        1.0 + model.weekly_amplitude *
                  std::sin(2.0 * std::numbers::pi * t / 168.0 + 0.5 * phase);
    // Mean-one lognormal: exp(x - sigma^2/2), x ~ N(0, sigma^2).
    const double noise =
        std::exp(log_noise - 0.5 * model.burst_sigma * model.burst_sigma);
    double rate = model.mean_per_hour * diurnal * weekly * noise;
    if (model.dip_probability > 0.0 && rng.bernoulli(model.dip_probability)) {
      rate *= model.dip_factor;
    }
    rates[h] = std::max(0.0, rate);
    log_noise = phi * log_noise + sigma_e * rng.normal();
  }
  return rates;
}

std::vector<util::TimeSec> arrival_times(const ArrivalModel& model,
                                         util::TimeSec horizon,
                                         util::Rng& rng) {
  CGC_CHECK_MSG(horizon > 0, "horizon must be positive");
  const auto num_hours = static_cast<std::size_t>(
      (horizon + util::kSecondsPerHour - 1) / util::kSecondsPerHour);
  const std::vector<double> rates = hourly_rates(model, num_hours, rng);
  std::vector<util::TimeSec> times;
  times.reserve(static_cast<std::size_t>(model.mean_per_hour *
                                         static_cast<double>(num_hours)) +
                16);
  for (std::size_t h = 0; h < num_hours; ++h) {
    const std::int64_t count = rates[h] <= 0.0 ? 0 : rng.poisson(rates[h]);
    const util::TimeSec hour_start =
        static_cast<util::TimeSec>(h) * util::kSecondsPerHour;
    for (std::int64_t i = 0; i < count; ++i) {
      const util::TimeSec t =
          hour_start + rng.uniform_int(0, util::kSecondsPerHour - 1);
      if (t < horizon) {
        times.push_back(t);
      }
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

double burst_sigma_for_fairness(double target_fairness,
                                double diurnal_amplitude) {
  CGC_CHECK_MSG(target_fairness > 0.0 && target_fairness <= 1.0,
                "fairness must be in (0,1]");
  // Jain fairness f relates to the squared coefficient of variation:
  // f = 1 / (1 + CV^2). The rate process multiplies an (independent)
  // sinusoid of variance a^2/2 with a mean-one lognormal of variance
  // e^{sigma^2} - 1, so 1 + CV^2 = (1 + a^2/2) * e^{sigma^2}.
  const double total = 1.0 / target_fairness;
  const double diurnal_part =
      1.0 + 0.5 * diurnal_amplitude * diurnal_amplitude;
  if (total <= diurnal_part) {
    return 0.0;  // diurnal modulation alone already exceeds the target
  }
  return std::sqrt(std::log(total / diurnal_part));
}

}  // namespace cgc::gen
