// GridWorkloadModel — synthetic Grid/HPC workloads calibrated to the
// paper's comparison systems (Table I rates and fairness; Figs 3/5/6
// shapes; AuverGrid task-length statistics of Section III.2).
//
// Each preset describes one system from the Grid Workload Archive or
// Parallel Workload Archive. Job lengths are a two-component lognormal
// mixture (body + long tail, capped at the system's observed maximum);
// arrivals are diurnal and bursty (low Jain fairness); jobs are parallel
// (multiple processors), CPU-bound and steady — the properties the paper
// contrasts against the Cloud.
#pragma once

#include <string>
#include <vector>

#include "gen/arrival.hpp"
#include "gen/workload_model.hpp"
#include "sim/config.hpp"
#include "sim/task_spec.hpp"
#include "trace/trace_set.hpp"

namespace cgc::gen {

/// Weighted choice of processor counts for parallel jobs.
struct ProcsChoice {
  int procs = 1;
  double weight = 1.0;
};

struct GridSystemPreset {
  std::string name;
  // ---- arrivals (Table I) ---------------------------------------------------
  double jobs_per_hour = 10.0;
  double target_fairness = 0.3;   ///< Jain fairness of hourly counts
  double diurnal_amplitude = 0.6; ///< strong day/night cycle
  double weekly_amplitude = 0.2;
  double burst_ar1 = 0.5;
  // ---- job length mixture ------------------------------------------------------
  double body_median_s = 2 * 3600.0;
  double body_sigma = 1.0;
  double long_fraction = 0.2;
  double long_median_s = 12 * 3600.0;
  double long_sigma = 0.8;
  double max_length_s = 18.0 * 86400;  ///< hard cap (observed maximum)
  // ---- parallelism / resources ----------------------------------------------
  std::vector<ProcsChoice> procs;       ///< processor-count distribution
  double cpu_efficiency_mean = 0.92;    ///< fraction of procs actually burned
  double mem_per_proc_mb_median = 400;  ///< used memory per processor
  double mem_per_proc_mb_sigma = 0.9;
  // ---- host-load simulation (Fig 13) -------------------------------------------
  /// Mean per-node CPU utilization target for simulated grid clusters.
  double node_utilization = 1.0;
  /// Core slots per node: a node hosts this many single-core grid
  /// processes (each requests ~1/slots of the node's CPU).
  int slots_per_node = 4;
  /// Normalized per-process memory request (median of a lognormal).
  double sim_mem_request_median = 0.055;
  double sim_mem_request_sigma = 0.7;

  std::uint64_t seed = 7;
};

/// Preset registry for the systems the paper compares against.
namespace presets {
GridSystemPreset auvergrid();
GridSystemPreset nordugrid();
GridSystemPreset sharcnet();
GridSystemPreset das2();
GridSystemPreset anl();
GridSystemPreset ricc();
GridSystemPreset metacentrum();
GridSystemPreset llnl_atlas();
/// All eight, in the paper's Table I order (DAS-2 appended).
std::vector<GridSystemPreset> all();
}  // namespace presets

class GridWorkloadModel : public WorkloadModel {
 public:
  explicit GridWorkloadModel(GridSystemPreset preset);

  const GridSystemPreset& preset() const { return preset_; }

  /// Lowercased preset name ("auvergrid", "das-2", ...), stable for use
  /// in scenario keys.
  const std::string& name() const override { return name_; }

  /// Full-rate workload-only trace (jobs + single parallel task each).
  trace::TraceSet generate_workload(util::TimeSec horizon) const override;

  /// Homogeneous grid nodes (capacity 1.0 CPU / 1.0 memory).
  std::vector<trace::Machine> make_machines(
      std::size_t count) const override;

  /// Task specs for a host-load simulation: one task per allocated node,
  /// CPU-bound and steady, rate scaled to the preset's node utilization.
  sim::Workload generate_sim_workload(util::TimeSec horizon,
                                      std::size_t num_machines) const override;

  /// Simulator settings appropriate for a grid cluster (no preemption,
  /// negligible usage jitter).
  static void apply_grid_sim_defaults(sim::SimConfig* config);

  /// Instance form of apply_grid_sim_defaults, for polymorphic callers.
  void apply_sim_defaults(sim::SimConfig* config) const override {
    apply_grid_sim_defaults(config);
  }

  /// The preset seed (GridSystemPreset::seed).
  std::uint64_t base_seed() const override { return preset_.seed; }

 private:
  GridSystemPreset preset_;
  std::string name_;
};

}  // namespace cgc::gen
