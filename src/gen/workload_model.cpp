#include "gen/workload_model.hpp"

#include "gen/google_model.hpp"
#include "gen/grid_model.hpp"
#include "util/error.hpp"

namespace cgc::gen {

void WorkloadModel::apply_sim_defaults(sim::SimConfig* /*config*/) const {
  // Cloud defaults: SimConfig's own defaults are the Google calibration.
}

std::vector<std::string> workload_model_names() {
  std::vector<std::string> names;
  names.push_back("google");
  for (const GridSystemPreset& p : presets::all()) {
    names.push_back(GridWorkloadModel(p).name());
  }
  return names;
}

std::unique_ptr<WorkloadModel> make_workload_model(const std::string& name,
                                                   std::uint64_t seed) {
  if (name == "google") {
    GoogleModelConfig config;
    if (seed != 0) {
      config.seed = seed;
    }
    return std::make_unique<GoogleWorkloadModel>(config);
  }
  for (const GridSystemPreset& preset : presets::all()) {
    auto model = std::make_unique<GridWorkloadModel>(preset);
    if (model->name() == name) {
      if (seed != 0) {
        GridSystemPreset seeded = preset;
        seeded.seed = seed;
        return std::make_unique<GridWorkloadModel>(seeded);
      }
      return model;
    }
  }
  std::string known;
  for (const std::string& n : workload_model_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw util::FatalError("unknown workload model \"" + name +
                         "\" (known: " + known + ")");
}

}  // namespace cgc::gen
