// Calibration constants extracted from the paper.
//
// Every number here is traceable to a specific figure, table, or
// sentence of Di/Kondo/Cirne (CLUSTER 2012); the generators are tuned so
// the regenerated traces reproduce these statistics, and the calibration
// tests assert the match. Where the paper gives only a plot, the
// constants encode our reading of it (noted "from Fig N").
#pragma once

#include <array>
#include <cstddef>

#include "util/time_util.hpp"

namespace cgc::gen::paper {

// ---- Section II / abstract ------------------------------------------------
inline constexpr std::size_t kGoogleMachines = 12500;
inline constexpr double kGoogleTotalTasks = 25e6;
inline constexpr double kGoogleTotalJobs = 670e3;
inline constexpr util::TimeSec kTraceDuration = util::kSecondsPerMonth;

// ---- Fig 2: priority histogram (job counts, priorities 1..12) -------------
// The paper labels the large bars explicitly (16e4, 11.3e4, 17e4, 13e4,
// 0.9e4, 4e4, 4.7e4); the remaining high-priority bars are small. The
// three bands: low 1-4, mid 5-8, high 9-12.
inline constexpr std::array<double, 12> kJobPriorityWeights = {
    16.0, 11.3, 17.0, 13.0,   // low band (from Fig 2a labels)
    0.9, 4.0, 4.7, 0.4,       // mid band
    0.35, 0.25, 0.15, 0.1,    // high band (small; from Fig 2a shape)
};

// ---- Section III.2: job/task length ----------------------------------------
/// "over 80% Google jobs' lengths are shorter than 1000 seconds"
inline constexpr double kGoogleJobsUnder1000s = 0.80;
/// "about 94% of tasks' execution times ... are less than 3 hours"
inline constexpr double kGoogleTasksUnder3h = 0.94;
/// "about 55% of tasks finish within 10 minutes" (conclusion)
inline constexpr double kGoogleTasksUnder10min = 0.55;
/// "about 90% of tasks' lengths are shorter than 1 hour" (conclusion)
inline constexpr double kGoogleTasksUnder1h = 0.90;
/// mean / max task execution time in the Google cluster
inline constexpr double kGoogleTaskMeanSec = 5.6 * 3600;
inline constexpr double kGoogleTaskMaxSec = 29.0 * 86400;
/// mean / max task execution time in AuverGrid (340k tasks)
inline constexpr double kAuverGridTaskMeanSec = 7.2 * 3600;
inline constexpr double kAuverGridTaskMaxSec = 18.0 * 86400;
/// "only 70% of tasks in AuverGrid are smaller than 12 hours"
inline constexpr double kAuverGridTasksUnder12h = 0.70;

// ---- Fig 4: mass-count of task lengths --------------------------------------
inline constexpr double kGoogleTaskJointRatioMass = 6.0;    // 6/94
inline constexpr double kGoogleTaskJointRatioCount = 94.0;
inline constexpr double kAuverGridTaskJointRatioMass = 24.0;  // 24/76
inline constexpr double kAuverGridTaskJointRatioCount = 76.0;
/// mm-distance of Google task lengths, in days (Fig 4a)
inline constexpr double kGoogleTaskMmDistanceDays = 23.19;
/// mm-distance of AuverGrid task lengths, in days (Fig 4b)
inline constexpr double kAuverGridTaskMmDistanceDays = 0.82;

// ---- Table I: jobs submitted per hour ---------------------------------------
struct SubmissionRow {
  const char* system;
  double max_per_hour;
  double avg_per_hour;
  double min_per_hour;
  double fairness;
};
inline constexpr std::array<SubmissionRow, 8> kTableI = {{
    {"Google", 1421, 552, 36, 0.94},
    {"AuverGrid", 818, 45, 0, 0.35},
    {"NorduGrid", 2175, 27, 0, 0.11},
    {"SHARCNET", 22334, 126, 0, 0.04},
    {"ANL", 132, 10, 0, 0.51},
    {"RICC", 4919, 121, 0, 0.14},
    {"METACENTRUM", 2315, 24, 0, 0.04},
    {"LLNL-Atlas", 240, 8.4, 0, 0.23},
}};

// ---- Section IV / Fig 7: machine capacities ---------------------------------
// Normalized capacity groups visible as the dashed lines of Fig 7.
inline constexpr std::array<double, 3> kCpuCapacityValues = {0.25, 0.5, 1.0};
/// Our reading of the group sizes (the public trace is dominated by the
/// middle CPU class).
inline constexpr std::array<double, 3> kCpuCapacityShares = {0.30, 0.60, 0.10};
inline constexpr std::array<double, 4> kMemCapacityValues = {0.25, 0.5, 0.75,
                                                             1.0};
inline constexpr std::array<double, 4> kMemCapacityShares = {0.25, 0.45, 0.20,
                                                             0.10};
/// "maximum memory size consumed ... around 80% of capacity" (Fig 7b)
inline constexpr double kMaxMemUsageOfCapacity = 0.80;
/// "summed assigned memory size is around 90% of capacity" (Fig 7c)
inline constexpr double kMaxMemAssignedOfCapacity = 0.90;

// ---- Fig 8 / queue state ------------------------------------------------------
/// "for the totally 44 million task-completion events, about 59.2% are
/// abnormal ones, among which most of them belong to the fail state
/// (50%) or the kill state (30.7%)"
inline constexpr double kAbnormalFractionOfCompletions = 0.592;
inline constexpr double kFailShareOfAbnormal = 0.50;
inline constexpr double kKillShareOfAbnormal = 0.307;
/// running-queue state on the example host stabilizes around 40 tasks
inline constexpr double kTypicalRunningTasksPerHost = 40;

// ---- Tables II/III: unchanged usage-level durations ----------------------------
/// CPU level changes every ~6 minutes on average; memory ~6-10 minutes.
inline constexpr double kCpuLevelMeanDurationMin = 6.0;
inline constexpr double kMemLevelMeanDurationMinLo = 6.0;
inline constexpr double kMemLevelMeanDurationMinHi = 10.0;

// ---- Figs 11/12: usage mass-count ----------------------------------------------
/// "percentage load of CPU is about 35% w.r.t. all the tasks and about
/// 20% for the high-priority tasks, while memory's are about 60% and
/// 50% respectively"
inline constexpr double kCpuMeanUsageAllTasks = 0.35;
inline constexpr double kCpuMeanUsageHighPriority = 0.20;
inline constexpr double kMemMeanUsageAllTasks = 0.60;
inline constexpr double kMemMeanUsageHighPriority = 0.50;

// ---- Fig 13: noise and autocorrelation -------------------------------------------
/// min/mean/max noise of CPU load after mean filtering
inline constexpr double kAuverGridNoiseMin = 0.00008;
inline constexpr double kAuverGridNoiseMean = 0.0011;
inline constexpr double kAuverGridNoiseMax = 0.0026;
inline constexpr double kGoogleNoiseMin = 0.00024;
inline constexpr double kGoogleNoiseMean = 0.028;
inline constexpr double kGoogleNoiseMax = 0.081;
/// "noise of Google cluster's usage load is about 20 times as large as
/// that of Grid's on average"
inline constexpr double kCloudToGridNoiseRatio = 20.0;

}  // namespace cgc::gen::paper
