// Simulator configuration.
//
// Every field below is a modeling or engineering knob of ClusterSim;
// each is documented where it is declared (CI enforces this for all
// public sim headers — see tools/cgc_lint.py --check doc-coverage). Defaults
// model the paper's Google cluster; GridWorkloadModel overrides the
// noise knobs for the steady Grid hosts (Fig 13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/time_util.hpp"

namespace cgc::sim {

/// Machine-selection policy when several machines can host a task.
/// The paper describes Google's scheduler as using "the best resources
/// first, in order to optimally balance the resource demands across
/// machines" — kBalanced models that; the others exist for ablation.
enum class PlacementPolicy : std::uint8_t {
  kBalanced = 0,  ///< minimize resulting max relative utilization
  kBestFit = 1,   ///< minimize leftover slack (tightest packing)
  kWorstFit = 2,  ///< maximize leftover slack (spread load)
  kFirstFit = 3,  ///< first machine that fits (by index)
  kRandom = 4,    ///< uniformly random among fitting machines
};

/// Short stable name of a placement policy ("balanced", "best-fit", ...).
std::string_view placement_name(PlacementPolicy policy);

struct SimConfig {
  /// Usage sampling period; the Google trace reports every 5 minutes.
  /// Samples are taken at t = 0, period, 2*period, ... strictly before
  /// the horizon, and a sample at time t observes the cluster *before*
  /// any event at t is processed (an arrival at t=0 is not visible in
  /// the t=0 sample). Must be positive.
  util::TimeSec sample_period = util::kSamplePeriod;
  /// Simulation horizon (exclusive): events at or after it are not
  /// processed and the last sample lies strictly before it, so a run
  /// records exactly horizon / sample_period samples per machine.
  /// Tasks still running at the horizon stay open (end_time = -1),
  /// matching trace-boundary truncation. Must be positive.
  util::TimeSec horizon = util::kSecondsPerMonth;
  /// Machine-selection policy (see PlacementPolicy).
  PlacementPolicy placement = PlacementPolicy::kBalanced;
  /// Allow high-priority tasks to evict lower-priority ones (both
  /// capacity eviction when nothing fits, and isolation eviction below).
  bool preemption = true;
  /// Admission: total assigned memory must stay below this fraction of
  /// capacity — models the kernel/system overhead the paper infers from
  /// max memory usage saturating near 90% of capacity (Fig 7c).
  double mem_admission_headroom = 0.92;
  /// Low-priority (best-effort) tasks may overcommit memory up to this
  /// fraction of capacity, soaking up the slack that mid/high-priority
  /// arrivals reclaim by eviction — the structural source of the EVICT
  /// events in Fig 8 (Google's best-effort tier works the same way).
  double mem_overcommit_low_priority = 0.97;
  /// Admission limit for the sum of CPU requests relative to capacity.
  double cpu_admission_limit = 1.0;
  /// Per-sample multiplicative jitter (sigma of a lognormal factor) on
  /// task CPU usage — Cloud tasks are interactive and noisy, Grid tasks
  /// steady; this is the knob behind the Fig 13 noise comparison.
  double cpu_usage_jitter = 0.25;
  /// Same for memory (memory footprints are far steadier).
  double mem_usage_jitter = 0.08;
  /// Machine-level multiplicative jitter applied to the whole CPU sample
  /// of a host (co-tenant/daemon interference, correlated across tasks).
  /// This is what lets hosts transiently saturate — the clamped spikes
  /// reproduce the max-load mass at capacity in Fig 7a — and it drives
  /// the host-level noise compared in Fig 13.
  /// Defaults model a noisy multi-tenant Cloud host; grid clusters
  /// override via GridWorkloadModel::apply_grid_sim_defaults.
  double machine_cpu_jitter = 0.20;
  /// Machine-level lognormal jitter on the host's memory sample.
  double machine_mem_jitter = 0.05;
  /// Transient whole-machine CPU spikes (system daemons, log rotation,
  /// co-scheduled maintenance): with this per-sample probability the
  /// machine's CPU sample is multiplied by cpu_spike_factor (then
  /// clamped at capacity). These clamped spikes are what put the Fig 7a
  /// max-load mass exactly at the capacity line.
  double cpu_spike_probability = 0.004;
  /// Multiplier applied to a spiking machine's CPU sample.
  double cpu_spike_factor = 2.0;
  /// Mean delay before a failed task is resubmitted (exponential,
  /// truncated below at 1 s).
  util::TimeSec resubmit_delay_mean = 2 * util::kSecondsPerMinute;
  /// Evicted tasks always return to the pending queue after exactly
  /// this delay (the Borg-style "re-admit shortly after preemption"
  /// path; no randomness — eviction churn stays deterministic).
  util::TimeSec evict_requeue_delay = 180;
  /// Isolation eviction: when a mid/high-priority task is placed on a
  /// machine running strictly-lower-priority work, it evicts the lowest-
  /// priority neighbor with this probability — Borg-style preemption for
  /// latency/interference isolation, the steady EVICT stream of Fig 8
  /// (capacity-pressure eviction still happens on top of this).
  double isolation_eviction_probability = 0.45;
  /// Scheduler pass budget: after this many consecutive placement
  /// failures within one priority queue, the rest of that queue is
  /// skipped until the next pass. Tasks are near-interchangeable in
  /// size, so a long failure streak means the cluster is full; the cap
  /// keeps a deep backlog from making every pass O(pending * machines).
  std::size_t max_schedule_failures_per_pass = 48;
  /// Placement probe budget per task. 0 = auto: clusters up to 512
  /// machines are scanned exhaustively (the seed behaviour, kept for
  /// small ablation runs); larger clusters are probed at ~96 hashed
  /// candidates (power-of-d-choices) so placement is O(probes), not
  /// O(machines). Any other value forces that many probes; a value >=
  /// the machine count forces a full scan. Probe sequences are
  /// counter-hashed from (seed, task, schedule-pass number), so they
  /// are deterministic at any CGC_THREADS.
  std::size_t placement_probe_limit = 0;
  /// Record the full task-event stream (disable to save memory on very
  /// large runs). With the counter-based RNG, toggling any record_*
  /// knob never changes the simulated dynamics — only what is kept.
  bool record_events = true;
  /// Record per-machine HostLoadSeries. Disabling also skips the
  /// sampling computation entirely (sampling is observation-only).
  bool record_host_load = true;
  /// Materialize per-task and per-job records into the TraceSet.
  bool record_tasks = true;
  /// Root seed for every stochastic decision. All randomness is
  /// counter-based (sim/sim_rng.hpp): draws are pure functions of
  /// (seed, site, stable keys), never of execution order.
  std::uint64_t seed = 42;
};

}  // namespace cgc::sim
