// Simulator configuration.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time_util.hpp"

namespace cgc::sim {

/// Machine-selection policy when several machines can host a task.
/// The paper describes Google's scheduler as using "the best resources
/// first, in order to optimally balance the resource demands across
/// machines" — kBalanced models that; the others exist for ablation.
enum class PlacementPolicy : std::uint8_t {
  kBalanced = 0,  ///< minimize resulting max relative utilization
  kBestFit = 1,   ///< minimize leftover slack (tightest packing)
  kWorstFit = 2,  ///< maximize leftover slack (spread load)
  kFirstFit = 3,  ///< first machine that fits (by id)
  kRandom = 4,    ///< uniformly random among fitting machines
};

std::string_view placement_name(PlacementPolicy policy);

struct SimConfig {
  /// Usage sampling period; the Google trace reports every 5 minutes.
  util::TimeSec sample_period = util::kSamplePeriod;
  /// Simulation horizon; tasks still running at the horizon stay open
  /// (end_time = -1), matching trace-boundary truncation.
  util::TimeSec horizon = util::kSecondsPerMonth;
  PlacementPolicy placement = PlacementPolicy::kBalanced;
  /// Allow high-priority tasks to evict lower-priority ones.
  bool preemption = true;
  /// Admission: total assigned memory must stay below this fraction of
  /// capacity — models the kernel/system overhead the paper infers from
  /// max memory usage saturating near 90% of capacity (Fig 7c).
  double mem_admission_headroom = 0.92;
  /// Low-priority (best-effort) tasks may overcommit memory up to this
  /// fraction of capacity, soaking up the slack that mid/high-priority
  /// arrivals reclaim by eviction — the structural source of the EVICT
  /// events in Fig 8 (Google's best-effort tier works the same way).
  double mem_overcommit_low_priority = 0.97;
  /// Admission limit for the sum of CPU requests relative to capacity.
  double cpu_admission_limit = 1.0;
  /// Per-sample multiplicative jitter (sigma of a lognormal factor) on
  /// task CPU usage — Cloud tasks are interactive and noisy, Grid tasks
  /// steady; this is the knob behind the Fig 13 noise comparison.
  double cpu_usage_jitter = 0.25;
  /// Same for memory (memory footprints are far steadier).
  double mem_usage_jitter = 0.08;
  /// Machine-level multiplicative jitter applied to the whole CPU sample
  /// of a host (co-tenant/daemon interference, correlated across tasks).
  /// This is what lets hosts transiently saturate — the clamped spikes
  /// reproduce the max-load mass at capacity in Fig 7a — and it drives
  /// the host-level noise compared in Fig 13.
  /// Defaults model a noisy multi-tenant Cloud host; grid clusters
  /// override via GridWorkloadModel::apply_grid_sim_defaults.
  double machine_cpu_jitter = 0.20;
  double machine_mem_jitter = 0.05;
  /// Transient whole-machine CPU spikes (system daemons, log rotation,
  /// co-scheduled maintenance): with this per-sample probability the
  /// machine's CPU sample is multiplied by cpu_spike_factor (then
  /// clamped at capacity). These clamped spikes are what put the Fig 7a
  /// max-load mass exactly at the capacity line.
  double cpu_spike_probability = 0.004;
  double cpu_spike_factor = 2.0;
  /// Mean delay before a failed task is resubmitted (exponential).
  util::TimeSec resubmit_delay_mean = 2 * util::kSecondsPerMinute;
  /// Evicted tasks always return to the pending queue after this delay.
  util::TimeSec evict_requeue_delay = 180;
  /// Isolation eviction: when a mid/high-priority task is placed on a
  /// machine running strictly-lower-priority work, it evicts the lowest-
  /// priority neighbor with this probability — Borg-style preemption for
  /// latency/interference isolation, the steady EVICT stream of Fig 8
  /// (capacity-pressure eviction still happens on top of this).
  double isolation_eviction_probability = 0.45;
  /// Scheduler pass budget: after this many consecutive placement
  /// failures within one priority queue, the rest of that queue is
  /// skipped until the next pass. Tasks are near-interchangeable in
  /// size, so a long failure streak means the cluster is full; the cap
  /// keeps a deep backlog from making every pass O(pending * machines).
  std::size_t max_schedule_failures_per_pass = 48;
  /// Record the full task-event stream (disable to save memory on very
  /// large runs; host-load series are always recorded).
  bool record_events = true;
  std::uint64_t seed = 42;
};

}  // namespace cgc::sim
