// Paper-scale simulator core. The scheduling semantics are the seed
// model unchanged (every rule is pinned by tests/sim_test.cpp); the
// machinery around them is rebuilt for a month over 12.5k hosts:
// calendar event queue, SoA state banks, counter-based RNG, hashed
// placement probing, and cgc::exec-sharded sampling. DESIGN.md §13
// documents the layout and the determinism argument.
#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <map>
#include <utility>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_rng.hpp"
#include "sim/state_banks.hpp"
#include "util/check.hpp"

namespace cgc::sim {

namespace {

using trace::PriorityBand;
using trace::TaskEventType;
using trace::TimeSec;

/// Auto probe mode: clusters up to this size keep the seed's exhaustive
/// scan; larger ones switch to hashed probing.
constexpr std::size_t kAutoFullScanMax = 512;
/// Auto probe mode: probes per placement on large clusters. With ~33
/// running tasks per machine and near-interchangeable task sizes, 96
/// power-of-d probes make a no-fit verdict overwhelmingly reliable.
constexpr std::size_t kAutoProbes = 96;

/// Stable fault key for (machine, sample): machine_index * 2^20 +
/// sample_index (a month at 5-minute sampling has 8928 samples, far
/// below 2^20). Documented in README's fault-site table.
std::uint64_t outage_key(std::size_t machine, std::uint64_t sample_idx) {
  return (static_cast<std::uint64_t>(machine) << 20) + sample_idx;
}

}  // namespace

struct ClusterSim::Impl {
  Impl(const std::vector<trace::Machine>& machine_list, const SimConfig& cfg,
       const Workload& wl, SimStats* stats_out)
      : config(cfg),
        workload(wl),
        stats(*stats_out),
        cpu_task_jitter(cfg.cpu_usage_jitter),
        mem_task_jitter(cfg.mem_usage_jitter),
        machine_cpu_jitter(cfg.machine_cpu_jitter),
        machine_mem_jitter(cfg.machine_mem_jitter),
        queue(queue_origin(wl), cfg.horizon - queue_origin(wl)) {
    CGC_CHECK_MSG(!machine_list.empty(), "simulator needs machines");
    CGC_CHECK_MSG(wl.size() <
                      static_cast<std::size_t>(
                          std::numeric_limits<std::uint32_t>::max()),
                  "workload exceeds the 2^32-task slot space");
    machines.init(machine_list);

    const std::size_t n = wl.size();
    tasks.resize(n);
    tstatic.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const TaskSpec& spec = wl[i];
      CGC_CHECK_MSG(spec.priority >= trace::kMinPriority &&
                        spec.priority <= trace::kMaxPriority,
                    "task priority out of range");
      CGC_CHECK_MSG(spec.duration > 0, "task duration must be positive");
      tasks.remaining[i] = spec.duration;
      tasks.resubmits_left[i] = spec.max_resubmits;
      TaskStatic& ts = tstatic[i];
      ts.cpu_request = spec.cpu_request;
      ts.mem_request = spec.mem_request;
      ts.cpu_usage = spec.cpu_request * spec.cpu_usage_ratio;
      ts.mem_usage = spec.mem_request * spec.mem_usage_ratio;
      ts.page_cache = spec.page_cache;
      ts.priority = spec.priority;
      ts.band = static_cast<std::uint8_t>(trace::band_of(spec.priority));
      ts.required_attributes = spec.required_attributes;
      ts.flags = (spec.resubmit_on_abnormal ? TaskStatic::kFlagResubmit : 0) |
                 (spec.fate != TaskEventType::kFinish ? TaskStatic::kFlagHasFate
                                                      : 0);
    }

    // Initial submits are not queued: they are drained from a cursor
    // over the workload sorted by (submit_time, slot). The sort key's
    // slot tie-break reproduces the seed's push order at equal times,
    // and cursor entries drain before any same-time dynamic event (the
    // cursor's implicit sequence numbers precede all queued ones).
    order.resize(n);
    std::iota(order.begin(), order.end(), 0U);
    exec::parallel_sort(&order, [&wl](std::uint32_t a, std::uint32_t b) {
      if (wl[a].submit_time != wl[b].submit_time) {
        return wl[a].submit_time < wl[b].submit_time;
      }
      return a < b;
    });

    const std::size_t limit = config.placement_probe_limit;
    if (limit == 0) {
      probe_limit =
          machines.size() <= kAutoFullScanMax ? 0 : kAutoProbes;
    } else {
      probe_limit = limit >= machines.size() ? 0 : limit;
    }
  }

  /// Earliest time any event can carry: generated workloads submit from
  /// warmup_days *before* t=0, so the calendar origin must cover them.
  static TimeSec queue_origin(const Workload& wl) {
    TimeSec origin = 0;
    for (const TaskSpec& spec : wl) {
      origin = std::min(origin, spec.submit_time);
    }
    return origin;
  }

  // ---- event queue ---------------------------------------------------------
  void push_event(TimeSec now, TimeSec time, EvKind kind, std::uint32_t task,
                  std::uint32_t generation) {
    CGC_CHECK_MSG(time > now, "simulator events must be pushed forward");
    queue.push(time, kind, task, generation);
  }

  // ---- trace recording -----------------------------------------------------
  void record(TimeSec time, std::uint32_t task, TaskEventType type,
              std::int64_t machine_id) {
    if (!config.record_events) {
      return;
    }
    const TaskSpec& spec = workload[task];
    trace::TaskEvent e;
    e.time = time;
    e.job_id = spec.job_id;
    e.task_index = spec.task_index;
    e.machine_id = machine_id;
    e.type = type;
    e.priority = spec.priority;
    out.add_event(e);
  }

  // ---- admission -----------------------------------------------------------
  /// Memory admission limit fraction: the best-effort band may
  /// overcommit into the evictable slice.
  double mem_limit_frac(const TaskStatic& ts) const {
    return ts.band == static_cast<std::uint8_t>(PriorityBand::kLow)
               ? config.mem_overcommit_low_priority
               : config.mem_admission_headroom;
  }

  bool fits(std::size_t m, const TaskStatic& ts) const {
    return (machines.attributes[m] & ts.required_attributes) ==
               ts.required_attributes &&
           machines.cpu_assigned[m] + ts.cpu_request <=
               config.cpu_admission_limit * machines.cpu_capacity[m] &&
           machines.mem_assigned[m] + ts.mem_request <=
               mem_limit_frac(ts) * machines.mem_capacity[m];
  }

  /// Relative utilization after hypothetically adding the task.
  double relative_after(std::size_t m, const TaskStatic& ts) const {
    const double cpu = (machines.cpu_assigned[m] + ts.cpu_request) /
                       machines.cpu_capacity[m];
    const double mem = (machines.mem_assigned[m] + ts.mem_request) /
                       machines.mem_capacity[m];
    return std::max(cpu, mem);
  }

  /// Leftover normalized slack after hypothetically adding the task.
  double slack_after(std::size_t m, const TaskStatic& ts) const {
    const double cpu =
        machines.cpu_capacity[m] - (machines.cpu_assigned[m] + ts.cpu_request);
    const double mem =
        machines.mem_capacity[m] - (machines.mem_assigned[m] + ts.mem_request);
    return cpu + mem;
  }

  /// Placement score under the active policy; smaller is better (the
  /// worst-fit score is negated so one argmin covers all three).
  double score_of(std::size_t m, const TaskStatic& ts) const {
    switch (config.placement) {
      case PlacementPolicy::kBalanced:
        return relative_after(m, ts);
      case PlacementPolicy::kBestFit:
        return slack_after(m, ts);
      case PlacementPolicy::kWorstFit:
        return -slack_after(m, ts);
      default:
        return 0.0;
    }
  }

  // ---- placement -----------------------------------------------------------
  /// The i-th probe candidate for this placement's hashed probe
  /// sequence (power-of-d-choices over the machine park).
  std::size_t probe_at(std::uint64_t base, std::size_t i) const {
    return static_cast<std::size_t>(rng::mix(base + i) % machines.size());
  }

  /// Hashed base of the probe sequence: stable in (seed, task, pass),
  /// so a retry in a later pass probes different machines and any
  /// thread count derives the same sequence.
  std::uint64_t probe_base(std::uint32_t task) const {
    return rng::hash2(config.seed, rng::kSaltProbe, task, pass_seq);
  }

  /// Exhaustive scan with the seed's exact semantics: the first machine
  /// achieving a strictly better score wins, so ties resolve to the
  /// lowest index. Scored policies go through exec::parallel_reduce
  /// (chunk partials combined in chunk order reproduce the serial
  /// first-wins rule); first-fit exits early and random gathers the
  /// fitting set, both serial.
  int pick_machine_full(std::uint32_t task, const TaskStatic& ts) {
    const std::size_t m_count = machines.size();
    if (config.placement == PlacementPolicy::kFirstFit) {
      for (std::size_t m = 0; m < m_count; ++m) {
        if (fits(m, ts)) {
          return static_cast<int>(m);
        }
      }
      return -1;
    }
    if (config.placement == PlacementPolicy::kRandom) {
      scratch_fitting.clear();
      for (std::size_t m = 0; m < m_count; ++m) {
        if (fits(m, ts)) {
          scratch_fitting.push_back(static_cast<std::uint32_t>(m));
        }
      }
      if (scratch_fitting.empty()) {
        return -1;
      }
      const std::uint64_t h =
          rng::hash2(config.seed, rng::kSaltRandomPick, task, pass_seq);
      return static_cast<int>(scratch_fitting[h % scratch_fitting.size()]);
    }
    struct Cand {
      int machine = -1;
      double score = 0.0;
    };
    const Cand best = exec::parallel_reduce<Cand>(
        0, m_count, Cand{},
        [&](std::size_t lo, std::size_t hi) {
          Cand c;
          for (std::size_t m = lo; m < hi; ++m) {
            if (!fits(m, ts)) {
              continue;
            }
            const double s = score_of(m, ts);
            if (c.machine < 0 || s < c.score) {
              c.machine = static_cast<int>(m);
              c.score = s;
            }
          }
          return c;
        },
        [](Cand& acc, Cand part) {
          if (part.machine >= 0 &&
              (acc.machine < 0 || part.score < acc.score)) {
            acc = part;
          }
        });
    return best.machine;
  }

  /// Probed placement: O(probe_limit) hashed candidates instead of
  /// O(machines). Selection rules mirror the full scan restricted to
  /// the probe sequence (first strictly better in probe order).
  int pick_machine_probed(std::uint32_t task, const TaskStatic& ts) {
    const std::uint64_t base = probe_base(task);
    if (config.placement == PlacementPolicy::kRandom) {
      scratch_fitting.clear();
      for (std::size_t i = 0; i < probe_limit; ++i) {
        const std::size_t m = probe_at(base, i);
        if (fits(m, ts)) {
          scratch_fitting.push_back(static_cast<std::uint32_t>(m));
        }
      }
      if (scratch_fitting.empty()) {
        return -1;
      }
      const std::uint64_t h =
          rng::hash2(config.seed, rng::kSaltRandomPick, task, pass_seq);
      return static_cast<int>(scratch_fitting[h % scratch_fitting.size()]);
    }
    int best = -1;
    double best_score = 0.0;
    for (std::size_t i = 0; i < probe_limit; ++i) {
      const std::size_t m = probe_at(base, i);
      if (!fits(m, ts)) {
        continue;
      }
      if (config.placement == PlacementPolicy::kFirstFit) {
        return static_cast<int>(m);
      }
      const double s = score_of(m, ts);
      if (best < 0 || s < best_score) {
        best = static_cast<int>(m);
        best_score = s;
      }
    }
    return best;
  }

  int pick_machine(std::uint32_t task, const TaskStatic& ts) {
    return probe_limit == 0 ? pick_machine_full(task, ts)
                            : pick_machine_probed(task, ts);
  }

  /// Can eviction of strictly-lower-priority tasks make room on m?
  bool evictable_fit(std::size_t m, const TaskStatic& ts) const {
    if ((machines.attributes[m] & ts.required_attributes) !=
        ts.required_attributes) {
      return false;
    }
    double cpu = machines.cpu_assigned[m];
    double mem = machines.mem_assigned[m];
    for (const RunEntry& e : machines.running[m]) {
      if (e.priority < ts.priority) {
        cpu -= e.cpu_request;
        mem -= e.mem_request;
      }
    }
    return cpu + ts.cpu_request <=
               config.cpu_admission_limit * machines.cpu_capacity[m] &&
           mem + ts.mem_request <=
               mem_limit_frac(ts) * machines.mem_capacity[m];
  }

  /// First machine (scan order in full mode, probe order in probed
  /// mode) where eviction can make the task fit; -1 when none.
  int find_evictable(std::uint32_t task, const TaskStatic& ts) const {
    if (probe_limit == 0) {
      for (std::size_t m = 0; m < machines.size(); ++m) {
        if (evictable_fit(m, ts)) {
          return static_cast<int>(m);
        }
      }
      return -1;
    }
    const std::uint64_t base = probe_base(task);
    for (std::size_t i = 0; i < probe_limit; ++i) {
      const std::size_t m = probe_at(base, i);
      if (evictable_fit(m, ts)) {
        return static_cast<int>(m);
      }
    }
    return -1;
  }

  // ---- run-state transitions -----------------------------------------------
  void remove_from_machine(std::uint32_t task) {
    const std::int32_t mi = tasks.machine[task];
    CGC_CHECK(mi >= 0);
    const std::size_t m = static_cast<std::size_t>(mi);
    const TaskStatic& ts = tstatic[task];
    machines.cpu_assigned[m] =
        std::max(0.0, machines.cpu_assigned[m] - ts.cpu_request);
    machines.mem_assigned[m] =
        std::max(0.0, machines.mem_assigned[m] - ts.mem_request);
    std::vector<RunEntry>& run = machines.running[m];
    const std::uint32_t pos = tasks.pos_in_machine[task];
    CGC_CHECK(pos < run.size() && run[pos].task == task);
    run[pos] = run.back();
    run.pop_back();
    if (pos < run.size()) {
      tasks.pos_in_machine[run[pos].task] = pos;
    }
    tasks.machine[task] = -1;
  }

  /// Credits run time of the current attempt and clears run bookkeeping.
  void account_run_time(TimeSec now, std::uint32_t task) {
    const TimeSec ran = now - tasks.run_start[task];
    tasks.remaining[task] = std::max<TimeSec>(0, tasks.remaining[task] - ran);
    if (tasks.fate_remaining[task] >= 0) {
      tasks.fate_remaining[task] =
          std::max<TimeSec>(0, tasks.fate_remaining[task] - ran);
    }
    tasks.run_start[task] = -1;
  }

  void enqueue_pending(TimeSec now, std::uint32_t task) {
    tasks.state[task] = static_cast<std::uint8_t>(trace::TaskState::kPending);
    tasks.pending_since[task] = now;
    pending.push(tasks, tstatic[task].priority, static_cast<std::int32_t>(task));
    stats.max_pending_depth = std::max(stats.max_pending_depth, pending.total);
    record(now, task, TaskEventType::kSubmit, -1);
  }

  /// Shared eviction path: abort the attempt (generation bump
  /// invalidates its queued end event) and requeue after the fixed
  /// delay.
  void evict_task(TimeSec now, std::uint32_t task) {
    const std::size_t m = static_cast<std::size_t>(tasks.machine[task]);
    account_run_time(now, task);
    remove_from_machine(task);
    ++tasks.generation[task];
    tasks.state[task] = static_cast<std::uint8_t>(trace::TaskState::kDead);
    ++stats.evicted;
    if (obs::metrics_enabled()) {
      static obs::Counter& c = obs::counter("sim.evictions");
      c.add(1);
    }
    record(now, task, TaskEventType::kEvict, machines.machine_id[m]);
    ++tasks.resubmit_count[task];
    ++stats.resubmits;
    push_event(now, now + config.evict_requeue_delay, EvKind::kSubmit, task,
               tasks.generation[task]);
  }

  /// Evicts enough lower-priority tasks from `m` to fit `ts`. Victims
  /// go lowest (priority, slot) first — stable under the swap-remove
  /// run-list order, so eviction storms replay identically at any
  /// thread count.
  void evict_for(TimeSec now, std::size_t m, const TaskStatic& ts) {
    scratch_victims.clear();
    for (const RunEntry& e : machines.running[m]) {
      scratch_victims.push_back(
          (static_cast<std::uint64_t>(e.priority) << 32) | e.task);
    }
    std::sort(scratch_victims.begin(), scratch_victims.end());
    for (const std::uint64_t key : scratch_victims) {
      if (fits(m, ts)) {
        break;
      }
      const std::uint8_t priority = static_cast<std::uint8_t>(key >> 32);
      if (priority >= ts.priority) {
        break;  // only strictly lower priorities are preemptible
      }
      evict_task(now, static_cast<std::uint32_t>(key & 0xffffffffU));
    }
  }

  /// Evicts the single lowest-(priority, slot) task on `m` whose
  /// priority is strictly below `threshold` (no-op when none exists).
  void evict_lowest_below(TimeSec now, std::size_t m,
                          std::uint8_t threshold) {
    std::uint64_t victim = ~std::uint64_t{0};
    for (const RunEntry& e : machines.running[m]) {
      if (e.priority >= threshold) {
        continue;
      }
      victim = std::min(
          victim, (static_cast<std::uint64_t>(e.priority) << 32) | e.task);
    }
    if (victim == ~std::uint64_t{0}) {
      return;
    }
    evict_task(now, static_cast<std::uint32_t>(victim & 0xffffffffU));
  }

  void start_running(TimeSec now, std::uint32_t task, std::size_t m) {
    const TaskStatic& ts = tstatic[task];
    tasks.state[task] = static_cast<std::uint8_t>(trace::TaskState::kRunning);
    tasks.machine[task] = static_cast<std::int32_t>(m);
    tasks.last_machine[task] = static_cast<std::int32_t>(m);
    tasks.run_start[task] = now;
    if (tasks.first_schedule[task] < 0) {
      tasks.first_schedule[task] = now;
    }
    machines.cpu_assigned[m] += ts.cpu_request;
    machines.mem_assigned[m] += ts.mem_request;
    tasks.pos_in_machine[task] =
        static_cast<std::uint32_t>(machines.running[m].size());
    machines.running[m].push_back(RunEntry{task, ts.cpu_request,
                                           ts.mem_request, ts.cpu_usage,
                                           ts.mem_usage, ts.page_cache,
                                           ts.priority, ts.band});
    ++stats.scheduled;
    if (tasks.pending_since[task] >= 0) {
      stats.record_wait(now - tasks.pending_since[task]);
      tasks.pending_since[task] = -1;
    }
    record(now, task, TaskEventType::kSchedule, machines.machine_id[m]);

    // Isolation eviction: a freshly placed mid/high-priority task may
    // push out its lowest-priority neighbor. Keyed on (task, attempt),
    // so the decision is independent of draw order.
    if (config.preemption &&
        ts.band != static_cast<std::uint8_t>(PriorityBand::kLow) &&
        config.isolation_eviction_probability > 0.0 &&
        rng::bernoulli(rng::hash2(config.seed, rng::kSaltIsolation, task,
                                  tasks.generation[task]),
                       config.isolation_eviction_probability)) {
      evict_lowest_below(now, m, ts.priority);
    }

    // Queue the attempt's end: the scripted fate if it fires before the
    // work completes, otherwise FINISH.
    TimeSec end_after = tasks.remaining[task];
    if (tasks.fate_remaining[task] >= 0 &&
        tasks.fate_remaining[task] < end_after) {
      end_after = tasks.fate_remaining[task];
    }
    push_event(now, now + std::max<TimeSec>(end_after, 1), EvKind::kEnd, task,
               tasks.generation[task]);
  }

  // ---- scheduling ----------------------------------------------------------
  /// One scheduler pass: highest priority first, FCFS within a priority.
  /// Unplaceable tasks stay queued (skipped, not blocking — Google tasks
  /// carry per-task constraints, so the real scheduler also skips).
  void schedule_pass(TimeSec now) {
    ++pass_seq;
    ++stats.schedule_passes;
    if (obs::metrics_enabled()) {
      static obs::Counter& c = obs::counter("sim.schedule_passes");
      c.add(1);
    }
    for (int p = trace::kNumPriorities - 1; p >= 0; --p) {
      std::int32_t cur = pending.head[p];
      std::int32_t still_head = -1;
      std::int32_t still_tail = -1;
      const auto keep = [&](std::int32_t t) {
        tasks.next_pending[static_cast<std::size_t>(t)] = -1;
        if (still_tail < 0) {
          still_head = still_tail = t;
        } else {
          tasks.next_pending[static_cast<std::size_t>(still_tail)] = t;
          still_tail = t;
        }
      };
      std::size_t failure_streak = 0;
      while (cur >= 0) {
        const std::int32_t task = cur;
        cur = tasks.next_pending[static_cast<std::size_t>(task)];
        if (failure_streak >= config.max_schedule_failures_per_pass) {
          // Cluster is effectively full for this priority; keep FIFO
          // order and retry on the next pass.
          keep(task);
          continue;
        }
        const std::uint32_t t = static_cast<std::uint32_t>(task);
        const TaskStatic& ts = tstatic[t];
        int machine = pick_machine(t, ts);
        if (machine < 0 && config.preemption) {
          machine = find_evictable(t, ts);
          if (machine >= 0) {
            evict_for(now, static_cast<std::size_t>(machine), ts);
          }
        }
        if (machine < 0) {
          keep(task);
          ++failure_streak;
          continue;
        }
        failure_streak = 0;
        --pending.total;
        start_running(now, t, static_cast<std::size_t>(machine));
      }
      pending.head[p] = still_head;
      pending.tail[p] = still_tail;
    }
  }

  // ---- event handlers ------------------------------------------------------
  void on_submit(TimeSec now, std::uint32_t task, std::uint32_t generation) {
    if (generation != tasks.generation[task]) {
      return;  // stale
    }
    if (tasks.first_submit[task] < 0) {
      tasks.first_submit[task] = now;
      ++stats.submitted;
      // Initialize the scripted fate countdown for the first attempt.
      if ((tstatic[task].flags & TaskStatic::kFlagHasFate) != 0) {
        tasks.fate_remaining[task] = workload[task].abnormal_after;
      }
    }
    enqueue_pending(now, task);
    need_schedule = true;
  }

  void on_end(TimeSec now, std::uint32_t task, std::uint32_t generation) {
    if (generation != tasks.generation[task] ||
        tasks.state[task] !=
            static_cast<std::uint8_t>(trace::TaskState::kRunning)) {
      return;  // stale event from an evicted attempt
    }
    const TaskStatic& ts = tstatic[task];
    const std::int64_t machine_id =
        machines.machine_id[static_cast<std::size_t>(tasks.machine[task])];
    account_run_time(now, task);
    remove_from_machine(task);
    ++tasks.generation[task];
    tasks.state[task] = static_cast<std::uint8_t>(trace::TaskState::kDead);

    const bool fate_fired = (ts.flags & TaskStatic::kFlagHasFate) != 0 &&
                            tasks.fate_remaining[task] == 0;
    TaskEventType etype =
        fate_fired ? workload[task].fate : TaskEventType::kFinish;
    // Deterministic data-shaping fault: the attempt's terminal record
    // is lost (keyed on the task slot; see README's fault-site table).
    if (fault::armed() && fault::inject("sim.task_lost", task)) {
      etype = TaskEventType::kLost;
      ++stats.faults_injected;
    }
    record(now, task, etype, machine_id);
    tasks.end_time[task] = now;
    tasks.end_event[task] = static_cast<std::uint8_t>(etype);

    switch (etype) {
      case TaskEventType::kFinish:
        ++stats.finished;
        break;
      case TaskEventType::kFail: {
        ++stats.failed;
        if ((ts.flags & TaskStatic::kFlagResubmit) != 0 &&
            tasks.resubmits_left[task] > 0) {
          --tasks.resubmits_left[task];
          ++tasks.resubmit_count[task];
          ++stats.resubmits;
          // The retry repeats the failure until the budget runs out,
          // then the final attempt is allowed to finish.
          tasks.fate_remaining[task] = tasks.resubmits_left[task] > 0
                                           ? workload[task].abnormal_after
                                           : -1;
          tasks.remaining[task] = std::max<TimeSec>(tasks.remaining[task], 1);
          const double u = rng::to_unit(rng::hash2(
              config.seed, rng::kSaltResubmit, task, tasks.generation[task]));
          const TimeSec delay = std::max<TimeSec>(
              1, static_cast<TimeSec>(
                     -static_cast<double>(config.resubmit_delay_mean) *
                     std::log(u)));
          push_event(now, now + delay, EvKind::kSubmit, task,
                     tasks.generation[task]);
          tasks.end_time[task] = -1;  // story continues
        }
        break;
      }
      case TaskEventType::kKill:
        ++stats.killed;
        break;
      case TaskEventType::kLost:
        ++stats.lost;
        break;
      default:
        CGC_CHECK_MSG(false, "unexpected end event");
    }
    need_schedule = true;
  }

  // ---- sampling ------------------------------------------------------------
  /// Samples one machine into its series. Runs inside a parallel region:
  /// reads shared state, writes only series[m]. Every stochastic factor
  /// is a counter hash of (machine, sample) or (task, sample), so the
  /// result is independent of chunking and thread count.
  void sample_machine(std::size_t m, std::uint64_t sample_idx,
                      std::vector<trace::HostLoadSeries>* series,
                      std::int64_t base_pending,
                      std::int64_t extra_pending) const {
    float cpu[trace::kNumBands] = {0, 0, 0};
    float mem[trace::kNumBands] = {0, 0, 0};
    float page_cache = 0.0f;
    double machine_cpu_factor = machine_cpu_jitter.factor(
        rng::hash2(config.seed, rng::kSaltMachineCpu, m, sample_idx));
    if (config.cpu_spike_probability > 0.0 &&
        rng::bernoulli(
            rng::hash2(config.seed, rng::kSaltCpuSpike, m, sample_idx),
            config.cpu_spike_probability)) {
      machine_cpu_factor *= config.cpu_spike_factor;
    }
    const double machine_mem_factor = machine_mem_jitter.factor(
        rng::hash2(config.seed, rng::kSaltMachineMem, m, sample_idx));
    for (const RunEntry& e : machines.running[m]) {
      // One hash feeds both per-task factors via disjoint bit slices.
      const std::uint64_t h =
          rng::hash2(config.seed, rng::kSaltTaskUsage, e.task, sample_idx);
      cpu[e.band] += static_cast<float>(e.cpu_usage * machine_cpu_factor *
                                        cpu_task_jitter.factor(h));
      mem[e.band] += static_cast<float>(
          e.mem_usage * machine_mem_factor *
          mem_task_jitter.at(static_cast<std::size_t>(h >> 27)));
      page_cache += e.page_cache;
    }
    // Physical clamps: a machine cannot deliver more than its capacity.
    const float cpu_total = cpu[0] + cpu[1] + cpu[2];
    if (cpu_total > machines.cpu_capacity[m] && cpu_total > 0) {
      const float scale = machines.cpu_capacity[m] / cpu_total;
      for (float& c : cpu) {
        c *= scale;
      }
    }
    const float mem_total = mem[0] + mem[1] + mem[2];
    if (mem_total > machines.mem_capacity[m] && mem_total > 0) {
      const float scale = machines.mem_capacity[m] / mem_total;
      for (float& v : mem) {
        v *= scale;
      }
    }
    page_cache = std::min(page_cache, machines.page_cache_capacity[m]);
    (*series)[m].append(
        cpu, mem, static_cast<float>(machines.mem_assigned[m]), page_cache,
        static_cast<std::int32_t>(machines.running[m].size()),
        static_cast<std::int32_t>(
            base_pending +
            (static_cast<std::int64_t>(m) < extra_pending ? 1 : 0)));
  }

  /// One sample tick: fault-driven machine outages first (they mutate
  /// state, so they run serially), then the sharded observation pass.
  void sample_tick(TimeSec now, std::uint64_t sample_idx,
                   std::vector<trace::HostLoadSeries>* series) {
    if (obs::metrics_enabled()) {
      static obs::Counter& c = obs::counter("sim.samples");
      c.add(1);
      static obs::Gauge& g = obs::gauge("sim.pending_depth");
      g.set(pending.total);
    }
    if (fault::armed()) {
      for (std::size_t m = 0; m < machines.size(); ++m) {
        if (!machines.running[m].empty() &&
            fault::inject("sim.machine_outage", outage_key(m, sample_idx))) {
          ++stats.faults_injected;
          // Whole-machine outage: evict everything, lowest (priority,
          // slot) first, exercising generation invalidation at scale.
          scratch_victims.clear();
          for (const RunEntry& e : machines.running[m]) {
            scratch_victims.push_back(
                (static_cast<std::uint64_t>(e.priority) << 32) | e.task);
          }
          std::sort(scratch_victims.begin(), scratch_victims.end());
          for (const std::uint64_t key : scratch_victims) {
            evict_task(now, static_cast<std::uint32_t>(key & 0xffffffffU));
          }
        }
      }
      if (need_schedule) {
        need_schedule = false;
        schedule_pass(now);
      }
    }
    if (!config.record_host_load) {
      return;
    }
    const std::int64_t m_count = static_cast<std::int64_t>(machines.size());
    // Pending tasks are not bound to machines; spread the global count so
    // the per-machine "queuing state" view (Fig 8b) reflects backlog.
    const std::int64_t base_pending = pending.total / m_count;
    const std::int64_t extra_pending = pending.total % m_count;
    exec::parallel_for_chunked(
        0, static_cast<std::size_t>(m_count),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t m = lo; m < hi; ++m) {
            sample_machine(m, sample_idx, series, base_pending, extra_pending);
          }
        },
        /*grain=*/64);
  }

  // ---- main loop -----------------------------------------------------------
  void run_loop(std::vector<trace::HostLoadSeries>* series) {
    const TimeSec horizon = config.horizon;
    TimeSec next_sample = 0;
    std::uint64_t sample_idx = 0;
    std::size_t cursor = 0;
    for (;;) {
      const TimeSec cursor_time =
          cursor < order.size() ? workload[order[cursor]].submit_time
                                : CalendarQueue::kNoEvent;
      const TimeSec queue_time = queue.next_time(cursor_time);
      const TimeSec ev = std::min(cursor_time, queue_time);
      // Emit samples up to the next event (or the horizon); a sample at
      // time t observes the state before events at t.
      while (next_sample < horizon && next_sample <= ev) {
        sample_tick(next_sample, sample_idx, series);
        next_sample += config.sample_period;
        ++sample_idx;
      }
      if (ev == CalendarQueue::kNoEvent || ev >= horizon) {
        break;  // nothing left inside the window
      }
      std::int64_t batch = 0;
      // Initial submits at this second drain first: their implicit
      // sequence numbers precede every dynamically queued event.
      while (cursor < order.size() &&
             workload[order[cursor]].submit_time == ev) {
        on_submit(ev, order[cursor], 0);
        ++cursor;
        ++batch;
      }
      if (queue_time == ev) {
        const std::vector<QueuedEvent>& bucket = queue.bucket(ev);
        // Index loop: handlers push strictly forward, so the bucket
        // cannot grow, but stay defensive about iterator stability.
        for (std::size_t i = 0; i < bucket.size(); ++i) {
          const QueuedEvent e = bucket[i];
          if (e.kind() == EvKind::kSubmit) {
            on_submit(ev, e.task, e.generation());
          } else {
            on_end(ev, e.task, e.generation());
          }
        }
        batch += static_cast<std::int64_t>(bucket.size());
        queue.finish_bucket(ev);
      }
      stats.events_processed += batch;
      if (obs::metrics_enabled()) {
        static obs::Counter& c = obs::counter("sim.events");
        c.add(static_cast<std::uint64_t>(batch));
      }
      if (need_schedule) {
        need_schedule = false;
        schedule_pass(ev);
      }
    }
  }

  // ---- members -------------------------------------------------------------
  const SimConfig config;
  const Workload& workload;
  SimStats& stats;
  rng::JitterTable cpu_task_jitter;
  rng::JitterTable mem_task_jitter;
  rng::JitterTable machine_cpu_jitter;
  rng::JitterTable machine_mem_jitter;
  CalendarQueue queue;
  TaskBank tasks;
  std::vector<TaskStatic> tstatic;
  MachineBank machines;
  PendingQueues pending;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> scratch_fitting;
  std::vector<std::uint64_t> scratch_victims;
  std::size_t probe_limit = 0;  ///< 0 = full scan
  std::uint64_t pass_seq = 0;
  bool need_schedule = false;
  trace::TraceSet out;
};

ClusterSim::ClusterSim(std::vector<trace::Machine> machines, SimConfig config)
    : machines_(std::move(machines)), config_(config) {
  CGC_CHECK_MSG(!machines_.empty(), "simulator needs machines");
}

trace::TraceSet ClusterSim::run(const Workload& workload,
                                const std::string& system_name) {
  CGC_CHECK_MSG(!used_, "ClusterSim::run() is single-shot");
  used_ = true;
  CGC_CHECK_MSG(config_.horizon > 0, "horizon must be positive");
  CGC_CHECK_MSG(config_.sample_period > 0, "sample period must be positive");

  Impl impl(machines_, config_, workload, &stats_);
  impl.out.set_system_name(system_name);
  impl.out.set_duration(config_.horizon);
  if (config_.record_events) {
    impl.out.reserve_events(workload.size() * 3);
  }

  std::vector<trace::HostLoadSeries> series;
  for (const trace::Machine& m : machines_) {
    impl.out.add_machine(m);
  }
  if (config_.record_host_load) {
    series.reserve(machines_.size());
    for (const trace::Machine& m : machines_) {
      series.emplace_back(m.machine_id, 0, config_.sample_period);
    }
  }

  impl.run_loop(&series);

  for (trace::HostLoadSeries& s : series) {
    impl.out.add_host_load(std::move(s));
  }

  // Materialize per-task records (and count horizon states either way).
  if (config_.record_tasks) {
    impl.out.reserve_tasks(workload.size());
  }
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (impl.tasks.first_submit[i] < 0) {
      continue;  // never submitted inside the window
    }
    if (config_.record_tasks) {
      const TaskSpec& spec = workload[i];
      trace::Task t;
      t.job_id = spec.job_id;
      t.task_index = spec.task_index;
      t.priority = spec.priority;
      t.submit_time = impl.tasks.first_submit[i];
      t.schedule_time = impl.tasks.first_schedule[i];
      t.end_time = impl.tasks.end_time[i];
      t.end_event =
          static_cast<trace::TaskEventType>(impl.tasks.end_event[i]);
      t.machine_id =
          impl.tasks.last_machine[i] >= 0
              ? impl.machines.machine_id[static_cast<std::size_t>(
                    impl.tasks.last_machine[i])]
              : -1;
      t.resubmits = impl.tasks.resubmit_count[i];
      t.cpu_request = spec.cpu_request;
      t.mem_request = spec.mem_request;
      t.cpu_usage = spec.cpu_request * spec.cpu_usage_ratio;
      t.mem_usage = spec.mem_request * spec.mem_usage_ratio;
      impl.out.add_task(t);
    }
    const auto state = static_cast<trace::TaskState>(impl.tasks.state[i]);
    if (state == trace::TaskState::kRunning) {
      ++stats_.running_at_horizon;
    } else if (state == trace::TaskState::kPending) {
      ++stats_.never_scheduled;
    }
  }

  // Aggregate jobs from tasks.
  if (config_.record_tasks) {
    // Ordered by job id: the emission loop below feeds add_job()
    // directly, so iteration order reaches the output arrays.
    std::map<std::int64_t, trace::Job> jobs;
    std::map<std::int64_t, double> job_cpu_seconds;
    for (const trace::Task& t : impl.out.tasks()) {
      auto [it, inserted] = jobs.try_emplace(t.job_id);
      trace::Job& j = it->second;
      if (inserted) {
        j.job_id = t.job_id;
        j.priority = t.priority;
        j.submit_time = t.submit_time;
        j.end_time = t.end_time;
        j.num_tasks = 1;
        j.mem_usage = t.mem_usage;
      } else {
        j.submit_time = std::min(j.submit_time, t.submit_time);
        if (j.end_time >= 0) {
          j.end_time = t.end_time < 0 ? -1 : std::max(j.end_time, t.end_time);
        }
        ++j.num_tasks;
        j.mem_usage += t.mem_usage;
      }
      job_cpu_seconds[t.job_id] += static_cast<double>(t.run_duration());
    }
    for (auto& [id, job] : jobs) {
      // Formula (4): one processor-equivalent per task; parallelism is
      // the mean number of concurrently running tasks.
      const trace::TimeSec length = job.length();
      job.cpu_parallelism =
          length > 0 ? static_cast<float>(job_cpu_seconds[id] /
                                          static_cast<double>(length))
                     : 1.0f;
      impl.out.add_job(job);
    }
  }

  impl.out.finalize();
  return std::move(impl.out);
}

std::string_view placement_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBalanced:
      return "balanced";
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kWorstFit:
      return "worst-fit";
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kRandom:
      return "random";
  }
  return "?";
}

}  // namespace cgc::sim
