// Counter-based randomness for the simulator hot loop.
//
// The legacy core drew every stochastic decision from one sequential
// mt19937_64 stream, which made the draw order — and therefore the
// results — depend on global event-processing order. The paper-scale
// core instead derives every draw from a *counter-based* hash of
// (seed, site salt, stable keys): a pure function with no shared
// state, so a draw is bit-identical no matter which shard, thread, or
// scheduler pass computes it. This is the same determinism discipline
// as cgc::fault (pure in (spec, site, key)) applied to simulation
// randomness, and it is what lets the machine-sharded sampling path
// produce byte-identical host-load series at any CGC_THREADS.
//
// Draw cost is the design driver: a paper-scale month samples ~3.7e9
// per-task jitter factors, so a lognormal draw here is one splitmix64
// hash plus one table lookup (see JitterTable) instead of a
// std::normal_distribution round trip.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace cgc::sim::rng {

/// splitmix64 finalizer: the avalanche permutation used to turn a
/// counter into 64 independent-looking bits.
constexpr std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of (seed, salt, key): one mix chain per argument. `salt`
/// namespaces the draw site so different decisions about the same
/// entity are independent.
constexpr std::uint64_t hash(std::uint64_t seed, std::uint64_t salt,
                             std::uint64_t key) {
  return mix(mix(seed ^ salt) ^ key);
}

/// Hash of (seed, salt, key1, key2) for two-dimensional keys such as
/// (task, sample_index) or (task, attempt).
constexpr std::uint64_t hash2(std::uint64_t seed, std::uint64_t salt,
                              std::uint64_t k1, std::uint64_t k2) {
  return mix(mix(mix(seed ^ salt) ^ k1) ^ k2);
}

/// Uniform double in (0, 1): never exactly 0, so it is safe under log().
inline double to_unit(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

/// Bernoulli(p) decision from a hash value.
inline bool bernoulli(std::uint64_t h, double p) {
  return to_unit(h) < p;
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9) — used once per table entry at construction, never
/// in the hot loop.
double inverse_normal_cdf(double p);

/// Precomputed mean-one lognormal jitter factors.
///
/// Table entry i holds exp(sigma * z_i - sigma^2/2) where z_i is the
/// standard-normal quantile at the midpoint of the i-th of kSize equal
/// probability strips. Indexing with kBits hash bits draws from a
/// kSize-point quantile discretization of the target lognormal: the
/// mean is one by construction and the tails are truncated at the
/// +-3.3 sigma strip midpoints — indistinguishable from the continuous
/// draw at the 5-minute sample granularity the analyzers consume, and
/// ~20x cheaper. sigma == 0 collapses the table to all-ones.
class JitterTable {
 public:
  static constexpr int kBits = 10;  ///< index width: table holds 2^kBits entries
  static constexpr std::size_t kSize = std::size_t{1} << kBits;  ///< entry count

  /// Identity table (all factors 1.0) — the sigma == 0 case.
  JitterTable() { table_.fill(1.0f); }
  /// Builds the quantile-midpoint table for lognormal(mu, sigma) with
  /// mu chosen so the table's mean is exactly one.
  explicit JitterTable(double sigma);

  /// Factor selected by the top kBits of a hash value.
  float factor(std::uint64_t h) const {
    return table_[static_cast<std::size_t>(h >> (64 - kBits))];
  }
  /// Factor selected by an explicit index (for a second draw from the
  /// same hash value: pass a different bit slice).
  float at(std::size_t i) const { return table_[i & (kSize - 1)]; }

 private:
  std::array<float, kSize> table_;
};

/// Draw-site salts. Values are arbitrary but frozen: changing one
/// changes every simulated trace, like changing the seed.
inline constexpr std::uint64_t kSaltMachineCpu = 0x6d61636370750001ULL;
inline constexpr std::uint64_t kSaltMachineMem = 0x6d61636d656d0002ULL;
inline constexpr std::uint64_t kSaltCpuSpike = 0x7370696b650a0003ULL;
inline constexpr std::uint64_t kSaltTaskUsage = 0x7461736b75730004ULL;
inline constexpr std::uint64_t kSaltIsolation = 0x69736f6c61740005ULL;
inline constexpr std::uint64_t kSaltResubmit = 0x7265737562000006ULL;
inline constexpr std::uint64_t kSaltProbe = 0x70726f6265000007ULL;
inline constexpr std::uint64_t kSaltRandomPick = 0x72616e64706b0008ULL;

}  // namespace cgc::sim::rng
