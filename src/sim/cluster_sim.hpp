// Discrete-event cluster simulator.
//
// Implements the scheduling model the paper describes for the Google
// cluster (Section II): one global scheduler, 12 priorities, FCFS within
// a priority, higher priorities processed first and able to preempt
// (evict) lower ones, "best" resources chosen to balance demand across
// machines. Tasks follow the unsubmitted -> pending -> running -> dead
// state machine with SUBMIT/SCHEDULE/{EVICT,FAIL,FINISH,KILL,LOST}
// events and optional resubmission (Figure 1).
//
// Output is a TraceSet: the full task-event stream, per-task and per-job
// records, and per-machine HostLoadSeries sampled every 5 minutes — the
// inputs to every host-load analyzer (Figs 7-13, Tables II-III).
//
// The engine is built for paper scale (a month over 12.5k hosts,
// tens of millions of task events — see bench_perf_sim / BENCH_sim.json):
// a calendar event queue (sim/event_queue.hpp), struct-of-arrays state
// banks (sim/state_banks.hpp), counter-based randomness
// (sim/sim_rng.hpp), and cgc::exec-sharded sampling and placement
// scoring. Results are bit-identical at any CGC_THREADS — the same
// determinism contract as cgc::exec and cgc::stream; DESIGN.md §13 has
// the argument. Hot-loop metric sites (sim.*) arm via CGC_METRICS, and
// the deterministic fault sites sim.task_lost / sim.machine_outage arm
// via CGC_FAULT_SPEC.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/task_spec.hpp"
#include "trace/trace_set.hpp"

namespace cgc::sim {

/// Aggregate counters exposed after a run (also used by tests).
struct SimStats {
  /// Tasks whose first SUBMIT fell inside the horizon.
  std::int64_t submitted = 0;
  /// SCHEDULE events (placements, counting re-placements).
  std::int64_t scheduled = 0;
  /// FINISH terminal events.
  std::int64_t finished = 0;
  /// FAIL terminal events (each failed attempt counts).
  std::int64_t failed = 0;
  /// KILL terminal events.
  std::int64_t killed = 0;
  /// EVICT events (preemptions).
  std::int64_t evicted = 0;
  /// LOST terminal events.
  std::int64_t lost = 0;
  /// Times any task re-entered the pending queue (evictions + retries).
  std::int64_t resubmits = 0;
  /// Tasks still pending when the horizon closed.
  std::int64_t never_scheduled = 0;
  /// Tasks still running when the horizon closed.
  std::int64_t running_at_horizon = 0;
  /// High-water mark of the global pending-queue depth.
  std::int64_t max_pending_depth = 0;
  /// Queue events processed (submits, requeues, attempt ends) — the
  /// numerator of bench_perf_sim's events/s.
  std::int64_t events_processed = 0;
  /// Scheduler passes run (each scans the 12 priority FIFOs once).
  std::int64_t schedule_passes = 0;
  /// Fault-site firings (sim.task_lost + sim.machine_outage); 0 unless
  /// CGC_FAULT_SPEC armed a sim.* site.
  std::int64_t faults_injected = 0;

  /// Number of log2 queue-wait buckets (covers 0 s through ~17k years).
  static constexpr int kWaitBuckets = 40;
  /// Queue-wait histogram over SCHEDULE events: bucket 0 counts
  /// zero-second waits, bucket i >= 1 counts waits in [2^(i-1), 2^i)
  /// seconds (the last bucket absorbs the overflow). Integer counts of
  /// integer waits, so the histogram — and every quantile derived from
  /// it — is bit-identical at any CGC_THREADS.
  std::int64_t wait_histogram[kWaitBuckets] = {};
  /// SCHEDULE events accounted in wait_histogram (== scheduled).
  std::int64_t wait_count = 0;
  /// Sum of all recorded waits in seconds (mean = wait_sum_s / count).
  std::int64_t wait_sum_s = 0;

  /// Buckets `wait_s` (pending → placement delay) into wait_histogram.
  void record_wait(std::int64_t wait_s) {
    int bucket = 0;
    if (wait_s > 0) {
      while (bucket + 1 < kWaitBuckets &&
             (std::int64_t{1} << bucket) <= wait_s) {
        ++bucket;
      }
    }
    ++wait_histogram[bucket];
    ++wait_count;
    wait_sum_s += wait_s > 0 ? wait_s : 0;
  }

  /// Queue-wait quantile as the upper edge of the bucket holding the
  /// q-th placement (0 for bucket 0) — a deterministic upper bound with
  /// 2x resolution, not an interpolated value. Returns 0 when no waits
  /// were recorded.
  double wait_quantile(double q) const {
    if (wait_count <= 0) {
      return 0.0;
    }
    std::int64_t target = static_cast<std::int64_t>(
        q * static_cast<double>(wait_count));
    if (target >= wait_count) {
      target = wait_count - 1;
    }
    std::int64_t seen = 0;
    for (int b = 0; b < kWaitBuckets; ++b) {
      seen += wait_histogram[b];
      if (seen > target) {
        return b == 0 ? 0.0 : static_cast<double>(std::int64_t{1} << b);
      }
    }
    return static_cast<double>(std::int64_t{1} << (kWaitBuckets - 1));
  }

  /// Mean queue wait in seconds (0 when nothing was placed).
  double wait_mean_s() const {
    return wait_count <= 0 ? 0.0
                           : static_cast<double>(wait_sum_s) /
                                 static_cast<double>(wait_count);
  }

  /// Fraction of placements whose wait landed in a bucket entirely at
  /// or below `threshold_s` — the conservative (lower-bound) SLO
  /// attainment used by cgc::plan's $/SLO score.
  double wait_fraction_within(double threshold_s) const {
    if (wait_count <= 0) {
      return 1.0;
    }
    std::int64_t within = 0;
    for (int b = 0; b < kWaitBuckets; ++b) {
      const double upper =
          b == 0 ? 0.0 : static_cast<double>(std::int64_t{1} << b);
      if (upper <= threshold_s) {
        within += wait_histogram[b];
      }
    }
    return static_cast<double>(within) / static_cast<double>(wait_count);
  }

  /// Terminal events of any kind (the paper's "task endings").
  std::int64_t terminal_events() const {
    return finished + failed + killed + evicted + lost;
  }
  /// Fraction of terminal events that are abnormal (paper: 59.2%).
  double abnormal_fraction() const {
    const std::int64_t t = terminal_events();
    return t == 0 ? 0.0
                  : static_cast<double>(t - finished) /
                        static_cast<double>(t);
  }
};

/// Runs the simulation of `workload` over `machines`.
///
/// The returned TraceSet is finalized and contains machines, events
/// (if config.record_events), tasks and jobs (if config.record_tasks),
/// and host-load series (if config.record_host_load).
class ClusterSim {
 public:
  /// Validates that `machines` is non-empty; capacities are checked at
  /// run() time.
  ClusterSim(std::vector<trace::Machine> machines, SimConfig config);

  /// Simulates the workload; callable once per instance.
  trace::TraceSet run(const Workload& workload,
                      const std::string& system_name = "simulated");

  /// Statistics of the completed run.
  const SimStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::vector<trace::Machine> machines_;
  SimConfig config_;
  SimStats stats_;
  bool used_ = false;
};

}  // namespace cgc::sim
