// Discrete-event cluster simulator.
//
// Implements the scheduling model the paper describes for the Google
// cluster (Section II): one global scheduler, 12 priorities, FCFS within
// a priority, higher priorities processed first and able to preempt
// (evict) lower ones, "best" resources chosen to balance demand across
// machines. Tasks follow the unsubmitted -> pending -> running -> dead
// state machine with SUBMIT/SCHEDULE/{EVICT,FAIL,FINISH,KILL,LOST}
// events and optional resubmission (Figure 1).
//
// Output is a TraceSet: the full task-event stream, per-task and per-job
// records, and per-machine HostLoadSeries sampled every 5 minutes — the
// inputs to every host-load analyzer (Figs 7-13, Tables II-III).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/task_spec.hpp"
#include "trace/trace_set.hpp"

namespace cgc::sim {

/// Aggregate counters exposed after a run (also used by tests).
struct SimStats {
  std::int64_t submitted = 0;
  std::int64_t scheduled = 0;
  std::int64_t finished = 0;
  std::int64_t failed = 0;
  std::int64_t killed = 0;
  std::int64_t evicted = 0;
  std::int64_t lost = 0;
  std::int64_t resubmits = 0;
  std::int64_t never_scheduled = 0;  ///< still pending at horizon
  std::int64_t running_at_horizon = 0;
  std::int64_t max_pending_depth = 0;

  std::int64_t terminal_events() const {
    return finished + failed + killed + evicted + lost;
  }
  double abnormal_fraction() const {
    const std::int64_t t = terminal_events();
    return t == 0 ? 0.0
                  : static_cast<double>(t - finished) /
                        static_cast<double>(t);
  }
};

/// Runs the simulation of `workload` over `machines`.
///
/// The returned TraceSet is finalized and contains machines, events
/// (if config.record_events), tasks, jobs, and host-load series.
class ClusterSim {
 public:
  ClusterSim(std::vector<trace::Machine> machines, SimConfig config);

  /// Simulates the workload; callable once per instance.
  trace::TraceSet run(const Workload& workload,
                      const std::string& system_name = "simulated");

  /// Statistics of the completed run.
  const SimStats& stats() const { return stats_; }

 private:
  struct Impl;
  std::vector<trace::Machine> machines_;
  SimConfig config_;
  SimStats stats_;
  bool used_ = false;
};

}  // namespace cgc::sim
