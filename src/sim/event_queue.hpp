// CalendarQueue — the simulator's indexed calendar (bucket) event queue.
//
// The seed simulator kept every future event in one std::priority_queue:
// O(log n) comparisons per push/pop over a heap of tens of millions of
// entries, with the (time, seq) tie-break stored and compared on every
// sift. This queue exploits what a discrete-event cluster simulation
// actually looks like: integer-second timestamps, a bounded horizon, and
// handlers that only ever push *forward* in time. Under those conditions
// an event can be dropped into the bucket for its second in O(1) and the
// global (time, seq) drain order falls out of bucket order for free — no
// comparisons, no per-event heap node, no stored sequence numbers.
//
// Structure (two radix levels):
//   * L0 — kL0Size one-second buckets covering the current 2^kWindowBits
//     second window, plus a bitmap (one bit per bucket) so the next
//     occupied second is found with word scans, not bucket probes.
//   * far — one overflow bucket per *future* window (vector indexed by
//     window number, grown on demand). Events land here with their full
//     timestamp and are scattered into L0 when the window advances.
//
// Ordering invariant (the "ties drain in seq order" property tested in
// sim_determinism_test.cpp): every bucket is always in push order, and
// push order equals seq order, because
//   (a) handlers only push events strictly after the second being
//       drained (enforced: push() checks time > the last finished
//       bucket), so a drained bucket never receives new entries, and
//   (b) a far bucket is scattered into L0 *before* any direct L0 push
//       into that window can happen (direct pushes target the current
//       window only), and the scatter preserves push order.
// Hence concatenating buckets in time order replays exactly the
// (time, seq) order the seed heap produced — without ever sorting.
//
// The queue is a serial structure: it is only touched from the
// simulator's serial event spine, never from inside a parallel region.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/types.hpp"
#include "util/check.hpp"

namespace cgc::sim {

/// Event kinds the simulator schedules. kSubmit covers initial arrivals
/// (via the workload cursor, not this queue), evict requeues, and
/// fail-fate resubmissions; kEnd is the end of a running attempt.
enum class EvKind : std::uint8_t { kSubmit = 0, kEnd = 1 };

/// One queued event: 8 bytes, no timestamp (the bucket is the
/// timestamp) and no sequence number (the bucket position is the
/// sequence). The generation is the attempt counter used to invalidate
/// end events of evicted attempts (see DESIGN.md §13).
struct QueuedEvent {
  /// Task slot (index into the workload / task bank).
  std::uint32_t task = 0;
  /// Packed (generation << 1) | kind.
  std::uint32_t genkind = 0;

  /// Kind bit of the packed field.
  EvKind kind() const { return static_cast<EvKind>(genkind & 1U); }
  /// Attempt generation the event belongs to.
  std::uint32_t generation() const { return genkind >> 1; }
};

/// Two-level calendar queue keyed on trace::TimeSec. See the file
/// comment for the structure and the ordering invariant.
class CalendarQueue {
 public:
  /// log2 of the L0 window width in seconds.
  static constexpr int kWindowBits = 13;
  /// One-second buckets per window (8192 s ≈ 2.3 h per window).
  static constexpr std::size_t kL0Size = std::size_t{1} << kWindowBits;
  /// Returned by next_time() when the queue is empty.
  static constexpr trace::TimeSec kNoEvent =
      std::numeric_limits<trace::TimeSec>::max();

  /// `origin` is the earliest time any event may carry (submit times may
  /// be negative: generated workloads start warmup_days before t=0);
  /// `span_hint` pre-sizes the far level for [origin, origin + span_hint]
  /// (it grows beyond the hint on demand).
  CalendarQueue(trace::TimeSec origin, trace::TimeSec span_hint);

  /// Queues (task, generation, kind) at `time`. Must be strictly after
  /// the last finished bucket — the forward-push discipline that makes
  /// bucket order equal seq order.
  void push(trace::TimeSec time, EvKind kind, std::uint32_t task,
            std::uint32_t generation);

  /// True when no events remain.
  bool empty() const { return size_ == 0; }
  /// Number of queued events.
  std::uint64_t size() const { return size_; }

  /// Earliest event time, or kNoEvent when empty. Advances the window
  /// (scattering far buckets into L0) as a side effect; amortized O(1)
  /// per event plus bitmap word scans.
  ///
  /// The advance never moves past the window containing `bound`: if the
  /// earliest event lies in a later window, the call returns kNoEvent —
  /// meaning "no queued event at or before bound" — and the queue stays
  /// where it is. The simulator passes the next workload-cursor submit
  /// time as the bound, so a handler processing that submit can still
  /// push into windows the queue has not passed (the forward-push
  /// discipline stays intact). Pass kNoEvent for an unbounded scan.
  trace::TimeSec next_time(trace::TimeSec bound = kNoEvent);

  /// The bucket for `time`, which must be the value next_time() just
  /// returned. Entries are in seq order. The reference stays valid while
  /// handlers push (pushes target strictly later buckets).
  const std::vector<QueuedEvent>& bucket(trace::TimeSec time) const;

  /// Marks the bucket for `time` fully processed: clears it (capacity is
  /// retained — the bucket arena is reused as the window wraps) and
  /// forbids pushes at or before `time`.
  void finish_bucket(trace::TimeSec time);

 private:
  /// Far-level entry: a queued event plus its full timestamp.
  struct FarEvent {
    trace::TimeSec time;
    QueuedEvent ev;
  };

  std::uint64_t rel(trace::TimeSec time) const {
    return static_cast<std::uint64_t>(time - origin_);
  }
  std::size_t slot_of(trace::TimeSec time) const {
    return static_cast<std::size_t>(rel(time) & (kL0Size - 1));
  }
  std::uint64_t window_of(trace::TimeSec time) const {
    return rel(time) >> kWindowBits;
  }
  void set_bit(std::size_t slot) {
    bitmap_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  void clear_bit(std::size_t slot) {
    bitmap_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  }
  /// First occupied L0 slot >= `from`, or kL0Size when none.
  std::size_t scan_bitmap(std::size_t from) const;

  trace::TimeSec origin_;
  /// Last finished time; pushes must be strictly later.
  trace::TimeSec floor_;
  std::uint64_t cur_window_ = 0;
  /// Bitmap scan cursor within the current window.
  std::size_t scan_from_ = 0;
  std::uint64_t size_ = 0;
  std::vector<QueuedEvent> l0_[kL0Size];
  std::uint64_t bitmap_[kL0Size / 64] = {};
  /// far_[w] holds events for window w > cur_window_, in push order.
  std::vector<std::vector<FarEvent>> far_;
};

}  // namespace cgc::sim
