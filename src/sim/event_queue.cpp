#include "sim/event_queue.hpp"

#include <bit>

namespace cgc::sim {

CalendarQueue::CalendarQueue(trace::TimeSec origin, trace::TimeSec span_hint)
    : origin_(origin), floor_(origin - 1) {
  CGC_CHECK_MSG(span_hint >= 0, "calendar queue span must be non-negative");
  far_.resize(static_cast<std::size_t>(
      (static_cast<std::uint64_t>(span_hint) >> kWindowBits) + 2));
}

void CalendarQueue::push(trace::TimeSec time, EvKind kind, std::uint32_t task,
                         std::uint32_t generation) {
  CGC_CHECK_MSG(time > floor_,
                "calendar queue pushes must move strictly forward in time");
  CGC_CHECK_MSG(generation < (std::uint32_t{1} << 31),
                "generation counter overflow");
  const QueuedEvent ev{
      task, (generation << 1) | static_cast<std::uint32_t>(kind)};
  const std::uint64_t w = window_of(time);
  CGC_CHECK(w >= cur_window_);
  if (w == cur_window_) {
    const std::size_t slot = slot_of(time);
    l0_[slot].push_back(ev);
    set_bit(slot);
  } else {
    if (w >= far_.size()) {
      far_.resize(static_cast<std::size_t>(w) + 64);
    }
    far_[static_cast<std::size_t>(w)].push_back(FarEvent{time, ev});
  }
  ++size_;
}

std::size_t CalendarQueue::scan_bitmap(std::size_t from) const {
  if (from >= kL0Size) {
    return kL0Size;
  }
  std::size_t word = from >> 6;
  std::uint64_t bits = bitmap_[word] & (~std::uint64_t{0} << (from & 63));
  while (bits == 0) {
    if (++word >= kL0Size / 64) {
      return kL0Size;
    }
    bits = bitmap_[word];
  }
  return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
}

trace::TimeSec CalendarQueue::next_time(trace::TimeSec bound) {
  if (size_ == 0) {
    return kNoEvent;
  }
  for (;;) {
    const std::size_t slot = scan_bitmap(scan_from_);
    if (slot < kL0Size) {
      return origin_ +
             static_cast<trace::TimeSec>((cur_window_ << kWindowBits) + slot);
    }
    // Current window drained: advance to the next window holding events
    // and scatter its far bucket into L0 (order-preserving, so bucket
    // order stays seq order — no direct push into this window can have
    // happened yet).
    std::uint64_t w = cur_window_ + 1;
    while (w < far_.size() && far_[static_cast<std::size_t>(w)].empty()) {
      ++w;
    }
    CGC_CHECK_MSG(w < far_.size(), "calendar queue accounting is corrupt");
    if (bound != kNoEvent) {
      const trace::TimeSec window_start =
          origin_ + static_cast<trace::TimeSec>(w << kWindowBits);
      if (window_start > bound) {
        return kNoEvent;  // earliest event is past the bound; stay put
      }
    }
    cur_window_ = w;
    scan_from_ = 0;
    std::vector<FarEvent>& bucket = far_[static_cast<std::size_t>(w)];
    for (const FarEvent& fe : bucket) {
      const std::size_t s = slot_of(fe.time);
      l0_[s].push_back(fe.ev);
      set_bit(s);
    }
    bucket.clear();
    bucket.shrink_to_fit();  // the window never refills; release the arena
  }
}

const std::vector<QueuedEvent>& CalendarQueue::bucket(
    trace::TimeSec time) const {
  CGC_CHECK(window_of(time) == cur_window_);
  return l0_[slot_of(time)];
}

void CalendarQueue::finish_bucket(trace::TimeSec time) {
  CGC_CHECK(window_of(time) == cur_window_);
  const std::size_t slot = slot_of(time);
  CGC_CHECK(size_ >= l0_[slot].size());
  size_ -= l0_[slot].size();
  l0_[slot].clear();
  clear_bit(slot);
  scan_from_ = slot + 1;
  floor_ = time;
}

}  // namespace cgc::sim
