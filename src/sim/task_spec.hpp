// TaskSpec: the generator -> simulator contract.
//
// A workload is a list of TaskSpecs; the simulator owns everything that
// happens after submission (queueing, placement, preemption, sampling).
// The spec carries the task's *intended* behaviour: how long it must run
// to FINISH, what resources it requests and actually uses, and its
// scripted fate (fail/kill/lost injection), from which the simulator
// produces the observed event stream.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/types.hpp"

namespace cgc::sim {

struct TaskSpec {
  std::int64_t job_id = 0;          ///< owning job (groups tasks for Formula 4)
  std::int32_t task_index = 0;      ///< index within the job
  std::uint8_t priority = 1;        ///< 1..12, higher preempts lower
  trace::TimeSec submit_time = 0;   ///< when the task enters the pending queue
  /// Remaining work: the task FINISHes after this much accumulated run
  /// time (across resubmissions for fail/evict fates).
  trace::TimeSec duration = 1;
  float cpu_request = 0.01f;  ///< normalized cores requested
  float mem_request = 0.01f;  ///< normalized memory requested
  /// Mean fraction of the CPU request actually consumed while running.
  float cpu_usage_ratio = 0.4f;
  /// Mean fraction of the memory request actually consumed.
  float mem_usage_ratio = 0.85f;
  /// Page-cache footprint while running (normalized units).
  float page_cache = 0.0f;
  /// Scripted fate: kFinish runs to completion; kFail/kKill/kLost die
  /// after `abnormal_after` seconds of runtime instead.
  trace::TaskEventType fate = trace::TaskEventType::kFinish;
  /// Runtime (seconds) after which an abnormal fate fires; ignored for
  /// kFinish fates.
  trace::TimeSec abnormal_after = 0;
  /// Machine attributes this task requires (placement constraint; the
  /// scheduler only considers machines satisfying all bits).
  std::uint8_t required_attributes = 0;
  /// Whether an abnormal end (fail/evict) re-enters the pending queue.
  bool resubmit_on_abnormal = true;
  /// Cap on resubmissions (guards against infinite crash loops).
  std::int32_t max_resubmits = 3;
};

using Workload = std::vector<TaskSpec>;

}  // namespace cgc::sim
