// Struct-of-arrays state banks for the simulator hot loop.
//
// The seed simulator kept one TaskRun struct per task (with a pointer
// chase to its TaskSpec) and one MachineState per machine whose
// `running` list stored 8-byte task indices — every sample of a machine
// touched a scattered TaskRun + TaskSpec pair per running task, and
// every eviction did a linear std::find + middle erase. At paper scale
// (~400k concurrently running tasks sampled every simulated 5 minutes)
// that pointer-chasing dominates the run.
//
// The banks below split task state by access pattern:
//
//   * TaskBank — per-task dynamic state as parallel arrays indexed by
//     the task's workload slot. The event handlers touch exactly the
//     arrays they need; nothing else is pulled into cache.
//   * TaskStatic — the per-task constants the scheduler and sampler
//     read (requests, mean usage, priority/band, constraint bits),
//     packed to 24 bytes; built once from the workload, after which the
//     hot loop never dereferences a TaskSpec.
//   * MachineBank — per-machine capacities/assignments as arrays, plus
//     one dense RunEntry vector per machine: each entry carries every
//     field the sampler needs, so sampling a machine is one linear scan
//     over ~28-byte entries. Removal is O(1) swap-remove, with
//     TaskBank::pos_in_machine tracking each running task's position.
//   * PendingQueues — the 12 FCFS priority queues as intrusive singly
//     linked lists threaded through TaskBank::next_pending: push/pop
//     are pointer writes into arrays already in cache, replacing the
//     seed's 12 std::deques and their node churn.
//
// All mutation happens on the serial event spine; parallel regions
// (sampling, placement scoring) only read. Allocation happens once, up
// front — the steady-state event loop performs no heap traffic except
// amortized growth of per-machine run lists and calendar buckets.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/task_spec.hpp"
#include "trace/types.hpp"
#include "util/check.hpp"

namespace cgc::sim {

/// Per-task constants read by the scheduler and sampler (see file
/// comment). One entry per workload slot, immutable after construction.
struct TaskStatic {
  /// Requested CPU (normalized cores), copied from the spec.
  float cpu_request = 0.0f;
  /// Requested memory (normalized), copied from the spec.
  float mem_request = 0.0f;
  /// Mean CPU actually consumed while running: request * usage_ratio,
  /// precomputed so the sampler multiplies jitter factors only.
  float cpu_usage = 0.0f;
  /// Mean memory consumed while running: request * usage_ratio.
  float mem_usage = 0.0f;
  /// Page-cache footprint while running.
  float page_cache = 0.0f;
  /// Scheduling priority 1..12.
  std::uint8_t priority = 1;
  /// Priority band (trace::band_of(priority)), precomputed.
  std::uint8_t band = 0;
  /// Required machine attribute bits (placement constraint).
  std::uint8_t required_attributes = 0;
  /// kFlag* bits below.
  std::uint8_t flags = 0;

  /// flags bit: the task re-enters pending after an abnormal end.
  static constexpr std::uint8_t kFlagResubmit = 1U << 0;
  /// flags bit: the spec scripts an abnormal fate (fail/kill/lost).
  static constexpr std::uint8_t kFlagHasFate = 1U << 1;
};

/// Per-task dynamic state, parallel arrays indexed by workload slot.
/// Field semantics match the seed simulator's TaskRun exactly (the
/// state machine and generation rule are unchanged — only the layout
/// moved); see DESIGN.md §13.
struct TaskBank {
  /// Work left until FINISH (decremented as run time accumulates).
  std::vector<trace::TimeSec> remaining;
  /// Run time left until the scripted fate fires in the current
  /// attempt; <0 when no fate applies (or it has been consumed).
  std::vector<trace::TimeSec> fate_remaining;
  /// Start of the current running attempt; -1 when not running.
  std::vector<trace::TimeSec> run_start;
  /// Attempt generation: bumped on every eviction and end so queued end
  /// events of aborted attempts are recognized as stale and dropped.
  std::vector<std::uint32_t> generation;
  /// Machine index while running; -1 otherwise.
  std::vector<std::int32_t> machine;
  /// Position in the machine's RunEntry vector (swap-remove fixup).
  std::vector<std::uint32_t> pos_in_machine;
  /// Intrusive pending-FIFO link: next task slot, -1 = tail.
  std::vector<std::int32_t> next_pending;
  /// Time the current pending stint began (queue-wait accounting for
  /// SimStats::record_wait); -1 when the task is not pending.
  std::vector<trace::TimeSec> pending_since;
  /// trace::TaskState, stored as its underlying byte.
  std::vector<std::uint8_t> state;
  /// Resubmissions left before a fail-fate is allowed to finish.
  std::vector<std::int32_t> resubmits_left;

  // Trace-facing bookkeeping (cold during the run, read at
  // materialization).
  /// First SUBMIT time; -1 until submitted.
  std::vector<trace::TimeSec> first_submit;
  /// First SCHEDULE time; -1 until first placed.
  std::vector<trace::TimeSec> first_schedule;
  /// Terminal event time; -1 while the task's story continues.
  std::vector<trace::TimeSec> end_time;
  /// Terminal event type (valid when end_time >= 0).
  std::vector<std::uint8_t> end_event;
  /// Times the task re-entered pending (evictions + fail retries).
  std::vector<std::int32_t> resubmit_count;
  /// Machine index of the last placement; -1 = never placed.
  std::vector<std::int32_t> last_machine;

  /// Sizes every array for `n` tasks with the seed-equivalent initial
  /// values (one allocation per array, up front).
  void resize(std::size_t n) {
    remaining.resize(n, 0);
    fate_remaining.resize(n, -1);
    run_start.resize(n, -1);
    generation.resize(n, 0);
    machine.resize(n, -1);
    pos_in_machine.resize(n, 0);
    next_pending.resize(n, -1);
    pending_since.resize(n, -1);
    state.resize(n, static_cast<std::uint8_t>(trace::TaskState::kUnsubmitted));
    resubmits_left.resize(n, 0);
    first_submit.resize(n, -1);
    first_schedule.resize(n, -1);
    end_time.resize(n, -1);
    end_event.resize(n,
                     static_cast<std::uint8_t>(trace::TaskEventType::kFinish));
    resubmit_count.resize(n, 0);
    last_machine.resize(n, -1);
  }
};

/// One running task on a machine: everything the sampler and eviction
/// scans need, dense in the machine's run list (~28 bytes).
struct RunEntry {
  /// Task slot (index into TaskBank / the workload).
  std::uint32_t task = 0;
  /// Requested CPU — subtracted on hypothetical-eviction fit checks.
  float cpu_request = 0.0f;
  /// Requested memory.
  float mem_request = 0.0f;
  /// Mean CPU consumed (TaskStatic::cpu_usage), read every sample.
  float cpu_usage = 0.0f;
  /// Mean memory consumed.
  float mem_usage = 0.0f;
  /// Page-cache footprint.
  float page_cache = 0.0f;
  /// Priority 1..12 — eviction victim ordering.
  std::uint8_t priority = 1;
  /// Priority band — the sampler's accumulation index.
  std::uint8_t band = 0;
};

/// Per-machine state as parallel arrays plus dense run lists.
struct MachineBank {
  /// CPU capacity (normalized; same scale as trace::Machine).
  std::vector<float> cpu_capacity;
  /// Memory capacity (normalized).
  std::vector<float> mem_capacity;
  /// Page-cache capacity (sampler clamp).
  std::vector<float> page_cache_capacity;
  /// Sum of CPU requests of running tasks (admission bookkeeping).
  std::vector<double> cpu_assigned;
  /// Sum of memory requests of running tasks.
  std::vector<double> mem_assigned;
  /// Machine attribute bits (constraint matching).
  std::vector<std::uint8_t> attributes;
  /// External machine id (trace-facing).
  std::vector<std::int64_t> machine_id;
  /// Dense run list per machine; order is maintenance order (swap-
  /// remove), deterministic because all mutation is on the serial spine.
  std::vector<std::vector<RunEntry>> running;

  /// Number of machines.
  std::size_t size() const { return machine_id.size(); }

  /// Builds the bank from trace::Machine records (validates capacities,
  /// like the seed constructor did).
  void init(const std::vector<trace::Machine>& machines) {
    const std::size_t n = machines.size();
    cpu_capacity.reserve(n);
    mem_capacity.reserve(n);
    page_cache_capacity.reserve(n);
    attributes.reserve(n);
    machine_id.reserve(n);
    for (const trace::Machine& m : machines) {
      CGC_CHECK_MSG(m.cpu_capacity > 0 && m.mem_capacity > 0,
                    "machine capacities must be positive");
      cpu_capacity.push_back(m.cpu_capacity);
      mem_capacity.push_back(m.mem_capacity);
      page_cache_capacity.push_back(m.page_cache_capacity);
      attributes.push_back(m.attributes);
      machine_id.push_back(m.machine_id);
    }
    cpu_assigned.assign(n, 0.0);
    mem_assigned.assign(n, 0.0);
    running.resize(n);
  }
};

/// The 12 FCFS priority queues as intrusive lists through
/// TaskBank::next_pending. Index 0 = priority 1.
struct PendingQueues {
  /// Head task slot per priority; -1 = empty.
  std::int32_t head[trace::kNumPriorities];
  /// Tail task slot per priority; -1 = empty.
  std::int32_t tail[trace::kNumPriorities];
  /// Total pending tasks across all priorities.
  std::int64_t total = 0;

  /// Starts with every priority queue empty.
  PendingQueues() {
    for (int p = 0; p < trace::kNumPriorities; ++p) {
      head[p] = tail[p] = -1;
    }
  }

  /// Appends `task` to its priority's FIFO (priority is 1-based).
  void push(TaskBank& tasks, int priority, std::int32_t task) {
    const int p = priority - 1;
    tasks.next_pending[static_cast<std::size_t>(task)] = -1;
    if (tail[p] < 0) {
      head[p] = tail[p] = task;
    } else {
      tasks.next_pending[static_cast<std::size_t>(tail[p])] = task;
      tail[p] = task;
    }
    ++total;
  }
};

}  // namespace cgc::sim
