#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "util/check.hpp"

namespace cgc::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  // Construction cost is the sort; month-scale samples (task lengths,
  // usage samples) fan out across the pool. parallel_sort and the
  // chunked sum are deterministic at any thread count (exec contract),
  // so Ecdf-derived outputs stay bit-identical serial vs parallel.
  exec::parallel_sort(&sorted_);
  const double sum = exec::parallel_reduce(
      0, sorted_.size(), 0.0,
      [this](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          s += sorted_[i];
        }
        return s;
      },
      [](double& acc, double part) { acc += part; });
  mean_ = sorted_.empty() ? 0.0 : sum / static_cast<double>(sorted_.size());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  CGC_CHECK_MSG(!sorted_.empty(), "quantile of empty Ecdf");
  CGC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  if (q <= 0.0) {
    return sorted_.front();
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

double Ecdf::min() const {
  CGC_CHECK(!sorted_.empty());
  return sorted_.front();
}

double Ecdf::max() const {
  CGC_CHECK(!sorted_.empty());
  return sorted_.back();
}

double Ecdf::mean() const { return mean_; }

std::vector<std::pair<double, double>> Ecdf::plot_points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (sorted_.empty()) {
    return points;
  }
  const std::size_t n = sorted_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  points.reserve(n / step + 2);
  for (std::size_t i = 0; i < n; i += step) {
    points.emplace_back(sorted_[i],
                        static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().first != sorted_.back()) {
    points.emplace_back(sorted_.back(), 1.0);
  }
  return points;
}

double ks_statistic(const Ecdf& a, const Ecdf& b) {
  CGC_CHECK_MSG(!a.empty() && !b.empty(), "KS of empty Ecdf");
  double d = 0.0;
  for (const double x : a.sorted()) {
    d = std::max(d, std::abs(a(x) - b(x)));
  }
  for (const double x : b.sorted()) {
    d = std::max(d, std::abs(a(x) - b(x)));
  }
  return d;
}

}  // namespace cgc::stats
