#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace cgc::stats {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Generic one-sample KS against a model CDF functor.
template <typename Cdf>
double ks_against(std::span<const double> values, Cdf cdf) {
  CGC_CHECK_MSG(!values.empty(), "KS of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = cdf(sorted[i]);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    d = std::max({d, std::abs(emp_hi - model), std::abs(model - emp_lo)});
  }
  return d;
}

}  // namespace

double fit_exponential_mean(std::span<const double> values) {
  CGC_CHECK_MSG(!values.empty(), "fit of empty sample");
  double sum = 0.0;
  for (const double v : values) {
    CGC_CHECK_MSG(v >= 0.0, "exponential sample must be non-negative");
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

ParetoFit fit_pareto(std::span<const double> values) {
  CGC_CHECK_MSG(!values.empty(), "fit of empty sample");
  ParetoFit fit;
  fit.xm = *std::min_element(values.begin(), values.end());
  CGC_CHECK_MSG(fit.xm > 0.0, "Pareto sample must be positive");
  double log_sum = 0.0;
  for (const double v : values) {
    log_sum += std::log(v / fit.xm);
  }
  // MLE: alpha = n / sum(ln(xi/xm)); degenerate when all values equal xm.
  fit.alpha = log_sum == 0.0
                  ? std::numeric_limits<double>::infinity()
                  : static_cast<double>(values.size()) / log_sum;
  return fit;
}

LogNormalFit fit_lognormal(std::span<const double> values) {
  CGC_CHECK_MSG(!values.empty(), "fit of empty sample");
  double sum_log = 0.0;
  for (const double v : values) {
    CGC_CHECK_MSG(v > 0.0, "lognormal sample must be positive");
    sum_log += std::log(v);
  }
  const double n = static_cast<double>(values.size());
  const double mu = sum_log / n;
  double ss = 0.0;
  for (const double v : values) {
    const double d = std::log(v) - mu;
    ss += d * d;
  }
  LogNormalFit fit;
  fit.median = std::exp(mu);
  fit.sigma = std::sqrt(ss / n);
  return fit;
}

double ks_lognormal(std::span<const double> values, double median,
                    double sigma) {
  CGC_CHECK(median > 0.0 && sigma > 0.0);
  const double mu = std::log(median);
  return ks_against(values, [mu, sigma](double x) {
    if (x <= 0.0) {
      return 0.0;
    }
    return phi((std::log(x) - mu) / sigma);
  });
}

double ks_exponential(std::span<const double> values, double mean) {
  CGC_CHECK(mean > 0.0);
  return ks_against(values, [mean](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean);
  });
}

}  // namespace cgc::stats
