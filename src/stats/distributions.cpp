#include "stats/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cgc::stats {

Deterministic::Deterministic(double value) : value_(value) {
  CGC_CHECK(value >= 0.0);
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  CGC_CHECK(hi > lo);
}

double Uniform::sample(util::Rng& rng) const { return rng.uniform(lo_, hi_); }

Exponential::Exponential(double mean) : mean_(mean) {
  CGC_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
}

double Exponential::sample(util::Rng& rng) const {
  return rng.exponential(1.0 / mean_);
}

Pareto::Pareto(double xm, double alpha) : xm_(xm), alpha_(alpha) {
  CGC_CHECK(xm > 0.0);
  CGC_CHECK(alpha > 0.0);
}

double Pareto::sample(util::Rng& rng) const {
  // Inverse transform: x = xm / U^{1/alpha}.
  double u = rng.uniform();
  if (u <= 0.0) {
    u = 1e-300;
  }
  return xm_ * std::pow(u, -1.0 / alpha_);
}

double Pareto::mean() const {
  CGC_CHECK_MSG(alpha_ > 1.0, "Pareto mean undefined for alpha <= 1");
  return alpha_ * xm_ / (alpha_ - 1.0);
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  CGC_CHECK(lo > 0.0);
  CGC_CHECK(hi > lo);
  CGC_CHECK(alpha > 0.0);
}

double BoundedPareto::sample(util::Rng& rng) const {
  // Inverse transform of the truncated Pareto CDF.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  const double la = std::pow(lo_, alpha_);
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return (std::log(hi_) - std::log(lo_)) * lo_ * hi_ / (hi_ - lo_);
  }
  return (la / (1.0 - std::pow(lo_ / hi_, alpha_))) * (alpha_ / (alpha_ - 1.0)) *
         (std::pow(lo_, 1.0 - alpha_) - std::pow(hi_, 1.0 - alpha_));
}

LogNormal::LogNormal(double median, double sigma)
    : median_(median), sigma_(sigma) {
  CGC_CHECK(median > 0.0);
  CGC_CHECK(sigma >= 0.0);
}

double LogNormal::sample(util::Rng& rng) const {
  return median_ * std::exp(sigma_ * rng.normal());
}

double LogNormal::mean() const {
  return median_ * std::exp(0.5 * sigma_ * sigma_);
}

Weibull::Weibull(double lambda, double k) : lambda_(lambda), k_(k) {
  CGC_CHECK(lambda > 0.0);
  CGC_CHECK(k > 0.0);
}

double Weibull::sample(util::Rng& rng) const {
  return std::weibull_distribution<double>(k_, lambda_)(rng.engine());
}

double Weibull::mean() const {
  return lambda_ * std::tgamma(1.0 + 1.0 / k_);
}

HyperExponential::HyperExponential(double p, double mean1, double mean2)
    : p_(p), mean1_(mean1), mean2_(mean2) {
  CGC_CHECK(p >= 0.0 && p <= 1.0);
  CGC_CHECK(mean1 > 0.0 && mean2 > 0.0);
}

double HyperExponential::sample(util::Rng& rng) const {
  const double mean = rng.bernoulli(p_) ? mean1_ : mean2_;
  return rng.exponential(1.0 / mean);
}

double HyperExponential::mean() const {
  return p_ * mean1_ + (1.0 - p_) * mean2_;
}

Mixture::Mixture(std::vector<DistributionPtr> components,
                 std::vector<double> weights)
    : components_(std::move(components)) {
  CGC_CHECK(!components_.empty());
  CGC_CHECK(components_.size() == weights.size());
  double total = 0.0;
  for (const double w : weights) {
    CGC_CHECK_MSG(w >= 0.0, "mixture weights must be non-negative");
    total += w;
  }
  CGC_CHECK_MSG(total > 0.0, "mixture weights must not all be zero");
  weights_.reserve(weights.size());
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    const double norm = w / total;
    weights_.push_back(norm);
    acc += norm;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

double Mixture::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(
                                   components_.size() - 1)));
  return components_[idx]->sample(rng);
}

double Mixture::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    m += weights_[i] * components_[i]->mean();
  }
  return m;
}

Zipf::Zipf(std::size_t n, double s) {
  CGC_CHECK(n >= 1);
  cumulative_.resize(n);
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    const double w = std::pow(static_cast<double>(k), -s);
    total += w;
    weighted += static_cast<double>(k) * w;
    cumulative_[k - 1] = total;
  }
  for (double& c : cumulative_) {
    c /= total;
  }
  cumulative_.back() = 1.0;
  mean_ = weighted / total;
}

double Zipf::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<double>((it - cumulative_.begin()) + 1);
}

double Zipf::mean() const { return mean_; }

std::vector<double> sample_many(const Distribution& dist, std::size_t count,
                                util::Rng& rng) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(dist.sample(rng));
  }
  return out;
}

}  // namespace cgc::stats
