// Periodicity detection via the autocorrelation function.
//
// The paper (and H. Li's related work it cites) observes that Grid load
// exhibits clear diurnal/periodic patterns while Cloud load does not —
// a property load predictors can exploit. This module computes the
// autocorrelation function over a lag range and extracts the dominant
// period as the highest significant ACF peak.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cgc::stats {

/// Autocorrelation function: rho(lag) for lag in [1, max_lag].
std::vector<double> autocorrelation_function(std::span<const double> series,
                                             std::size_t max_lag);

struct PeriodicityResult {
  /// Lag (in samples) of the strongest ACF local maximum; 0 if none.
  std::size_t dominant_period = 0;
  /// ACF value at that lag.
  double strength = 0.0;
  /// Peak height above the deepest ACF trough before it — separates true
  /// oscillation from the slow monotone decay of a persistent series.
  double prominence = 0.0;
  /// True when the peak clears the white-noise significance band
  /// (|rho| > 2/sqrt(n)) by the caller's margin factor AND has at least
  /// `min_prominence` of rise over the preceding trough.
  bool significant = false;
};

/// Finds the dominant period of a series by scanning the ACF for local
/// maxima in [min_lag, max_lag]. A peak must exceed `margin * 2/sqrt(n)`
/// and rise at least `min_prominence` above the lowest ACF value at any
/// earlier lag to count as significant (a monotonically decaying ACF —
/// persistence, not periodicity — has near-zero prominence).
PeriodicityResult detect_periodicity(std::span<const double> series,
                                     std::size_t min_lag,
                                     std::size_t max_lag,
                                     double margin = 3.0,
                                     double min_prominence = 0.15);

/// Spearman rank correlation of two equal-length samples, in [-1, 1].
/// Used to compare load shapes across machines without assuming
/// linearity.
double spearman_correlation(std::span<const double> a,
                            std::span<const double> b);

}  // namespace cgc::stats
