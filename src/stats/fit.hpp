// Maximum-likelihood fitting of the library's workload distributions.
//
// Closes the loop between traces and models: given an observed sample
// (e.g. task lengths parsed from a real trace), recover the parameters
// of the generator that would reproduce it. Used by the load_predictor
// example and by tests as a round-trip property (sample -> fit -> match).
#pragma once

#include <span>

namespace cgc::stats {

/// MLE of an exponential mean (the sample mean).
double fit_exponential_mean(std::span<const double> values);

/// Fitted Pareto parameters via MLE with xm = min(sample).
struct ParetoFit {
  double xm = 0.0;
  double alpha = 0.0;
};
ParetoFit fit_pareto(std::span<const double> values);

/// Fitted lognormal via MLE on log-values.
struct LogNormalFit {
  double median = 0.0;  ///< e^{mu}
  double sigma = 0.0;
};
LogNormalFit fit_lognormal(std::span<const double> values);

/// One-sample KS statistic of `values` against the lognormal CDF with the
/// given parameters — a goodness-of-fit score for fitted models.
double ks_lognormal(std::span<const double> values, double median,
                    double sigma);

/// One-sample KS statistic against an exponential with the given mean.
double ks_exponential(std::span<const double> values, double mean);

}  // namespace cgc::stats
