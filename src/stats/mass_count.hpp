// Mass-count disparity analysis (Feitelson, "Workload Modeling").
//
// Paper reference: Section II.B defines the joint ratio and
// mm-distance; Figs 4 (task length), 9 (queue-state durations), 11
// (CPU usage), and 12 (memory usage) are mass-count plots, and the
// headline "6/94" Google task-length joint ratio is the paper's
// signature statistic. For a positive-valued sample it computes:
//   - the count CDF   Fc(x) = P(X <= x)
//   - the mass  CDF   Fm(x) = E[X * 1{X <= x}] / E[X]
//   - the joint ratio: at the crossover point x* where Fc + Fm = 1, the
//     pair (100*Fm(x*), 100*Fc(x*)) — written "X/Y" meaning Y% of the
//     items account for X% of the mass (e.g. Google task lengths: 6/94).
//   - the mm-distance: horizontal distance between the medians of the
//     two CDFs, |Fm^{-1}(0.5) - Fc^{-1}(0.5)|, in the sample's units.
#pragma once

#include <array>
#include <span>
#include <utility>
#include <vector>

namespace cgc::stats {

/// Result of a mass-count disparity analysis.
struct MassCountResult {
  /// Joint-ratio small side (percent of mass at the crossover), in [0,50].
  double joint_ratio_mass = 0.0;
  /// Joint-ratio large side (percent of items at the crossover), in [50,100].
  double joint_ratio_count = 0.0;
  /// Horizontal distance between mass median and count median (sample units).
  double mm_distance = 0.0;
  /// Count median Fc^{-1}(0.5).
  double count_median = 0.0;
  /// Mass median Fm^{-1}(0.5).
  double mass_median = 0.0;
  /// Number of samples analyzed.
  std::size_t n = 0;

  /// True when the small joint-ratio side is at most `threshold` percent —
  /// the paper's informal "follows the Pareto principle" test (e.g. the
  /// 10/90 rule has threshold 10+margin).
  bool pareto_principle(double threshold = 20.0) const {
    return joint_ratio_mass <= threshold;
  }
};

/// Computes the mass-count disparity of a positive sample.
/// Throws if the sample is empty or its total mass is zero.
MassCountResult mass_count_disparity(std::span<const double> values);

/// Plot series for a mass-count figure: up to `max_points` rows of
/// (x, Fc(x), Fm(x)), rank-spaced like the paper's plots.
std::vector<std::array<double, 3>> mass_count_plot(
    std::span<const double> values, std::size_t max_points = 200);

}  // namespace cgc::stats
