#include "stats/fairness.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cgc::stats {

double jain_fairness(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) {
    return 0.0;
  }
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double gini(std::span<const double> values) {
  CGC_CHECK_MSG(!values.empty(), "gini of empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  CGC_CHECK_MSG(sorted.front() >= 0.0, "gini requires non-negative values");
  const double n = static_cast<double>(sorted.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += (static_cast<double>(i) + 1.0) * sorted[i];
    total += sorted[i];
  }
  if (total == 0.0) {
    return 0.0;
  }
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t num_points) {
  CGC_CHECK_MSG(!values.empty(), "lorenz of empty sample");
  CGC_CHECK(num_points >= 1);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> prefix(sorted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc += sorted[i];
    prefix[i] = acc;
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(num_points + 1);
  out.emplace_back(0.0, 0.0);
  for (std::size_t p = 1; p <= num_points; ++p) {
    const double frac = static_cast<double>(p) / num_points;
    const auto idx = static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(sorted.size()))) - 1;
    out.emplace_back(frac, acc == 0.0 ? frac : prefix[idx] / acc);
  }
  return out;
}

}  // namespace cgc::stats
