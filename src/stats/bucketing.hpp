// Shared bucketing helpers (header-only).
//
// Three bucketing schemes recur across the repo and used to be
// hand-rolled at each site:
//
//   * linear  — equal-width bins over [lo, hi] with clamping
//     (stats::Histogram, the paper's Fig 2/Fig 7 PDFs);
//   * log2    — one bucket per bit_width of a u64
//     (cgc::obs::Histogram's duration buckets);
//   * log-γ   — geometric buckets with ratio γ, giving a bounded
//     *relative* error of (γ-1)/(γ+1) per bucket (the cgc::stream
//     quantile sketch / incremental ECDF).
//
// The functions are pure and header-only so cgc_obs can use them
// without linking cgc_stats (cgc_exec links cgc_obs, and cgc_stats
// links cgc_exec — a library edge here would be a cycle).
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace cgc::stats::bucketing {

// ---------------------------------------------------------------------------
// Linear (equal-width) buckets over [lo, hi], clamping outliers.
// ---------------------------------------------------------------------------

/// Bin index of `x` among `num_bins` equal-width bins over [lo, hi].
/// Values outside the range clamp into the first/last bin.
inline std::size_t linear_index(double x, double lo, double width,
                                std::size_t num_bins) {
  if (!(x > lo)) {  // also catches NaN
    return 0;
  }
  const auto raw = static_cast<std::size_t>((x - lo) / width);
  return raw >= num_bins ? num_bins - 1 : raw;
}

/// Lower edge of linear bin b.
inline double linear_lower(std::size_t b, double lo, double width) {
  return lo + static_cast<double>(b) * width;
}

/// Center of linear bin b.
inline double linear_center(std::size_t b, double lo, double width) {
  return lo + (static_cast<double>(b) + 0.5) * width;
}

// ---------------------------------------------------------------------------
// Log2 buckets: bucket b holds u64 values with bit_width(v) == b, i.e.
// bucket 0 is exactly {0} and bucket b >= 1 covers [2^(b-1), 2^b).
// ---------------------------------------------------------------------------

/// One bucket per possible bit_width of a u64 (0..64).
inline constexpr std::size_t kNumLog2Buckets = 65;

/// Bucket index of `v` (== std::bit_width(v)).
inline std::size_t log2_index(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

/// Inclusive upper bound of log2 bucket b: the largest value the bucket
/// can hold (2^b - 1; saturates at u64 max for b >= 64).
inline std::uint64_t log2_upper(std::size_t b) {
  return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
}

// ---------------------------------------------------------------------------
// Log-γ (geometric) buckets over positive doubles.
//
// Bucket i (i >= 1) covers (γ^(i-1), γ^i]; bucket 0 holds values <=
// `zero_threshold` (zero, negative, subnormal noise). Reporting the
// geometric mean of a bucket's bounds as its representative value keeps
// the relative error of any reconstructed sample within
// (γ-1)/(γ+1) — the DDSketch guarantee the stream layer documents.
// ---------------------------------------------------------------------------

/// Values at or below this land in the zero bucket. Chosen well under
/// any second-scale duration or normalized-load value the repo tracks.
inline constexpr double kLogZeroThreshold = 1e-9;

/// γ for a target relative error α: γ = (1+α)/(1-α).
inline double log_gamma_for_error(double alpha) {
  return (1.0 + alpha) / (1.0 - alpha);
}

/// Bucket index of `x` for ratio γ (precomputed 1/ln(γ) for the hot
/// path). Index 0 is the zero bucket; positive values start at 1.
inline std::int32_t log_index(double x, double inv_ln_gamma) {
  if (!(x > kLogZeroThreshold)) {  // also catches NaN
    return 0;
  }
  const double raw = std::ceil(std::log(x) * inv_ln_gamma);
  return 1 + static_cast<std::int32_t>(raw);
}

/// Representative value of bucket i (geometric mean of its bounds);
/// 0.0 for the zero bucket.
inline double log_value(std::int32_t i, double ln_gamma) {
  if (i <= 0) {
    return 0.0;
  }
  // Bucket covers (γ^(i-2), γ^(i-1)] after the +1 shift in log_index;
  // the geometric midpoint is γ^(i-1.5).
  return std::exp((static_cast<double>(i) - 1.5) * ln_gamma);
}

}  // namespace cgc::stats::bucketing
