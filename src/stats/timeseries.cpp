#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "util/check.hpp"

namespace cgc::stats {

std::vector<double> mean_filter(std::span<const double> series,
                                std::size_t window) {
  CGC_CHECK_MSG(window % 2 == 1, "mean filter window must be odd");
  std::vector<double> out(series.size());
  if (series.empty()) {
    return out;
  }
  if (window == 1) {
    out.assign(series.begin(), series.end());
    return out;
  }
  const std::size_t half = window / 2;
  const std::size_t n = series.size();
  // Sliding-window prefix sums: O(n) regardless of window size.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + series[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(n - 1, i + half);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

NoiseResult noise_after_mean_filter(std::span<const double> series,
                                    std::size_t window) {
  NoiseResult result;
  if (series.size() < 2) {
    return result;
  }
  const std::vector<double> smooth = mean_filter(series, window);
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double min_abs = std::numeric_limits<double>::infinity();
  double max_abs = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double r = std::abs(series[i] - smooth[i]);
    sum_abs += r;
    sum_sq += r * r;
    min_abs = std::min(min_abs, r);
    max_abs = std::max(max_abs, r);
  }
  const double n = static_cast<double>(series.size());
  result.min_abs = min_abs;
  result.mean_abs = sum_abs / n;
  result.max_abs = max_abs;
  result.rms = std::sqrt(sum_sq / n);
  return result;
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  if (series.size() <= lag + 1) {
    return 0.0;
  }
  const std::size_t n = series.size();
  // Each pass is a deterministic chunked reduce (fixed chunk plan,
  // partials combined in index order), so the result is bit-identical
  // at any thread count.
  const auto chunked_sum = [&](auto&& term) {
    return exec::parallel_reduce(
        0, n, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += term(i);
          }
          return s;
        },
        [](double& acc, double part) { acc += part; });
  };
  const double mean =
      chunked_sum([&](std::size_t i) { return series[i]; }) /
      static_cast<double>(n);
  const double var = chunked_sum([&](std::size_t i) {
    return (series[i] - mean) * (series[i] - mean);
  });
  if (var == 0.0) {
    return 0.0;
  }
  const double cov = chunked_sum([&](std::size_t i) {
    return i + lag < n ? (series[i] - mean) * (series[i + lag] - mean) : 0.0;
  });
  return cov / var;
}

std::size_t usage_level(double value, std::size_t num_levels) {
  CGC_CHECK(num_levels > 0);
  if (value <= 0.0) {
    return 0;
  }
  if (value >= 1.0) {
    return num_levels - 1;
  }
  return std::min(static_cast<std::size_t>(value * num_levels),
                  num_levels - 1);
}

std::vector<LevelRun> level_runs(std::span<const double> series,
                                 std::size_t num_levels,
                                 std::int64_t sample_period) {
  std::vector<LevelRun> runs;
  if (series.empty()) {
    return runs;
  }
  std::size_t current = usage_level(series[0], num_levels);
  std::int64_t length = 1;
  for (std::size_t i = 1; i < series.size(); ++i) {
    const std::size_t level = usage_level(series[i], num_levels);
    if (level == current) {
      ++length;
    } else {
      runs.push_back({current, length * sample_period});
      current = level;
      length = 1;
    }
  }
  runs.push_back({current, length * sample_period});
  return runs;
}

std::vector<LevelRun> state_runs(std::span<const std::int64_t> states,
                                 std::int64_t sample_period) {
  std::vector<LevelRun> runs;
  if (states.empty()) {
    return runs;
  }
  std::int64_t current = states[0];
  std::int64_t length = 1;
  for (std::size_t i = 1; i < states.size(); ++i) {
    if (states[i] == current) {
      ++length;
    } else {
      CGC_CHECK_MSG(current >= 0, "state values must be non-negative");
      runs.push_back({static_cast<std::size_t>(current),
                      length * sample_period});
      current = states[i];
      length = 1;
    }
  }
  CGC_CHECK_MSG(current >= 0, "state values must be non-negative");
  runs.push_back({static_cast<std::size_t>(current), length * sample_period});
  return runs;
}

std::vector<double> run_durations_at_level(std::span<const LevelRun> runs,
                                           std::size_t level) {
  std::vector<double> out;
  for (const LevelRun& run : runs) {
    if (run.level == level) {
      out.push_back(static_cast<double>(run.duration));
    }
  }
  return out;
}

}  // namespace cgc::stats
