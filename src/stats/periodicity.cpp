#include "stats/periodicity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "exec/parallel.hpp"
#include "stats/timeseries.hpp"
#include "util/check.hpp"

namespace cgc::stats {

std::vector<double> autocorrelation_function(std::span<const double> series,
                                             std::size_t max_lag) {
  CGC_CHECK_MSG(max_lag >= 1, "max_lag must be >= 1");
  std::vector<double> acf(max_lag);
  if (series.size() < 3) {
    return acf;
  }
  const std::size_t n = series.size();
  double mean = 0.0;
  for (const double v : series) {
    mean += v;
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double v : series) {
    var += (v - mean) * (v - mean);
  }
  if (var == 0.0) {
    return acf;
  }
  // Lags are independent O(n) covariance sums writing disjoint slots,
  // so fan them out one lag per chunk; the per-lag accumulation stays a
  // single serial loop, keeping every acf[k] thread-count independent.
  exec::parallel_for(
      1, max_lag + 1,
      [&](std::size_t lag) {
        if (lag + 1 >= n) {
          return;
        }
        double cov = 0.0;
        for (std::size_t i = 0; i + lag < n; ++i) {
          cov += (series[i] - mean) * (series[i + lag] - mean);
        }
        acf[lag - 1] = cov / var;
      },
      /*grain=*/1);
  return acf;
}

PeriodicityResult detect_periodicity(std::span<const double> series,
                                     std::size_t min_lag,
                                     std::size_t max_lag, double margin,
                                     double min_prominence) {
  CGC_CHECK_MSG(min_lag >= 2, "min_lag must be >= 2");
  CGC_CHECK_MSG(max_lag > min_lag, "max_lag must exceed min_lag");
  PeriodicityResult result;
  if (series.size() < min_lag * 3) {
    return result;
  }
  const std::vector<double> acf =
      autocorrelation_function(series, max_lag + 1);
  const double threshold =
      margin * 2.0 / std::sqrt(static_cast<double>(series.size()));
  // Local maxima of the ACF within [min_lag, max_lag], scored by
  // prominence over the deepest preceding trough.
  double trough = acf[0];
  double best_score = 0.0;
  for (std::size_t lag = min_lag; lag <= max_lag; ++lag) {
    const double here = acf[lag - 1];
    trough = std::min(trough, acf[lag - 2]);
    const double prev = acf[lag - 2];
    const double next = lag < max_lag ? acf[lag] : -1.0;
    const double prominence = here - trough;
    if (here >= prev && here > next && here * prominence > best_score) {
      best_score = here * prominence;
      result.dominant_period = lag;
      result.strength = here;
      result.prominence = prominence;
    }
  }
  result.significant = result.dominant_period != 0 &&
                       result.strength > threshold &&
                       result.prominence >= min_prominence;
  return result;
}

double spearman_correlation(std::span<const double> a,
                            std::span<const double> b) {
  CGC_CHECK_MSG(a.size() == b.size(), "samples must have equal length");
  CGC_CHECK_MSG(a.size() >= 2, "need at least two observations");
  const std::size_t n = a.size();
  // Fractional ranks (ties get the average rank).
  const auto ranks = [n](std::span<const double> v) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&v](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(n);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) {
        ++j;
      }
      const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
      for (std::size_t k = i; k <= j; ++k) {
        rank[order[k]] = avg_rank;
      }
      i = j + 1;
    }
    return rank;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  // Pearson correlation of the ranks.
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace cgc::stats
