#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cgc::stats {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::sum() const { return sum_; }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

RunningStats summarize(std::span<const double> values) {
  RunningStats stats;
  for (const double v : values) {
    stats.add(v);
  }
  return stats;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  CGC_CHECK_MSG(!sorted.empty(), "quantile of empty span");
  CGC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

double fraction_below(std::span<const double> values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  std::size_t below = 0;
  for (const double v : values) {
    if (v < threshold) {
      ++below;
    }
  }
  return static_cast<double>(below) / static_cast<double>(values.size());
}

}  // namespace cgc::stats
