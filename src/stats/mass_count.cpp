#include "stats/mass_count.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "exec/parallel.hpp"
#include "util/check.hpp"

namespace cgc::stats {

namespace {

/// Sorted copy plus prefix-mass vector; shared by both entry points.
struct SortedMass {
  std::vector<double> sorted;
  std::vector<double> prefix_mass;  // prefix_mass[i] = sum of sorted[0..i]
  double total = 0.0;
};

SortedMass prepare(std::span<const double> values) {
  CGC_CHECK_MSG(!values.empty(), "mass-count of empty sample");
  SortedMass sm;
  sm.sorted.assign(values.begin(), values.end());
  // The sort dominates (the prefix-mass sweep is a single O(n) pass
  // kept serial so the accumulation order is fixed); parallel_sort is
  // deterministic, so joint ratios and .dat series are thread-count
  // independent.
  exec::parallel_sort(&sm.sorted);
  CGC_CHECK_MSG(sm.sorted.front() >= 0.0,
                "mass-count requires non-negative values");
  sm.prefix_mass.resize(sm.sorted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sm.sorted.size(); ++i) {
    acc += sm.sorted[i];
    sm.prefix_mass[i] = acc;
  }
  sm.total = acc;
  CGC_CHECK_MSG(sm.total > 0.0, "mass-count requires positive total mass");
  return sm;
}

}  // namespace

MassCountResult mass_count_disparity(std::span<const double> values) {
  const SortedMass sm = prepare(values);
  const std::size_t n = sm.sorted.size();
  const auto fc = [&](std::size_t i) {
    return static_cast<double>(i + 1) / static_cast<double>(n);
  };
  const auto fm = [&](std::size_t i) { return sm.prefix_mass[i] / sm.total; };

  MassCountResult result;
  result.n = n;

  // Crossover: smallest rank where Fc + Fm >= 1. Both CDFs are
  // monotonically nondecreasing in rank, so the sum is too.
  std::size_t lo = 0;
  std::size_t hi = n - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (fc(mid) + fm(mid) >= 1.0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.joint_ratio_mass = 100.0 * fm(lo);
  result.joint_ratio_count = 100.0 * fc(lo);
  // Express as small/large regardless of which CDF leads at the crossover
  // (for near-uniform samples the mass side can exceed 50).
  if (result.joint_ratio_mass > result.joint_ratio_count) {
    std::swap(result.joint_ratio_mass, result.joint_ratio_count);
  }

  // Medians of each CDF.
  const auto median_of = [&](auto cdf_at) {
    std::size_t a = 0;
    std::size_t b = n - 1;
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (cdf_at(mid) >= 0.5) {
        b = mid;
      } else {
        a = mid + 1;
      }
    }
    return sm.sorted[a];
  };
  result.count_median = median_of(fc);
  result.mass_median = median_of(fm);
  result.mm_distance = std::abs(result.mass_median - result.count_median);
  return result;
}

std::vector<std::array<double, 3>> mass_count_plot(
    std::span<const double> values, std::size_t max_points) {
  const SortedMass sm = prepare(values);
  const std::size_t n = sm.sorted.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  std::vector<std::array<double, 3>> out;
  out.reserve(n / step + 2);
  for (std::size_t i = 0; i < n; i += step) {
    out.push_back({sm.sorted[i],
                   static_cast<double>(i + 1) / static_cast<double>(n),
                   sm.prefix_mass[i] / sm.total});
  }
  if (out.back()[0] != sm.sorted.back()) {
    out.push_back({sm.sorted.back(), 1.0, 1.0});
  }
  return out;
}

}  // namespace cgc::stats
