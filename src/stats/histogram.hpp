// Fixed-range histogram / empirical PDF.
//
// Used for the paper's Figure 2 (priority histogram) and Figure 7
// (PDF of normalized maximum host load).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cgc::stats {

/// Equal-width histogram over [lo, hi]. Values outside the range clamp
/// into the first/last bin (the paper's normalized metrics live in [0,1],
/// so clamping only absorbs floating-point spill).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x, double weight = 1.0);
  void add_all(std::span<const double> values);

  std::size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Center of bin b.
  double bin_center(std::size_t b) const;
  /// Lower edge of bin b.
  double bin_lo(std::size_t b) const;
  /// Raw (weighted) count of bin b.
  double count(std::size_t b) const { return counts_[b]; }
  /// Total weight added.
  double total() const { return total_; }

  /// Probability mass of bin b: count(b)/total. 0 if empty.
  double pmf(std::size_t b) const;
  /// Density estimate of bin b: pmf / bin_width.
  double pdf(std::size_t b) const;

  /// Bin index for a value (after clamping).
  std::size_t bin_index(double x) const;

  /// Mass vector (pmf for all bins).
  std::vector<double> pmf_vector() const;

 private:
  double lo_;
  double hi_;
  double width_;
  double total_ = 0.0;
  std::vector<double> counts_;
};

/// Integer-category histogram (e.g. priority 1..12). Category values map
/// to indices [0, num_categories).
class CategoryCounts {
 public:
  explicit CategoryCounts(std::size_t num_categories);

  void add(std::size_t category, std::int64_t count = 1);

  std::size_t num_categories() const { return counts_.size(); }
  std::int64_t count(std::size_t category) const;
  std::int64_t total() const { return total_; }
  double fraction(std::size_t category) const;

  void merge(const CategoryCounts& other);

 private:
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace cgc::stats
