// Descriptive statistics: streaming moments (Welford's algorithm) and
// batch quantile helpers.
//
// RunningStats is the workhorse accumulator used throughout the analysis
// pipelines; it is mergeable (parallel reduction friendly) and numerically
// stable for the month-long, million-sample series the paper processes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cgc::stats {

/// Streaming mean/variance/min/max accumulator (Welford). Mergeable via
/// merge() for parallel shard reduction.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel variance update).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Population variance (divides by n). Returns 0 for n < 2.
  double variance() const;
  /// Sample variance (divides by n-1). Returns 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// Coefficient of variation (stddev/mean); 0 if mean is 0.
  double cv() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Computes RunningStats over a span in one pass.
RunningStats summarize(std::span<const double> values);

/// Quantile of `values` via linear interpolation between order statistics
/// (type-7, the numpy/R default). `q` in [0, 1]. Sorts a copy.
double quantile(std::span<const double> values, double q);

/// Quantile over values the caller guarantees are already sorted.
double quantile_sorted(std::span<const double> sorted, double q);

/// Median shorthand.
double median(std::span<const double> values);

/// Fraction of values strictly below `threshold`.
double fraction_below(std::span<const double> values, double threshold);

}  // namespace cgc::stats
