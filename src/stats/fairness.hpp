// Fairness and inequality indices.
//
// Jain's fairness index is the paper's measure of job-submission
// stability (Table I): f(x) = (Σx)² / (n·Σx²) over per-hour submission
// counts. The Gini coefficient / Lorenz curve back the "joint ratio is a
// kind of Gini coefficient" remark and are exposed for completeness.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace cgc::stats {

/// Jain's fairness index in (0, 1]; 1 means perfectly even. Returns 0
/// for an empty sample or an all-zero sample.
double jain_fairness(std::span<const double> values);

/// Gini coefficient in [0, 1] of a non-negative sample (0 = perfectly
/// equal). Uses the sorted-rank formula.
double gini(std::span<const double> values);

/// Lorenz curve points: `num_points+1` rows of (population fraction,
/// cumulative mass fraction), from (0,0) to (1,1).
std::vector<std::pair<double, double>> lorenz_curve(
    std::span<const double> values, std::size_t num_points = 100);

}  // namespace cgc::stats
