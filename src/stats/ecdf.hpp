// Empirical cumulative distribution function.
//
// Paper reference: Section II.B introduces the CDF as the primary
// distribution view, and Figs 3 (job length), 5 (submission interval),
// and 6 (per-job CPU/memory) are plain CDF plots; the mass-count
// figures (4, 9, 11, 12) reuse it as their "count" half. Implements the
// standard empirical estimator F_n(x) = (1/n) Σ 1{X_i <= x} — the
// right-continuous step function through the order statistics. Ecdf
// stores the sorted sample once (sorting fans out via cgc::exec) and
// answers evaluations, quantiles, and downsampled plot series.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace cgc::stats {

/// Empirical CDF built from a sample. Evaluation uses the standard
/// right-continuous definition F(x) = (# samples <= x) / n.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x) = P(X <= x).
  double operator()(double x) const;

  /// Smallest sample value v with F(v) >= q.
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Sorted underlying sample (read-only view).
  std::span<const double> sorted() const { return sorted_; }

  /// Produces up to `max_points` (x, F(x)) pairs evenly spaced in rank —
  /// exactly what a plotting tool needs for Figs 3/5/6.
  std::vector<std::pair<double, double>> plot_points(
      std::size_t max_points = 200) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F1(x) - F2(x)|.
/// Used by tests to check generated samples against target shapes and by
/// the comparison analyzers to quantify Cloud-vs-Grid distribution gaps.
double ks_statistic(const Ecdf& a, const Ecdf& b);

}  // namespace cgc::stats
