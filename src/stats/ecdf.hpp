// Empirical cumulative distribution function.
//
// The paper plots CDFs constantly (Figs 3, 5, 6, and the count half of
// every mass-count plot). Ecdf stores the sorted sample once and answers
// evaluations, quantiles, and produces downsampled plot series.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace cgc::stats {

/// Empirical CDF built from a sample. Evaluation uses the standard
/// right-continuous definition F(x) = (# samples <= x) / n.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }
  std::size_t size() const { return sorted_.size(); }

  /// F(x) = P(X <= x).
  double operator()(double x) const;

  /// Smallest sample value v with F(v) >= q.
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Sorted underlying sample (read-only view).
  std::span<const double> sorted() const { return sorted_; }

  /// Produces up to `max_points` (x, F(x)) pairs evenly spaced in rank —
  /// exactly what a plotting tool needs for Figs 3/5/6.
  std::vector<std::pair<double, double>> plot_points(
      std::size_t max_points = 200) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Two-sample Kolmogorov–Smirnov statistic sup_x |F1(x) - F2(x)|.
/// Used by tests to check generated samples against target shapes and by
/// the comparison analyzers to quantify Cloud-vs-Grid distribution gaps.
double ks_statistic(const Ecdf& a, const Ecdf& b);

}  // namespace cgc::stats
