#include "stats/histogram.hpp"

#include "stats/bucketing.hpp"
#include "util/check.hpp"

namespace cgc::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0.0) {
  CGC_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  CGC_CHECK_MSG(num_bins > 0, "histogram needs at least one bin");
  width_ = (hi - lo) / static_cast<double>(num_bins);
}

std::size_t Histogram::bin_index(double x) const {
  return bucketing::linear_index(x, lo_, width_, counts_.size());
}

void Histogram::add(double x, double weight) {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> values) {
  for (const double v : values) {
    add(v);
  }
}

double Histogram::bin_center(std::size_t b) const {
  return bucketing::linear_center(b, lo_, width_);
}

double Histogram::bin_lo(std::size_t b) const {
  return bucketing::linear_lower(b, lo_, width_);
}

double Histogram::pmf(std::size_t b) const {
  return total_ == 0.0 ? 0.0 : counts_[b] / total_;
}

double Histogram::pdf(std::size_t b) const { return pmf(b) / width_; }

std::vector<double> Histogram::pmf_vector() const {
  std::vector<double> out(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out[b] = pmf(b);
  }
  return out;
}

CategoryCounts::CategoryCounts(std::size_t num_categories)
    : counts_(num_categories, 0) {
  CGC_CHECK(num_categories > 0);
}

void CategoryCounts::add(std::size_t category, std::int64_t count) {
  CGC_CHECK_MSG(category < counts_.size(), "category out of range");
  counts_[category] += count;
  total_ += count;
}

std::int64_t CategoryCounts::count(std::size_t category) const {
  CGC_CHECK_MSG(category < counts_.size(), "category out of range");
  return counts_[category];
}

double CategoryCounts::fraction(std::size_t category) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(category)) /
                           static_cast<double>(total_);
}

void CategoryCounts::merge(const CategoryCounts& other) {
  CGC_CHECK(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

}  // namespace cgc::stats
