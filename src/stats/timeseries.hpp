// Time-series analysis for host-load signals.
//
// Covers the paper's Section IV machinery: mean-filter smoothing and
// noise extraction (Fig 13's "noise of Google load is 20x Grid's"),
// autocorrelation, and usage-level quantization with run-length analysis
// (Tables II/III, Fig 9: durations of unchanged load level / queue state).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cgc::stats {

/// Centered moving-average (mean) filter with the given odd window.
/// Edges use the available partial window. window=1 returns the input.
std::vector<double> mean_filter(std::span<const double> series,
                                std::size_t window);

/// Noise summary of a series: residual statistics after mean-filtering,
/// matching the paper's methodology ("processing the trace with a mean
/// filter, then computing statistics on the transformed trace").
struct NoiseResult {
  double min_abs = 0.0;   ///< min |residual|
  double mean_abs = 0.0;  ///< mean |residual| — the headline noise number
  double max_abs = 0.0;   ///< max |residual|
  double rms = 0.0;       ///< root-mean-square residual
};

/// Computes residual noise of `series` around its mean-filtered version.
NoiseResult noise_after_mean_filter(std::span<const double> series,
                                    std::size_t window = 5);

/// Lag-k autocorrelation (Pearson, biased normalization by n). Returns 0
/// for a constant series.
double autocorrelation(std::span<const double> series, std::size_t lag);

/// Quantizes a value in [0,1] into one of `num_levels` equal intervals
/// ([0,0.2), [0.2,0.4), ... for 5 levels; 1.0 maps to the top level).
std::size_t usage_level(double value, std::size_t num_levels = 5);

/// One maximal run of consecutive samples in the same level.
struct LevelRun {
  std::size_t level = 0;     ///< quantized level (or raw state value)
  std::int64_t duration = 0; ///< run length in caller's time units
};

/// Run-length encodes the quantized series; `sample_period` scales run
/// lengths into time units (e.g. 300 s samples -> seconds).
std::vector<LevelRun> level_runs(std::span<const double> series,
                                 std::size_t num_levels,
                                 std::int64_t sample_period);

/// Run-length encodes an integer state series (e.g. running-task counts
/// bucketed into [0,9], [10,19], ... for Fig 9).
std::vector<LevelRun> state_runs(std::span<const std::int64_t> states,
                                 std::int64_t sample_period);

/// Extracts the durations (as double) of runs at a given level.
std::vector<double> run_durations_at_level(std::span<const LevelRun> runs,
                                           std::size_t level);

}  // namespace cgc::stats
