// Parametric distributions for workload synthesis.
//
// The workload generators express job lengths, inter-arrival gaps,
// tasks-per-job, and resource demands as draws from these distributions.
// Each type provides sample(Rng&), and where closed forms exist, mean()
// and quantile() — the calibration tests compare those against the
// paper's reported statistics.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace cgc::stats {

/// Abstract positive-valued distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draws one sample.
  virtual double sample(util::Rng& rng) const = 0;
  /// Analytical mean; throws if the mean is undefined.
  virtual double mean() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

/// Point mass at `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  double sample(util::Rng&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

/// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  double sample(util::Rng& rng) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_, hi_;
};

/// Exponential with the given mean.
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }

 private:
  double mean_;
};

/// Pareto (Lomax-free, classic): P(X > x) = (xm/x)^alpha for x >= xm.
class Pareto final : public Distribution {
 public:
  Pareto(double xm, double alpha);
  double sample(util::Rng& rng) const override;
  double mean() const override;  ///< throws for alpha <= 1
  double alpha() const { return alpha_; }

 private:
  double xm_, alpha_;
};

/// Bounded Pareto on [lo, hi] with shape alpha (alpha != 0); heavy-tailed
/// but with finite support — used for task-length tails (max 29 days).
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double lo, double hi, double alpha);
  double sample(util::Rng& rng) const override;
  double mean() const override;

 private:
  double lo_, hi_, alpha_;
};

/// Lognormal parameterized by the median (= e^mu) and sigma.
class LogNormal final : public Distribution {
 public:
  LogNormal(double median, double sigma);
  double sample(util::Rng& rng) const override;
  double mean() const override;
  double median() const { return median_; }
  double sigma() const { return sigma_; }

 private:
  double median_, sigma_;
};

/// Weibull with scale lambda and shape k.
class Weibull final : public Distribution {
 public:
  Weibull(double lambda, double k);
  double sample(util::Rng& rng) const override;
  double mean() const override;

 private:
  double lambda_, k_;
};

/// Two-phase hyperexponential: with prob p the mean is m1, else m2.
/// High-CV inter-arrival model for bursty Grid submissions.
class HyperExponential final : public Distribution {
 public:
  HyperExponential(double p, double mean1, double mean2);
  double sample(util::Rng& rng) const override;
  double mean() const override;

 private:
  double p_, mean1_, mean2_;
};

/// Finite mixture of component distributions with given weights.
class Mixture final : public Distribution {
 public:
  Mixture(std::vector<DistributionPtr> components,
          std::vector<double> weights);
  double sample(util::Rng& rng) const override;
  double mean() const override;

 private:
  std::vector<DistributionPtr> components_;
  std::vector<double> cumulative_;  // normalized cumulative weights
  std::vector<double> weights_;     // normalized weights
};

/// Zipf-like discrete distribution on {1..n}: P(k) ∝ k^{-s}. Used for
/// tasks-per-job (most jobs single-task, a few map-reduce jobs huge).
class Zipf final : public Distribution {
 public:
  Zipf(std::size_t n, double s);
  double sample(util::Rng& rng) const override;  ///< returns a value in [1,n]
  double mean() const override;

 private:
  std::vector<double> cumulative_;
  double mean_;
};

/// Draws `count` samples into a vector.
std::vector<double> sample_many(const Distribution& dist, std::size_t count,
                                util::Rng& rng);

}  // namespace cgc::stats
