#include "stream/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <thread>

#include "gen/google_model.hpp"
#include "obs/obs.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "stream/replay.hpp"
#include "stream/shutdown.hpp"
#include "trace/loader.hpp"
#include "util/check.hpp"
#include "util/time_util.hpp"

namespace cgc::stream {

namespace {

constexpr const char* kKnownQueries[] = {
    "priority_mix", "job_cdf",  "task_cdf", "submission",
    "host_load",    "queue",    "noise",    "all",
};

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Replays a pre-sorted event vector in batches, pacing trace time at
/// `rate` seconds per wall second when rate > 0. Stops at the next
/// batch boundary once a shutdown has been requested.
void replay_events(SlidingWindow* engine,
                   std::span<const trace::TaskEvent> events, double rate,
                   std::size_t batch_size) {
  const auto wall0 = std::chrono::steady_clock::now();
  const util::TimeSec t0 = events.empty() ? 0 : events.front().time;
  for (std::size_t i = 0; i < events.size() && !shutdown_requested();
       i += batch_size) {
    const std::span<const trace::TaskEvent> batch =
        events.subspan(i, std::min(batch_size, events.size() - i));
    if (rate > 0.0) {
      const double target_s =
          static_cast<double>(batch.front().time - t0) / rate;
      std::this_thread::sleep_until(
          wall0 + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(target_s)));
    }
    engine->ingest(batch);
  }
}

void write_health_json(std::ostream& out, const StreamHealth& health) {
  out << "{\"late_dropped\": " << health.late_dropped
      << ", \"late_absorbed\": " << health.late_absorbed
      << ", \"faults_dropped\": " << health.faults_dropped
      << ", \"faults_duplicated\": " << health.faults_duplicated
      << ", \"parse_bad_lines\": " << health.parse_bad_lines
      << ", \"lossy\": " << (health.lossy() ? "true" : "false") << "}";
}

}  // namespace

bool is_known_query(const std::string& metric) {
  for (const char* known : kKnownQueries) {
    if (metric == known) {
      return true;
    }
  }
  return false;
}

int run_daemon(const DaemonConfig& config, std::istream& in,
               std::ostream& out, DaemonStats* stats_out) {
  for (const std::string& query : config.queries) {
    CGC_CHECK_MSG(is_known_query(query), "unknown query: " + query);
  }
  WindowConfig window_config = config.window;
  if (!config.spill_dir.empty()) {
    window_config.keep_events = true;
  }
  SlidingWindow engine(window_config);

  std::ofstream spill_jsonl;
  std::uint64_t windows_spilled = 0;
  if (!config.spill_dir.empty()) {
    std::filesystem::create_directories(config.spill_dir);
    const std::string jsonl_path = config.spill_dir + "/windows.jsonl";
    spill_jsonl.open(jsonl_path, std::ios::trunc);
    CGC_CHECK_MSG(spill_jsonl.is_open(), "cannot open " + jsonl_path);
    engine.set_spill([&](const WindowStats& ws,
                         std::span<const trace::TaskEvent> events) {
      char name[40];
      std::snprintf(name, sizeof(name), "window-%06lld.cgcs",
                    static_cast<long long>(ws.index));
      trace::TraceSet window_trace("cgcd-window");
      window_trace.reserve_events(events.size());
      for (const trace::TaskEvent& event : events) {
        window_trace.add_event(event);
      }
      window_trace.set_duration(ws.end - ws.start);
      window_trace.finalize();
      store::write_cgcs(window_trace, config.spill_dir + "/" + name);
      std::string state;
      ws.append_state(&state);
      char digest[24];
      std::snprintf(digest, sizeof(digest), "%016llx",
                    static_cast<unsigned long long>(fnv1a(state)));
      spill_jsonl << "{\"index\": " << ws.index << ", \"start\": " << ws.start
                  << ", \"end\": " << ws.end
                  << ", \"events\": " << ws.events.total()
                  << ", \"raw_events\": " << events.size()
                  << ", \"state_fnv\": \"" << digest << "\", \"cgcs\": \""
                  << name << "\"}\n";
      ++windows_spilled;
    });
  }

  // Ingest. Wall time is measured around ingest only — the load/
  // generate cost is not part of the streaming rate.
  StreamHealth io_health;
  const auto wall0 = std::chrono::steady_clock::now();
  if (config.generate) {
    gen::GoogleModelConfig model_config;
    model_config.task_sampling_rate = config.task_sampling_rate;
    const auto horizon = static_cast<util::TimeSec>(config.generate_days *
                                                    util::kSecondsPerDay);
    const trace::TraceSet workload =
        gen::GoogleWorkloadModel(model_config).generate_workload(horizon);
    const std::vector<trace::TaskEvent> events = synthesize_events(workload);
    replay_events(&engine, events, config.rate, config.batch_size);
  } else if (config.input == "-") {
    read_event_stream(
        in, config.batch_size,
        [&engine](std::span<const trace::TaskEvent> batch) {
          engine.ingest(batch);
        },
        &io_health);
  } else if (!config.input.empty()) {
    trace::LoadOptions load_options;
    load_options.strictness = config.strict_load
                                  ? trace::Strictness::kStrict
                                  : trace::Strictness::kTolerant;
    load_options.on_damage = config.strict_load
                                 ? trace::OnDamage::kFail
                                 : trace::OnDamage::kQuarantine;
    trace::LoadReport report;
    const trace::TraceSet loaded =
        trace::load_trace(config.input, load_options, &report);
    io_health.parse_bad_lines += report.parse.lines_bad;
    const std::vector<trace::TaskEvent> events = synthesize_events(loaded);
    replay_events(&engine, events, config.rate, config.batch_size);
  } else {
    CGC_CHECK_MSG(false, "no input: give a trace path, \"-\", or generate");
  }
  engine.flush();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  DaemonStats stats;
  stats.events = engine.events_ingested();
  stats.windows_closed = engine.windows_closed();
  stats.windows_spilled = windows_spilled;
  stats.wall_seconds = wall_s;
  stats.events_per_second =
      wall_s > 0.0 ? static_cast<double>(stats.events) / wall_s : 0.0;
  stats.interrupted = shutdown_requested();
  stats.health = engine.health();
  stats.health.merge(io_health);

  const auto previous_precision = out.precision(12);
  out << "{\"summary\": {\"events\": " << stats.events
      << ", \"windows_closed\": " << stats.windows_closed
      << ", \"windows_spilled\": " << stats.windows_spilled
      << ", \"wall_s\": " << stats.wall_seconds
      << ", \"events_per_s\": " << stats.events_per_second
      << ", \"interrupted\": " << (stats.interrupted ? "true" : "false")
      << ", \"health\": ";
  write_health_json(out, stats.health);
  out << "}";
  if (!config.queries.empty()) {
    const WindowStats* target = config.query_window >= 0
                                    ? engine.find(config.query_window)
                                    : engine.latest();
    out << ",\n\"window_found\": " << (target != nullptr ? "true" : "false")
        << ",\n\"queries\": {";
    const char* sep = "";
    for (const std::string& query : config.queries) {
      out << sep << "\n\"" << query << "\": ";
      if (target == nullptr) {
        out << "null";
      } else {
        target->write_json(out, query);
      }
      sep = ",";
    }
    out << "}";
  }
  out << "}\n";
  out.precision(previous_precision);

  if (obs::enabled()) {
    obs::export_now();
  }
  if (stats_out != nullptr) {
    *stats_out = stats;
  }
  return stats.health.lossy() ? util::kExitFailure : util::kExitOk;
}

namespace {

/// Minimal field extraction for the spill manifest's flat JSONL rows.
bool manifest_u64(const std::string& line, const std::string& key,
                  std::uint64_t* out) {
  const std::string needle = "\"" + key + "\": ";
  const std::string::size_type pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  return std::sscanf(line.c_str() + pos + needle.size(), "%llu",
                     reinterpret_cast<unsigned long long*>(out)) == 1;
}

bool manifest_string(const std::string& line, const std::string& key,
                     std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::string::size_type pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  const std::string::size_type begin = pos + needle.size();
  const std::string::size_type end = line.find('"', begin);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(begin, end - begin);
  return true;
}

}  // namespace

SpillAudit verify_spill(const std::string& dir) {
  const std::string manifest = dir + "/windows.jsonl";
  std::ifstream in(manifest);
  CGC_CHECK_MSG(in.is_open(), "no spill manifest at " + manifest);

  SpillAudit audit;
  std::string line;
  std::uint64_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) {
      continue;
    }
    ++audit.windows;
    const std::size_t issues_before = audit.issues.size();

    std::string name;
    std::uint64_t expected_events = 0;
    // raw_events is the authoritative per-window store row count;
    // manifests from before it existed stamped the same value as
    // "events" (the window's deduplicated total), so fall back.
    const bool have_count =
        manifest_u64(line, "raw_events", &expected_events) ||
        manifest_u64(line, "events", &expected_events);
    if (!manifest_string(line, "cgcs", &name) || !have_count) {
      audit.issues.push_back({manifest,
                              "malformed manifest row " + std::to_string(row),
                              true});
      continue;
    }

    const std::string path = dir + "/" + name;
    try {
      store::StoreReader reader(path, store::ReadMode::kDegraded);
      for (const store::ChunkMeta& chunk : reader.chunks()) {
        reader.chunk_ok(chunk);
      }
      const store::DamageReport damage = reader.damage();
      if (!damage.clean()) {
        audit.issues.push_back({path, damage.summary(), false});
      }
      if (reader.info().num_events != expected_events) {
        audit.issues.push_back(
            {path,
             "event count mismatch: store has " +
                 std::to_string(reader.info().num_events) +
                 ", manifest records " + std::to_string(expected_events),
             true});
      }
    } catch (const util::Error& e) {
      audit.issues.push_back({path, std::string("unreadable: ") + e.what(),
                              true});
    }

    if (audit.issues.size() == issues_before) {
      ++audit.windows_clean;
    }
  }
  return audit;
}

}  // namespace cgc::stream
