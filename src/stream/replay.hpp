// Event-stream sources for the online daemon.
//
// The SlidingWindow engine consumes trace::TaskEvent batches; this
// module turns the two kinds of input cgcd accepts into that shape:
//
//   * a loaded TraceSet (any cgc::trace::Loader format) — replayed via
//     synthesize_events(), which uses the trace's own event log when it
//     has one and otherwise reconstructs the SUBMIT/SCHEDULE/terminal
//     triple per task record (generator workloads carry tasks but no
//     event rows);
//   * a pipe of Google clusterdata task_events rows on stdin — parsed
//     line by line, malformed rows counted into StreamHealth and never
//     fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "stream/window.hpp"
#include "trace/trace_set.hpp"

namespace cgc::stream {

/// Builds a time-sorted event stream from `trace`. The trace's own
/// events are used verbatim when present (finalize() already sorted
/// them); otherwise events are synthesized from the task records.
/// Synthesis emits one submit/schedule/terminal cycle per task —
/// resubmission cycles are not reconstructed (the Task record only
/// keeps their count), so replayed queue depths are a lower bound for
/// traces with evictions.
std::vector<trace::TaskEvent> synthesize_events(const trace::TraceSet& trace);

/// Parses one Google clusterdata task_events row (13 columns: time in
/// microseconds, event codes 0-8, file priorities 0-11 shifted to the
/// paper's 1-12). Returns false and leaves *event unspecified on a
/// malformed row. Never throws.
bool parse_google_event_line(std::string_view line, trace::TaskEvent* event);

/// Streams Google-format task-event rows from `in` (typically a pipe),
/// delivering batches of up to `batch_size` events to `sink`. Malformed
/// rows are skipped and counted into health->parse_bad_lines (never
/// fatal — the daemon's degraded-ingest contract). Stops early (after
/// delivering the partial batch) once shutdown_requested() is up, so a
/// SIGTERM'd daemon can spill the open window and exit. Returns the
/// number of events delivered.
std::uint64_t read_event_stream(
    std::istream& in, std::size_t batch_size,
    const std::function<void(std::span<const trace::TaskEvent>)>& sink,
    StreamHealth* health);

}  // namespace cgc::stream
