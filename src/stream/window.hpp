// SlidingWindow — the online characterization engine.
//
// Consumes a live task-event stream in batches and maintains, per
// event-time window, the paper's headline metrics:
//
//   * priority mix (Fig 2)            — CounterBank of SUBMITs
//   * job-length CDF (Fig 3)          — StreamingEcdf of job lengths
//   * task-length CDF (Fig 4's count half)
//   * submission-interval CDF (Fig 5) — StreamingEcdf + Moments of gaps
//   * per-host load (Fig 8b/13)       — StreamingEcdf of running tasks
//     per machine, snapshotted at window close
//   * queue state (Fig 8)             — pending/running gauges + event
//     mix, including the abnormal-termination fraction
//   * noise                           — per-window sub-bin arrival
//     counts → index of dispersion / CV of the arrival process
//
// Window semantics: event-time windows of `width` seconds sliding by
// `slide` (slide == width → tumbling; width must be a multiple of
// slide). The watermark is max(event time seen) − watermark_lag; a
// window closes when its end ≤ watermark. Events older than the oldest
// open window are *late*: dropped-and-counted by default, or absorbed
// into the oldest open window under LatePolicy::kAbsorbOldest. Closed
// windows are immutable, queryable, and optionally spilled.
//
// Determinism: the count-heavy per-window aggregation runs as a
// cgc::exec::parallel_reduce over each ingest batch (per-chunk
// CounterBank/rate-bin accumulators, merged in chunk order — the
// sharded-counters + periodic-snapshot idiom), and the stateful task/
// job/host bookkeeping runs sequentially per batch. Both are
// independent of CGC_THREADS, so for a fixed batching the engine's
// entire state — every sketch bit — is identical at any worker count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/sketch.hpp"
#include "trace/types.hpp"
#include "util/time_util.hpp"

namespace cgc::stream {

using util::TimeSec;

/// What happens to an event older than the oldest open window.
enum class LatePolicy {
  kDrop,          ///< count it and drop it (default)
  kAbsorbOldest,  ///< count it and fold it into the oldest open window
};

struct WindowConfig {
  TimeSec width = util::kSecondsPerHour;
  /// 0 → tumbling (slide = width). width must be a multiple of slide.
  TimeSec slide = 0;
  /// Watermark lag: tolerated event-time disorder before a window
  /// closes (the Google trace's 5-minute sampling period by default).
  TimeSec watermark_lag = util::kSamplePeriod;
  LatePolicy late_policy = LatePolicy::kDrop;
  /// Relative error α of every quantile/ECDF sketch (DESIGN §12).
  double relative_error = 0.01;
  /// Arrival sub-bins per window feeding the noise metric.
  std::size_t rate_bins = 60;
  /// Closed windows retained queryable in memory (older ones are
  /// dropped after the spill hook has seen them).
  std::size_t max_closed_retained = 1024;
  /// Retain each window's raw events for the spill hook (CGCS spill
  /// needs them; costs memory, off by default).
  bool keep_events = false;
};

/// Ingest damage accounting. Everything here is counted, never fatal —
/// but a nonzero total makes the daemon exit 1 (loss is never silent).
struct StreamHealth {
  std::uint64_t late_dropped = 0;    ///< late events under kDrop
  std::uint64_t late_absorbed = 0;   ///< late events under kAbsorbOldest
  std::uint64_t faults_dropped = 0;  ///< events dropped by fault injection
  std::uint64_t faults_duplicated = 0;  ///< events doubled by injection
  std::uint64_t parse_bad_lines = 0;    ///< malformed pipe-input lines

  /// True when the stream lost or fabricated data (absorbed-late events
  /// are reassigned, not lost, and so do not make the stream lossy).
  bool lossy() const {
    return late_dropped != 0 || faults_dropped != 0 ||
           faults_duplicated != 0 || parse_bad_lines != 0;
  }
  void merge(const StreamHealth& other);
};

/// All streaming metrics for one closed (or still-open) window.
struct WindowStats {
  std::int64_t index = 0;
  TimeSec start = 0;
  TimeSec end = 0;
  bool closed = false;

  /// Per-priority × per-event-type counts (priority mix, event mix).
  CounterBank events;
  /// Lengths (s) of jobs whose last live task ended in this window.
  StreamingEcdf job_length;
  /// Run durations (s) of tasks that ended in this window.
  StreamingEcdf task_length;
  /// Gaps (s) between consecutive job submissions landing here.
  StreamingEcdf submit_gap;
  Moments submit_gap_moments;
  /// Cheap probe quantiles of job length (the extended-P² idiom).
  ExtendedP2 job_length_probe;
  /// Running tasks per machine at window close.
  StreamingEcdf host_load;
  /// SUBMIT counts per sub-bin (noise source).
  std::vector<std::int64_t> rate_bins;

  // Queue state at window close.
  std::int64_t pending_at_close = 0;
  std::int64_t running_at_close = 0;
  std::int64_t hosts_seen = 0;

  explicit WindowStats(const WindowConfig& config = {});

  /// Index of dispersion (variance/mean) of per-bin arrival counts;
  /// 1 ≈ Poisson, > 1 bursty. 0 when no arrivals.
  double noise_dispersion() const;
  /// Coefficient of variation of per-bin arrival counts.
  double noise_cv() const;

  /// Canonical byte serialization of the full window state (bit-for-bit
  /// determinism checks; also hashed into the spill manifest).
  void append_state(std::string* out) const;

  /// Writes this window's metrics as a JSON object. `metric` selects
  /// one of priority_mix | job_cdf | task_cdf | submission | host_load |
  /// queue | noise, or "all" for every section.
  void write_json(std::ostream& out, const std::string& metric) const;
};

class SlidingWindow {
 public:
  explicit SlidingWindow(WindowConfig config);

  const WindowConfig& config() const { return config_; }

  /// Ingests one batch of events (arrival order; event times may be
  /// disordered up to the watermark lag). Windows whose end falls at or
  /// below the new watermark are closed before the call returns.
  void ingest(std::span<const trace::TaskEvent> events);

  /// Closes every still-open window (end of stream).
  void flush();

  /// Watermark (−infinity sentinel before any event): max event time
  /// seen minus the configured lag.
  TimeSec watermark() const;

  /// Closed-window access: all retained, newest last.
  const std::deque<WindowStats>& closed() const { return closed_; }
  /// Most recently closed window; nullptr before the first close.
  const WindowStats* latest() const;
  /// Window (closed or open) by index; nullptr when unknown/evicted.
  const WindowStats* find(std::int64_t index) const;
  /// Open windows, oldest first (observable mid-stream state).
  std::vector<const WindowStats*> open() const;

  const StreamHealth& health() const { return health_; }
  std::uint64_t events_ingested() const { return events_ingested_; }
  std::uint64_t windows_closed() const { return windows_closed_; }

  /// Installed hook runs once per closed window, before eviction from
  /// the retained ring. `events` is non-empty only under keep_events.
  using SpillFn = std::function<void(const WindowStats&,
                                     std::span<const trace::TaskEvent>)>;
  void set_spill(SpillFn fn) { spill_ = std::move(fn); }

 private:
  struct JobState {
    TimeSec first_submit = 0;
    std::int64_t live = 0;
  };
  struct TaskRun {
    TimeSec schedule_time = 0;
    std::int64_t machine_id = -1;
  };
  /// Per-window deltas accumulated by the parallel phase.
  struct WindowDelta;
  struct BatchPartial;

  std::int64_t window_of(TimeSec t) const { return t / config_.slide; }
  /// First (oldest) window index containing t.
  std::int64_t first_window_of(TimeSec t) const;
  WindowStats& open_window(std::int64_t index);
  void close_ready_windows();
  void close_oldest();
  void apply_sequential(const trace::TaskEvent& event);
  void add_sample_to_windows(TimeSec t,
                             StreamingEcdf WindowStats::*sketch,
                             double value);

  WindowConfig config_;
  std::deque<WindowStats> open_;
  std::deque<std::vector<trace::TaskEvent>> open_events_;
  std::int64_t first_open_index_ = 0;
  bool any_open_ = false;
  std::deque<WindowStats> closed_;

  TimeSec max_event_time_ = 0;
  bool any_event_ = false;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t windows_closed_ = 0;
  StreamHealth health_;

  // Stream state machine (sequential phase).
  std::unordered_map<std::int64_t, JobState> jobs_;
  std::unordered_map<std::uint64_t, TaskRun> running_tasks_;
  std::unordered_map<std::int64_t, std::int64_t> host_running_;
  std::int64_t pending_ = 0;
  std::int64_t running_ = 0;
  TimeSec last_job_submit_ = -1;

  SpillFn spill_;
};

/// Stable per-event fault-injection key: a pure hash of the event's
/// identifying fields, independent of batching and thread count.
std::uint64_t event_fault_key(const trace::TaskEvent& event);

}  // namespace cgc::stream
