#include "stream/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace cgc::stream {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void handle_shutdown_signal(int) {
  // Only an atomic store — everything else (spill, summary, exit)
  // happens on the ingest thread when it next polls the flag.
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action = {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a daemon blocked in a stdin read should come back
  // with EINTR so the ingest loop can observe the flag.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

void request_shutdown() {
  g_shutdown.store(true, std::memory_order_relaxed);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void clear_shutdown() { g_shutdown.store(false, std::memory_order_relaxed); }

}  // namespace cgc::stream
