#include "stream/replay.hpp"

#include <algorithm>
#include <istream>
#include <tuple>

#include "exec/parallel.hpp"
#include "stream/shutdown.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace cgc::stream {

namespace {

constexpr std::int64_t kMicrosPerSecond = 1'000'000;

/// clusterdata event code → TaskEventType; nullopt for unknown codes.
bool event_from_code(std::int64_t code, trace::TaskEventType* out) {
  switch (code) {
    case 0:
      *out = trace::TaskEventType::kSubmit;
      return true;
    case 1:
      *out = trace::TaskEventType::kSchedule;
      return true;
    case 2:
      *out = trace::TaskEventType::kEvict;
      return true;
    case 3:
      *out = trace::TaskEventType::kFail;
      return true;
    case 4:
      *out = trace::TaskEventType::kFinish;
      return true;
    case 5:
      *out = trace::TaskEventType::kKill;
      return true;
    case 6:
      *out = trace::TaskEventType::kLost;
      return true;
    case 7:
    case 8:  // UPDATE_PENDING / UPDATE_RUNNING
      *out = trace::TaskEventType::kUpdate;
      return true;
    default:
      return false;
  }
}

/// Stream sort order: time, then stable identity, then lifecycle order
/// (SUBMIT < SCHEDULE < terminals) so a task's same-second events
/// replay in state-machine order.
bool event_before(const trace::TaskEvent& a, const trace::TaskEvent& b) {
  return std::tuple(a.time, a.job_id, a.task_index,
                    static_cast<int>(a.type)) <
         std::tuple(b.time, b.job_id, b.task_index, static_cast<int>(b.type));
}

}  // namespace

std::vector<trace::TaskEvent> synthesize_events(
    const trace::TraceSet& trace) {
  std::vector<trace::TaskEvent> events;
  if (!trace.events().empty()) {
    events.assign(trace.events().begin(), trace.events().end());
    return events;
  }
  events.reserve(trace.tasks().size() * 3);
  for (const trace::Task& task : trace.tasks()) {
    trace::TaskEvent base;
    base.job_id = task.job_id;
    base.task_index = task.task_index;
    base.priority = task.priority;
    base.machine_id = -1;

    trace::TaskEvent submit = base;
    submit.time = task.submit_time;
    submit.type = trace::TaskEventType::kSubmit;
    events.push_back(submit);

    if (task.schedule_time >= 0) {
      trace::TaskEvent schedule = base;
      schedule.time = task.schedule_time;
      schedule.type = trace::TaskEventType::kSchedule;
      schedule.machine_id = task.machine_id;
      events.push_back(schedule);
    }
    if (task.end_time >= 0) {
      trace::TaskEvent end = base;
      end.time = task.end_time;
      end.type = task.end_event;
      end.machine_id = task.machine_id;
      events.push_back(end);
    }
  }
  exec::parallel_sort(&events, event_before);
  return events;
}

bool parse_google_event_line(std::string_view line,
                             trace::TaskEvent* event) {
  CGC_CHECK(event != nullptr);
  static thread_local std::vector<std::string_view> fields;
  util::split_fields(line, ',', &fields);
  if (fields.size() < 9) {
    return false;
  }
  try {
    trace::TaskEvent e;
    e.time = util::parse_int(fields[0]) / kMicrosPerSecond;
    e.job_id = util::parse_int(fields[2]);
    e.task_index = static_cast<std::int32_t>(util::parse_int(fields[3]));
    e.machine_id = fields[4].empty() ? -1 : util::parse_int(fields[4]);
    if (!event_from_code(util::parse_int(fields[5]), &e.type)) {
      return false;
    }
    const std::int64_t file_priority = util::parse_int(fields[8]);
    if (file_priority < 0 || file_priority >= trace::kNumPriorities) {
      return false;
    }
    e.priority = static_cast<std::uint8_t>(file_priority + 1);
    *event = e;
    return true;
  } catch (const util::Error&) {
    return false;
  }
}

std::uint64_t read_event_stream(
    std::istream& in, std::size_t batch_size,
    const std::function<void(std::span<const trace::TaskEvent>)>& sink,
    StreamHealth* health) {
  CGC_CHECK(batch_size > 0);
  std::uint64_t delivered = 0;
  std::vector<trace::TaskEvent> batch;
  batch.reserve(batch_size);
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    trace::TaskEvent event;
    if (!parse_google_event_line(line, &event)) {
      if (health != nullptr) {
        ++health->parse_bad_lines;
      }
      continue;
    }
    batch.push_back(event);
    if (batch.size() >= batch_size) {
      sink(batch);
      delivered += batch.size();
      batch.clear();
    }
  }
  if (!batch.empty()) {
    sink(batch);
    delivered += batch.size();
  }
  return delivered;
}

}  // namespace cgc::stream
