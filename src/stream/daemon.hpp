// run_daemon — the library core of cgcd, the online characterization
// daemon.
//
// Feeds a task-event stream through a SlidingWindow engine and answers
// queries about the paper's headline metrics per window. Three input
// modes:
//
//   * replay a trace file (any cgc::trace::Loader format) at a wall-
//     clock speedup (`rate`), or unthrottled when rate <= 0;
//   * ingest Google clusterdata task_events rows from an istream pipe;
//   * self-generate a Google-model workload (hermetic smoke tests).
//
// Closed windows can be spilled durably: a JSONL summary row per window
// (with an FNV-1a digest of the canonical window state) plus the
// window's raw events as a CGCS store file. Damage — late, dropped,
// duplicated, or unparseable events, whether injected by cgc::fault or
// present in the input — is counted, reported in the summary JSON, and
// turns the exit code to 1; it never crashes the daemon.
//
// SIGTERM/SIGINT (once install_shutdown_handlers() is in place) stop
// ingest at the next batch boundary; the open window is closed and
// spilled through the normal flush path, the summary carries
// `"interrupted": true`, and the exit code stays 0 unless the stream
// was lossy — an operator's shutdown is not an error.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "stream/window.hpp"

namespace cgc::stream {

struct DaemonConfig {
  /// Trace path, or "-" for a Google task_events pipe on `in`.
  std::string input;
  /// Generate a Google-model workload instead of reading input.
  bool generate = false;
  double generate_days = 2.0;
  /// Task sampling rate of the generated workload (bench default).
  double task_sampling_rate = 0.25;
  /// Replay speedup: events are paced so trace time advances at `rate`
  /// seconds per wall second. <= 0 → unthrottled (also for pipes).
  double rate = 0.0;
  /// Events per ingest batch — the snapshot/merge granularity.
  std::size_t batch_size = 8192;
  WindowConfig window;
  /// Directory for durable spill of closed windows ("" → none).
  /// Implies window.keep_events.
  std::string spill_dir;
  /// Metrics to answer after ingest: priority_mix | job_cdf | task_cdf |
  /// submission | host_load | queue | noise | all.
  std::vector<std::string> queries;
  /// Window to query: an index, or -1 for the latest closed window.
  std::int64_t query_window = -1;
  /// Strict trace loading (default tolerant: parse damage is counted
  /// into the stream health instead of aborting).
  bool strict_load = false;
};

/// Post-run accounting (also serialized into the summary JSON).
struct DaemonStats {
  std::uint64_t events = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t windows_spilled = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  /// Ingest stopped early on a shutdown request (SIGTERM/SIGINT); the
  /// open window was still flushed and spilled.
  bool interrupted = false;
  StreamHealth health;
};

/// True for a metric name run_daemon can answer.
bool is_known_query(const std::string& metric);

/// Runs one daemon pass: ingest, flush, spill, answer queries into
/// `out` as a single JSON object. `in` is only read when config.input
/// is "-". Returns util::kExitOk, or util::kExitFailure when the run
/// was degraded (any stream damage). Throws on unusable configuration
/// or unreadable input.
int run_daemon(const DaemonConfig& config, std::istream& in,
               std::ostream& out, DaemonStats* stats = nullptr);

/// One spill-audit finding from verify_spill.
struct SpillIssue {
  std::string path;
  std::string what;
  /// Fatal: the window is unusable (unreadable store, bad manifest
  /// row, event-count mismatch). Non-fatal: degraded but recoverable
  /// (quarantined chunks inside a still-readable store).
  bool fatal = false;
};

/// Audit of a cgcd spill directory (windows.jsonl + window-*.cgcs).
struct SpillAudit {
  std::uint64_t windows = 0;
  std::uint64_t windows_clean = 0;
  std::vector<SpillIssue> issues;

  bool clean() const { return issues.empty(); }
  bool fatal() const {
    for (const SpillIssue& issue : issues) {
      if (issue.fatal) {
        return true;
      }
    }
    return false;
  }
};

/// Verifies a spill directory written by run_daemon: every manifest
/// row parses, its CGCS file exists and round-trips chunk-by-chunk
/// (degraded reads are reported, not fatal), and the stored event
/// count matches the manifest's raw_events stamp. Used by
/// `cgc_fsck --spill`. Throws util::Error only when `dir` has no
/// manifest at all.
SpillAudit verify_spill(const std::string& dir);

}  // namespace cgc::stream
