// cgc::stream — streaming (one-pass, mergeable) variants of the stats
// kernels the batch analyzers use.
//
// The batch pipeline computes the paper's distributions from complete
// in-memory sample vectors (stats::Ecdf sorts the whole sample). The
// online daemon cannot hold a month of events, so each kernel here is a
// fixed-size summary with three contracts:
//
//   1. add(x) is O(1) and allocation-free on the hot path (amortized:
//      the ECDF's bucket array grows to the data's dynamic range once).
//   2. merge(other) combines two summaries built over disjoint shards
//      of a stream into the summary of the union. For the count-based
//      kernels (StreamingEcdf, CounterBank) merge is exact and
//      order-invariant: integer bucket adds commute and associate, so
//      any merge tree over any shard permutation yields bit-identical
//      state. For the floating-point kernels (Moments via Chan's
//      formula, ExtendedP2 via count-weighted marker interpolation)
//      merge is deterministic only for a fixed merge order — the
//      SlidingWindow engine always merges shards in ascending shard
//      index (cgc::exec::parallel_reduce's contract), which is how the
//      daemon stays bit-identical across CGC_THREADS.
//   3. Accuracy is bounded and documented: StreamingEcdf quantiles are
//      within relative error α of the exact sample quantile (log-γ
//      buckets, DDSketch-style, stats/bucketing.hpp); ExtendedP2 is a
//      constant-space heuristic (the extended_p_square idiom) with no
//      hard bound — it is the cheap per-shard probe, not the metric of
//      record.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "stats/bucketing.hpp"
#include "trace/types.hpp"

namespace cgc::stream {

// ---------------------------------------------------------------------------
// StreamingEcdf — incremental ECDF / log-γ histogram with bounded
// relative error.
// ---------------------------------------------------------------------------

/// One-pass ECDF over non-negative samples. Values are counted into
/// geometric buckets of ratio γ = (1+α)/(1-α); a reported quantile is
/// the geometric midpoint of its bucket clamped to the exact [min, max],
/// which keeps it within relative error α of the exact sample quantile.
/// merge() is an exact bucket-wise add — order-invariant bit-identical.
class StreamingEcdf {
 public:
  explicit StreamingEcdf(double relative_error = 0.01);

  void add(double x) { add_n(x, 1); }
  /// Adds `n` observations of value `x` (used by snapshot builders).
  void add_n(double x, std::uint64_t n);

  /// Folds `other` into this summary. Exact: the result's buckets equal
  /// the union stream's buckets whatever the merge order or grouping.
  void merge(const StreamingEcdf& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double relative_error() const { return alpha_; }
  /// Exact extremes of the stream (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Mean of bucket representatives (within α of the exact mean).
  double mean() const;

  /// Smallest representative value v with F(v) >= q; within relative
  /// error α of the exact sample quantile. 0 on an empty summary.
  double quantile(double q) const;

  /// Fraction of samples in buckets at or below the bucket of x.
  double cdf(double x) const;

  /// Up to `max_points` (value, F) pairs over the occupied buckets —
  /// the streaming analogue of stats::Ecdf::plot_points.
  std::vector<std::pair<double, double>> plot_points(
      std::size_t max_points = 200) const;

  /// Appends a canonical byte serialization (used by the determinism
  /// tests and the window spill format). Equal states ⇔ equal bytes.
  void append_state(std::string* out) const;

 private:
  /// counts_[i] holds bucket base_ + i of the log-γ scheme.
  void ensure_bucket(std::int32_t index);

  double alpha_;
  double ln_gamma_;
  double inv_ln_gamma_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int32_t base_ = 0;
  std::vector<std::uint64_t> counts_;
};

// ---------------------------------------------------------------------------
// Moments — windowed mean/variance (Welford update, Chan merge).
// ---------------------------------------------------------------------------

/// Count, mean, variance, min, max in O(1) space. merge() uses Chan's
/// parallel combination; deterministic for a fixed merge order.
class Moments {
 public:
  void add(double x);
  void merge(const Moments& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void append_state(std::string* out) const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// ---------------------------------------------------------------------------
// CounterBank — per-priority × per-event-type counters (Fig 2 / Fig 8
// online).
// ---------------------------------------------------------------------------

/// Integer counter bank over the 12 priorities × 8 task event types.
/// merge() adds counter-wise — exact and order-invariant.
class CounterBank {
 public:
  void add(int priority, trace::TaskEventType type, std::int64_t n = 1);
  void merge(const CounterBank& other);

  /// Count of `type` events at `priority` (1-based, clamped into 1..12).
  std::int64_t count(int priority, trace::TaskEventType type) const;
  /// Total events of `type` across priorities.
  std::int64_t total(trace::TaskEventType type) const;
  /// All events at `priority`.
  std::int64_t total_at(int priority) const;
  std::int64_t total() const { return total_; }
  /// SUBMIT events inside a priority band — the streaming Fig 2 view.
  std::int64_t submits_in_band(trace::PriorityBand band) const;
  /// Abnormal terminal events (EVICT/FAIL/KILL/LOST) across priorities.
  std::int64_t abnormal_terminals() const;
  /// All terminal events.
  std::int64_t terminals() const;

  void append_state(std::string* out) const;

 private:
  static std::size_t pindex(int priority);

  std::array<std::array<std::int64_t, trace::kNumTaskEventTypes>,
             trace::kNumPriorities>
      counts_{};
  std::int64_t total_ = 0;
};

// ---------------------------------------------------------------------------
// ExtendedP2 — constant-space quantile probes (the extended_p_square
// accumulator idiom).
// ---------------------------------------------------------------------------

/// Extended P² estimator: maintains 2K+3 markers tracking K probe
/// quantiles simultaneously with parabolic (P²) marker adjustment.
/// A heuristic — accurate on smooth unimodal data, unbounded error in
/// adversarial cases; the engine uses it as the cheap per-shard probe
/// while StreamingEcdf carries the documented error bound. merge()
/// count-weights marker heights; deterministic for a fixed merge order.
class ExtendedP2 {
 public:
  /// Probes must be strictly increasing, each in (0, 1).
  explicit ExtendedP2(std::vector<double> probes = {0.5, 0.9, 0.95, 0.99});

  void add(double x);
  void merge(const ExtendedP2& other);

  std::uint64_t count() const { return count_; }
  std::span<const double> probes() const { return probes_; }
  /// Current estimate for probe i (exact while count <= marker count).
  double estimate(std::size_t probe_index) const;

  void append_state(std::string* out) const;

 private:
  double desired_position(std::size_t marker) const;

  std::vector<double> probes_;
  std::vector<double> heights_;    ///< marker heights (sorted)
  std::vector<double> positions_;  ///< marker positions (1-based)
  std::uint64_t count_ = 0;
};

}  // namespace cgc::stream
