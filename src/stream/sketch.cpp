#include "stream/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace cgc::stream {

namespace {

/// Appends a POD value's bytes (fixed width, native little-endian on
/// every platform we build for) to a state string.
template <typename T>
void append_pod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingEcdf
// ---------------------------------------------------------------------------

StreamingEcdf::StreamingEcdf(double relative_error) : alpha_(relative_error) {
  CGC_CHECK_MSG(relative_error > 0.0 && relative_error < 0.5,
                "StreamingEcdf relative error must be in (0, 0.5)");
  ln_gamma_ = std::log(stats::bucketing::log_gamma_for_error(alpha_));
  inv_ln_gamma_ = 1.0 / ln_gamma_;
}

void StreamingEcdf::ensure_bucket(std::int32_t index) {
  if (counts_.empty()) {
    base_ = index;
    counts_.assign(1, 0);
    return;
  }
  if (index < base_) {
    counts_.insert(counts_.begin(),
                   static_cast<std::size_t>(base_ - index), 0);
    base_ = index;
  } else if (const auto off = static_cast<std::size_t>(index - base_);
             off >= counts_.size()) {
    counts_.resize(off + 1, 0);
  }
}

void StreamingEcdf::add_n(double x, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  const std::int32_t index = stats::bucketing::log_index(x, inv_ln_gamma_);
  ensure_bucket(index);
  counts_[static_cast<std::size_t>(index - base_)] += n;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += n;
}

void StreamingEcdf::merge(const StreamingEcdf& other) {
  CGC_CHECK_MSG(alpha_ == other.alpha_,
                "cannot merge StreamingEcdfs with different error bounds");
  if (other.count_ == 0) {
    return;
  }
  ensure_bucket(other.base_);
  ensure_bucket(other.base_ +
                static_cast<std::int32_t>(other.counts_.size()) - 1);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[static_cast<std::size_t>(
        other.base_ + static_cast<std::int32_t>(i) - base_)] +=
        other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double StreamingEcdf::mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      sum += static_cast<double>(counts_[i]) *
             stats::bucketing::log_value(
                 base_ + static_cast<std::int32_t>(i), ln_gamma_);
    }
  }
  return sum / static_cast<double>(count_);
}

double StreamingEcdf::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Same rank convention as stats::Ecdf::quantile: the smallest value
  // whose cumulative fraction reaches q.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t rank = std::max<std::uint64_t>(target, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const double v = stats::bucketing::log_value(
          base_ + static_cast<std::int32_t>(i), ln_gamma_);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

double StreamingEcdf::cdf(double x) const {
  if (count_ == 0) {
    return 0.0;
  }
  const std::int32_t index = stats::bucketing::log_index(x, inv_ln_gamma_);
  if (index < base_) {
    return 0.0;
  }
  std::uint64_t seen = 0;
  const auto limit = std::min<std::size_t>(
      counts_.size(), static_cast<std::size_t>(index - base_) + 1);
  for (std::size_t i = 0; i < limit; ++i) {
    seen += counts_[i];
  }
  return static_cast<double>(seen) / static_cast<double>(count_);
}

std::vector<std::pair<double, double>> StreamingEcdf::plot_points(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (count_ == 0 || max_points == 0) {
    return points;
  }
  // Occupied buckets in order; downsample evenly if there are more than
  // max_points of them (always keeping the last, where F reaches 1).
  std::vector<std::pair<double, double>> full;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    seen += counts_[i];
    const double v = std::clamp(
        stats::bucketing::log_value(base_ + static_cast<std::int32_t>(i),
                                    ln_gamma_),
        min_, max_);
    full.emplace_back(v,
                      static_cast<double>(seen) /
                          static_cast<double>(count_));
  }
  if (full.size() <= max_points) {
    return full;
  }
  const double step = static_cast<double>(full.size() - 1) /
                      static_cast<double>(max_points - 1);
  for (std::size_t p = 0; p < max_points; ++p) {
    points.push_back(full[static_cast<std::size_t>(
        std::lround(static_cast<double>(p) * step))]);
  }
  points.back() = full.back();
  return points;
}

void StreamingEcdf::append_state(std::string* out) const {
  append_pod(out, alpha_);
  append_pod(out, count_);
  append_pod(out, min_);
  append_pod(out, max_);
  // Trim leading/trailing zero buckets so physically different layouts
  // of the same logical state serialize identically.
  std::size_t lo = 0;
  std::size_t hi = counts_.size();
  while (lo < hi && counts_[lo] == 0) {
    ++lo;
  }
  while (hi > lo && counts_[hi - 1] == 0) {
    --hi;
  }
  append_pod(out, static_cast<std::int32_t>(
                      base_ + static_cast<std::int32_t>(lo)));
  append_pod(out, static_cast<std::uint64_t>(hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    append_pod(out, counts_[i]);
  }
}

// ---------------------------------------------------------------------------
// Moments
// ---------------------------------------------------------------------------

void Moments::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Moments::merge(const Moments& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Moments::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Moments::stddev() const { return std::sqrt(variance()); }

void Moments::append_state(std::string* out) const {
  append_pod(out, count_);
  append_pod(out, mean_);
  append_pod(out, m2_);
  append_pod(out, min_);
  append_pod(out, max_);
}

// ---------------------------------------------------------------------------
// CounterBank
// ---------------------------------------------------------------------------

std::size_t CounterBank::pindex(int priority) {
  const int clamped = std::clamp<int>(priority, trace::kMinPriority,
                                      trace::kMaxPriority);
  return static_cast<std::size_t>(clamped - trace::kMinPriority);
}

void CounterBank::add(int priority, trace::TaskEventType type,
                      std::int64_t n) {
  counts_[pindex(priority)][static_cast<std::size_t>(type)] += n;
  total_ += n;
}

void CounterBank::merge(const CounterBank& other) {
  for (std::size_t p = 0; p < counts_.size(); ++p) {
    for (std::size_t e = 0; e < counts_[p].size(); ++e) {
      counts_[p][e] += other.counts_[p][e];
    }
  }
  total_ += other.total_;
}

std::int64_t CounterBank::count(int priority,
                                trace::TaskEventType type) const {
  return counts_[pindex(priority)][static_cast<std::size_t>(type)];
}

std::int64_t CounterBank::total(trace::TaskEventType type) const {
  std::int64_t sum = 0;
  for (const auto& row : counts_) {
    sum += row[static_cast<std::size_t>(type)];
  }
  return sum;
}

std::int64_t CounterBank::total_at(int priority) const {
  std::int64_t sum = 0;
  for (const std::int64_t c : counts_[pindex(priority)]) {
    sum += c;
  }
  return sum;
}

std::int64_t CounterBank::submits_in_band(trace::PriorityBand band) const {
  std::int64_t sum = 0;
  for (int p = trace::kMinPriority; p <= trace::kMaxPriority; ++p) {
    if (trace::band_of(p) == band) {
      sum += count(p, trace::TaskEventType::kSubmit);
    }
  }
  return sum;
}

std::int64_t CounterBank::abnormal_terminals() const {
  std::int64_t sum = 0;
  for (std::size_t e = 0; e < trace::kNumTaskEventTypes; ++e) {
    const auto type = static_cast<trace::TaskEventType>(e);
    if (trace::is_abnormal(type)) {
      sum += total(type);
    }
  }
  return sum;
}

std::int64_t CounterBank::terminals() const {
  std::int64_t sum = 0;
  for (std::size_t e = 0; e < trace::kNumTaskEventTypes; ++e) {
    const auto type = static_cast<trace::TaskEventType>(e);
    if (trace::is_terminal(type)) {
      sum += total(type);
    }
  }
  return sum;
}

void CounterBank::append_state(std::string* out) const {
  for (const auto& row : counts_) {
    for (const std::int64_t c : row) {
      append_pod(out, c);
    }
  }
  append_pod(out, total_);
}

// ---------------------------------------------------------------------------
// ExtendedP2
// ---------------------------------------------------------------------------

ExtendedP2::ExtendedP2(std::vector<double> probes)
    : probes_(std::move(probes)) {
  CGC_CHECK_MSG(!probes_.empty(), "ExtendedP2 needs at least one probe");
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    CGC_CHECK_MSG(probes_[i] > 0.0 && probes_[i] < 1.0,
                  "ExtendedP2 probes must be in (0, 1)");
    CGC_CHECK_MSG(i == 0 || probes_[i] > probes_[i - 1],
                  "ExtendedP2 probes must be strictly increasing");
  }
  // Markers: min, midpoints around each probe, max — the classic
  // extended_p_square layout of 2K+3 markers.
  const std::size_t m = 2 * probes_.size() + 3;
  heights_.assign(m, 0.0);
  positions_.assign(m, 0.0);
}

double ExtendedP2::desired_position(std::size_t marker) const {
  // Desired quantile of each marker: 0, p1/2, p1, (p1+p2)/2, p2, ...,
  // (pK+1)/2, 1.
  const std::size_t m = heights_.size();
  double dq = 0.0;
  if (marker == 0) {
    dq = 0.0;
  } else if (marker == m - 1) {
    dq = 1.0;
  } else if (marker % 2 == 0) {
    dq = probes_[marker / 2 - 1];
  } else {
    const std::size_t k = marker / 2;  // midpoint below probe k
    const double lo = k == 0 ? 0.0 : probes_[k - 1];
    const double hi = k == probes_.size() ? 1.0 : probes_[k];
    dq = 0.5 * (lo + hi);
  }
  return 1.0 + dq * (static_cast<double>(count_) - 1.0);
}

void ExtendedP2::add(double x) {
  const std::size_t m = heights_.size();
  if (count_ < m) {
    // Warm-up: collect the first m samples exactly.
    heights_[count_] = x;
    ++count_;
    if (count_ == m) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < m; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++count_;
  // Locate the cell and bump endpoint markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[m - 1]) {
    heights_[m - 1] = std::max(heights_[m - 1], x);
    k = m - 2;
  } else {
    k = static_cast<std::size_t>(
            std::upper_bound(heights_.begin(), heights_.end(), x) -
            heights_.begin()) -
        1;
  }
  for (std::size_t i = k + 1; i < m; ++i) {
    positions_[i] += 1.0;
  }
  // Adjust interior markers toward their desired positions with the P²
  // parabolic formula, falling back to linear when non-monotone.
  for (std::size_t i = 1; i + 1 < m; ++i) {
    const double desired = desired_position(i);
    const double d = desired - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      const double np = positions_[i] + sign;
      const double h_above = heights_[i + 1] - heights_[i];
      const double h_below = heights_[i] - heights_[i - 1];
      // Parabolic prediction.
      double nh =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((np - positions_[i - 1] + sign) * h_above / above +
               (positions_[i + 1] - np - sign) * h_below / below);
      if (nh <= heights_[i - 1] || nh >= heights_[i + 1]) {
        // Linear fallback.
        nh = sign > 0 ? heights_[i] + h_above / above
                      : heights_[i] - h_below / below;
      }
      heights_[i] = nh;
      positions_[i] = np;
    }
  }
}

void ExtendedP2::merge(const ExtendedP2& other) {
  CGC_CHECK_MSG(probes_.size() == other.probes_.size() &&
                    std::equal(probes_.begin(), probes_.end(),
                               other.probes_.begin()),
                "cannot merge ExtendedP2 with different probe sets");
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const std::size_t m = heights_.size();
  if (count_ < m || other.count_ < m) {
    // At least one side is still in exact warm-up: replay the smaller
    // side's exact samples (or markers) into the larger.
    ExtendedP2 base = count_ >= other.count_ ? *this : other;
    const ExtendedP2& tail = count_ >= other.count_ ? other : *this;
    const std::size_t n =
        std::min<std::size_t>(tail.count_, tail.heights_.size());
    for (std::size_t i = 0; i < n; ++i) {
      base.add(tail.heights_[i]);
    }
    *this = std::move(base);
    return;
  }
  // Both sides are estimating: count-weighted average of marker heights
  // (markers track the same desired quantiles on both sides), summed
  // positions. Deterministic for a fixed merge order.
  const auto wa = static_cast<double>(count_);
  const auto wb = static_cast<double>(other.count_);
  for (std::size_t i = 0; i < m; ++i) {
    heights_[i] = (heights_[i] * wa + other.heights_[i] * wb) / (wa + wb);
    positions_[i] += other.positions_[i];
  }
  heights_[0] = std::min(heights_[0], other.heights_[0]);
  heights_[m - 1] = std::max(heights_[m - 1], other.heights_[m - 1]);
  std::sort(heights_.begin(), heights_.end());
  count_ += other.count_;
}

double ExtendedP2::estimate(std::size_t probe_index) const {
  CGC_CHECK(probe_index < probes_.size());
  const std::size_t m = heights_.size();
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < m) {
    // Exact during warm-up: order statistics of what we have.
    std::vector<double> sorted(heights_.begin(),
                               heights_.begin() +
                                   static_cast<std::ptrdiff_t>(count_));
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(probes_[probe_index] * static_cast<double>(count_)));
    return sorted[std::min(sorted.size() - 1,
                           rank == 0 ? 0 : rank - 1)];
  }
  return heights_[2 * (probe_index + 1)];
}

void ExtendedP2::append_state(std::string* out) const {
  append_pod(out, count_);
  for (const double p : probes_) {
    append_pod(out, p);
  }
  for (const double h : heights_) {
    append_pod(out, h);
  }
  for (const double p : positions_) {
    append_pod(out, p);
  }
}

}  // namespace cgc::stream
