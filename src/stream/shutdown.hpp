// Cooperative shutdown flag for the streaming daemon.
//
// cgcd must never lose the open window to a SIGTERM/SIGINT: the
// handlers here only set an async-signal-safe flag, and the ingest
// loops (read_event_stream, replay_events) poll it between batches.
// When the flag is up the daemon stops ingesting, closes and spills
// the current window through the normal flush path, stamps
// `"interrupted": true` into the summary JSON, and exits cleanly —
// the spill directory stays verifiable by `cgc_fsck --spill`.
#pragma once

namespace cgc::stream {

/// Installs SIGTERM/SIGINT handlers that call request_shutdown().
/// Idempotent; call once near the top of main().
void install_shutdown_handlers();

/// Raises the shutdown flag (what the signal handlers do; also
/// callable directly, e.g. from tests).
void request_shutdown();

/// True once a shutdown has been requested.
bool shutdown_requested();

/// Lowers the flag (tests only — a real daemon exits instead).
void clear_shutdown();

}  // namespace cgc::stream
