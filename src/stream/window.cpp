#include "stream/window.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <utility>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace cgc::stream {

namespace {

template <typename T>
void append_pod(std::string* out, const T& value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out->append(bytes, sizeof(T));
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t task_key(const trace::TaskEvent& event) {
  return (static_cast<std::uint64_t>(event.job_id) << 32) ^
         static_cast<std::uint32_t>(event.task_index);
}

/// JSON fragment for one StreamingEcdf: summary quantiles plus plot
/// points. Doubles are streamed at 12 significant digits — more than
/// the CI tolerance needs, few enough to keep query output small.
void write_sketch_json(std::ostream& out, const StreamingEcdf& sketch,
                       std::size_t max_points) {
  out << "{\"count\": " << sketch.count()
      << ", \"relative_error\": " << sketch.relative_error()
      << ", \"min\": " << sketch.min() << ", \"max\": " << sketch.max()
      << ", \"mean\": " << sketch.mean()
      << ", \"p50\": " << sketch.quantile(0.50)
      << ", \"p90\": " << sketch.quantile(0.90)
      << ", \"p99\": " << sketch.quantile(0.99) << ", \"points\": [";
  const auto points = sketch.plot_points(max_points);
  const char* sep = "";
  for (const auto& [value, f] : points) {
    out << sep << "[" << value << ", " << f << "]";
    sep = ", ";
  }
  out << "]}";
}

}  // namespace

std::uint64_t event_fault_key(const trace::TaskEvent& event) {
  std::uint64_t h = splitmix64(static_cast<std::uint64_t>(event.time));
  h = splitmix64(h ^ static_cast<std::uint64_t>(event.job_id));
  h = splitmix64(h ^ static_cast<std::uint32_t>(event.task_index));
  h = splitmix64(h ^ ((static_cast<std::uint64_t>(event.type) << 8) |
                      event.priority));
  return h;
}

void StreamHealth::merge(const StreamHealth& other) {
  late_dropped += other.late_dropped;
  late_absorbed += other.late_absorbed;
  faults_dropped += other.faults_dropped;
  faults_duplicated += other.faults_duplicated;
  parse_bad_lines += other.parse_bad_lines;
}

// ---------------------------------------------------------------------------
// WindowStats
// ---------------------------------------------------------------------------

WindowStats::WindowStats(const WindowConfig& config)
    : job_length(config.relative_error),
      task_length(config.relative_error),
      submit_gap(config.relative_error),
      host_load(config.relative_error),
      rate_bins(config.rate_bins, 0) {}

double WindowStats::noise_dispersion() const {
  if (rate_bins.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const std::int64_t c : rate_bins) {
    sum += static_cast<double>(c);
  }
  if (sum == 0.0) {
    return 0.0;
  }
  const double mean = sum / static_cast<double>(rate_bins.size());
  double m2 = 0.0;
  for (const std::int64_t c : rate_bins) {
    const double d = static_cast<double>(c) - mean;
    m2 += d * d;
  }
  const double variance = m2 / static_cast<double>(rate_bins.size());
  return variance / mean;
}

double WindowStats::noise_cv() const {
  if (rate_bins.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const std::int64_t c : rate_bins) {
    sum += static_cast<double>(c);
  }
  if (sum == 0.0) {
    return 0.0;
  }
  const double mean = sum / static_cast<double>(rate_bins.size());
  double m2 = 0.0;
  for (const std::int64_t c : rate_bins) {
    const double d = static_cast<double>(c) - mean;
    m2 += d * d;
  }
  return std::sqrt(m2 / static_cast<double>(rate_bins.size())) / mean;
}

void WindowStats::append_state(std::string* out) const {
  CGC_CHECK(out != nullptr);
  append_pod(out, index);
  append_pod(out, start);
  append_pod(out, end);
  events.append_state(out);
  job_length.append_state(out);
  task_length.append_state(out);
  submit_gap.append_state(out);
  submit_gap_moments.append_state(out);
  job_length_probe.append_state(out);
  host_load.append_state(out);
  append_pod(out, static_cast<std::uint64_t>(rate_bins.size()));
  for (const std::int64_t c : rate_bins) {
    append_pod(out, c);
  }
  append_pod(out, pending_at_close);
  append_pod(out, running_at_close);
  append_pod(out, hosts_seen);
}

void WindowStats::write_json(std::ostream& out,
                             const std::string& metric) const {
  const auto previous_precision = out.precision(12);
  const bool all = metric == "all";
  out << "{\"window\": {\"index\": " << index << ", \"start\": " << start
      << ", \"end\": " << end << ", \"closed\": " << (closed ? "true" : "false")
      << ", \"events\": " << events.total() << "}";
  if (all || metric == "priority_mix") {
    const std::int64_t submits = events.total(trace::TaskEventType::kSubmit);
    out << ",\n \"priority_mix\": {\"submits\": " << submits << ", \"bands\": {";
    const char* sep = "";
    for (std::size_t b = 0; b < trace::kNumBands; ++b) {
      const auto band = static_cast<trace::PriorityBand>(b);
      const std::int64_t n = events.submits_in_band(band);
      const double frac =
          submits == 0 ? 0.0
                       : static_cast<double>(n) / static_cast<double>(submits);
      out << sep << "\"" << trace::band_name(band) << "\": " << frac;
      sep = ", ";
    }
    out << "}, \"per_priority\": [";
    sep = "";
    for (int p = trace::kMinPriority; p <= trace::kMaxPriority; ++p) {
      out << sep << events.count(p, trace::TaskEventType::kSubmit);
      sep = ", ";
    }
    out << "]}";
  }
  if (all || metric == "job_cdf") {
    out << ",\n \"job_cdf\": ";
    write_sketch_json(out, job_length, 128);
    out << ",\n \"job_probe\": {";
    const char* sep = "";
    for (std::size_t i = 0; i < job_length_probe.probes().size(); ++i) {
      out << sep << "\"p" << static_cast<int>(job_length_probe.probes()[i] * 100)
          << "\": " << job_length_probe.estimate(i);
      sep = ", ";
    }
    out << "}";
  }
  if (all || metric == "task_cdf") {
    out << ",\n \"task_cdf\": ";
    write_sketch_json(out, task_length, 128);
  }
  if (all || metric == "submission") {
    out << ",\n \"submission\": {\"count\": " << submit_gap.count()
        << ", \"mean_gap_s\": " << submit_gap_moments.mean()
        << ", \"stddev_s\": " << submit_gap_moments.stddev()
        << ", \"min_s\": " << submit_gap_moments.min()
        << ", \"max_s\": " << submit_gap_moments.max()
        << ", \"p50\": " << submit_gap.quantile(0.50)
        << ", \"p90\": " << submit_gap.quantile(0.90)
        << ", \"p99\": " << submit_gap.quantile(0.99) << "}";
  }
  if (all || metric == "host_load") {
    out << ",\n \"host_load\": {\"hosts\": " << hosts_seen << ", \"sketch\": ";
    write_sketch_json(out, host_load, 128);
    out << "}";
  }
  if (all || metric == "queue") {
    const std::int64_t terminals = events.terminals();
    const std::int64_t abnormal = events.abnormal_terminals();
    out << ",\n \"queue\": {\"pending\": " << pending_at_close
        << ", \"running\": " << running_at_close
        << ", \"submits\": " << events.total(trace::TaskEventType::kSubmit)
        << ", \"schedules\": " << events.total(trace::TaskEventType::kSchedule)
        << ", \"terminals\": " << terminals << ", \"abnormal\": " << abnormal
        << ", \"abnormal_fraction\": "
        << (terminals == 0 ? 0.0
                           : static_cast<double>(abnormal) /
                                 static_cast<double>(terminals))
        << "}";
  }
  if (all || metric == "noise") {
    std::int64_t submits = 0;
    for (const std::int64_t c : rate_bins) {
      submits += c;
    }
    out << ",\n \"noise\": {\"bins\": " << rate_bins.size()
        << ", \"submits\": " << submits << ", \"mean_per_bin\": "
        << (rate_bins.empty()
                ? 0.0
                : static_cast<double>(submits) /
                      static_cast<double>(rate_bins.size()))
        << ", \"dispersion\": " << noise_dispersion()
        << ", \"cv\": " << noise_cv() << "}";
  }
  out << "}\n";
  out.precision(previous_precision);
}

// ---------------------------------------------------------------------------
// SlidingWindow
// ---------------------------------------------------------------------------

/// Count-only deltas one parallel chunk accumulates for one window.
struct SlidingWindow::WindowDelta {
  CounterBank bank;
  std::vector<std::int64_t> bins;
};

/// One chunk's (or the merged batch's) parallel-phase result. The map is
/// ordered so the fold over windows is canonical.
struct SlidingWindow::BatchPartial {
  std::map<std::int64_t, WindowDelta> windows;
};

SlidingWindow::SlidingWindow(WindowConfig config) : config_(config) {
  if (config_.slide == 0) {
    config_.slide = config_.width;
  }
  CGC_CHECK_MSG(config_.width > 0, "window width must be positive");
  CGC_CHECK_MSG(config_.slide > 0 && config_.width % config_.slide == 0,
                "window width must be a multiple of the slide");
  CGC_CHECK_MSG(config_.watermark_lag >= 0, "watermark lag must be >= 0");
  CGC_CHECK_MSG(config_.rate_bins > 0, "need at least one rate bin");
  // Validates the sketch error bound eagerly (same check as the sketches).
  (void)stats::bucketing::log_gamma_for_error(config_.relative_error);
}

std::int64_t SlidingWindow::first_window_of(TimeSec t) const {
  const std::int64_t last = window_of(t);
  const std::int64_t span = config_.width / config_.slide;
  return std::max<std::int64_t>(0, last - span + 1);
}

TimeSec SlidingWindow::watermark() const {
  if (!any_event_) {
    return std::numeric_limits<TimeSec>::min();
  }
  return max_event_time_ - config_.watermark_lag;
}

WindowStats& SlidingWindow::open_window(std::int64_t index) {
  if (!any_open_) {
    any_open_ = true;
    first_open_index_ = index;
  }
  CGC_CHECK_MSG(index >= first_open_index_,
                "open_window called for a closed window");
  while (first_open_index_ + static_cast<std::int64_t>(open_.size()) <=
         index) {
    const std::int64_t i =
        first_open_index_ + static_cast<std::int64_t>(open_.size());
    WindowStats ws(config_);
    ws.index = i;
    ws.start = i * config_.slide;
    ws.end = ws.start + config_.width;
    open_.push_back(std::move(ws));
    if (config_.keep_events) {
      open_events_.emplace_back();
    }
  }
  return open_[static_cast<std::size_t>(index - first_open_index_)];
}

void SlidingWindow::ingest(std::span<const trace::TaskEvent> events) {
  // Fault filter: deterministic per-event drop/duplicate injection,
  // keyed by a stable event hash so the damage set is identical at any
  // thread count and batching.
  std::vector<trace::TaskEvent> filtered;
  if (fault::armed()) {
    filtered.reserve(events.size());
    for (const trace::TaskEvent& event : events) {
      const std::uint64_t key = event_fault_key(event);
      if (fault::inject("stream.drop", key)) {
        ++health_.faults_dropped;
        continue;
      }
      filtered.push_back(event);
      if (fault::inject("stream.dup", key)) {
        ++health_.faults_duplicated;
        filtered.push_back(event);
      }
    }
    events = filtered;
  }
  if (events.empty()) {
    close_ready_windows();
    return;
  }
  events_ingested_ += events.size();
  if (obs::metrics_enabled()) {
    static obs::Counter& ingested = obs::counter("stream.events_ingested");
    ingested.add(events.size());
  }

  // Parallel phase: per-chunk CounterBank / rate-bin accumulators over
  // deterministic chunk boundaries, folded in chunk index order. All
  // integer adds — bit-identical at any CGC_THREADS.
  const TimeSec slide = config_.slide;
  const TimeSec width = config_.width;
  const std::size_t rate_bins = config_.rate_bins;
  BatchPartial batch = exec::parallel_reduce<BatchPartial>(
      0, events.size(), BatchPartial{},
      [&](std::size_t lo, std::size_t hi) {
        BatchPartial partial;
        for (std::size_t i = lo; i < hi; ++i) {
          const trace::TaskEvent& event = events[i];
          const TimeSec t = std::max<TimeSec>(0, event.time);
          const std::int64_t last = t / slide;
          const std::int64_t span_windows = width / slide;
          const std::int64_t first =
              std::max<std::int64_t>(0, last - span_windows + 1);
          for (std::int64_t w = first; w <= last; ++w) {
            WindowDelta& delta = partial.windows[w];
            delta.bank.add(event.priority, event.type);
            if (event.type == trace::TaskEventType::kSubmit) {
              if (delta.bins.empty()) {
                delta.bins.assign(rate_bins, 0);
              }
              const TimeSec rel = t - w * slide;
              const auto bin = static_cast<std::size_t>(std::min<std::int64_t>(
                  static_cast<std::int64_t>(rate_bins) - 1,
                  rel * static_cast<std::int64_t>(rate_bins) / width));
              ++delta.bins[bin];
            }
          }
        }
        return partial;
      },
      [](BatchPartial& acc, BatchPartial&& partial) {
        for (auto& [w, delta] : partial.windows) {
          WindowDelta& into = acc.windows[w];
          into.bank.merge(delta.bank);
          if (!delta.bins.empty()) {
            if (into.bins.empty()) {
              into.bins = std::move(delta.bins);
            } else {
              for (std::size_t b = 0; b < into.bins.size(); ++b) {
                into.bins[b] += delta.bins[b];
              }
            }
          }
        }
      });

  // Apply per-window deltas. A window that closed in a *previous* batch
  // makes its share of the delta late (per window-assignment — with
  // overlapping windows one event can be late for its oldest window and
  // on time for the rest).
  for (auto& [w, delta] : batch.windows) {
    if (any_open_ && w < first_open_index_) {
      const auto n = static_cast<std::uint64_t>(delta.bank.total());
      if (config_.late_policy == LatePolicy::kAbsorbOldest) {
        health_.late_absorbed += n;
        // Reassigned, not lost: counts land in the oldest open window
        // (its rate bins are left alone — noise reflects on-time
        // arrivals only).
        open_window(first_open_index_).events.merge(delta.bank);
      } else {
        health_.late_dropped += n;
        if (obs::metrics_enabled()) {
          static obs::Counter& late = obs::counter("stream.late_dropped");
          late.add(n);
        }
      }
      continue;
    }
    WindowStats& ws = open_window(w);
    ws.events.merge(delta.bank);
    if (!delta.bins.empty()) {
      for (std::size_t b = 0; b < ws.rate_bins.size(); ++b) {
        ws.rate_bins[b] += delta.bins[b];
      }
    }
  }

  // Sequential phase: the stateful task/job/host bookkeeping, in
  // arrival order. The watermark advances per event and windows close
  // the moment it passes their end, so the queue/host snapshot in a
  // closed window reflects the stream state at that point — not the
  // end of the batch.
  for (const trace::TaskEvent& event : events) {
    const TimeSec t = std::max<TimeSec>(0, event.time);
    if (!any_event_ || t > max_event_time_) {
      max_event_time_ = t;
      any_event_ = true;
      close_ready_windows();
    }
    apply_sequential(event);
  }
  if (obs::metrics_enabled()) {
    static obs::Gauge& open_windows = obs::gauge("stream.open_windows");
    open_windows.set(static_cast<std::int64_t>(open_.size()));
  }
}

void SlidingWindow::add_sample_to_windows(TimeSec t,
                                          StreamingEcdf WindowStats::*sketch,
                                          double value) {
  const std::int64_t last = window_of(t);
  for (std::int64_t w = first_window_of(t); w <= last; ++w) {
    if (any_open_ && w < first_open_index_) {
      continue;  // late for this window; the event counts already say so
    }
    (open_window(w).*sketch).add(value);
  }
}

void SlidingWindow::apply_sequential(const trace::TaskEvent& event) {
  const TimeSec t = std::max<TimeSec>(0, event.time);
  if (config_.keep_events) {
    const std::int64_t last = window_of(t);
    for (std::int64_t w = first_window_of(t); w <= last; ++w) {
      if (any_open_ && w < first_open_index_) {
        continue;
      }
      open_window(w);  // ensures the deques cover w
      open_events_[static_cast<std::size_t>(w - first_open_index_)].push_back(
          event);
    }
  }
  switch (event.type) {
    case trace::TaskEventType::kSubmit: {
      ++pending_;
      auto [it, inserted] = jobs_.try_emplace(event.job_id);
      if (inserted) {
        it->second.first_submit = t;
        if (last_job_submit_ >= 0) {
          const auto gap = static_cast<double>(
              std::max<TimeSec>(0, t - last_job_submit_));
          const std::int64_t last = window_of(t);
          for (std::int64_t w = first_window_of(t); w <= last; ++w) {
            if (any_open_ && w < first_open_index_) {
              continue;
            }
            WindowStats& ws = open_window(w);
            ws.submit_gap.add(gap);
            ws.submit_gap_moments.add(gap);
          }
        }
        last_job_submit_ = t;
      }
      ++it->second.live;
      break;
    }
    case trace::TaskEventType::kSchedule: {
      pending_ = std::max<std::int64_t>(0, pending_ - 1);
      ++running_;
      running_tasks_[task_key(event)] = TaskRun{t, event.machine_id};
      if (event.machine_id >= 0) {
        ++host_running_[event.machine_id];
      }
      break;
    }
    case trace::TaskEventType::kUpdate:
      break;
    default: {  // terminal: EVICT/FAIL/FINISH/KILL/LOST
      const auto it = running_tasks_.find(task_key(event));
      if (it != running_tasks_.end()) {
        running_ = std::max<std::int64_t>(0, running_ - 1);
        add_sample_to_windows(
            t, &WindowStats::task_length,
            static_cast<double>(
                std::max<TimeSec>(0, t - it->second.schedule_time)));
        if (it->second.machine_id >= 0) {
          auto host = host_running_.find(it->second.machine_id);
          if (host != host_running_.end() && host->second > 0) {
            --host->second;
          }
        }
        running_tasks_.erase(it);
      } else {
        // Terminal without a live placement: the task died from pending
        // (or its SCHEDULE was lost); no run-duration sample.
        pending_ = std::max<std::int64_t>(0, pending_ - 1);
      }
      auto job = jobs_.find(event.job_id);
      if (job != jobs_.end() && job->second.live > 0) {
        if (--job->second.live == 0) {
          const auto length = static_cast<double>(
              std::max<TimeSec>(0, t - job->second.first_submit));
          const std::int64_t last = window_of(t);
          for (std::int64_t w = first_window_of(t); w <= last; ++w) {
            if (any_open_ && w < first_open_index_) {
              continue;
            }
            WindowStats& ws = open_window(w);
            ws.job_length.add(length);
            ws.job_length_probe.add(length);
          }
        }
      }
      break;
    }
  }
}

void SlidingWindow::close_ready_windows() {
  const TimeSec wm = watermark();
  while (any_open_ && !open_.empty() && open_.front().end <= wm) {
    close_oldest();
  }
}

void SlidingWindow::close_oldest() {
  CGC_CHECK(!open_.empty());
  const std::uint64_t t0 = obs::metrics_enabled() ? obs::now_ns() : 0;
  WindowStats ws = std::move(open_.front());
  open_.pop_front();
  ++first_open_index_;
  std::vector<trace::TaskEvent> events;
  if (config_.keep_events) {
    events = std::move(open_events_.front());
    open_events_.pop_front();
  }

  // Snapshot queue and host state. Gauges are as-of the close, i.e. the
  // last ingest batch boundary at or past the window end — snapshot
  // granularity is the batch, documented in DESIGN §12.
  ws.pending_at_close = pending_;
  ws.running_at_close = running_;
  std::int64_t hosts = 0;
  for (auto it = host_running_.begin(); it != host_running_.end();) {
    if (it->second > 0) {
      ++hosts;
      ws.host_load.add_n(static_cast<double>(it->second), 1);
      ++it;
    } else {
      it = host_running_.erase(it);  // prune idle hosts as we go
    }
  }
  ws.hosts_seen = hosts;
  ws.closed = true;

  ++windows_closed_;
  if (spill_) {
    spill_(ws, events);
  }
  closed_.push_back(std::move(ws));
  while (closed_.size() > config_.max_closed_retained) {
    closed_.pop_front();
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& closed_count = obs::counter("stream.windows_closed");
    closed_count.add(1);
    static obs::Histogram& close_ns =
        obs::histogram("stream.window_close_ns");
    close_ns.observe(obs::now_ns() - t0);
  }
}

void SlidingWindow::flush() {
  while (!open_.empty()) {
    close_oldest();
  }
}

const WindowStats* SlidingWindow::latest() const {
  return closed_.empty() ? nullptr : &closed_.back();
}

const WindowStats* SlidingWindow::find(std::int64_t index) const {
  if (!closed_.empty() && index >= closed_.front().index &&
      index <= closed_.back().index) {
    return &closed_[static_cast<std::size_t>(index - closed_.front().index)];
  }
  if (any_open_ && index >= first_open_index_ &&
      index < first_open_index_ + static_cast<std::int64_t>(open_.size())) {
    return &open_[static_cast<std::size_t>(index - first_open_index_)];
  }
  return nullptr;
}

std::vector<const WindowStats*> SlidingWindow::open() const {
  std::vector<const WindowStats*> out;
  out.reserve(open_.size());
  for (const WindowStats& ws : open_) {
    out.push_back(&ws);
  }
  return out;
}

}  // namespace cgc::stream
