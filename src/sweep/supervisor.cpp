#include "sweep/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sweep/lease.hpp"
#include "sweep/report_io.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

extern char** environ;

namespace cgc::sweep {

namespace fs = std::filesystem;

std::string shard_dir(const std::string& out_root, int index, int total) {
  return out_root + "/shards/s" + std::to_string(index) + "of" +
         std::to_string(total);
}

namespace {

/// Everything execve() needs, built with ordinary (allocating) code
/// strictly before fork(). The child between fork() and execve() only
/// touches these frozen arrays plus dup2/_exit — all async-signal-safe
/// — because the parent may hold malloc/logging locks at fork time.
struct SpawnPlan {
  std::vector<std::string> argv_store;
  std::vector<std::string> env_store;
  std::vector<char*> argv;
  std::vector<char*> envp;
  int log_fd = -1;

  void finalize() {
    argv.clear();
    envp.clear();
    for (std::string& s : argv_store) {
      argv.push_back(s.data());
    }
    argv.push_back(nullptr);
    for (std::string& s : env_store) {
      envp.push_back(s.data());
    }
    envp.push_back(nullptr);
  }
};

bool env_name_is(const char* entry, const std::string& name) {
  const std::size_t n = name.size();
  return std::strncmp(entry, name.c_str(), n) == 0 && entry[n] == '=';
}

SpawnPlan make_plan(const SupervisorConfig& config, int index,
                    int generation, const std::string& dir) {
  SpawnPlan plan;
  plan.argv_store.push_back(config.exe);
  std::vector<std::string> args = config.make_args(index);
  for (std::string& arg : args) {
    plan.argv_store.push_back(std::move(arg));
  }
  std::vector<std::string> overrides = config.extra_env;
  overrides.push_back("CGC_BENCH_OUT=" + dir);
  overrides.push_back("CGC_SWEEP_GENERATION=" + std::to_string(generation));
  for (char** e = environ; *e != nullptr; ++e) {
    bool shadowed = false;
    for (const std::string& o : overrides) {
      const std::string name = o.substr(0, o.find('='));
      if (env_name_is(*e, name)) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) {
      plan.env_store.push_back(*e);
    }
  }
  for (std::string& o : overrides) {
    plan.env_store.push_back(std::move(o));
  }
  plan.log_fd = ::open((dir + "/worker.log").c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  plan.finalize();
  return plan;
}

pid_t spawn_worker(const SpawnPlan& plan) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;  // parent (or fork failure, pid < 0)
  }
  // Child: async-signal-safe territory only.
  if (plan.log_fd >= 0) {
    ::dup2(plan.log_fd, STDOUT_FILENO);
    ::dup2(plan.log_fd, STDERR_FILENO);
  }
  ::execve(plan.argv[0], plan.argv.data(), plan.envp.data());
  // cgc-lint: allow(exit-taxonomy) 127 is the POSIX shell convention
  // for exec failure; the supervisor's waitpid leg keys on it to tell
  // "binary missing" from a worker's own taxonomy exits.
  ::_exit(127);
}

/// True when the shard's on-disk report says the sweep finished (even
/// with failed cases — that is a *result*, not a crash).
bool shard_finished(const std::string& dir) {
  SweepReport report;
  return read_report_checked(dir + "/report.json", &report) ==
             ReportReadStatus::kOk &&
         report.complete;
}

struct WorkerState {
  enum class Phase { kPending, kRunning, kDone, kExhausted };
  Phase phase = Phase::kPending;
  pid_t pid = -1;
  std::string dir;
  int spawns = 0;
  int kills = 0;
  int last_exit = 0;
  int backoff_ms = 0;
  std::uint64_t next_spawn_ns = 0;   ///< earliest respawn (monotonic)
  std::uint64_t spawn_ns = 0;        ///< last launch time
  std::uint64_t last_progress = 0;   ///< lease progress last observed
  std::uint64_t progress_ns = 0;     ///< when it last advanced
};

}  // namespace

SupervisorResult run_supervisor(const SupervisorConfig& config) {
  CGC_CHECK_MSG(config.num_shards >= 1, "--spawn needs at least 1 shard");
  CGC_CHECK_MSG(static_cast<bool>(config.make_args),
                "SupervisorConfig::make_args is required");
  const int retry_budget = std::max(0, config.retry_budget);
  std::vector<WorkerState> workers(
      static_cast<std::size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    workers[i].dir = shard_dir(config.out_root, i, config.num_shards);
    fs::create_directories(workers[i].dir);
    workers[i].backoff_ms = config.backoff_ms;
  }
  obs::Gauge* live_gauge = nullptr;
  obs::Counter* respawn_counter = nullptr;
  if (obs::metrics_enabled()) {
    live_gauge = &obs::gauge("sweep.live_workers");
    respawn_counter = &obs::counter("sweep.respawns");
  }
  SupervisorResult result;
  int live = 0;
  const std::uint64_t heartbeat_ns = static_cast<std::uint64_t>(
      config.heartbeat_timeout_sec * 1e9);

  auto launch = [&](WorkerState& w, int index) {
    const SpawnPlan plan =
        make_plan(config, index, w.spawns, w.dir);
    const pid_t pid = spawn_worker(plan);
    if (plan.log_fd >= 0) {
      ::close(plan.log_fd);
    }
    CGC_CHECK_MSG(pid > 0, "fork() failed spawning shard " +
                               std::to_string(index));
    w.pid = pid;
    w.phase = WorkerState::Phase::kRunning;
    ++w.spawns;
    w.spawn_ns = monotonic_now_ns();
    w.progress_ns = w.spawn_ns;
    w.last_progress = 0;
    ++live;
    if (live_gauge != nullptr) {
      live_gauge->set(live);
    }
    CGC_LOG(kInfo) << "sweep: shard " << index << " spawn " << w.spawns
                   << " as pid " << pid;
  };

  auto retire = [&](WorkerState& w, int index, int exit_code) {
    --live;
    if (live_gauge != nullptr) {
      live_gauge->set(live);
    }
    w.pid = -1;
    w.last_exit = exit_code;
    const bool finished = shard_finished(w.dir);
    // Conflict (2) and fatal/usage (3) exits are operator or data
    // errors a retry cannot fix; crashes and transient failures earn a
    // respawn while budget remains.
    const bool retryable = exit_code != util::kExitConflict &&
                           exit_code != util::kExitFatal && exit_code != 127;
    if (finished && exit_code >= 0 && exit_code <= 1) {
      w.phase = WorkerState::Phase::kDone;
      CGC_LOG(kInfo) << "sweep: shard " << index << " complete (exit "
                     << exit_code << ")";
      return;
    }
    const int used = w.spawns - 1;  // respawns consumed so far
    if (!retryable || used >= retry_budget) {
      w.phase = WorkerState::Phase::kExhausted;
      CGC_LOG(kWarn) << "sweep: shard " << index << " exhausted after "
                     << w.spawns << " spawn(s), last exit " << exit_code;
      return;
    }
    w.phase = WorkerState::Phase::kPending;
    w.next_spawn_ns = monotonic_now_ns() +
                      static_cast<std::uint64_t>(w.backoff_ms) * 1000000ULL;
    w.backoff_ms = std::min(w.backoff_ms * 2, config.backoff_cap_ms);
    ++result.respawns;
    if (respawn_counter != nullptr) {
      respawn_counter->add(1);
    }
    CGC_LOG(kWarn) << "sweep: shard " << index << " died (exit "
                   << exit_code << "); respawn " << w.spawns << "/"
                   << retry_budget + 1 << " after backoff";
  };

  for (;;) {
    bool any_active = false;
    const std::uint64_t now = monotonic_now_ns();
    for (int i = 0; i < config.num_shards; ++i) {
      WorkerState& w = workers[i];
      switch (w.phase) {
        case WorkerState::Phase::kPending:
          any_active = true;
          if (now >= w.next_spawn_ns) {
            // A shard whose previous life already finished the sweep
            // (killed after the final flush) needs no new process.
            if (w.spawns > 0 && shard_finished(w.dir)) {
              w.phase = WorkerState::Phase::kDone;
              break;
            }
            launch(w, i);
          }
          break;
        case WorkerState::Phase::kRunning: {
          any_active = true;
          int status = 0;
          const pid_t got = ::waitpid(w.pid, &status, WNOHANG);
          if (got == w.pid) {
            const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                             : WIFSIGNALED(status)
                                 ? -WTERMSIG(status)
                                 : -1;
            retire(w, i, code);
            break;
          }
          // Heartbeat: the worker refreshes its lease with a progress
          // counter; silence past the timeout means it is wedged.
          const LeaseInfo lease = read_lease(w.dir + "/worker.lease");
          if (lease.exists && lease.progress != w.last_progress) {
            w.last_progress = lease.progress;
            w.progress_ns = now;
          }
          if (heartbeat_ns > 0 && now - w.progress_ns > heartbeat_ns) {
            CGC_LOG(kWarn) << "sweep: shard " << i << " (pid " << w.pid
                           << ") heartbeat silent; killing";
            ++w.kills;
            ::kill(w.pid, SIGKILL);
            int st = 0;
            ::waitpid(w.pid, &st, 0);
            retire(w, i, -SIGKILL);
          }
          break;
        }
        case WorkerState::Phase::kDone:
        case WorkerState::Phase::kExhausted:
          break;
      }
    }
    if (!any_active) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }

  for (int i = 0; i < config.num_shards; ++i) {
    const WorkerState& w = workers[i];
    ShardStatus status;
    status.index = i;
    status.dir = w.dir;
    status.outcome = w.phase == WorkerState::Phase::kDone
                         ? ShardOutcome::kComplete
                         : ShardOutcome::kExhausted;
    status.spawns = w.spawns;
    status.kills = w.kills;
    status.last_exit = w.last_exit;
    result.shards.push_back(std::move(status));
  }
  return result;
}

}  // namespace cgc::sweep
