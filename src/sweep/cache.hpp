// Shared CGCS trace-memo cache with lease-based single-writer locking.
//
// Concurrent shard workers want the same standard traces (the bench
// memo's google/grid workloads and host-loads). Without coordination,
// N shards either regenerate the same trace N times or — worse — race
// non-atomic writes into the same cache path and tear each other's
// files. This layer makes the on-disk memo safe to share:
//
//   entry file   <base>.cgcs            published atomically (rename)
//   builder lock <base>.cgcs.lock       flock lease (see lease.hpp)
//   staging      <base>.cgcs.tmp.<pid>  never read by anyone else
//
// Readers only ever see the published file or nothing. A builder that
// dies mid-write leaves staging litter and a free lock; the next
// arrival acquires the lock, sweeps the litter, and builds. Entries
// are keyed by a hash of the generator's canonical config string, so a
// config change is a new entry rather than a silently stale hit.
//
// Determinism note: after publishing, the builder *reloads* the trace
// from the published file and returns that. Every process — builder or
// reader — therefore observes the same bytes, which is what lets a
// sharded sweep's merged .dat outputs be byte-identical to a
// single-process run (CGCS round-trips are lossless; see store tests).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "store/reader.hpp"
#include "trace/trace_set.hpp"

namespace cgc::sweep {

/// Stable 64-bit hash of a generator's canonical config string
/// (same FNV-1a/splitmix64 construction as the case partitioner).
std::uint64_t config_hash(std::string_view canonical_config);

/// config_hash() as 16 lowercase hex digits — the cache-key suffix.
std::string config_hash_hex(std::string_view canonical_config);

/// One load-or-build through the shared cache.
struct CacheResult {
  trace::TraceSet trace;
  bool built = false;      ///< this process ran the builder
  bool waited = false;     ///< blocked on another builder's lock
  store::DamageReport damage;  ///< damage absorbed on a degraded load
};

/// Loads `<base>.cgcs`, or builds it (single writer) and loads the
/// published result. `build` runs at most once per process and only
/// under the builder lock. Unreadable cache files are discarded and
/// rebuilt; chunk-level damage is absorbed (kQuarantine) and reported
/// in CacheResult::damage. Throws cgc::util::TransientError when
/// another builder holds the lock for longer than
/// CGC_CACHE_WAIT (seconds, default 600).
CacheResult load_or_build_cgcs(const std::string& base,
                               const std::function<trace::TraceSet()>& build);

/// One problem verify_cache() found.
struct CacheIssue {
  std::string path;
  std::string what;
  bool fatal = false;  ///< entry unusable (vs. damaged-but-degradable)
};

/// Result of a cache-directory audit (cgc_fsck --cache).
struct CacheAudit {
  std::size_t entries = 0;        ///< .cgcs files seen
  std::size_t entries_clean = 0;  ///< ... with every chunk verifying
  std::size_t stale_locks = 0;    ///< .lock files with a dead holder
  std::size_t tmp_litter = 0;     ///< orphaned staging files
  std::vector<CacheIssue> issues;

  bool clean() const { return issues.empty(); }
};

/// Audits a shared cache dir: verifies every chunk of every .cgcs
/// entry, flags staging litter and builder locks whose holder died.
/// Live locks (builder still running) are reported as informational
/// issues only when `flag_live_locks` is set.
CacheAudit verify_cache(const std::string& dir, bool flag_live_locks = false);

}  // namespace cgc::sweep
