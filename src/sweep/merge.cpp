#include "sweep/merge.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sweep/partition.hpp"
#include "util/check.hpp"

namespace cgc::sweep {

namespace fs = std::filesystem;

namespace {

/// Strips the volatile per-run fields from a record. What survives is
/// exactly the information two equivalent sweeps must agree on: case
/// identity, verdict, error text, and output digests.
CaseRecord canonical_record(const CaseRecord& r) {
  CaseRecord out;
  out.id = r.id;
  out.binary = r.binary;
  out.kind = r.kind;
  out.title = r.title;
  out.ok = r.ok;
  out.error = r.error;
  out.outputs = r.outputs;
  std::sort(out.outputs.begin(), out.outputs.end(),
            [](const CaseOutput& a, const CaseOutput& b) {
              return a.file < b.file;
            });
  // seconds/perf/attempts/resumed stay at their zero defaults.
  return out;
}

CaseRecord synthesized_failure(const CaseMeta& meta,
                               const std::string& error) {
  CaseRecord r;
  r.id = meta.id;
  r.binary = meta.binary;
  r.kind = meta.kind;
  r.title = meta.title;
  r.ok = false;
  r.error = error;
  return r;
}

}  // namespace

SweepReport canonicalize(const SweepReport& report,
                         const std::vector<CaseMeta>& expected) {
  std::map<std::string, const CaseRecord*> by_id;
  for (const CaseRecord& r : report.cases) {
    by_id[r.id] = &r;
  }
  SweepReport out;
  out.fast_mode = report.fast_mode;
  out.complete = true;
  out.merged = true;
  out.chunks_quarantined = report.chunks_quarantined;
  out.rows_lost = report.rows_lost;
  out.values_defaulted = report.values_defaulted;
  out.parse_lines_bad = report.parse_lines_bad;
  for (const CaseMeta& meta : expected) {
    const auto it = by_id.find(meta.id);
    if (it != by_id.end()) {
      out.cases.push_back(canonical_record(*it->second));
    } else {
      out.cases.push_back(
          synthesized_failure(meta, "no shard completed this case"));
    }
  }
  return out;
}

MergeResult merge_shards(const std::vector<std::string>& shard_dirs,
                         const MergeOptions& options) {
  CGC_CHECK_MSG(!shard_dirs.empty(), "merge needs at least one shard dir");
  CGC_CHECK_MSG(!options.out_dir.empty(), "merge needs an output dir");
  MergeResult result;

  // ---- Pass 1: read + classify every shard report. --------------------
  struct ShardInput {
    std::string dir;
    SweepReport report;
    bool usable = false;
  };
  std::vector<ShardInput> inputs;
  bool fast_mode = false;
  bool saw_usable = false;
  for (std::size_t d = 0; d < shard_dirs.size(); ++d) {
    ShardInput input;
    input.dir = shard_dirs[d];
    const std::string path = input.dir + "/report.json";
    ReportReadStatus status = ReportReadStatus::kOk;
    // Deterministic stand-in for reading a shard dir mid-write (e.g.
    // merging while a worker is still flushing): the report looks torn.
    if (fault::inject("sweep.torn_merge_input", d)) {
      status = ReportReadStatus::kCorrupt;
    } else {
      status = read_report_checked(path, &input.report);
    }
    if (status != ReportReadStatus::kOk || !input.report.complete) {
      const std::string what =
          status == ReportReadStatus::kMissing ? "no report.json"
          : status == ReportReadStatus::kCorrupt
              ? "torn/corrupt report.json"
              : "incomplete sweep (complete: false)";
      if (!options.allow_partial) {
        throw util::TransientError(
            "shard dir " + input.dir + ": " + what +
            " — resumable: rerun that shard with --resume, then merge "
            "again");
      }
      result.notes.push_back("shard dir " + input.dir + ": " + what +
                             "; its cases degrade to failed");
      inputs.push_back(std::move(input));
      continue;
    }
    if (input.report.merged) {
      throw util::DataError("shard dir " + input.dir +
                            " holds an already-merged report — merging "
                            "merges is not meaningful");
    }
    // Partition-consistency check: every case a stamped shard claims
    // must actually hash to that shard. A violation means the dirs come
    // from different partitions (or a different hash), and fusing them
    // could silently drop or double cases.
    if (input.report.shard_total > 1) {
      for (const CaseRecord& r : input.report.cases) {
        const int want = shard_of(r.id, input.report.shard_total);
        if (want != input.report.shard_index) {
          throw util::DataError(
              "partition mismatch: shard dir " + input.dir + " (stamp " +
              std::to_string(input.report.shard_index) + "/" +
              std::to_string(input.report.shard_total) + ") claims case " +
              r.id + ", which hashes to shard " + std::to_string(want));
        }
      }
    }
    input.usable = true;
    if (!saw_usable) {
      fast_mode = input.report.fast_mode;
      saw_usable = true;
    } else if (input.report.fast_mode != fast_mode) {
      throw util::DataError("shard dir " + input.dir +
                            " was swept at a different scale (fast_mode "
                            "mismatch) — outputs are not mergeable");
    }
    inputs.push_back(std::move(input));
  }

  // ---- Pass 2: claim cases, detecting overlap and impostors. ----------
  std::set<std::string> expected_ids;
  for (const CaseMeta& meta : options.expected) {
    expected_ids.insert(meta.id);
  }
  struct Claim {
    const ShardInput* shard = nullptr;
    const CaseRecord* record = nullptr;
  };
  std::map<std::string, Claim> claims;
  SweepReport fused;  // header totals accumulate; cases fill below
  for (const ShardInput& input : inputs) {
    if (!input.usable) {
      continue;
    }
    fused.chunks_quarantined += input.report.chunks_quarantined;
    fused.rows_lost += input.report.rows_lost;
    fused.values_defaulted += input.report.values_defaulted;
    fused.parse_lines_bad += input.report.parse_lines_bad;
    for (const CaseRecord& r : input.report.cases) {
      if (expected_ids.find(r.id) == expected_ids.end()) {
        throw util::DataError("shard dir " + input.dir +
                              " reports unknown case " + r.id +
                              " — shard set does not match this sweep");
      }
      const auto [it, inserted] = claims.emplace(r.id, Claim{&input, &r});
      if (!inserted) {
        throw util::DataError(
            "case " + r.id + " claimed by both " + it->second.shard->dir +
            " and " + input.dir + " — overlapping shards");
      }
    }
  }

  // ---- Pass 3: verify digests and materialize outputs. ----------------
  fs::create_directories(options.out_dir);
  struct Placed {
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    std::string from_case;
  };
  std::map<std::string, Placed> placed;
  for (const auto& [id, claim] : claims) {
    if (!claim.record->ok) {
      continue;  // failed cases carry no trusted outputs
    }
    for (const CaseOutput& o : claim.record->outputs) {
      const std::string src = claim.shard->dir + "/" + o.file;
      std::uint32_t crc = 0;
      std::uint64_t size = 0;
      if (!file_crc32(src, &crc, &size)) {
        throw util::DataError("case " + id + ": recorded output " + src +
                              " is unreadable — shard dir damaged");
      }
      if (crc != o.crc || size != o.size) {
        throw util::DataError(
            "digest disagreement on " + src + " (case " + id +
            "): recorded crc32 " + std::to_string(o.crc) + "/size " +
            std::to_string(o.size) + ", actual " + std::to_string(crc) +
            "/" + std::to_string(size));
      }
      const auto it = placed.find(o.file);
      if (it != placed.end()) {
        if (it->second.crc != crc || it->second.size != size) {
          throw util::DataError(
              "output file " + o.file + " produced with different "
              "content by case " + it->second.from_case + " and case " +
              id + " — digest disagreement between shards");
        }
        continue;  // identical duplicate (shared output) — keep first
      }
      const fs::path dest = fs::path(options.out_dir) / o.file;
      fs::create_directories(dest.parent_path());
      fs::copy_file(src, dest, fs::copy_options::overwrite_existing);
      placed.emplace(o.file, Placed{crc, size, id});
      ++result.files_copied;
    }
  }

  // ---- Pass 4: canonical report, written last (the commit marker). ----
  fused.fast_mode = fast_mode;
  for (const auto& [id, claim] : claims) {
    fused.cases.push_back(*claim.record);
    (void)id;
  }
  SweepReport merged = canonicalize(fused, options.expected);
  for (const CaseRecord& r : merged.cases) {
    if (r.ok) {
      ++result.cases_ok;
    } else if (claims.find(r.id) != claims.end()) {
      ++result.cases_failed;
    } else {
      ++result.cases_missing;
      if (!options.allow_partial) {
        throw util::TransientError(
            "case " + r.id + " (shard " +
            std::to_string(shard_of(
                r.id, std::max(1, static_cast<int>(shard_dirs.size())))) +
            " of a " + std::to_string(shard_dirs.size()) +
            "-way split) appears in no shard dir — resumable: run the "
            "missing shard, then merge again");
      }
    }
  }
  write_report(merged, options.out_dir + "/report.json");
  result.report = std::move(merged);
  if (obs::metrics_enabled()) {
    static obs::Counter& cases = obs::counter("sweep.cases_merged");
    static obs::Counter& files = obs::counter("sweep.files_merged");
    cases.add(result.report.cases.size());
    files.add(result.files_copied);
  }
  return result;
}

}  // namespace cgc::sweep
