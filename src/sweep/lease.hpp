// flock-based worker leases with monotonic progress stamps.
//
// Every shard worker holds an exclusive lease file in its checkpoint
// dir for the lifetime of the process. Two properties make this a
// crash detector rather than a convention:
//
//  1. The kernel releases flock() locks when the holder dies, however
//     it dies (SIGKILL included). A lease file whose lock can be
//     acquired is therefore *proof* the recorded holder is gone, and
//     its leftovers are safe to quarantine.
//  2. The holder refreshes the lease body with a CLOCK_MONOTONIC
//     nanosecond stamp plus a progress counter on every heartbeat.
//     CLOCK_MONOTONIC is system-wide comparable across processes, so a
//     supervisor can read the stamp (without taking the lock) and
//     classify a live-but-silent worker as hung.
//
// The same primitive guards the shared trace-memo cache: the builder
// of a cache entry holds `<entry>.lock` while writing, so concurrent
// shards either wait for the published file or find the lock free and
// become the builder themselves (see cache.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace cgc::sweep {

/// What a lease file said when probed (see read_lease()).
struct LeaseInfo {
  bool exists = false;    ///< lease file present on disk
  bool held = false;      ///< flock is currently held by a live process
  std::int64_t pid = 0;   ///< recorded holder pid (0 if unreadable)
  std::uint64_t progress = 0;   ///< holder's monotone progress counter
  std::uint64_t mono_ns = 0;    ///< CLOCK_MONOTONIC stamp of last refresh
};

/// An exclusively-held lease file. Movable, not copyable; releases (and
/// unlinks) on destruction. The flock is tied to this object's open
/// file descriptor — the kernel drops it if the process dies.
class Lease {
 public:
  /// Tries to take the lease at `path` (created if absent) without
  /// blocking. Returns nullopt when another live process holds it.
  static std::optional<Lease> try_acquire(const std::string& path);

  Lease(Lease&& other) noexcept;
  Lease& operator=(Lease&& other) noexcept;
  Lease(const Lease&) = delete;
  Lease& operator=(const Lease&) = delete;
  ~Lease();

  /// Rewrites the lease body with pid, `progress`, and a fresh
  /// CLOCK_MONOTONIC stamp. Returns false when the lease has been lost
  /// (fault site `sweep.lease_steal`, keyed by progress, simulates
  /// this) — the holder must stop touching the checkpoint dir and exit.
  bool refresh(std::uint64_t progress);

  /// Releases the flock and unlinks the lease file. Idempotent.
  void release();

  const std::string& path() const { return path_; }

 private:
  Lease(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Probes a lease file without disturbing a live holder: reads the
/// body, then tests the flock non-blockingly (immediately unlocking if
/// the probe succeeded). `held == false` with `exists == true` means
/// the recorded holder is dead.
LeaseInfo read_lease(const std::string& path);

/// CLOCK_MONOTONIC now, in nanoseconds (the clock lease stamps use).
std::uint64_t monotonic_now_ns();

/// What quarantine_stale() moved aside.
struct QuarantineReport {
  std::vector<std::string> moved;  ///< paths relative to the swept dir
  bool stale_lease = false;        ///< a dead worker's lease was found
};

/// Sweeps `dir` for leftovers of a worker killed mid-case and moves
/// them into `dir`/quarantine/ with a ".quarantined" suffix:
///   - a lease file whose flock is free (dead holder),
///   - report.json.tmp and `*.tmp.<pid>` staging litter,
///   - any *.dat not listed in `recorded` — the torn window between a
///     case writing its outputs and the report stamp landing.
/// worker.log and the quarantine subtree itself are never touched.
/// Callers must hold the dir's lease (or know no worker is running).
QuarantineReport quarantine_stale(const std::string& dir,
                                  const std::vector<std::string>& recorded)
    CGC_REQUIRES_LEASE("<dir>/worker.lease");

}  // namespace cgc::sweep
