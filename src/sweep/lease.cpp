#include "sweep/lease.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string_view>
#include <utility>

#include "fault/fault.hpp"

namespace cgc::sweep {

namespace fs = std::filesystem;

std::uint64_t monotonic_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::optional<Lease> Lease::try_acquire(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return std::nullopt;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  Lease lease(fd, path);
  lease.refresh(0);
  return lease;
}

Lease::Lease(Lease&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

Lease& Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

Lease::~Lease() { release(); }

bool Lease::refresh(std::uint64_t progress) {
  if (fd_ < 0) {
    return false;
  }
  // Deterministic stand-in for losing the lease (NFS hiccup, operator
  // deleting the file, a fencing bug): the holder must treat a failed
  // refresh as "stop writing to this dir".
  if (fault::inject("sweep.lease_steal", progress)) {
    release();
    return false;
  }
  char buf[96];
  const int n = std::snprintf(buf, sizeof(buf),
                              "pid %" PRId64 "\nprogress %" PRIu64
                              "\nmono_ns %" PRIu64 "\n",
                              static_cast<std::int64_t>(::getpid()), progress,
                              monotonic_now_ns());
  if (n <= 0) {
    return false;
  }
  if (::lseek(fd_, 0, SEEK_SET) != 0 || ::ftruncate(fd_, 0) != 0) {
    return false;
  }
  ssize_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd_, buf + off, static_cast<size_t>(n - off));
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += w;
  }
  return true;
}

void Lease::release() {
  if (fd_ < 0) {
    return;
  }
  // Unlink before closing so a racing try_acquire() of the old path
  // either sees our still-held lock or no file at all.
  ::unlink(path_.c_str());
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

LeaseInfo read_lease(const std::string& path) {
  LeaseInfo info;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return info;
  }
  info.exists = true;
  char buf[256];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::int64_t pid = 0;
    std::uint64_t progress = 0;
    std::uint64_t mono = 0;
    if (std::sscanf(buf,
                    "pid %" SCNd64 "\nprogress %" SCNu64
                    "\nmono_ns %" SCNu64,
                    &pid, &progress, &mono) == 3) {
      info.pid = pid;
      info.progress = progress;
      info.mono_ns = mono;
    }
  }
  // A shared-lock probe: succeeds iff no live process holds LOCK_EX.
  if (::flock(fd, LOCK_SH | LOCK_NB) == 0) {
    ::flock(fd, LOCK_UN);
    info.held = false;
  } else {
    info.held = true;
  }
  ::close(fd);
  return info;
}

QuarantineReport quarantine_stale(const std::string& dir,
                                  const std::vector<std::string>& recorded) {
  QuarantineReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return report;
  }
  const fs::path root = fs::path(dir);
  const fs::path quarantine_dir = root / "quarantine";
  auto move_aside = [&](const fs::path& p, const std::string& rel) {
    fs::create_directories(quarantine_dir, ec);
    // Flatten the relative path so quarantined files from subdirs do
    // not need their tree recreated.
    std::string flat = rel;
    for (char& c : flat) {
      if (c == '/') {
        c = '_';
      }
    }
    fs::rename(p, quarantine_dir / (flat + ".quarantined"), ec);
    if (!ec) {
      report.moved.push_back(rel);
    }
  };
  auto is_recorded = [&](const std::string& rel) {
    for (const std::string& r : recorded) {
      if (r == rel) {
        return true;
      }
    }
    return false;
  };
  auto ends_with = [](const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  for (fs::recursive_directory_iterator it(root, ec), end;
       !ec && it != end; it.increment(ec)) {
    const fs::directory_entry& entry = *it;
    if (entry.is_directory(ec)) {
      if (entry.path().filename() == "quarantine") {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    const std::string rel = fs::relative(entry.path(), root, ec).string();
    const std::string name = entry.path().filename().string();
    if (name == "worker.log" || name == "report.json" ||
        name == "supervisor.json") {
      continue;
    }
    if (ends_with(name, ".lease")) {
      const LeaseInfo info = read_lease(entry.path().string());
      if (!info.held) {
        report.stale_lease = true;
        move_aside(entry.path(), rel);
      }
      continue;
    }
    // Staging litter: report.json.tmp from a kill mid-rename window,
    // and `*.tmp` / `*.tmp.<pid>` from interrupted cache/report writers.
    if (name == "report.json.tmp" ||
        name.find(".tmp.") != std::string::npos || ends_with(name, ".tmp")) {
      move_aside(entry.path(), rel);
      continue;
    }
    // A .dat the report never stamped: the worker died between writing
    // the output and checkpointing. Resume must not trust it — the
    // write may be torn — so it goes aside and the case re-runs.
    if (ends_with(name, ".dat") && !is_recorded(rel)) {
      move_aside(entry.path(), rel);
    }
  }
  return report;
}

}  // namespace cgc::sweep
