// report.json reading/writing for the cgc_report sweep driver.
//
// The report is both the sweep's human-readable summary and its
// checkpoint: cgc_report rewrites it atomically (tmp + rename) after
// every case, so a sweep killed at any point leaves a valid partial
// report on disk, and `--resume` reads it back to skip cases whose
// recorded .dat outputs still hash-match. One case per line keeps the
// parser here trivial — it only ever reads what write_report() wrote.
//
// Shard workers stamp their reports with `shard i/N` so --merge can
// verify every input dir belongs to the same partition; the merged
// report carries `merged: true` and canonicalized per-case fields (see
// merge.hpp for the determinism argument).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cgc::sweep {

/// One .dat file a case produced: path (relative to CGC_BENCH_OUT),
/// content hash and size. Resume re-runs the case unless every output
/// still matches.
struct CaseOutput {
  std::string file;
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
};

/// Resource accounting for one case run, measured around the final
/// (successful or last) attempt. Always stamped — it does not depend on
/// CGC_METRICS/CGC_TRACE being set.
struct CasePerf {
  double wall_s = 0.0;
  double cpu_s = 0.0;            ///< user + system time of this process
  std::uint64_t max_rss_kb = 0;  ///< peak resident set (0 if unavailable)
};

struct CaseRecord {
  std::string id;
  std::string binary;
  std::string kind;
  std::string title;
  double seconds = 0.0;
  bool ok = false;
  bool resumed = false;  ///< satisfied from a previous sweep's outputs
  int attempts = 1;      ///< 1 = first try; >1 means retries happened
  std::string error;     ///< empty when ok
  CasePerf perf;
  std::vector<CaseOutput> outputs;
};

struct SweepReport {
  bool fast_mode = false;
  std::size_t threads = 0;
  std::string fault_spec;  ///< active CGC_FAULT_SPEC ("" = none)
  bool complete = false;   ///< false while the sweep is still running
  double total_seconds = 0.0;
  // Sharding stamp: written by `--shard i/N` workers (total > 1) and
  // checked at merge time so dirs from different partitions cannot be
  // silently fused. A plain single-process sweep leaves total == 1.
  int shard_index = 0;
  int shard_total = 1;
  bool merged = false;  ///< true only on the artifact --merge writes
  // Degraded-operation accounting aggregated across the sweep (store
  // quarantines + tolerant-parse losses); all zero on a healthy run.
  std::uint64_t chunks_quarantined = 0;
  std::uint64_t rows_lost = 0;
  std::uint64_t values_defaulted = 0;
  std::uint64_t parse_lines_bad = 0;
  std::vector<CaseRecord> cases;

  bool degraded() const {
    return chunks_quarantined != 0 || rows_lost != 0 ||
           values_defaulted != 0 || parse_lines_bad != 0;
  }
};

/// Writes `report` as JSON to `path` atomically: the content lands in
/// `path + ".tmp"` first and is renamed over `path`, so readers never
/// observe a torn file.
void write_report(const SweepReport& report, const std::string& path);

/// What read_report_checked() found at the path.
enum class ReportReadStatus {
  kOk,       ///< parsed; `out` is filled
  kMissing,  ///< no file — a fresh sweep
  kCorrupt,  ///< file exists but is not a complete report we wrote
};

/// Parses a report written by write_report(), distinguishing "no file"
/// from "file exists but is truncated/unparseable" so --resume can fail
/// loudly on a torn report instead of silently re-running.
ReportReadStatus read_report_checked(const std::string& path,
                                     SweepReport* out);

/// Parses a report written by write_report(). Returns false (leaving
/// `out` untouched) when the file is missing or not recognizably ours.
bool read_report(const std::string& path, SweepReport* out);

/// CRC-32 + size of a file's content (.dat series are small enough to
/// read whole). Returns false when the file cannot be read.
bool file_crc32(const std::string& path, std::uint32_t* crc,
                std::uint64_t* size);

}  // namespace cgc::sweep
