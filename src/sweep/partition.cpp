#include "sweep/partition.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace cgc::sweep {

std::string ShardSpec::str() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d/%d", index, total);
  return buf;
}

ShardSpec parse_shard_spec(const std::string& spec) {
  int index = -1;
  int total = -1;
  char trailing = '\0';
  const int fields =
      std::sscanf(spec.c_str(), "%d/%d%c", &index, &total, &trailing);
  if (fields != 2 || index < 0 || total < 1 || index >= total) {
    throw util::FatalError("--shard expects i/N with 0 <= i < N, got \"" +
                           spec + "\"");
  }
  return {index, total};
}

std::uint64_t stable_case_hash(std::string_view case_id) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (const char c : case_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  // splitmix64 finalizer: diffuses the low-entropy tail of short ids so
  // `mod total` sees all 64 bits.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

int shard_of(std::string_view case_id, int total) {
  CGC_CHECK_MSG(total >= 1, "shard_of: total must be >= 1");
  return static_cast<int>(stable_case_hash(case_id) %
                          static_cast<std::uint64_t>(total));
}

bool owns(const ShardSpec& spec, std::string_view case_id) {
  return shard_of(case_id, spec.total) == spec.index;
}

}  // namespace cgc::sweep
