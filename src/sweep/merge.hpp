// Shard-output merge: fuse N shard dirs into the single-process
// artifact, verifying every recorded digest on the way.
//
// Classification contract (the merge's whole point):
//   * DataError  — the shards contradict each other or their own
//     records: the same case id claimed by two dirs, a .dat whose
//     content no longer matches its recorded CRC, a duplicate output
//     file with different bytes, or a shard stamp from a different
//     partition. Exit code 2 (util::kExitConflict) via
//     error::merge_exit_code(). Nothing is trustworthy; a human (or
//     the kill-matrix CI) must look.
//   * TransientError — a shard is merely *unfinished*: torn or missing
//     report, `complete: false`. Exit 1; rerun that shard with
//     --resume and merge again. With MergeOptions::allow_partial the
//     supervisor converts this into synthesized failed records instead
//     (graceful degradation after a retry budget is exhausted).
//
// Determinism: the merged report is *canonical* — cases in the
// caller-supplied expected order, volatile fields (timings, perf,
// attempts, thread counts, fault spec) zeroed, outputs sorted by file
// name — so any two merges of equivalent shard sets are byte-identical,
// and equal to the canonical merge of an uninterrupted single-process
// run. The .dat files are copied verbatim (CRC-checked), so they are
// byte-identical unconditionally.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/report_io.hpp"

namespace cgc::sweep {

/// Identity of one expected case, in sweep (registry) order. The merge
/// needs the universe of cases to detect unknown ids and to synthesize
/// failed records for cases no shard completed.
struct CaseMeta {
  std::string id;
  std::string binary;
  std::string kind;
  std::string title;
};

struct MergeOptions {
  std::vector<CaseMeta> expected;  ///< full case universe, sweep order
  std::string out_dir;             ///< merged artifact destination
  /// When set, an unfinished/unreadable shard degrades the merge (its
  /// cases become failed records) instead of raising TransientError.
  bool allow_partial = false;
};

struct MergeResult {
  SweepReport report;            ///< what landed in out_dir/report.json
  std::size_t files_copied = 0;  ///< .dat files materialized
  std::size_t cases_ok = 0;
  std::size_t cases_failed = 0;    ///< failed in their shard
  std::size_t cases_missing = 0;   ///< no shard finished them
  std::vector<std::string> notes;  ///< human-readable degradations
};

/// Reduces a shard (or single-process) report to the canonical form the
/// merge emits. Exposed so tests and CI can canonicalize a golden
/// single-process report and diff it against a merged one.
SweepReport canonicalize(const SweepReport& report,
                         const std::vector<CaseMeta>& expected);

/// Merges shard dirs (each holding report.json + .dat outputs) into
/// `options.out_dir`. Throws DataError on conflicts and TransientError
/// on unfinished shards as described above. The merged report.json is
/// written last, after every output file landed — it is the commit
/// marker for the merge itself.
MergeResult merge_shards(const std::vector<std::string>& shard_dirs,
                         const MergeOptions& options);

}  // namespace cgc::sweep
