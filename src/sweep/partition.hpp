// Deterministic case partitioning for multi-process sweep sharding.
//
// A sweep fans out as N shard workers, each running the subset of bench
// cases it owns. Ownership is a pure function of the case id and the
// shard count — a stable FNV-1a/splitmix64 hash of the id string, mod N
// — so it is independent of registry (link) order, of which binary
// computes it, and of every other case in the run. Any subset of shards
// can therefore run anywhere (cores, CI jobs, machines) and the union
// of their outputs is exactly the single-process sweep, with no
// coordination beyond agreeing on N.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cgc::sweep {

/// One worker's slice of the case universe: shard `index` of `total`.
struct ShardSpec {
  int index = 0;  ///< 0-based shard number
  int total = 1;  ///< shard count; 1 = the whole sweep

  /// True when this spec actually splits the sweep.
  bool sharded() const { return total > 1; }
  /// "i/N" — the same syntax parse_shard_spec() accepts.
  std::string str() const;
};

/// Parses "i/N" (0 <= i < N, N >= 1). Throws cgc::util::FatalError on
/// anything else — a bad shard spec is an operator error, not data.
ShardSpec parse_shard_spec(const std::string& spec);

/// Stable 64-bit hash of a case id: FNV-1a over the bytes, finalized
/// with the splitmix64 mixer so short ids still spread over shards.
/// This is the sharding contract — changing it strands old shard dirs.
std::uint64_t stable_case_hash(std::string_view case_id);

/// Shard owning `case_id` under an N-way split (0-based).
int shard_of(std::string_view case_id, int total);

/// True when `spec` owns `case_id`.
bool owns(const ShardSpec& spec, std::string_view case_id);

}  // namespace cgc::sweep
