#include "sweep/cache.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "store/writer.hpp"
#include "sweep/lease.hpp"
#include "sweep/partition.hpp"
#include "trace/loader.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cgc::sweep {

namespace fs = std::filesystem;

std::uint64_t config_hash(std::string_view canonical_config) {
  // Same construction as the case partitioner: both are "stable name ->
  // stable 64-bit id" and must never depend on process state.
  return stable_case_hash(canonical_config);
}

std::string config_hash_hex(std::string_view canonical_config) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    config_hash(canonical_config)));
  return buf;
}

namespace {

double cache_wait_seconds() {
  const char* value = std::getenv("CGC_CACHE_WAIT");
  if (value == nullptr || value[0] == '\0') {
    return 600.0;
  }
  return std::atof(value);
}

/// Loads a published entry in degraded mode. Returns false (after
/// removing the file) when it is structurally unreadable.
bool try_load(const std::string& cgcs, trace::TraceSet* trace,
              store::DamageReport* damage) {
  if (!fs::exists(cgcs)) {
    return false;
  }
  try {
    trace::LoadOptions options;
    options.format = trace::TraceFormat::kCgcs;
    options.on_damage = trace::OnDamage::kQuarantine;
    trace::LoadReport report;
    *trace = trace::load_trace(cgcs, options, &report);
    *damage = report.damage;
    return true;
  } catch (const util::Error& e) {
    CGC_LOG(kWarn) << "discarding unreadable cache entry " << cgcs << ": "
                   << e.what();
    std::error_code ec;
    fs::remove(cgcs, ec);
    return false;
  }
}

/// Removes `<base>.cgcs.tmp.*` staging litter a dead builder left.
/// Caller holds the builder lock.
void sweep_staging_litter(const std::string& cgcs)
    CGC_REQUIRES_LEASE("<cgcs>.lock") {
  const fs::path entry(cgcs);
  const std::string prefix = entry.filename().string() + ".tmp.";
  std::error_code ec;
  for (const fs::directory_entry& e :
       fs::directory_iterator(entry.parent_path(), ec)) {
    const std::string name = e.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) == 0) {
      fs::remove(e.path(), ec);
    }
  }
}

}  // namespace

CacheResult load_or_build_cgcs(
    const std::string& base,
    const std::function<trace::TraceSet()>& build) {
  const std::string cgcs = base + ".cgcs";
  const std::string lock_path = cgcs + ".lock";
  CacheResult result;
  const std::uint64_t deadline_ns =
      monotonic_now_ns() +
      static_cast<std::uint64_t>(cache_wait_seconds() * 1e9);
  fs::create_directories(fs::path(cgcs).parent_path());
  for (;;) {
    if (try_load(cgcs, &result.trace, &result.damage)) {
      if (obs::metrics_enabled()) {
        static obs::Counter& hits = obs::counter("sweep.cache_hits");
        hits.add(1);
      }
      return result;
    }
    std::optional<Lease> lock = Lease::try_acquire(lock_path);
    if (lock.has_value()) {
      // Double-check under the lock: a builder may have published while
      // we were acquiring (our pre-lock load saw nothing).
      if (try_load(cgcs, &result.trace, &result.damage)) {
        return result;
      }
      sweep_staging_litter(cgcs);
      CGC_LOG(kInfo) << "building shared cache entry " << cgcs;
      const trace::TraceSet built = build();
      const std::string staging =
          cgcs + ".tmp." + std::to_string(::getpid());
      store::write_cgcs(built, staging);
      fs::rename(staging, cgcs);
      result.built = true;
      if (obs::metrics_enabled()) {
        static obs::Counter& builds = obs::counter("sweep.cache_builds");
        builds.add(1);
      }
      // Reload from the published file so the builder observes exactly
      // the bytes every other process will — the determinism contract.
      CGC_CHECK_MSG(try_load(cgcs, &result.trace, &result.damage),
                    "cache entry unreadable immediately after publish: " +
                        cgcs);
      return result;
    }
    // Another process is building this entry right now. Wait for it to
    // publish (or die — its flock releases and we take over).
    result.waited = true;
    if (monotonic_now_ns() > deadline_ns) {
      throw util::TransientError(
          "timed out waiting for cache builder lock " + lock_path +
          " (CGC_CACHE_WAIT=" + std::to_string(cache_wait_seconds()) +
          "s); retry the shard");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

CacheAudit verify_cache(const std::string& dir, bool flag_live_locks) {
  CacheAudit audit;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    audit.issues.push_back({dir, "not a directory", true});
    return audit;
  }
  auto ends_with = [](const std::string& s, std::string_view suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) {
      continue;
    }
    const std::string path = it->path().string();
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      // Staging files are only legitimate while their builder lives;
      // the builder lock tells us whether one does.
      const std::string entry = path.substr(0, path.find(".tmp."));
      const LeaseInfo lock = read_lease(entry + ".lock");
      if (!lock.held) {
        ++audit.tmp_litter;
        audit.issues.push_back(
            {path, "orphaned staging file (builder dead)", false});
      }
      continue;
    }
    if (ends_with(name, ".lock")) {
      const LeaseInfo info = read_lease(path);
      if (!info.held) {
        ++audit.stale_locks;
        audit.issues.push_back({path, "stale builder lock (holder pid " +
                                          std::to_string(info.pid) +
                                          " dead)",
                                false});
      } else if (flag_live_locks) {
        audit.issues.push_back({path, "builder live (pid " +
                                          std::to_string(info.pid) + ")",
                                false});
      }
      continue;
    }
    if (!ends_with(name, ".cgcs")) {
      continue;
    }
    ++audit.entries;
    try {
      const store::StoreReader reader(path, store::ReadMode::kDegraded);
      for (const store::ChunkMeta& chunk : reader.chunks()) {
        reader.chunk_ok(chunk);
      }
      const store::DamageReport damage = reader.damage();
      if (damage.clean()) {
        ++audit.entries_clean;
      } else {
        audit.issues.push_back({path, "damaged: " + damage.summary(), false});
      }
    } catch (const util::Error& e) {
      audit.issues.push_back(
          {path, std::string("unreadable: ") + e.what(), true});
    }
  }
  return audit;
}

}  // namespace cgc::sweep
