// Shard-worker supervisor: fork, watch, respawn, degrade.
//
// `cgc_report --spawn N` runs one supervisor that forks N shard
// workers (`--shard i/N --resume`, each in its own checkpoint dir),
// then watches two signals per worker:
//
//   * process exit  — waitpid(). A worker that exits with a complete
//     report is done; one that crashed or left an incomplete report is
//     respawned with --resume (capped-backoff, bounded retry budget).
//     Exit codes from the conflict/usage/fatal classes (2, 3) exhaust
//     the budget immediately — retrying an operator error is noise.
//   * heartbeat     — the worker's lease file (lease.hpp). A live pid
//     whose monotonic progress stamp stops advancing past
//     CGC_SWEEP_HEARTBEAT seconds is declared hung, SIGKILLed, and
//     respawned like any other crash. The per-case CGC_CASE_TIMEOUT
//     watchdog inside the worker fires first in the common case; the
//     lease catches what it cannot (a worker wedged outside a case).
//
// A shard that exhausts its budget is marked kExhausted and the sweep
// degrades: the merge (allow_partial) synthesizes failed records for
// its unfinished cases instead of sinking the whole run. Each respawn
// increments CGC_SWEEP_GENERATION in the child's environment so
// deterministic kill-injection specs (sweep.worker_kill) key on
// (generation, case, phase) and do not re-fire identically forever.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cgc::sweep {

struct SupervisorConfig {
  std::string exe;            ///< worker binary (usually /proc/self/exe)
  int num_shards = 1;
  std::string out_root;       ///< shard dirs live at shard_dir(out_root,...)
  /// Builds the worker argv (excluding argv[0]) for shard `index`.
  std::function<std::vector<std::string>(int index)> make_args;
  /// Extra environment for every worker, as "NAME=value" strings; the
  /// supervisor appends CGC_BENCH_OUT and CGC_SWEEP_GENERATION itself.
  std::vector<std::string> extra_env;
  int retry_budget = 5;        ///< respawns per shard (CGC_SWEEP_RETRY)
  int backoff_ms = 200;        ///< first respawn delay; doubles, capped
  int backoff_cap_ms = 5000;
  double heartbeat_timeout_sec = 120.0;  ///< CGC_SWEEP_HEARTBEAT
  int poll_ms = 100;           ///< supervisor loop cadence
};

/// Checkpoint dir for shard `index` of `total` under `out_root`.
std::string shard_dir(const std::string& out_root, int index, int total);

enum class ShardOutcome {
  kComplete,   ///< worker finished with a complete report
  kExhausted,  ///< retry budget spent; cases degrade at merge
};

struct ShardStatus {
  int index = 0;
  std::string dir;
  ShardOutcome outcome = ShardOutcome::kExhausted;
  int spawns = 1;     ///< total launches (1 = never died)
  int kills = 0;      ///< hang detections that led to SIGKILL
  int last_exit = 0;  ///< worker's final exit code (or -signal)
};

struct SupervisorResult {
  std::vector<ShardStatus> shards;
  int respawns = 0;  ///< total across shards (spawns - num_shards)

  bool all_complete() const {
    for (const ShardStatus& s : shards) {
      if (s.outcome != ShardOutcome::kComplete) {
        return false;
      }
    }
    return true;
  }
};

/// Runs the supervisor loop to completion. Fork/exec is performed with
/// only async-signal-safe calls between fork() and execve(). Metrics:
/// gauge `sweep.live_workers`, counter `sweep.respawns`.
SupervisorResult run_supervisor(const SupervisorConfig& config);

}  // namespace cgc::sweep
