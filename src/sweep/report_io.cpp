#include "sweep/report_io.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "store/encoding.hpp"
#include "util/check.hpp"

namespace cgc::sweep {

namespace {

/// Minimal JSON string escape (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'u':
        // Only \u00xx (what json_escape emits) needs decoding.
        if (i + 4 < s.size()) {
          out += static_cast<char>(
              std::stoi(std::string(s.substr(i + 1, 4)), nullptr, 16));
          i += 4;
        }
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

/// Finds `"key": ` inside `obj` and returns the offset just past it,
/// or npos. Keys we emit are unique within their object.
std::size_t value_offset(std::string_view obj, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\": ";
  const std::size_t at = obj.find(needle);
  return at == std::string_view::npos ? at : at + needle.size();
}

bool get_string(std::string_view obj, std::string_view key,
                std::string* out) {
  std::size_t i = value_offset(obj, key);
  if (i == std::string_view::npos || i >= obj.size() || obj[i] != '"') {
    return false;
  }
  ++i;
  const std::size_t start = i;
  while (i < obj.size() && !(obj[i] == '"' && obj[i - 1] != '\\')) {
    ++i;
  }
  if (i >= obj.size()) {
    return false;
  }
  *out = json_unescape(obj.substr(start, i - start));
  return true;
}

bool get_double(std::string_view obj, std::string_view key, double* out) {
  const std::size_t i = value_offset(obj, key);
  if (i == std::string_view::npos) {
    return false;
  }
  try {
    *out = std::stod(std::string(obj.substr(i, 32)));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool get_u64(std::string_view obj, std::string_view key,
             std::uint64_t* out) {
  double v = 0.0;
  if (!get_double(obj, key, &v)) {
    return false;
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool get_bool(std::string_view obj, std::string_view key, bool* out) {
  const std::size_t i = value_offset(obj, key);
  if (i == std::string_view::npos) {
    return false;
  }
  *out = obj.substr(i, 4) == "true";
  return true;
}

void write_case(std::ostream& out, const CaseRecord& r) {
  out << "    {\"id\": \"" << json_escape(r.id) << "\", "
      << "\"binary\": \"" << json_escape(r.binary) << "\", "
      << "\"kind\": \"" << json_escape(r.kind) << "\", "
      << "\"title\": \"" << json_escape(r.title) << "\", "
      << "\"seconds\": " << r.seconds << ", "
      << "\"ok\": " << (r.ok ? "true" : "false") << ", "
      << "\"resumed\": " << (r.resumed ? "true" : "false") << ", "
      << "\"attempts\": " << r.attempts;
  if (!r.error.empty()) {
    out << ", \"error\": \"" << json_escape(r.error) << "\"";
  }
  out << ", \"perf\": {\"wall_s\": " << r.perf.wall_s
      << ", \"cpu_s\": " << r.perf.cpu_s
      << ", \"max_rss_kb\": " << r.perf.max_rss_kb << "}";
  out << ", \"outputs\": [";
  for (std::size_t i = 0; i < r.outputs.size(); ++i) {
    const CaseOutput& o = r.outputs[i];
    out << (i == 0 ? "" : ", ") << "{\"file\": \"" << json_escape(o.file)
        << "\", \"crc\": " << o.crc << ", \"size\": " << o.size << "}";
  }
  out << "]}";
}

bool parse_case(std::string_view line, CaseRecord* r) {
  if (!get_string(line, "id", &r->id)) {
    return false;
  }
  get_string(line, "binary", &r->binary);
  get_string(line, "kind", &r->kind);
  get_string(line, "title", &r->title);
  get_double(line, "seconds", &r->seconds);
  get_bool(line, "ok", &r->ok);
  get_bool(line, "resumed", &r->resumed);
  double attempts = 1.0;
  get_double(line, "attempts", &attempts);
  r->attempts = static_cast<int>(attempts);
  get_string(line, "error", &r->error);
  // The perf object's keys are unique within the line, so flat lookup
  // works without isolating the nested object first.
  get_double(line, "wall_s", &r->perf.wall_s);
  get_double(line, "cpu_s", &r->perf.cpu_s);
  get_u64(line, "max_rss_kb", &r->perf.max_rss_kb);
  // Outputs live in a trailing `"outputs": [{...}, {...}]` array; each
  // object is self-contained, so scan object by object.
  std::size_t i = value_offset(line, "outputs");
  if (i == std::string_view::npos) {
    return true;
  }
  while (true) {
    const std::size_t open = line.find('{', i);
    const std::size_t close = line.find('}', open);
    if (open == std::string_view::npos || close == std::string_view::npos) {
      break;
    }
    const std::string_view obj = line.substr(open, close - open + 1);
    CaseOutput o;
    std::uint64_t crc = 0;
    if (get_string(obj, "file", &o.file) && get_u64(obj, "crc", &crc) &&
        get_u64(obj, "size", &o.size)) {
      o.crc = static_cast<std::uint32_t>(crc);
      r->outputs.push_back(std::move(o));
    }
    i = close + 1;
  }
  return true;
}

}  // namespace

void write_report(const SweepReport& report, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    CGC_CHECK_MSG(out.good(), "cannot write report to " + tmp);
    out << "{\n";
    out << "  \"fast_mode\": " << (report.fast_mode ? "true" : "false")
        << ",\n";
    out << "  \"threads\": " << report.threads << ",\n";
    out << "  \"fault_spec\": \"" << json_escape(report.fault_spec)
        << "\",\n";
    out << "  \"complete\": " << (report.complete ? "true" : "false")
        << ",\n";
    out << "  \"total_seconds\": " << report.total_seconds << ",\n";
    // Shard stamp and merge marker only appear when they carry
    // information; reports from pre-sharding sweeps parse identically.
    if (report.shard_total > 1) {
      out << "  \"shard_index\": " << report.shard_index << ",\n";
      out << "  \"shard_total\": " << report.shard_total << ",\n";
    }
    if (report.merged) {
      out << "  \"merged\": true,\n";
    }
    out << "  \"chunks_quarantined\": " << report.chunks_quarantined
        << ",\n";
    out << "  \"rows_lost\": " << report.rows_lost << ",\n";
    out << "  \"values_defaulted\": " << report.values_defaulted << ",\n";
    out << "  \"parse_lines_bad\": " << report.parse_lines_bad << ",\n";
    out << "  \"cases\": [\n";
    for (std::size_t i = 0; i < report.cases.size(); ++i) {
      write_case(out, report.cases[i]);
      out << (i + 1 < report.cases.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    out.flush();
    CGC_CHECK_MSG(out.good(), "I/O error writing " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

ReportReadStatus read_report_checked(const std::string& path,
                                     SweepReport* out) {
  std::ifstream in(path);
  if (!in.good()) {
    // Distinguish "no file" (fresh sweep) from "file we cannot open"
    // (something is there but unreadable — treat as corrupt).
    return std::filesystem::exists(path) ? ReportReadStatus::kCorrupt
                                         : ReportReadStatus::kMissing;
  }
  SweepReport report;
  std::string line;
  std::string last_nonempty;
  bool saw_header = false;
  bool in_cases = false;
  bool bad_case_line = false;
  std::string header;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      last_nonempty = line;
    }
    if (!in_cases) {
      header += line;
      header += '\n';
      if (line.find("\"cases\": [") != std::string::npos) {
        in_cases = true;
        saw_header = true;
      }
      continue;
    }
    // One case object per line; "]" closes the array.
    if (line.find('{') == std::string::npos) {
      continue;
    }
    CaseRecord r;
    if (parse_case(line, &r)) {
      report.cases.push_back(std::move(r));
    } else {
      bad_case_line = true;
    }
  }
  if (!saw_header || bad_case_line || last_nonempty != "}") {
    // write_report() always ends the file with the closing "}" of the
    // top-level object; anything else is a torn write.
    return ReportReadStatus::kCorrupt;
  }
  get_bool(header, "fast_mode", &report.fast_mode);
  double threads = 0.0;
  get_double(header, "threads", &threads);
  report.threads = static_cast<std::size_t>(threads);
  get_string(header, "fault_spec", &report.fault_spec);
  get_bool(header, "complete", &report.complete);
  get_double(header, "total_seconds", &report.total_seconds);
  double shard_index = 0.0;
  double shard_total = 1.0;
  if (get_double(header, "shard_index", &shard_index)) {
    report.shard_index = static_cast<int>(shard_index);
  }
  if (get_double(header, "shard_total", &shard_total)) {
    report.shard_total = static_cast<int>(shard_total);
  }
  get_bool(header, "merged", &report.merged);
  get_u64(header, "chunks_quarantined", &report.chunks_quarantined);
  get_u64(header, "rows_lost", &report.rows_lost);
  get_u64(header, "values_defaulted", &report.values_defaulted);
  get_u64(header, "parse_lines_bad", &report.parse_lines_bad);
  *out = std::move(report);
  return ReportReadStatus::kOk;
}

bool read_report(const std::string& path, SweepReport* out) {
  return read_report_checked(path, out) == ReportReadStatus::kOk;
}

bool file_crc32(const std::string& path, std::uint32_t* crc,
                std::uint64_t* size) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return false;
  }
  const std::string content = buf.str();
  *crc = store::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(content.data()),
      content.size()));
  *size = content.size();
  return true;
}

}  // namespace cgc::sweep
