// Metric primitives and the process-wide registry (cgc::obs).
//
// Three metric kinds, all safe for concurrent update:
//
//   * Counter — monotonically increasing u64. Counters of logical work
//     items are deterministic across CGC_THREADS when the work split
//     is (cgc::exec chunk plans are); counters of elapsed time are not
//     and are documented as such at the site.
//   * Gauge — instantaneous i64 level with a high-water mark (queue
//     depths, in-flight helpers).
//   * Histogram — log2-bucketed u64 distribution (bucket b holds
//     values with bit_width(v) == b, i.e. [2^(b-1), 2^b)) with exact
//     count/sum/min/max. Durations are recorded in nanoseconds.
//
// Sites follow the idiom
//
//   if (obs::metrics_enabled()) {
//     static obs::Counter& c = obs::counter("store.chunks_decoded");
//     c.add(1);
//   }
//
// so a disarmed run never touches the registry (the site-count smoke
// test in obs_test.cpp relies on this), and an armed run pays the
// name lookup once per site. Registered metrics live for the process
// lifetime — references never dangle; reset_metrics() zeroes values
// without invalidating identities.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "obs/obs.hpp"
#include "stats/bucketing.hpp"

namespace cgc::obs {

class Counter {
 public:
  /// Adds `n` to the count (lock-free, relaxed order).
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Current count.
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Zeroes the count (the registry identity is untouched).
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  /// Adjusts the level; the high-water mark tracks every intermediate
  /// value set through this interface.
  void add(std::int64_t delta);
  /// Sets the level directly (also feeds the high-water mark).
  void set(std::int64_t value);
  /// Current level.
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// High-water mark since construction or the last reset().
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Zeroes level and high-water mark.
  void reset();

 private:
  void raise_max(std::int64_t candidate);

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

class Histogram {
 public:
  /// One bucket per possible bit_width of a u64 (0..64); the bucket
  /// geometry is the shared log2 scheme in stats/bucketing.hpp.
  static constexpr std::size_t kNumBuckets =
      stats::bucketing::kNumLog2Buckets;

  /// Records one observation into its log2 bucket.
  void observe(std::uint64_t value);

  /// Observations recorded so far.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of every observed value.
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  std::uint64_t min() const;
  /// Largest observed value (0 when empty).
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// sum()/count(), 0.0 when empty.
  double mean() const;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// a factor-of-two estimate, which is what a log2 histogram can give.
  std::uint64_t approx_percentile(double p) const;
  /// Zeroes all buckets and extrema.
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Registry lookups: find-or-create by name. The returned reference is
/// valid for the process lifetime. Looking a name up as one kind and
/// then another throws cgc::util::Error.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Number of metrics registered so far (all kinds). A disarmed run of
/// instrumented code must leave this at zero — the cheapest possible
/// proof that the disarmed cost is only the flag load.
std::size_t num_sites();

/// Zeroes every registered metric's values; identities survive.
void reset_metrics();

/// Writes the whole registry as JSON, keys sorted by name:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
void write_metrics_json(std::ostream& out);

}  // namespace cgc::obs
