// cgc::obs — low-overhead observability: process-wide metrics and
// tracing spans for the measurement stack itself.
//
// The paper's pipelines are measurement code; this layer measures the
// measurement. Two orthogonal facilities share one arming discipline
// (the same as cgc::fault): when neither CGC_METRICS nor CGC_TRACE is
// set, the entire cost of an instrumentation site is one relaxed atomic
// load of a process-wide flag — no registry lookup, no allocation, no
// clock read. Mytkowicz et al. ("Producing Wrong Data Without Doing
// Anything Obviously Wrong") is the cautionary tale: an observer whose
// overhead is not bounded and measured perturbs the numbers it reports.
//
//   * Metrics (obs/metrics.hpp): counters, gauges, and log2-bucketed
//     histograms in a process-wide registry. Counters of logical work
//     items (chunks decoded, regions run) are deterministic across
//     CGC_THREADS because the work split itself is (cgc::exec plans
//     chunks independently of the worker count). CGC_METRICS=<path>
//     writes the registry as JSON at exit ("-" streams to stderr).
//   * Spans (obs/span.hpp): RAII begin/end events attributed to the
//     emitting thread, buffered per thread (one uncontended mutex per
//     emit) and exported as Chrome trace-event JSON. CGC_TRACE=<path>
//     writes a file loadable in chrome://tracing or Perfetto at exit.
//
// Arming is read from the environment once, before the first enabled()
// observer; tests use configure(). Export is non-draining, so calling
// export_now() early and again at exit is safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace cgc::obs {

namespace detail {
extern std::atomic<bool> g_metrics_armed;
extern std::atomic<bool> g_trace_armed;
}  // namespace detail

/// True when the metrics registry records. One relaxed load; this is
/// the entire cost of a metric site in an uninstrumented run.
inline bool metrics_enabled() {
  return detail::g_metrics_armed.load(std::memory_order_relaxed);
}

/// True when spans are recorded. Same single-relaxed-load discipline.
inline bool trace_enabled() {
  return detail::g_trace_armed.load(std::memory_order_relaxed);
}

/// True when either facility is armed.
inline bool enabled() { return metrics_enabled() || trace_enabled(); }

/// Monotonic nanoseconds (steady clock) — the timebase for histograms
/// of durations and for span timestamps.
std::uint64_t now_ns();

/// (Re)arms the facilities programmatically; tests use this. The
/// environment (CGC_METRICS / CGC_TRACE) is installed automatically at
/// startup and also sets the export paths; configure() only flips the
/// arming flags.
void configure(bool metrics, bool spans);

/// Export destinations from the environment ("" when unset).
std::string metrics_path();
std::string trace_path();

/// Writes the armed facilities to their configured paths. Non-draining
/// and idempotent: buffers and registry values are left intact, so the
/// atexit export after an early explicit call rewrites the same data.
/// No-op for a facility without a path.
void export_now();

/// Serializes every recorded span as Chrome trace-event JSON
/// ({"traceEvents": [{"ph": "X", ...}]}), sorted by start time so the
/// output is stable for a given set of spans. Timestamps are
/// microseconds relative to the earliest recorded span.
void write_chrome_trace(std::ostream& out);

/// Number of span events currently buffered across all threads.
/// Observability for the observability layer — and the hook tests use
/// to assert that disarmed code records nothing.
std::size_t span_count();

}  // namespace cgc::obs
