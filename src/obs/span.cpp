#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"

namespace cgc::obs {
namespace {

/// One finished span, ready for export.
struct SpanEvent {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Per-thread event buffer. Its mutex is uncontended in steady state —
/// the owning thread appends; only export_now() contends, briefly.
struct ThreadBuffer {
  util::Mutex mutex;
  std::uint32_t tid = 0;  // written once at registration, then read-only
  std::vector<SpanEvent> events CGC_GUARDED_BY(mutex);
};

/// All buffers ever created, kept alive past thread exit by shared
/// ownership so export after a pool shuts down still sees its spans.
struct BufferRegistry {
  util::Mutex mutex;
  std::uint32_t next_tid CGC_GUARDED_BY(mutex) = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers CGC_GUARDED_BY(mutex);
};

/// Leaked: export runs from atexit and must not race static teardown.
BufferRegistry& buffer_registry() {
  static auto* r = new BufferRegistry;
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& r = buffer_registry();
    util::MutexLock lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out << hex;
        } else {
          out << c;
        }
    }
  }
}

void write_us(std::ostream& out, std::uint64_t ns) {
  // Microseconds with nanosecond precision kept in the fraction.
  out << ns / 1000 << '.';
  char frac[4];
  std::snprintf(frac, sizeof frac, "%03u",
                static_cast<unsigned>(ns % 1000));
  out << frac;
}

}  // namespace

namespace detail {

void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t dur_ns) {
  ThreadBuffer& b = local_buffer();
  util::MutexLock lock(b.mutex);
  b.events.push_back(SpanEvent{std::move(name), b.tid, start_ns, dur_ns});
}

}  // namespace detail

void write_chrome_trace(std::ostream& out) {
  std::vector<SpanEvent> events;
  {
    BufferRegistry& r = buffer_registry();
    util::MutexLock registry_lock(r.mutex);
    for (const auto& buffer : r.buffers) {
      util::MutexLock buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });
  std::uint64_t origin_ns = events.empty() ? 0 : events.front().start_ns;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  const char* sep = "";
  for (const SpanEvent& e : events) {
    out << sep << "\n{\"name\": \"";
    json_escape(out, e.name);
    out << "\", \"cat\": \"cgc\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << e.tid << ", \"ts\": ";
    write_us(out, e.start_ns - origin_ns);
    out << ", \"dur\": ";
    write_us(out, e.dur_ns);
    out << "}";
    sep = ",";
  }
  out << "\n]}\n";
}

std::size_t span_count() {
  BufferRegistry& r = buffer_registry();
  util::MutexLock registry_lock(r.mutex);
  std::size_t n = 0;
  for (const auto& buffer : r.buffers) {
    util::MutexLock buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

ScopedTimer::ScopedTimer(const char* name) : name_(name) {
  if (metrics_enabled()) {
    histogram_ = &histogram(name_);
  }
  span_armed_ = trace_enabled();
  if (histogram_ != nullptr || span_armed_) {
    start_ns_ = now_ns();
  }
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr && !span_armed_) {
    return;
  }
  const std::uint64_t dur_ns = now_ns() - start_ns_;
  if (histogram_ != nullptr) {
    histogram_->observe(dur_ns);
  }
  if (span_armed_) {
    detail::record_span(name_, start_ns_, dur_ns);
  }
}

}  // namespace cgc::obs
