// RAII tracing spans and the ScopedTimer that feeds both facilities
// (cgc::obs).
//
// A Span brackets a region of one thread's execution. Construction
// records the start timestamp; destruction appends one complete
// ("ph": "X") event — name, thread id, start, duration — to the
// emitting thread's buffer. Buffers are per-thread structs guarded by
// their own (uncontended) mutex and registered globally, so export can
// collect from live pool workers without any thread-exit handshake;
// a buffer outlives its thread via shared ownership. Nested spans on
// one thread nest naturally in the exported timeline.
//
// ScopedTimer is the both-facilities site: when metrics are armed its
// duration lands in histogram(name) in nanoseconds, and when tracing
// is armed the same interval is emitted as a span. Disarmed, both
// classes cost the usual single relaxed load.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace cgc::obs {

class Histogram;

namespace detail {
/// Appends one complete span event to the calling thread's buffer.
void record_span(std::string name, std::uint64_t start_ns,
                 std::uint64_t dur_ns);
}  // namespace detail

/// RAII span: emits one trace event covering its lifetime when tracing
/// is armed at construction time.
class Span {
 public:
  /// Starts the span now; a no-op shell when tracing is disarmed.
  explicit Span(std::string name) {
    if (trace_enabled()) {
      armed_ = true;
      name_ = std::move(name);
      start_ns_ = now_ns();
    }
  }
  /// Closes the span and buffers it for export.
  ~Span() {
    if (armed_) {
      detail::record_span(std::move(name_), start_ns_,
                          now_ns() - start_ns_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool armed_ = false;
  std::string name_;
  std::uint64_t start_ns_ = 0;
};

/// Times its scope into histogram(name) (nanoseconds, metrics armed)
/// and/or a span of the same name (tracing armed).
class ScopedTimer {
 public:
  /// Resolves the histogram / arms the span; `name` must outlive the
  /// timer (call sites pass string literals).
  explicit ScopedTimer(const char* name);
  /// Observes the elapsed nanoseconds into whichever sinks are armed.
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  Histogram* histogram_ = nullptr;  ///< resolved at construction if armed
  bool span_armed_ = false;
  std::uint64_t start_ns_ = 0;
};

}  // namespace cgc::obs
