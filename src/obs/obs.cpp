#include "obs/obs.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics.hpp"

namespace cgc::obs {

namespace detail {
std::atomic<bool> g_metrics_armed{false};
std::atomic<bool> g_trace_armed{false};
}  // namespace detail

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Leaked strings: atexit export must be able to read the paths after
/// main() returns, past any static-destruction order.
std::string*& metrics_path_slot() {
  static auto* path = new std::string;
  return path;
}

std::string*& trace_path_slot() {
  static auto* path = new std::string;
  return path;
}

/// Reads CGC_METRICS / CGC_TRACE once, before main() — same discipline
/// as cgc::fault's installer.
const bool g_env_installed = [] {
  bool any = false;
  if (const char* env = std::getenv("CGC_METRICS");
      env != nullptr && *env != '\0') {
    *metrics_path_slot() = env;
    detail::g_metrics_armed.store(true, std::memory_order_relaxed);
    any = true;
  }
  if (const char* env = std::getenv("CGC_TRACE");
      env != nullptr && *env != '\0') {
    *trace_path_slot() = env;
    detail::g_trace_armed.store(true, std::memory_order_relaxed);
    any = true;
  }
  if (any) {
    std::atexit([] { export_now(); });
  }
  return true;
}();

void write_to_path(const std::string& path, void (*writer)(std::ostream&),
                   const char* what) {
  if (path == "-") {
    writer(std::cerr);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "cgc::obs: cannot open " << what << " output '" << path
              << "'\n";
    return;
  }
  writer(out);
}

}  // namespace

void configure(bool metrics, bool spans) {
  detail::g_metrics_armed.store(metrics, std::memory_order_relaxed);
  detail::g_trace_armed.store(spans, std::memory_order_relaxed);
}

std::string metrics_path() { return *metrics_path_slot(); }

std::string trace_path() { return *trace_path_slot(); }

void export_now() {
  if (const std::string& path = *metrics_path_slot(); !path.empty()) {
    write_to_path(path, &write_metrics_json, "metrics");
  }
  if (const std::string& path = *trace_path_slot(); !path.empty()) {
    write_to_path(path, &write_chrome_trace, "trace");
  }
}

}  // namespace cgc::obs
