#include "obs/metrics.hpp"

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <variant>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace cgc::obs {

void Gauge::raise_max(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_max(now);
}

void Gauge::set(std::int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  raise_max(value);
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::observe(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[stats::bucketing::log2_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~std::uint64_t{0} ? 0 : v;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::approx_percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  p = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  // Rank of the target observation, 1-based; walk buckets upward.
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(n));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank || seen == n) {
      // Inclusive upper bound of bucket b (exact max for the top one).
      return b >= 64 ? max() : stats::bucketing::log2_upper(b);
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// One registry slot; the variant enforces one-kind-per-name.
using Metric = std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                            std::unique_ptr<Histogram>>;

struct Registry {
  util::Mutex mutex;
  // Guarded: the map structure. The metric objects behind the
  // unique_ptrs are lock-free (atomics) and are mutated unguarded by
  // design — registration returns stable references.
  std::map<std::string, Metric, std::less<>> metrics
      CGC_GUARDED_BY(mutex);
};

/// Leaked so atexit exporters never race static destruction.
Registry& registry() {
  static auto* r = new Registry;
  return *r;
}

template <typename T>
T& find_or_create(std::string_view name, const char* kind) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  auto it = r.metrics.find(name);
  if (it == r.metrics.end()) {
    it = r.metrics.emplace(std::string(name), std::make_unique<T>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  CGC_CHECK_MSG(slot != nullptr, "metric '" + std::string(name) +
                                     "' already registered as another kind "
                                     "(wanted " +
                                     kind + ")");
  return **slot;
}

}  // namespace

Counter& counter(std::string_view name) {
  return find_or_create<Counter>(name, "counter");
}

Gauge& gauge(std::string_view name) {
  return find_or_create<Gauge>(name, "gauge");
}

Histogram& histogram(std::string_view name) {
  return find_or_create<Histogram>(name, "histogram");
}

std::size_t num_sites() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  return r.metrics.size();
}

void reset_metrics() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  for (auto& [name, metric] : r.metrics) {
    std::visit([](auto& m) { m->reset(); }, metric);
  }
}

void write_metrics_json(std::ostream& out) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  // Names are dotted identifiers chosen by call sites — no escaping
  // beyond what std::map ordering already guarantees (determinism).
  out << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, metric] : r.metrics) {
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&metric)) {
      out << sep << "\n    \"" << name << "\": " << (*c)->value();
      sep = ",";
    }
  }
  out << "\n  },\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, metric] : r.metrics) {
    if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&metric)) {
      out << sep << "\n    \"" << name << "\": {\"value\": " << (*g)->value()
          << ", \"max\": " << (*g)->max() << "}";
      sep = ",";
    }
  }
  out << "\n  },\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, metric] : r.metrics) {
    if (const auto* h = std::get_if<std::unique_ptr<Histogram>>(&metric)) {
      const Histogram& hist = **h;
      out << sep << "\n    \"" << name << "\": {\"count\": " << hist.count()
          << ", \"sum\": " << hist.sum() << ", \"min\": " << hist.min()
          << ", \"max\": " << hist.max() << ", \"mean\": " << hist.mean()
          << ", \"p50\": " << hist.approx_percentile(0.50)
          << ", \"p95\": " << hist.approx_percentile(0.95)
          << ", \"p99\": " << hist.approx_percentile(0.99) << "}";
      sep = ",";
    }
  }
  out << "\n  }\n}\n";
}

}  // namespace cgc::obs
