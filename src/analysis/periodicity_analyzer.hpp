// Host-load periodicity analysis (extension).
//
// The paper's related-work discussion (H. Li) notes that Grid host load
// exhibits clear periodic/diurnal patterns usable for prediction, while
// the paper's own findings imply Cloud load does not. This analyzer
// makes that comparison concrete: per host, downsample the relative
// usage to hourly resolution and search the autocorrelation function for
// a significant dominant period.
#pragma once

#include <string>

#include "analysis/hostload_analyzers.hpp"
#include "analysis/report.hpp"
#include "trace/trace_set.hpp"

namespace cgc::analysis {

struct PeriodicityReport {
  std::string system;
  Metric metric = Metric::kCpu;
  std::size_t num_hosts = 0;
  /// Fraction of hosts with a statistically significant dominant period.
  double fraction_periodic = 0.0;
  /// Median dominant period (hours) among the periodic hosts; 0 if none.
  double median_period_hours = 0.0;
  /// Mean ACF peak strength among periodic hosts.
  double mean_strength = 0.0;
  /// Mean hourly ACF across all hosts: rows of (lag_hours, acf).
  Figure acf_figure;
};

/// Analyzes periodicity of per-host relative usage. Lags are searched in
/// [min_lag_hours, max_lag_hours] on hourly-downsampled series.
PeriodicityReport analyze_periodicity(const trace::TraceSet& trace,
                                      Metric metric,
                                      std::size_t min_lag_hours = 6,
                                      std::size_t max_lag_hours = 48);

/// Renders a one-line summary suitable for the comparison bench.
std::string render_periodicity_row(const PeriodicityReport& report);

}  // namespace cgc::analysis
