// Work-load analyzers: Section III of the paper (jobs and tasks).
//
// Each function consumes one or more TraceSets and produces the data
// behind one paper artifact:
//   Fig 2   priority histogram                -> PriorityHistogram
//   Fig 3   job-length CDF comparison          -> Figure (one CDF/system)
//   Fig 4   task-length mass-count disparity   -> MassCountReport
//   Fig 5   submission-interval CDF comparison -> Figure
//   Table I jobs/hour max/avg/min + fairness   -> SubmissionStats
//   Fig 6   per-job CPU / memory usage CDFs    -> Figure
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "stats/mass_count.hpp"
#include "trace/trace_set.hpp"

namespace cgc::analysis {

// ---- Fig 2 -----------------------------------------------------------------
struct PriorityHistogram {
  std::array<std::int64_t, trace::kNumPriorities> jobs{};
  std::array<std::int64_t, trace::kNumPriorities> tasks{};

  std::int64_t jobs_in_band(trace::PriorityBand band) const;
  std::int64_t tasks_in_band(trace::PriorityBand band) const;
  Figure to_figure() const;
};

/// Counts jobs and tasks per priority (parallelized over tasks).
PriorityHistogram analyze_priorities(const trace::TraceSet& trace);

// ---- Fig 3 -----------------------------------------------------------------
/// CDF of completed-job lengths for each trace, on a common grid.
Figure analyze_job_length_cdf(
    std::span<const trace::TraceSet* const> traces,
    std::size_t max_points = 400);

// ---- Fig 4 -----------------------------------------------------------------
struct MassCountReport {
  std::string system;
  stats::MassCountResult result;
  double mean = 0.0;
  double max = 0.0;
  Figure figure;  ///< count + mass curves
};

/// Mass-count disparity of task run durations (execution times).
MassCountReport analyze_task_length_mass_count(const trace::TraceSet& trace);

// ---- Fig 5 -----------------------------------------------------------------
/// CDF of job submission inter-arrival gaps per system.
Figure analyze_submission_interval_cdf(
    std::span<const trace::TraceSet* const> traces,
    std::size_t max_points = 400);

// ---- Table I ----------------------------------------------------------------
struct SubmissionStats {
  std::string system;
  double max_per_hour = 0.0;
  double avg_per_hour = 0.0;
  double min_per_hour = 0.0;
  double fairness = 0.0;  ///< Jain fairness of hourly counts
};

SubmissionStats analyze_submission_stats(const trace::TraceSet& trace);

/// Renders Table I for a set of systems.
std::string render_submission_table(std::span<const SubmissionStats> rows);

// ---- Fig 6 -----------------------------------------------------------------
/// CDF of per-job CPU usage (Formula (4)) per system.
Figure analyze_job_cpu_usage_cdf(
    std::span<const trace::TraceSet* const> traces,
    std::size_t max_points = 400);

/// CDF of per-job memory usage (MB). Cloud traces with normalized memory
/// are expanded under the given what-if node capacities (the paper's
/// 32 GB / 64 GB curves).
Figure analyze_job_mem_usage_cdf(
    std::span<const trace::TraceSet* const> traces,
    std::span<const double> cloud_capacity_gb,
    std::size_t max_points = 400);

}  // namespace cgc::analysis
