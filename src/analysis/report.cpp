#include "analysis/report.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace cgc::analysis {

void Series::add_row(std::initializer_list<double> values) {
  CGC_CHECK_MSG(column_names.empty() || values.size() == column_names.size(),
                "row width does not match series columns");
  rows.emplace_back(values);
}

std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') {
    out.pop_back();
  }
  return out.empty() ? "series" : out;
}

void Figure::write_dat(const std::string& directory) const {
  std::filesystem::create_directories(directory);
  for (const Series& s : series) {
    const std::string path =
        directory + "/" + id + "_" + sanitize_name(s.name) + ".dat";
    std::ofstream out(path);
    CGC_CHECK_MSG(out.good(), "cannot write " + path);
    out << "# " << title << " — " << s.name << '\n';
    out << "#";
    for (const std::string& c : s.column_names) {
      out << ' ' << c;
    }
    out << '\n';
    for (const auto& row : s.rows) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0) {
          out << ' ';
        }
        out << util::format_double(row[i]);
      }
      out << '\n';
    }
  }
}

std::string Figure::describe() const {
  std::ostringstream oss;
  oss << "[" << id << "] " << title << '\n';
  for (const std::string& a : annotations) {
    oss << "    " << a << '\n';
  }
  for (const Series& s : series) {
    oss << "    series '" << s.name << "': " << s.rows.size() << " rows\n";
  }
  return oss.str();
}

}  // namespace cgc::analysis
