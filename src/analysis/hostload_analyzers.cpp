#include "analysis/hostload_analyzers.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "exec/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace cgc::analysis {

namespace {

using trace::HostLoadSeries;
using trace::PriorityBand;
using trace::TraceSet;

/// Relative usage series of the requested metric for one machine.
std::vector<double> relative_series(const TraceSet& trace,
                                    const HostLoadSeries& h, Metric metric,
                                    PriorityBand min_band) {
  const auto machine = trace.machine_by_id(h.machine_id());
  CGC_CHECK_MSG(machine.has_value(), "host-load series without machine");
  return metric == Metric::kCpu
             ? h.cpu_relative(machine->cpu_capacity, min_band)
             : h.mem_relative(machine->mem_capacity, min_band);
}

}  // namespace

std::string_view metric_name(Metric metric) {
  return metric == Metric::kCpu ? "cpu" : "memory";
}

// ---------------------------------------------------------------------------
// Fig 7
// ---------------------------------------------------------------------------

MaxLoadDistribution analyze_max_host_load(const TraceSet& trace) {
  MaxLoadDistribution dist;
  // capacity value -> group index, per attribute.
  std::map<double, std::size_t> cpu_groups, mem_groups, pc_groups;
  const auto group_for = [](std::map<double, std::size_t>* index,
                            std::vector<MaxLoadDistribution::Group>* groups,
                            double capacity) {
    // Quantize to 1e-3 so float capacities group cleanly.
    const double key = std::round(capacity * 1000.0) / 1000.0;
    const auto [it, inserted] = index->try_emplace(key, groups->size());
    if (inserted) {
      groups->push_back({key, {}});
    }
    return it->second;
  };

  for (const HostLoadSeries& h : trace.host_load()) {
    if (h.empty()) {
      continue;
    }
    const auto machine = trace.machine_by_id(h.machine_id());
    CGC_CHECK(machine.has_value());
    const std::size_t gc =
        group_for(&cpu_groups, &dist.cpu, machine->cpu_capacity);
    dist.cpu[gc].max_loads.push_back(h.max_cpu());
    const std::size_t gm =
        group_for(&mem_groups, &dist.mem, machine->mem_capacity);
    dist.mem[gm].max_loads.push_back(h.max_mem());
    // mem_assigned shares the memory capacity grouping.
    if (dist.mem_assigned.size() < dist.mem.size()) {
      dist.mem_assigned.resize(dist.mem.size());
    }
    dist.mem_assigned[gm].capacity = dist.mem[gm].capacity;
    dist.mem_assigned[gm].max_loads.push_back(h.max_mem_assigned());
    const std::size_t gp =
        group_for(&pc_groups, &dist.page_cache, machine->page_cache_capacity);
    dist.page_cache[gp].max_loads.push_back(h.max_page_cache());
  }
  return dist;
}

std::vector<Figure> MaxLoadDistribution::to_figures(
    std::size_t num_bins) const {
  const auto make = [num_bins](const std::vector<Group>& groups,
                               const std::string& id,
                               const std::string& title) {
    Figure fig;
    fig.id = id;
    fig.title = title;
    for (const Group& g : groups) {
      if (g.max_loads.empty()) {
        continue;
      }
      stats::Histogram hist(0.0, 1.0, num_bins);
      hist.add_all(g.max_loads);
      Series s;
      char name[64];
      std::snprintf(name, sizeof(name), "cap_%.2f", g.capacity);
      s.name = name;
      s.column_names = {"max_load", "pdf_mass"};
      for (std::size_t b = 0; b < hist.num_bins(); ++b) {
        s.add_row({hist.bin_center(b), hist.pmf(b)});
      }
      fig.series.push_back(std::move(s));
    }
    return fig;
  };
  return {
      make(cpu, "fig07a", "Max host load distribution: CPU usage (Fig 7a)"),
      make(mem, "fig07b",
           "Max host load distribution: memory usage (Fig 7b)"),
      make(mem_assigned, "fig07c",
           "Max host load distribution: memory assigned (Fig 7c)"),
      make(page_cache, "fig07d",
           "Max host load distribution: page cache (Fig 7d)"),
  };
}

// ---------------------------------------------------------------------------
// Fig 8
// ---------------------------------------------------------------------------

QueueStateReport analyze_queue_state(const TraceSet& trace,
                                     std::int64_t machine_id) {
  QueueStateReport report;
  CGC_CHECK_MSG(!trace.host_load().empty(), "trace has no host load");
  const HostLoadSeries* series = nullptr;
  if (machine_id < 0) {
    // Busiest machine: largest mean running count.
    double best = -1.0;
    for (const HostLoadSeries& h : trace.host_load()) {
      double total = 0.0;
      for (std::size_t i = 0; i < h.size(); ++i) {
        total += h.running(i);
      }
      const double mean =
          h.empty() ? 0.0 : total / static_cast<double>(h.size());
      if (mean > best) {
        best = mean;
        series = &h;
      }
    }
  } else {
    series = trace.host_load_for(machine_id);
  }
  CGC_CHECK_MSG(series != nullptr, "machine has no host-load series");
  report.machine_id = series->machine_id();

  // Cumulative completion counters on this machine, re-played from the
  // event stream in lockstep with the sample grid.
  std::vector<trace::TaskEvent> machine_events;
  for (const trace::TaskEvent& e : trace.events()) {
    if (e.machine_id == report.machine_id) {
      machine_events.push_back(e);
    }
  }

  report.queue_figure.id = "fig08b";
  report.queue_figure.title =
      "Queuing state on machine " + std::to_string(report.machine_id) +
      " (Fig 8b)";
  Series qs;
  qs.name = "queue_state";
  qs.column_names = {"time_day", "pending", "running", "finished",
                     "abnormal"};
  std::size_t event_pos = 0;
  std::int64_t finished = 0;
  std::int64_t abnormal = 0;
  for (std::size_t i = 0; i < series->size(); ++i) {
    const trace::TimeSec t = series->time_at(i);
    while (event_pos < machine_events.size() &&
           machine_events[event_pos].time <= t) {
      const trace::TaskEvent& e = machine_events[event_pos];
      if (e.type == trace::TaskEventType::kFinish) {
        ++finished;
      } else if (trace::is_abnormal(e.type)) {
        ++abnormal;
      }
      ++event_pos;
    }
    qs.add_row({util::to_days(t), static_cast<double>(series->pending(i)),
                static_cast<double>(series->running(i)),
                static_cast<double>(finished),
                static_cast<double>(abnormal)});
  }
  report.queue_figure.series.push_back(std::move(qs));

  // Task-event timeline (Fig 8a): slot = per-machine task ordinal.
  report.events_figure.id = "fig08a";
  report.events_figure.title =
      "Task events on machine " + std::to_string(report.machine_id) +
      " (Fig 8a)";
  Series ev;
  ev.name = "task_events";
  ev.column_names = {"time_day", "task_slot", "event_code"};
  std::map<std::pair<std::int64_t, std::int32_t>, std::size_t> slots;
  for (const trace::TaskEvent& e : machine_events) {
    const auto key = std::make_pair(e.job_id, e.task_index);
    const auto [it, inserted] = slots.try_emplace(key, slots.size());
    ev.add_row({util::to_days(e.time), static_cast<double>(it->second),
                static_cast<double>(e.type)});
  }
  report.events_figure.series.push_back(std::move(ev));

  // Cluster-wide completion mix.
  std::int64_t n_finish = 0, n_fail = 0, n_kill = 0, n_evict = 0, n_lost = 0;
  for (const trace::TaskEvent& e : trace.events()) {
    switch (e.type) {
      case trace::TaskEventType::kFinish:
        ++n_finish;
        break;
      case trace::TaskEventType::kFail:
        ++n_fail;
        break;
      case trace::TaskEventType::kKill:
        ++n_kill;
        break;
      case trace::TaskEventType::kEvict:
        ++n_evict;
        break;
      case trace::TaskEventType::kLost:
        ++n_lost;
        break;
      default:
        break;
    }
  }
  const std::int64_t total = n_finish + n_fail + n_kill + n_evict + n_lost;
  const std::int64_t abn = total - n_finish;
  report.total_completions = total;
  if (total > 0) {
    report.abnormal_fraction =
        static_cast<double>(abn) / static_cast<double>(total);
  }
  if (abn > 0) {
    report.fail_share_of_abnormal =
        static_cast<double>(n_fail) / static_cast<double>(abn);
    report.kill_share_of_abnormal =
        static_cast<double>(n_kill) / static_cast<double>(abn);
    report.evict_share_of_abnormal =
        static_cast<double>(n_evict) / static_cast<double>(abn);
    report.lost_share_of_abnormal =
        static_cast<double>(n_lost) / static_cast<double>(abn);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Fig 9
// ---------------------------------------------------------------------------

QueueRunMassCount analyze_queue_run_mass_count(const TraceSet& trace) {
  constexpr int kBucketWidth = 10;
  constexpr int kNumBuckets = 6;  // [0,9] ... [50,inf)
  using BucketDurations = std::array<std::vector<double>, kNumBuckets>;

  const auto host_load = trace.host_load();
  // Ordered reduce (partials append in chunk order) keeps each bucket's
  // run list in machine order at any thread count.
  const BucketDurations durations = exec::parallel_reduce(
      0, host_load.size(), BucketDurations{},
      [&](std::size_t lo, std::size_t hi) {
        BucketDurations local;
        std::vector<std::int64_t> bucketed;
        for (std::size_t m = lo; m < hi; ++m) {
          const HostLoadSeries& h = host_load[m];
          bucketed.clear();
          bucketed.reserve(h.size());
          for (std::size_t i = 0; i < h.size(); ++i) {
            bucketed.push_back(
                std::min<std::int64_t>(h.running(i) / kBucketWidth,
                                       kNumBuckets - 1));
          }
          for (const auto& run : stats::state_runs(bucketed, h.period())) {
            local[run.level].push_back(util::to_minutes(run.duration));
          }
        }
        return local;
      },
      [](BucketDurations& acc, BucketDurations&& part) {
        for (int b = 0; b < kNumBuckets; ++b) {
          auto& dst = acc[static_cast<std::size_t>(b)];
          auto& src = part[static_cast<std::size_t>(b)];
          dst.insert(dst.end(), src.begin(), src.end());
        }
      },
      /*grain=*/1);

  QueueRunMassCount out;
  out.figure.id = "fig09";
  out.figure.title =
      "Mass-count of durations in unchanged queuing state (Fig 9)";
  for (int b = 0; b < kNumBuckets; ++b) {
    const auto& d = durations[static_cast<std::size_t>(b)];
    QueueRunMassCount::Bucket bucket;
    bucket.lo = b * kBucketWidth;
    bucket.hi = b == kNumBuckets - 1 ? -1 : (b + 1) * kBucketWidth - 1;
    bucket.num_runs = d.size();
    if (d.size() >= 10) {
      bucket.mass_count = stats::mass_count_disparity(d);
      Series s;
      char name[64];
      if (bucket.hi < 0) {
        std::snprintf(name, sizeof(name), "running_%d_plus", bucket.lo);
      } else {
        std::snprintf(name, sizeof(name), "running_%d_%d", bucket.lo,
                      bucket.hi);
      }
      s.name = name;
      s.column_names = {"duration_min", "count_cdf", "mass_cdf"};
      for (const auto& row : stats::mass_count_plot(d)) {
        s.add_row({row[0], row[1], row[2]});
      }
      out.figure.series.push_back(std::move(s));
      char note[160];
      std::snprintf(note, sizeof(note),
                    "[%d,%s]: joint ratio=%.0f/%.0f mm-dist=%.0f min (%zu runs)",
                    bucket.lo, bucket.hi < 0 ? "inf" : std::to_string(bucket.hi).c_str(),
                    bucket.mass_count.joint_ratio_mass,
                    bucket.mass_count.joint_ratio_count,
                    bucket.mass_count.mm_distance, d.size());
      out.figure.annotations.push_back(note);
    }
    out.buckets.push_back(bucket);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fig 10
// ---------------------------------------------------------------------------

Figure analyze_usage_snapshot(const TraceSet& trace, Metric metric,
                              PriorityBand min_band,
                              std::size_t num_machines,
                              std::size_t time_stride) {
  Figure fig;
  char id[64];
  std::snprintf(id, sizeof(id), "fig10_%s_%s",
                std::string(metric_name(metric)).c_str(),
                std::string(trace::band_name(min_band)).c_str());
  fig.id = id;
  fig.title = std::string("Usage-level snapshot: ") +
              std::string(metric_name(metric)) + " usage, bands >= " +
              std::string(trace::band_name(min_band)) + " (Fig 10)";
  const auto host_load = trace.host_load();
  const std::size_t count = std::min(num_machines, host_load.size());
  CGC_CHECK_MSG(count > 0, "no machines to snapshot");
  const std::size_t stride = std::max<std::size_t>(1, host_load.size() / count);

  Series s;
  s.name = "levels";
  s.column_names = {"time_day", "machine", "level"};
  std::size_t row_index = 0;
  for (std::size_t m = 0; m < host_load.size() && row_index < count;
       m += stride, ++row_index) {
    const HostLoadSeries& h = host_load[m];
    const std::vector<double> rel =
        relative_series(trace, h, metric, min_band);
    for (std::size_t i = 0; i < rel.size(); i += time_stride) {
      s.add_row({util::to_days(h.time_at(i)),
                 static_cast<double>(row_index),
                 static_cast<double>(stats::usage_level(rel[i]))});
    }
  }
  fig.series.push_back(std::move(s));
  return fig;
}

// ---------------------------------------------------------------------------
// Tables II / III
// ---------------------------------------------------------------------------

LevelDurationTable analyze_level_durations(const TraceSet& trace,
                                           Metric metric,
                                           PriorityBand min_band) {
  constexpr std::size_t kLevels = 5;
  using LevelDurations = std::array<std::vector<double>, kLevels>;

  const auto host_load = trace.host_load();
  const LevelDurations durations = exec::parallel_reduce(
      0, host_load.size(), LevelDurations{},
      [&](std::size_t lo, std::size_t hi) {
        LevelDurations local;
        for (std::size_t m = lo; m < hi; ++m) {
          const HostLoadSeries& h = host_load[m];
          if (h.empty()) {
            continue;
          }
          const std::vector<double> rel =
              relative_series(trace, h, metric, min_band);
          for (const auto& run :
               stats::level_runs(rel, kLevels, h.period())) {
            local[run.level].push_back(util::to_minutes(run.duration));
          }
        }
        return local;
      },
      [](LevelDurations& acc, LevelDurations&& part) {
        for (std::size_t l = 0; l < kLevels; ++l) {
          acc[l].insert(acc[l].end(), part[l].begin(), part[l].end());
        }
      },
      /*grain=*/1);

  LevelDurationTable table;
  table.metric = metric;
  table.min_band = min_band;
  for (std::size_t l = 0; l < kLevels; ++l) {
    LevelDurationRow& row = table.rows[l];
    row.level = l;
    row.num_runs = durations[l].size();
    if (durations[l].empty()) {
      continue;
    }
    const auto summary =
        stats::summarize(std::span<const double>(durations[l]));
    row.avg_minutes = summary.mean();
    row.max_minutes = summary.max();
    if (durations[l].size() >= 10) {
      const auto mc = stats::mass_count_disparity(durations[l]);
      row.joint_ratio_mass = mc.joint_ratio_mass;
      row.joint_ratio_count = mc.joint_ratio_count;
      row.mm_distance_minutes = mc.mm_distance;
    }
  }
  return table;
}

std::string LevelDurationTable::render() const {
  util::AsciiTable table({"usage level", "avg (min)", "max (min)",
                          "joint ratio", "mm-dist (min)", "#runs"});
  table.set_caption(
      std::string("Continuous duration of unchanged ") +
      std::string(metric_name(metric)) + " usage level (bands >= " +
      std::string(trace::band_name(min_band)) + ")");
  static const char* kLevelNames[5] = {"[0,0.2)", "[0.2,0.4)", "[0.4,0.6)",
                                       "[0.6,0.8)", "[0.8,1]"};
  for (const LevelDurationRow& row : rows) {
    table.add_row(
        {kLevelNames[row.level], util::cell(row.avg_minutes, 3),
         util::cell(row.max_minutes, 5),
         util::cell_ratio(row.joint_ratio_mass, row.joint_ratio_count),
         util::cell(row.mm_distance_minutes, 3),
         util::cell_int(static_cast<long long>(row.num_runs))});
  }
  return table.render();
}

// ---------------------------------------------------------------------------
// Figs 11 / 12
// ---------------------------------------------------------------------------

UsageMassCountReport analyze_usage_mass_count(const TraceSet& trace,
                                              Metric metric,
                                              PriorityBand min_band) {
  const auto host_load = trace.host_load();
  const std::vector<double> usage = exec::parallel_reduce(
      0, host_load.size(), std::vector<double>{},
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> local;
        for (std::size_t m = lo; m < hi; ++m) {
          const std::vector<double> rel =
              relative_series(trace, host_load[m], metric, min_band);
          local.insert(local.end(), rel.begin(), rel.end());
        }
        return local;
      },
      [](std::vector<double>& acc, std::vector<double>&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      },
      /*grain=*/1);
  CGC_CHECK_MSG(!usage.empty(), "no usage samples");

  UsageMassCountReport report;
  report.metric = metric;
  report.min_band = min_band;
  report.mean_usage =
      stats::summarize(std::span<const double>(usage)).mean();
  // Zero samples have no mass; keep a floor so the mass CDF is defined.
  std::vector<double> positive = usage;
  std::erase_if(positive, [](double v) { return v <= 0.0; });
  CGC_CHECK_MSG(!positive.empty(), "all-zero usage");
  report.result = stats::mass_count_disparity(positive);

  const bool is_cpu = metric == Metric::kCpu;
  const bool all_bands = min_band == PriorityBand::kLow;
  report.figure.id = std::string(is_cpu ? "fig11" : "fig12") +
                     (all_bands ? "a" : "b");
  report.figure.title =
      std::string("Mass-count disparity of ") +
      std::string(metric_name(metric)) + " usage, " +
      (all_bands ? "all tasks" : "high-priority tasks") +
      (is_cpu ? " (Fig 11)" : " (Fig 12)");
  Series s;
  s.name = "mass_count";
  s.column_names = {"usage", "count_cdf", "mass_cdf"};
  for (const auto& row : stats::mass_count_plot(positive)) {
    s.add_row({row[0], row[1], row[2]});
  }
  report.figure.series.push_back(std::move(s));
  char note[160];
  std::snprintf(note, sizeof(note),
                "joint ratio=%.0f/%.0f mm-dist=%.0f%% mean usage=%.0f%%",
                report.result.joint_ratio_mass,
                report.result.joint_ratio_count,
                report.result.mm_distance * 100.0,
                report.mean_usage * 100.0);
  report.figure.annotations.push_back(note);
  return report;
}

// ---------------------------------------------------------------------------
// Fig 13
// ---------------------------------------------------------------------------

HostLoadComparison analyze_hostload_comparison(
    std::span<const trace::TraceSet* const> traces,
    std::size_t mean_filter_window) {
  HostLoadComparison comparison;
  for (const TraceSet* trace : traces) {
    HostLoadSystemStats sys;
    sys.system = trace->system_name();
    const auto host_load = trace->host_load();
    CGC_CHECK_MSG(!host_load.empty(),
                  "trace " + sys.system + " has no host load");

    std::vector<double> per_host_noise(host_load.size(), 0.0);
    std::vector<double> per_host_autocorr(host_load.size(), 0.0);
    // Map chunks fill disjoint per-host slots; the RunningStats pair
    // merges in chunk order so cluster-wide means are deterministic.
    using StatsPair = std::pair<stats::RunningStats, stats::RunningStats>;
    const StatsPair usage_stats = exec::parallel_reduce(
        0, host_load.size(), StatsPair{},
        [&](std::size_t lo, std::size_t hi) {
          StatsPair local;
          for (std::size_t m = lo; m < hi; ++m) {
            const std::vector<double> cpu = relative_series(
                *trace, host_load[m], Metric::kCpu, PriorityBand::kLow);
            const std::vector<double> mem = relative_series(
                *trace, host_load[m], Metric::kMem, PriorityBand::kLow);
            per_host_noise[m] =
                stats::noise_after_mean_filter(cpu, mean_filter_window)
                    .mean_abs;
            per_host_autocorr[m] = stats::autocorrelation(cpu, 1);
            for (const double v : cpu) {
              local.first.add(v);
            }
            for (const double v : mem) {
              local.second.add(v);
            }
          }
          return local;
        },
        [](StatsPair& acc, StatsPair&& part) {
          acc.first.merge(part.first);
          acc.second.merge(part.second);
        },
        /*grain=*/1);
    const stats::RunningStats& cpu_stats = usage_stats.first;
    const stats::RunningStats& mem_stats = usage_stats.second;

    const auto noise_summary =
        stats::summarize(std::span<const double>(per_host_noise));
    sys.noise_min = noise_summary.min();
    sys.noise_mean = noise_summary.mean();
    sys.noise_max = noise_summary.max();
    sys.mean_autocorrelation =
        stats::summarize(std::span<const double>(per_host_autocorr)).mean();
    sys.mean_cpu_usage = cpu_stats.mean();
    sys.mean_mem_usage = mem_stats.mean();

    // Representative machine: median mean-CPU machine.
    std::vector<std::pair<double, std::size_t>> by_usage;
    by_usage.reserve(host_load.size());
    for (std::size_t m = 0; m < host_load.size(); ++m) {
      const std::vector<double> cpu = relative_series(
          *trace, host_load[m], Metric::kCpu, PriorityBand::kLow);
      by_usage.emplace_back(
          stats::summarize(std::span<const double>(cpu)).mean(), m);
    }
    std::sort(by_usage.begin(), by_usage.end());
    const std::size_t mid = by_usage[by_usage.size() / 2].second;
    const HostLoadSeries& h = host_load[mid];
    sys.series_figure.id = "fig13_" + sanitize_name(sys.system);
    sys.series_figure.title =
        "Host load over time — " + sys.system + " (Fig 13)";
    Series s;
    s.name = "host_load";
    s.column_names = {"time_day", "cpu_usage", "mem_usage"};
    const std::vector<double> cpu =
        relative_series(*trace, h, Metric::kCpu, PriorityBand::kLow);
    const std::vector<double> mem =
        relative_series(*trace, h, Metric::kMem, PriorityBand::kLow);
    for (std::size_t i = 0; i < cpu.size(); ++i) {
      s.add_row({util::to_days(h.time_at(i)), cpu[i], mem[i]});
    }
    sys.series_figure.series.push_back(std::move(s));
    comparison.systems.push_back(std::move(sys));
  }

  if (comparison.systems.size() >= 2) {
    double grid_noise = 0.0;
    for (std::size_t i = 1; i < comparison.systems.size(); ++i) {
      grid_noise += comparison.systems[i].noise_mean;
    }
    grid_noise /= static_cast<double>(comparison.systems.size() - 1);
    if (grid_noise > 0.0) {
      comparison.cloud_to_grid_noise_ratio =
          comparison.systems[0].noise_mean / grid_noise;
    }
  }
  return comparison;
}

std::string HostLoadComparison::render() const {
  util::AsciiTable table({"system", "noise min", "noise mean", "noise max",
                          "autocorr(1)", "mean cpu", "mean mem"});
  table.set_caption("Host-load comparison (Fig 13)");
  for (const HostLoadSystemStats& s : systems) {
    table.add_row({s.system, util::cell(s.noise_min, 2),
                   util::cell(s.noise_mean, 3), util::cell(s.noise_max, 3),
                   util::cell(s.mean_autocorrelation, 3),
                   util::cell_pct(s.mean_cpu_usage),
                   util::cell_pct(s.mean_mem_usage)});
  }
  std::string out = table.render();
  if (cloud_to_grid_noise_ratio > 0.0) {
    out += "cloud/grid mean-noise ratio: " +
           util::cell(cloud_to_grid_noise_ratio, 3) + "\n";
  }
  return out;
}

}  // namespace cgc::analysis
