#include "analysis/load_modes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/hostload_analyzers.hpp"
#include "exec/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/timeseries.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cgc::analysis {

namespace {

constexpr std::size_t kDims = 4;

double sq_distance(const std::array<double, kDims>& a,
                   const std::array<double, kDims>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < kDims; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

std::vector<HostLoadFeatures> extract_host_features(
    const trace::TraceSet& trace) {
  const auto host_load = trace.host_load();
  CGC_CHECK_MSG(!host_load.empty(), "trace has no host load");
  // One machine per chunk: each slot is written exactly once, so the
  // fan-out is race free and the feature vector thread-count invariant.
  std::vector<HostLoadFeatures> features(host_load.size());
  exec::parallel_for(
      0, host_load.size(),
      [&](std::size_t m) {
        const auto machine = trace.machine_by_id(host_load[m].machine_id());
        CGC_CHECK(machine.has_value());
        const std::vector<double> cpu = host_load[m].cpu_relative(
            machine->cpu_capacity, trace::PriorityBand::kLow);
        const std::vector<double> mem = host_load[m].mem_relative(
            machine->mem_capacity, trace::PriorityBand::kLow);
        HostLoadFeatures& f = features[m];
        f.machine_id = host_load[m].machine_id();
        f.mean_cpu = stats::summarize(std::span<const double>(cpu)).mean();
        f.mean_mem = stats::summarize(std::span<const double>(mem)).mean();
        f.cpu_noise = stats::noise_after_mean_filter(cpu, 5).mean_abs;
        f.cpu_autocorr = stats::autocorrelation(cpu, 1);
      },
      /*grain=*/1);
  return features;
}

LoadModesResult analyze_load_modes(const trace::TraceSet& trace,
                                   std::size_t k, std::uint64_t seed,
                                   std::size_t max_iterations) {
  CGC_CHECK_MSG(k >= 1, "need at least one mode");
  LoadModesResult result;
  result.features = extract_host_features(trace);
  const std::size_t n = result.features.size();
  k = std::min(k, n);

  // z-normalize each dimension so noise (~1e-2) and usage (~1e-1..1)
  // contribute comparably.
  std::array<double, kDims> mean{}, stddev{};
  for (const HostLoadFeatures& f : result.features) {
    const auto v = f.as_vector();
    for (std::size_t d = 0; d < kDims; ++d) {
      mean[d] += v[d];
    }
  }
  for (double& m : mean) {
    m /= static_cast<double>(n);
  }
  for (const HostLoadFeatures& f : result.features) {
    const auto v = f.as_vector();
    for (std::size_t d = 0; d < kDims; ++d) {
      stddev[d] += (v[d] - mean[d]) * (v[d] - mean[d]);
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) {
      s = 1.0;  // constant dimension: contributes nothing either way
    }
  }
  std::vector<std::array<double, kDims>> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = result.features[i].as_vector();
    for (std::size_t d = 0; d < kDims; ++d) {
      points[i][d] = (v[d] - mean[d]) / stddev[d];
    }
  }

  // k-means++ style deterministic seeding: first centroid from the rng,
  // each next one the point farthest from its nearest centroid.
  util::Rng rng(seed);
  std::vector<std::array<double, kDims>> centroids;
  centroids.push_back(
      points[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(n) - 1))]);
  while (centroids.size() < k) {
    std::size_t farthest = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) {
        nearest = std::min(nearest, sq_distance(points[i], c));
      }
      if (nearest > best) {
        best = nearest;
        farthest = i;
      }
    }
    centroids.push_back(points[farthest]);
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best_c = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = sq_distance(points[i], centroids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    std::vector<std::array<double, kDims>> sums(centroids.size());
    std::vector<std::size_t> counts(centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < kDims; ++d) {
        sums[assignment[i]][d] += points[i][d];
      }
      ++counts[assignment[i]];
    }
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] > 0) {
        for (std::size_t d = 0; d < kDims; ++d) {
          centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  // Materialize modes (denormalized centroids), largest cluster first.
  result.modes.resize(centroids.size());
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    for (std::size_t d = 0; d < kDims; ++d) {
      result.modes[c].centroid[d] = centroids[c][d] * stddev[d] + mean[d];
    }
  }
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.modes[assignment[i]].machine_ids.push_back(
        result.features[i].machine_id);
    result.inertia += sq_distance(points[i], centroids[assignment[i]]);
  }
  for (LoadMode& mode : result.modes) {
    mode.share = static_cast<double>(mode.machine_ids.size()) /
                 static_cast<double>(n);
  }
  std::sort(result.modes.begin(), result.modes.end(),
            [](const LoadMode& a, const LoadMode& b) {
              return a.machine_ids.size() > b.machine_ids.size();
            });
  return result;
}

std::string LoadModesResult::render() const {
  util::AsciiTable table({"mode", "hosts", "share", "mean cpu", "mean mem",
                          "cpu noise", "autocorr"});
  table.set_caption("Host-load modes (k-means over per-host features)");
  for (std::size_t c = 0; c < modes.size(); ++c) {
    const LoadMode& m = modes[c];
    table.add_row({std::to_string(c + 1),
                   util::cell_int(static_cast<long long>(
                       m.machine_ids.size())),
                   util::cell_pct(m.share), util::cell_pct(m.centroid[0]),
                   util::cell_pct(m.centroid[1]),
                   util::cell(m.centroid[2], 3),
                   util::cell(m.centroid[3], 3)});
  }
  std::ostringstream out;
  out << table.render();
  out << "within-cluster inertia: " << inertia << "\n";
  return out.str();
}

}  // namespace cgc::analysis
