#include "analysis/workload_analyzers.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/fairness.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace cgc::analysis {

namespace {

/// Adds a named CDF series from a sample vector.
void add_cdf_series(Figure* fig, const std::string& name,
                    std::vector<double> sample, std::size_t max_points) {
  Series s;
  s.name = name;
  s.column_names = {"x", "cdf"};
  if (sample.empty()) {
    fig->series.push_back(std::move(s));
    return;
  }
  const stats::Ecdf ecdf(std::move(sample));
  for (const auto& [x, f] : ecdf.plot_points(max_points)) {
    s.add_row({x, f});
  }
  fig->series.push_back(std::move(s));
}

}  // namespace

std::int64_t PriorityHistogram::jobs_in_band(trace::PriorityBand band) const {
  std::int64_t total = 0;
  for (int p = 1; p <= trace::kNumPriorities; ++p) {
    if (trace::band_of(p) == band) {
      total += jobs[static_cast<std::size_t>(p - 1)];
    }
  }
  return total;
}

std::int64_t PriorityHistogram::tasks_in_band(trace::PriorityBand band) const {
  std::int64_t total = 0;
  for (int p = 1; p <= trace::kNumPriorities; ++p) {
    if (trace::band_of(p) == band) {
      total += tasks[static_cast<std::size_t>(p - 1)];
    }
  }
  return total;
}

Figure PriorityHistogram::to_figure() const {
  Figure fig;
  fig.id = "fig02";
  fig.title = "Number of jobs/tasks per priority (Fig 2)";
  Series s;
  s.name = "priority_counts";
  s.column_names = {"priority", "jobs", "tasks"};
  for (int p = 1; p <= trace::kNumPriorities; ++p) {
    s.add_row({static_cast<double>(p),
               static_cast<double>(jobs[static_cast<std::size_t>(p - 1)]),
               static_cast<double>(tasks[static_cast<std::size_t>(p - 1)])});
  }
  fig.series.push_back(std::move(s));
  return fig;
}

PriorityHistogram analyze_priorities(const trace::TraceSet& trace) {
  PriorityHistogram hist;
  for (const trace::Job& j : trace.jobs()) {
    ++hist.jobs[static_cast<std::size_t>(j.priority - 1)];
  }
  // Task counts fan out across shards (task arrays are large); the
  // ordered reduce sums integer partials, so the merge order is moot
  // but the exec contract keeps it deterministic anyway.
  const auto tasks = trace.tasks();
  using Counts = std::array<std::int64_t, trace::kNumPriorities>;
  const Counts task_counts = exec::parallel_reduce(
      0, tasks.size(), Counts{},
      [&](std::size_t lo, std::size_t hi) {
        Counts local{};
        for (std::size_t i = lo; i < hi; ++i) {
          ++local[static_cast<std::size_t>(tasks[i].priority - 1)];
        }
        return local;
      },
      [](Counts& acc, Counts&& part) {
        for (std::size_t p = 0; p < part.size(); ++p) {
          acc[p] += part[p];
        }
      });
  for (std::size_t p = 0; p < task_counts.size(); ++p) {
    hist.tasks[p] += task_counts[p];
  }
  return hist;
}

Figure analyze_job_length_cdf(
    std::span<const trace::TraceSet* const> traces, std::size_t max_points) {
  Figure fig;
  fig.id = "fig03";
  fig.title = "CDF of job length, Cloud vs Grid (Fig 3)";
  for (const trace::TraceSet* t : traces) {
    add_cdf_series(&fig, t->system_name(), t->job_lengths(), max_points);
  }
  return fig;
}

MassCountReport analyze_task_length_mass_count(const trace::TraceSet& trace) {
  MassCountReport report;
  report.system = trace.system_name();
  std::vector<double> durations = trace.task_run_durations();
  // Zero-length tasks carry no mass and break the positivity requirement.
  std::erase_if(durations, [](double d) { return d <= 0.0; });
  CGC_CHECK_MSG(!durations.empty(), "no completed tasks in " + report.system);
  report.result = stats::mass_count_disparity(durations);
  const auto summary =
      stats::summarize(std::span<const double>(durations));
  report.mean = summary.mean();
  report.max = summary.max();

  report.figure.id = "fig04_" + sanitize_name(report.system);
  report.figure.title =
      "Mass-count disparity of task lengths — " + report.system + " (Fig 4)";
  Series s;
  s.name = "mass_count";
  s.column_names = {"length_s", "count_cdf", "mass_cdf"};
  for (const auto& row : stats::mass_count_plot(durations)) {
    s.add_row({row[0], row[1], row[2]});
  }
  report.figure.series.push_back(std::move(s));
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "joint ratio=%.0f/%.0f mm-distance=%.3g s (%.3g days)",
                report.result.joint_ratio_mass,
                report.result.joint_ratio_count, report.result.mm_distance,
                report.result.mm_distance / 86400.0);
  report.figure.annotations.push_back(buf);
  return report;
}

Figure analyze_submission_interval_cdf(
    std::span<const trace::TraceSet* const> traces, std::size_t max_points) {
  Figure fig;
  fig.id = "fig05";
  fig.title = "CDF of job submission interval (Fig 5)";
  for (const trace::TraceSet* t : traces) {
    add_cdf_series(&fig, t->system_name(), t->submission_intervals(),
                   max_points);
  }
  return fig;
}

SubmissionStats analyze_submission_stats(const trace::TraceSet& trace) {
  SubmissionStats stats;
  stats.system = trace.system_name();
  const std::vector<double> hourly = trace.jobs_per_hour();
  CGC_CHECK_MSG(!hourly.empty(), "empty hourly counts");
  const auto summary = stats::summarize(std::span<const double>(hourly));
  stats.max_per_hour = summary.max();
  stats.avg_per_hour = summary.mean();
  stats.min_per_hour = summary.min();
  stats.fairness = stats::jain_fairness(hourly);
  return stats;
}

std::string render_submission_table(std::span<const SubmissionStats> rows) {
  util::AsciiTable table({"system", "max #/h", "avg #/h", "min #/h",
                          "fairness"});
  table.set_caption("Table I: the number of jobs submitted per hour");
  for (const SubmissionStats& r : rows) {
    table.add_row({r.system, util::cell(r.max_per_hour, 5),
                   util::cell(r.avg_per_hour, 4),
                   util::cell(r.min_per_hour, 3),
                   util::cell(r.fairness, 2)});
  }
  return table.render();
}

Figure analyze_job_cpu_usage_cdf(
    std::span<const trace::TraceSet* const> traces, std::size_t max_points) {
  Figure fig;
  fig.id = "fig06a";
  fig.title = "CDF of per-job CPU usage over all processors (Fig 6a)";
  for (const trace::TraceSet* t : traces) {
    add_cdf_series(&fig, t->system_name(), t->job_cpu_usage(), max_points);
  }
  return fig;
}

Figure analyze_job_mem_usage_cdf(
    std::span<const trace::TraceSet* const> traces,
    std::span<const double> cloud_capacity_gb, std::size_t max_points) {
  Figure fig;
  fig.id = "fig06b";
  fig.title = "CDF of per-job memory usage in MB (Fig 6b)";
  for (const trace::TraceSet* t : traces) {
    if (t->memory_in_mb()) {
      add_cdf_series(&fig, t->system_name(), t->job_mem_usage(), max_points);
    } else {
      // Normalized Cloud memory: expand under each what-if capacity.
      for (const double gb : cloud_capacity_gb) {
        char label[128];
        std::snprintf(label, sizeof(label), "%s (MaxCap=%.0fGB)",
                      t->system_name().c_str(), gb);
        add_cdf_series(&fig, label, t->job_mem_usage(gb), max_points);
      }
    }
  }
  return fig;
}

}  // namespace cgc::analysis
