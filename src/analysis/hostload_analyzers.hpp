// Host-load analyzers: Section IV of the paper (machines).
//
//   Fig 7      PDF of normalized maximum host load per capacity group
//   Fig 8      task events + queuing state on a host; completion mix
//   Fig 9      mass-count of unchanged running-queue-state durations
//   Fig 10     usage-level snapshot over sampled machines
//   Tables II/III  durations of unchanged CPU/memory usage level
//   Figs 11/12 mass-count of relative CPU/memory usage
//   Fig 13     Cloud-vs-Grid host-load series, noise, autocorrelation
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "stats/mass_count.hpp"
#include "stats/timeseries.hpp"
#include "trace/trace_set.hpp"

namespace cgc::analysis {

/// Which resource a host-load analyzer should look at.
enum class Metric : std::uint8_t { kCpu = 0, kMem = 1 };
std::string_view metric_name(Metric metric);

// ---- Fig 7 -------------------------------------------------------------------
struct MaxLoadDistribution {
  struct Group {
    double capacity = 0.0;
    std::vector<double> max_loads;  ///< one entry per machine in the group
  };
  /// Groups keyed by the relevant capacity (CPU groups for cpu,
  /// memory groups for mem/mem_assigned, the single page-cache group).
  std::vector<Group> cpu;
  std::vector<Group> mem;
  std::vector<Group> mem_assigned;
  std::vector<Group> page_cache;

  /// One figure per attribute, PDF histograms per capacity group.
  std::vector<Figure> to_figures(std::size_t num_bins = 40) const;
};

MaxLoadDistribution analyze_max_host_load(const trace::TraceSet& trace);

// ---- Fig 8 -------------------------------------------------------------------
struct QueueStateReport {
  std::int64_t machine_id = -1;
  /// Per-sample queue state on the machine: time, pending, running,
  /// cumulative finished, cumulative abnormal.
  Figure queue_figure;
  /// Task event timeline on the machine: time, slot, event code.
  Figure events_figure;
  /// Cluster-wide completion mix (the paper's 59.2% / 50% / 30.7%).
  double abnormal_fraction = 0.0;
  double fail_share_of_abnormal = 0.0;
  double kill_share_of_abnormal = 0.0;
  double evict_share_of_abnormal = 0.0;
  double lost_share_of_abnormal = 0.0;
  std::int64_t total_completions = 0;
};

/// `machine_id` < 0 picks the busiest machine.
QueueStateReport analyze_queue_state(const trace::TraceSet& trace,
                                     std::int64_t machine_id = -1);

// ---- Fig 9 -------------------------------------------------------------------
struct QueueRunMassCount {
  struct Bucket {
    int lo = 0;             ///< running-task interval [lo, hi]
    int hi = 0;
    std::size_t num_runs = 0;
    stats::MassCountResult mass_count;
  };
  std::vector<Bucket> buckets;
  Figure figure;  ///< count/mass curves per bucket
};

/// Run-length analysis of the per-machine running-task count, bucketed
/// into [0,9], [10,19], ..., [50,inf). Durations in minutes.
QueueRunMassCount analyze_queue_run_mass_count(const trace::TraceSet& trace);

// ---- Fig 10 -------------------------------------------------------------------
/// Usage-level snapshot: for `num_machines` sampled machines, the
/// quantized (5-level) relative usage over time.
/// Rows: time_day, machine_index, level.
Figure analyze_usage_snapshot(const trace::TraceSet& trace, Metric metric,
                              trace::PriorityBand min_band,
                              std::size_t num_machines = 50,
                              std::size_t time_stride = 6);

// ---- Tables II / III -------------------------------------------------------------
struct LevelDurationRow {
  std::size_t level = 0;   ///< usage interval [level*0.2, (level+1)*0.2)
  std::size_t num_runs = 0;
  double avg_minutes = 0.0;
  double max_minutes = 0.0;
  double joint_ratio_mass = 0.0;
  double joint_ratio_count = 0.0;
  double mm_distance_minutes = 0.0;
};

struct LevelDurationTable {
  Metric metric = Metric::kCpu;
  trace::PriorityBand min_band = trace::PriorityBand::kLow;
  std::array<LevelDurationRow, 5> rows{};
  std::string render() const;
};

/// Durations of unchanged (quantized) usage level across all machines,
/// per level (Tables II and III; min_band selects the all/mid+high/high
/// priority views discussed in the text).
LevelDurationTable analyze_level_durations(const trace::TraceSet& trace,
                                           Metric metric,
                                           trace::PriorityBand min_band);

// ---- Figs 11 / 12 ------------------------------------------------------------------
struct UsageMassCountReport {
  Metric metric = Metric::kCpu;
  trace::PriorityBand min_band = trace::PriorityBand::kLow;
  stats::MassCountResult result;
  double mean_usage = 0.0;  ///< mean relative usage over machine-samples
  Figure figure;
};

UsageMassCountReport analyze_usage_mass_count(const trace::TraceSet& trace,
                                              Metric metric,
                                              trace::PriorityBand min_band);

// ---- Fig 13 ------------------------------------------------------------------------
struct HostLoadSystemStats {
  std::string system;
  /// Per-host noise (mean |residual| after mean filtering of relative
  /// CPU usage), summarized across hosts.
  double noise_min = 0.0;
  double noise_mean = 0.0;
  double noise_max = 0.0;
  /// Mean lag-1 autocorrelation of relative CPU usage across hosts.
  double mean_autocorrelation = 0.0;
  /// Mean relative CPU / memory usage across all machine-samples.
  double mean_cpu_usage = 0.0;
  double mean_mem_usage = 0.0;
  /// Representative machine's series: time_day, cpu_rel, mem_rel.
  Figure series_figure;
};

struct HostLoadComparison {
  std::vector<HostLoadSystemStats> systems;
  /// Ratio of the first (Cloud) system's mean noise to the mean of the
  /// remaining (Grid) systems' mean noise.
  double cloud_to_grid_noise_ratio = 0.0;
  std::string render() const;
};

/// First trace is treated as the Cloud system.
HostLoadComparison analyze_hostload_comparison(
    std::span<const trace::TraceSet* const> traces,
    std::size_t mean_filter_window = 5);

}  // namespace cgc::analysis
