// Report primitives: plottable series and figure/table containers.
//
// Every analyzer produces one of these; bench harnesses render them as
// ASCII (for eyeballing against the paper) and as gnuplot-ready .dat
// files (for regenerating the actual plots).
#pragma once

#include <array>
#include <string>
#include <vector>

namespace cgc::analysis {

/// One named curve: rows of x and one or more y columns.
struct Series {
  std::string name;
  std::vector<std::string> column_names;  ///< e.g. {"x", "cdf"}
  std::vector<std::vector<double>> rows;

  void add_row(std::initializer_list<double> values);
};

/// A figure: several series plus free-form annotations (joint ratios,
/// mm-distances, ... — whatever the paper prints inside the plot).
struct Figure {
  std::string id;     ///< e.g. "fig04a"
  std::string title;
  std::vector<Series> series;
  std::vector<std::string> annotations;

  /// Writes one .dat file per series into `directory`
  /// (<id>_<series>.dat, '#'-commented header), creating it if needed.
  void write_dat(const std::string& directory) const;

  /// Short human-readable summary (title + annotations + series sizes).
  std::string describe() const;
};

/// Sanitizes a series/system name into a filename fragment.
std::string sanitize_name(const std::string& name);

}  // namespace cgc::analysis
