// Host-load mode clustering (extension).
//
// The paper's introduction motivates characterization with: "by
// characterizing common modes of host load within a data center, a job
// scheduler can use this information for task allocation and improve
// utilization". This analyzer extracts per-host feature vectors (mean
// CPU, mean memory, CPU noise, lag-1 autocorrelation) and clusters them
// with k-means, yielding the data center's load modes — e.g. the
// memory-heavy service hosts vs the bursty batch hosts of Fig 10's
// snapshot, or the pinned vs marginal nodes of a grid.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "trace/trace_set.hpp"

namespace cgc::analysis {

/// Per-host load features (the clustering space).
struct HostLoadFeatures {
  std::int64_t machine_id = 0;
  double mean_cpu = 0.0;   ///< mean relative CPU usage
  double mean_mem = 0.0;   ///< mean relative memory usage
  double cpu_noise = 0.0;  ///< mean |residual| after mean filtering
  double cpu_autocorr = 0.0;  ///< lag-1 autocorrelation

  std::array<double, 4> as_vector() const {
    return {mean_cpu, mean_mem, cpu_noise, cpu_autocorr};
  }
};

/// One discovered mode: a cluster of hosts with similar load behaviour.
struct LoadMode {
  std::array<double, 4> centroid{};  ///< feature-space center (normalized
                                     ///< back to raw units)
  std::vector<std::int64_t> machine_ids;
  double share = 0.0;  ///< fraction of hosts in this mode
};

struct LoadModesResult {
  std::vector<HostLoadFeatures> features;  ///< one entry per host
  std::vector<LoadMode> modes;             ///< k clusters, largest first
  double inertia = 0.0;  ///< total within-cluster squared distance
  std::string render() const;
};

/// Extracts per-host features from a host-load trace.
std::vector<HostLoadFeatures> extract_host_features(
    const trace::TraceSet& trace);

/// Clusters hosts into `k` load modes (k-means with deterministic
/// k-means++-style seeding; features are z-normalized internally).
LoadModesResult analyze_load_modes(const trace::TraceSet& trace,
                                   std::size_t k = 3,
                                   std::uint64_t seed = 7,
                                   std::size_t max_iterations = 100);

}  // namespace cgc::analysis
