#include "analysis/periodicity_analyzer.hpp"

#include <algorithm>
#include <cmath>

#include "exec/parallel.hpp"
#include "stats/descriptive.hpp"
#include "stats/periodicity.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

namespace cgc::analysis {

namespace {

/// Downsamples a fixed-period series to hourly means.
std::vector<double> hourly_means(const std::vector<double>& series,
                                 util::TimeSec period) {
  const std::size_t per_hour = static_cast<std::size_t>(
      std::max<util::TimeSec>(1, util::kSecondsPerHour / period));
  std::vector<double> hourly;
  hourly.reserve(series.size() / per_hour + 1);
  for (std::size_t i = 0; i + per_hour <= series.size(); i += per_hour) {
    double total = 0.0;
    for (std::size_t j = 0; j < per_hour; ++j) {
      total += series[i + j];
    }
    hourly.push_back(total / static_cast<double>(per_hour));
  }
  return hourly;
}

}  // namespace

PeriodicityReport analyze_periodicity(const trace::TraceSet& trace,
                                      Metric metric,
                                      std::size_t min_lag_hours,
                                      std::size_t max_lag_hours) {
  const auto host_load = trace.host_load();
  CGC_CHECK_MSG(!host_load.empty(), "trace has no host load");

  PeriodicityReport report;
  report.system = trace.system_name();
  report.metric = metric;
  report.num_hosts = host_load.size();

  /// Per-chunk accumulator for the ordered reduce: ACF sums combine in
  /// chunk (= machine) order so the summed floats — and the significant
  /// host lists — are identical at any thread count.
  struct Accum {
    std::vector<double> periods;  // significant hosts only
    std::vector<double> strengths;
    std::vector<double> acf_sum;
    std::size_t hosts = 0;
  };
  Accum init;
  init.acf_sum.assign(max_lag_hours, 0.0);
  const Accum acc = exec::parallel_reduce(
      0, host_load.size(), std::move(init),
      [&](std::size_t lo, std::size_t hi) {
        Accum local;
        local.acf_sum.assign(max_lag_hours, 0.0);
        for (std::size_t m = lo; m < hi; ++m) {
          const auto machine = trace.machine_by_id(host_load[m].machine_id());
          const std::vector<double> rel =
              metric == Metric::kCpu
                  ? host_load[m].cpu_relative(machine->cpu_capacity,
                                              trace::PriorityBand::kLow)
                  : host_load[m].mem_relative(machine->mem_capacity,
                                              trace::PriorityBand::kLow);
          const std::vector<double> hourly =
              hourly_means(rel, host_load[m].period());
          if (hourly.size() < 3 * max_lag_hours) {
            continue;
          }
          const auto acf =
              stats::autocorrelation_function(hourly, max_lag_hours);
          for (std::size_t l = 0; l < max_lag_hours; ++l) {
            local.acf_sum[l] += acf[l];
          }
          ++local.hosts;
          const auto result = stats::detect_periodicity(
              hourly, min_lag_hours, max_lag_hours);
          if (result.significant) {
            local.periods.push_back(
                static_cast<double>(result.dominant_period));
            local.strengths.push_back(result.strength);
          }
        }
        return local;
      },
      [max_lag_hours](Accum& a, Accum&& part) {
        a.periods.insert(a.periods.end(), part.periods.begin(),
                         part.periods.end());
        a.strengths.insert(a.strengths.end(), part.strengths.begin(),
                           part.strengths.end());
        for (std::size_t l = 0; l < max_lag_hours; ++l) {
          a.acf_sum[l] += part.acf_sum[l];
        }
        a.hosts += part.hosts;
      },
      /*grain=*/1);
  const std::vector<double>& periods = acc.periods;
  const std::vector<double>& strengths = acc.strengths;
  std::vector<double> mean_acf = acc.acf_sum;
  const std::size_t acf_hosts = acc.hosts;

  if (acf_hosts > 0) {
    for (double& v : mean_acf) {
      v /= static_cast<double>(acf_hosts);
    }
  }
  report.fraction_periodic =
      static_cast<double>(periods.size()) /
      static_cast<double>(report.num_hosts);
  if (!periods.empty()) {
    report.median_period_hours = stats::median(periods);
    report.mean_strength =
        stats::summarize(std::span<const double>(strengths)).mean();
  }

  report.acf_figure.id = "ext_acf_" + sanitize_name(report.system) + "_" +
                         std::string(metric_name(metric));
  report.acf_figure.title = "Mean hourly ACF of " +
                            std::string(metric_name(metric)) + " load — " +
                            report.system;
  Series s;
  s.name = "mean_acf";
  s.column_names = {"lag_hours", "acf"};
  for (std::size_t l = 0; l < max_lag_hours; ++l) {
    s.add_row({static_cast<double>(l + 1), mean_acf[l]});
  }
  report.acf_figure.series.push_back(std::move(s));
  return report;
}

std::string render_periodicity_row(const PeriodicityReport& report) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-24s %-7s periodic hosts: %5.1f%%  median period: %4.0f h"
                "  strength: %.2f",
                report.system.c_str(),
                std::string(metric_name(report.metric)).c_str(),
                report.fraction_periodic * 100.0,
                report.median_period_hours, report.mean_strength);
  return buf;
}

}  // namespace cgc::analysis
