#include "predict/evaluation.hpp"

#include <cmath>

#include "exec/parallel.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace cgc::predict {

namespace {

/// Shard-mergeable error accumulator.
struct ErrorAccumulator {
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double signed_sum = 0.0;
  std::size_t n = 0;

  void add(double predicted, double truth) {
    const double e = predicted - truth;
    abs_sum += std::abs(e);
    sq_sum += e * e;
    signed_sum += e;
    ++n;
  }
  void merge(const ErrorAccumulator& other) {
    abs_sum += other.abs_sum;
    sq_sum += other.sq_sum;
    signed_sum += other.signed_sum;
    n += other.n;
  }
  EvaluationResult finish(const std::string& name) const {
    EvaluationResult r;
    r.predictor = name;
    if (n > 0) {
      const double dn = static_cast<double>(n);
      r.mae = abs_sum / dn;
      r.rmse = std::sqrt(sq_sum / dn);
      r.bias = signed_sum / dn;
      r.num_predictions = n;
    }
    return r;
  }
};

void run_series(Predictor& predictor, std::span<const double> series,
                std::size_t warmup, ErrorAccumulator* acc) {
  predictor.reset();
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    predictor.observe(series[i]);
    if (i + 1 >= warmup) {
      acc->add(predictor.predict(), series[i + 1]);
    }
  }
}

}  // namespace

EvaluationResult evaluate_series(Predictor& predictor,
                                 std::span<const double> series,
                                 std::size_t warmup) {
  ErrorAccumulator acc;
  run_series(predictor, series, warmup, &acc);
  return acc.finish(predictor.name());
}

EvaluationResult evaluate_trace(
    const std::function<PredictorPtr()>& factory,
    const trace::TraceSet& trace, analysis::Metric metric,
    std::size_t warmup) {
  const auto host_load = trace.host_load();
  CGC_CHECK_MSG(!host_load.empty(), "trace has no host load");
  std::string name = factory()->name();
  // Each chunk runs its own predictor instance; partials merge in chunk
  // order so the reported errors are identical at any thread count.
  const ErrorAccumulator total = exec::parallel_reduce(
      0, host_load.size(), ErrorAccumulator{},
      [&](std::size_t lo, std::size_t hi) {
        PredictorPtr predictor = factory();
        ErrorAccumulator local;
        for (std::size_t m = lo; m < hi; ++m) {
          const auto machine = trace.machine_by_id(host_load[m].machine_id());
          const std::vector<double> series =
              metric == analysis::Metric::kCpu
                  ? host_load[m].cpu_relative(machine->cpu_capacity,
                                              trace::PriorityBand::kLow)
                  : host_load[m].mem_relative(machine->mem_capacity,
                                              trace::PriorityBand::kLow);
          run_series(*predictor, series, warmup, &local);
        }
        return local;
      },
      [](ErrorAccumulator& acc, ErrorAccumulator&& part) {
        acc.merge(part);
      },
      /*grain=*/1);
  return total.finish(name);
}

std::vector<EvaluationResult> evaluate_standard_suite(
    const trace::TraceSet& trace, analysis::Metric metric,
    std::size_t warmup) {
  std::vector<EvaluationResult> results;
  const std::size_t suite_size = standard_predictors().size();
  for (std::size_t i = 0; i < suite_size; ++i) {
    results.push_back(evaluate_trace(
        [i] { return std::move(standard_predictors()[i]); }, trace, metric,
        warmup));
  }
  return results;
}

std::string render_comparison(const std::string& system_a,
                              std::span<const EvaluationResult> a,
                              const std::string& system_b,
                              std::span<const EvaluationResult> b) {
  CGC_CHECK(a.size() == b.size());
  util::AsciiTable table({"predictor", system_a + " MAE", system_b + " MAE",
                          "ratio", system_a + " RMSE", system_b + " RMSE"});
  for (std::size_t i = 0; i < a.size(); ++i) {
    table.add_row({a[i].predictor, util::cell(a[i].mae, 3),
                   util::cell(b[i].mae, 3),
                   util::cell(b[i].mae > 0 ? a[i].mae / b[i].mae : 0.0, 3),
                   util::cell(a[i].rmse, 3), util::cell(b[i].rmse, 3)});
  }
  return table.render();
}

}  // namespace cgc::predict
