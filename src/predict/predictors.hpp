// Host-load predictors.
//
// The paper closes with: "In the future, we will try to exploit the
// best-fit load prediction method based on our characterization work."
// This module provides the classical one-step-ahead predictors that
// characterization work feeds into, plus an evaluation harness
// (evaluation.hpp) that quantifies the paper's Cloud-is-harder claim.
//
// All predictors are online: observe(x) then predict() the next sample.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace cgc::predict {

/// One-step-ahead online predictor.
class Predictor {
 public:
  virtual ~Predictor() = default;
  /// Clears all state (a new series begins).
  virtual void reset() = 0;
  /// Feeds the current observation.
  virtual void observe(double x) = 0;
  /// Predicts the next observation. Defined after >= 1 observation;
  /// returns 0 before any.
  virtual double predict() const = 0;
  virtual std::string name() const = 0;
};

using PredictorPtr = std::unique_ptr<Predictor>;

/// Predicts the last observed value (the noise-free optimum for a
/// random walk; the baseline every paper uses).
class LastValuePredictor final : public Predictor {
 public:
  void reset() override { last_ = 0.0; }
  void observe(double x) override { last_ = x; }
  double predict() const override { return last_; }
  std::string name() const override { return "last-value"; }

 private:
  double last_ = 0.0;
};

/// Mean of the last `window` observations.
class MovingAveragePredictor final : public Predictor {
 public:
  explicit MovingAveragePredictor(std::size_t window);
  void reset() override;
  void observe(double x) override;
  double predict() const override;
  std::string name() const override;

 private:
  std::size_t window_;
  std::deque<double> history_;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average with smoothing factor alpha.
class ExpSmoothingPredictor final : public Predictor {
 public:
  explicit ExpSmoothingPredictor(double alpha);
  void reset() override;
  void observe(double x) override;
  double predict() const override;
  std::string name() const override;

 private:
  double alpha_;
  double state_ = 0.0;
  bool initialized_ = false;
};

/// Adaptive AR(1): x̂_{t+1} = mu + phi (x_t - mu), with mu and phi
/// estimated online from running moments — the model the paper's
/// autocorrelation analysis motivates (Grid load: phi ~ 1; Cloud load:
/// phi small, so predictions shrink toward the mean).
class Ar1Predictor final : public Predictor {
 public:
  void reset() override;
  void observe(double x) override;
  double predict() const override;
  std::string name() const override { return "ar1"; }

  /// Current online estimate of the lag-1 coefficient.
  double phi() const;

 private:
  double last_ = 0.0;
  std::size_t count_ = 0;
  // Running moments for mean/variance and lag-1 covariance.
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double sum_lag_ = 0.0;  ///< sum of x_t * x_{t-1}
  double prev_ = 0.0;
};

/// Builds the standard predictor suite used by the evaluation harness.
std::vector<PredictorPtr> standard_predictors();

}  // namespace cgc::predict
