#include "predict/predictors.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/check.hpp"

namespace cgc::predict {

MovingAveragePredictor::MovingAveragePredictor(std::size_t window)
    : window_(window) {
  CGC_CHECK_MSG(window >= 1, "window must be >= 1");
}

void MovingAveragePredictor::reset() {
  history_.clear();
  sum_ = 0.0;
}

void MovingAveragePredictor::observe(double x) {
  history_.push_back(x);
  sum_ += x;
  if (history_.size() > window_) {
    sum_ -= history_.front();
    history_.pop_front();
  }
}

double MovingAveragePredictor::predict() const {
  if (history_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(history_.size());
}

std::string MovingAveragePredictor::name() const {
  return "moving-average(w=" + std::to_string(window_) + ")";
}

ExpSmoothingPredictor::ExpSmoothingPredictor(double alpha) : alpha_(alpha) {
  CGC_CHECK_MSG(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
}

void ExpSmoothingPredictor::reset() {
  state_ = 0.0;
  initialized_ = false;
}

void ExpSmoothingPredictor::observe(double x) {
  if (!initialized_) {
    state_ = x;
    initialized_ = true;
  } else {
    state_ = alpha_ * x + (1.0 - alpha_) * state_;
  }
}

double ExpSmoothingPredictor::predict() const { return state_; }

std::string ExpSmoothingPredictor::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "exp-smoothing(a=%.1f)", alpha_);
  return buf;
}

void Ar1Predictor::reset() {
  last_ = 0.0;
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  sum_lag_ = 0.0;
  prev_ = 0.0;
}

void Ar1Predictor::observe(double x) {
  if (count_ > 0) {
    sum_lag_ += prev_ * x;
  }
  sum_ += x;
  sum_sq_ += x * x;
  prev_ = x;
  last_ = x;
  ++count_;
}

double Ar1Predictor::phi() const {
  if (count_ < 3) {
    return 1.0;  // degenerate: behave like last-value until warmed up
  }
  const double n = static_cast<double>(count_);
  const double mean = sum_ / n;
  const double var = sum_sq_ / n - mean * mean;
  if (var <= 1e-12) {
    return 0.0;
  }
  const double cov =
      sum_lag_ / (n - 1.0) - mean * mean;  // lag-1 covariance estimate
  return std::clamp(cov / var, -1.0, 1.0);
}

double Ar1Predictor::predict() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double mean = sum_ / static_cast<double>(count_);
  return mean + phi() * (last_ - mean);
}

std::vector<PredictorPtr> standard_predictors() {
  std::vector<PredictorPtr> suite;
  suite.push_back(std::make_unique<LastValuePredictor>());
  suite.push_back(std::make_unique<MovingAveragePredictor>(3));
  suite.push_back(std::make_unique<MovingAveragePredictor>(12));
  suite.push_back(std::make_unique<ExpSmoothingPredictor>(0.3));
  suite.push_back(std::make_unique<ExpSmoothingPredictor>(0.7));
  suite.push_back(std::make_unique<Ar1Predictor>());
  return suite;
}

}  // namespace cgc::predict
