// Predictor evaluation over host-load traces.
//
// Turns the paper's qualitative "Cloud host load is harder to predict"
// into numbers: one-step-ahead error of each predictor over every
// machine's relative CPU (or memory) series.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "analysis/hostload_analyzers.hpp"
#include "predict/predictors.hpp"
#include "trace/trace_set.hpp"

namespace cgc::predict {

/// One-step-ahead error metrics.
struct EvaluationResult {
  std::string predictor;
  double mae = 0.0;   ///< mean absolute error
  double rmse = 0.0;  ///< root mean squared error
  double bias = 0.0;  ///< mean signed error (prediction - truth)
  std::size_t num_predictions = 0;
};

/// Evaluates one predictor over a single series. The first
/// `warmup` observations are fed without being scored.
EvaluationResult evaluate_series(Predictor& predictor,
                                 std::span<const double> series,
                                 std::size_t warmup = 3);

/// Evaluates a predictor over every machine's relative usage series in
/// `trace` (parallelized across machines; the factory builds one
/// predictor instance per machine shard).
EvaluationResult evaluate_trace(
    const std::function<PredictorPtr()>& factory,
    const trace::TraceSet& trace, analysis::Metric metric,
    std::size_t warmup = 3);

/// Runs the standard predictor suite over a trace; rows in suite order.
std::vector<EvaluationResult> evaluate_standard_suite(
    const trace::TraceSet& trace, analysis::Metric metric,
    std::size_t warmup = 3);

/// Renders a comparison table of two systems' suite results (e.g. Cloud
/// vs Grid), including the error ratio per predictor.
std::string render_comparison(
    const std::string& system_a, std::span<const EvaluationResult> a,
    const std::string& system_b, std::span<const EvaluationResult> b);

}  // namespace cgc::predict
