#include "plan/scenario.hpp"

#include <cinttypes>
#include <cstdio>

#include "sweep/partition.hpp"
#include "util/check.hpp"

namespace cgc::plan {

namespace {

/// Frozen float formatting for key() — %.10g round-trips every value a
/// matrix axis realistically uses and never prints locale-dependent
/// separators.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string_view remap_name(PriorityRemap remap) {
  switch (remap) {
    case PriorityRemap::kNone:
      return "none";
    case PriorityRemap::kFlatten:
      return "flatten";
    case PriorityRemap::kInvert:
      return "invert";
  }
  return "none";
}

std::string ScenarioSpec::key() const {
  CGC_CHECK_MSG(!workload.empty(), "scenario workload mix must be non-empty");
  std::string k;
  k.reserve(160);
  k += "fleet=" + std::to_string(fleet);
  k += ";horizon=" + std::to_string(horizon);
  k += ";workload=";
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (i > 0) {
      k += '+';
    }
    k += workload[i].model + ":" + fmt(workload[i].weight);
  }
  k += ";mix=" + fmt(hetero_mix);
  k += ";preempt=" + std::string(preemption ? "1" : "0");
  k += ";remap=" + std::string(remap_name(remap));
  k += ";place=" + std::string(sim::placement_name(placement));
  k += ";util=" + fmt(target_utilization);
  k += ";cost=" + fmt(cost_per_machine_hour);
  k += ";slo=" + fmt(slo_wait_s);
  k += ";seed=" + std::to_string(seed);
  return k;
}

std::string scenario_id(const ScenarioSpec& spec) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "s%016" PRIx64,
                sweep::stable_case_hash(spec.key()));
  return buf;
}

}  // namespace cgc::plan
