#include "plan/runner.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <unordered_map>

#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "gen/workload_model.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "plan/plan_io.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace cgc::plan {

namespace {

/// Per-component generator seed: a stable hash of (scenario key,
/// component index), so components decorrelate and a scenario's
/// workload never depends on anything outside its spec.
std::uint64_t component_seed(const ScenarioSpec& spec, std::size_t idx) {
  const std::uint64_t h =
      sweep::stable_case_hash(spec.key() + "|component|" +
                              std::to_string(idx));
  return h == 0 ? 1 : h;  // 0 means "keep the model default"; avoid it
}

std::uint8_t remap_priority(PriorityRemap remap, std::uint8_t priority) {
  switch (remap) {
    case PriorityRemap::kNone:
      return priority;
    case PriorityRemap::kFlatten:
      return 5;  // one mid tier: no preemption ladder left
    case PriorityRemap::kInvert:
      return static_cast<std::uint8_t>(13 - priority);
  }
  return priority;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.spec = spec;
  result.id = scenario_id(spec);
  obs::ScopedTimer timer("plan.scenario_ns");
  // Deterministic injection point for crash/retry tests: keyed on the
  // scenario id hash, so which scenarios fail is independent of thread
  // count, shard layout and execution order.
  fault::maybe_throw("plan.scenario_fail",
                     sweep::stable_case_hash(result.id),
                     fault::ErrorKind::kTransient);
  CGC_CHECK_MSG(spec.fleet > 0, "scenario fleet must be non-empty");
  CGC_CHECK_MSG(spec.horizon > 0, "scenario horizon must be positive");
  CGC_CHECK_MSG(spec.hetero_mix >= 0.0 && spec.hetero_mix <= 1.0,
                "hetero_mix must be in [0, 1]");

  // Machine park: hetero_mix of the fleet from the Google heterogeneous
  // capacity groups, the rest uniform grid nodes (all grid presets
  // build identical 1.0/1.0 nodes; auvergrid stands in for them).
  const std::size_t n_cloud = static_cast<std::size_t>(
      std::llround(spec.hetero_mix * static_cast<double>(spec.fleet)));
  const std::size_t n_grid = spec.fleet - n_cloud;
  std::vector<trace::Machine> machines;
  machines.reserve(spec.fleet);
  if (n_cloud > 0) {
    auto cloud = gen::make_workload_model("google", spec.seed);
    auto park = cloud->make_machines(n_cloud);
    machines.insert(machines.end(), park.begin(), park.end());
  }
  if (n_grid > 0) {
    auto grid = gen::make_workload_model("auvergrid", spec.seed);
    auto nodes = grid->make_machines(n_grid);
    machines.insert(machines.end(), nodes.begin(), nodes.end());
  }
  // Re-id the composed park: each model numbers its own machines from
  // 1, which would collide.
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].machine_id = static_cast<std::int64_t>(i + 1);
  }

  // Workload: each component generated at the rate its model would use
  // for weight * fleet machines, job ids offset per component, merged
  // by (submit, job, task) so the stream is one deterministic sequence.
  sim::SimConfig sim_config;
  bool pure_grid = spec.hetero_mix == 0.0;
  sim::Workload workload;
  for (std::size_t c = 0; c < spec.workload.size(); ++c) {
    const WorkloadComponent& component = spec.workload[c];
    CGC_CHECK_MSG(component.weight > 0.0,
                  "workload component weight must be positive");
    auto model =
        gen::make_workload_model(component.model, component_seed(spec, c));
    if (model->name() == "google") {
      pure_grid = false;
    } else if (pure_grid && c == 0) {
      // A pure grid cluster simulates with grid dynamics (no
      // preemption default, steady hosts); spec fields still override
      // below, so the preemption axis stays honest.
      model->apply_sim_defaults(&sim_config);
    }
    const std::size_t scaled = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               component.weight * static_cast<double>(spec.fleet))));
    sim::Workload part = model->generate_sim_workload(spec.horizon, scaled);
    const std::int64_t job_offset = static_cast<std::int64_t>(c) << 40;
    for (sim::TaskSpec& task : part) {
      task.job_id += job_offset;
      if (spec.remap != PriorityRemap::kNone) {
        task.priority = remap_priority(spec.remap, task.priority);
      }
      workload.push_back(task);
    }
  }
  std::sort(workload.begin(), workload.end(),
            [](const sim::TaskSpec& a, const sim::TaskSpec& b) {
              if (a.submit_time != b.submit_time) {
                return a.submit_time < b.submit_time;
              }
              if (a.job_id != b.job_id) {
                return a.job_id < b.job_id;
              }
              return a.task_index < b.task_index;
            });

  // Fast path: planning reads host-load samples and SimStats only.
  sim_config.horizon = spec.horizon;
  sim_config.placement = spec.placement;
  sim_config.preemption = spec.preemption;
  sim_config.record_events = false;
  sim_config.record_tasks = false;
  sim_config.record_host_load = true;
  sim_config.seed = spec.seed;

  sim::ClusterSim sim(std::move(machines), sim_config);
  const trace::TraceSet trace = sim.run(workload, "plan-" + result.id);
  result.score = score_run(spec, trace, sim.stats());
  result.ok = true;
  if (obs::metrics_enabled()) {
    static obs::Counter& scenarios = obs::counter("plan.scenarios");
    scenarios.add(1);
  }
  return result;
}

PlanRunner::PlanRunner(ScenarioMatrix matrix, PlanConfig config)
    : matrix_(std::move(matrix)), config_(std::move(config)) {
  CGC_CHECK_MSG(config_.checkpoint_batch > 0,
                "checkpoint batch must be positive");
  for (std::size_t i = 0; i < matrix_.scenarios.size(); ++i) {
    if (sweep::owns(config_.shard, scenario_id(matrix_.scenarios[i]))) {
      owned_.push_back(i);
    }
  }
}

std::vector<ScenarioResult> PlanRunner::run() {
  resumed_ = 0;
  const std::uint64_t digest = matrix_.digest();
  std::unordered_map<std::string, ScenarioResult> done;

  const bool checkpointing = !config_.out_dir.empty();
  std::string path;
  if (checkpointing) {
    std::filesystem::create_directories(config_.out_dir);
    path = shard_results_path(config_.out_dir, config_.shard);
  }
  if (checkpointing && config_.resume) {
    ShardResults prev;
    const ReadStatus status = read_results(path, matrix_, &prev);
    if (status == ReadStatus::kCorrupt) {
      // Torn checkpoint: quarantine it and start the shard over — the
      // same loud-but-resumable policy as the sweep driver.
      const std::string quarantined = path + ".corrupt";
      std::error_code ec;
      std::filesystem::rename(path, quarantined, ec);
      CGC_LOG(kWarn) << "plan: quarantined torn checkpoint " << path;
    } else if (status == ReadStatus::kOk) {
      if (prev.matrix_digest != digest) {
        throw util::DataError(
            "--resume: checkpoint " + path +
            " belongs to a different matrix (digest mismatch); remove it "
            "or point --out elsewhere");
      }
      for (ScenarioResult& r : prev.results) {
        if (r.ok) {  // failed scenarios are retried, not resumed
          done.emplace(r.id, std::move(r));
        }
      }
      resumed_ = done.size();
    }
  }

  std::vector<std::size_t> pending;
  for (const std::size_t idx : owned_) {
    if (done.find(scenario_id(matrix_.scenarios[idx])) == done.end()) {
      pending.push_back(idx);
    }
  }

  const auto snapshot = [&](bool complete) {
    ShardResults out;
    out.matrix_name = matrix_.name;
    out.matrix_digest = digest;
    out.shard = config_.shard;
    out.complete = complete;
    for (const std::size_t idx : owned_) {
      const auto it = done.find(scenario_id(matrix_.scenarios[idx]));
      if (it != done.end()) {
        out.results.push_back(it->second);
      }
    }
    return out;
  };

  for (std::size_t start = 0; start < pending.size();
       start += config_.checkpoint_batch) {
    const std::size_t count =
        std::min(config_.checkpoint_batch, pending.size() - start);
    // parallel_map returns results in index order — the batch's outcome
    // is independent of CGC_THREADS by construction.
    std::vector<ScenarioResult> batch =
        exec::parallel_map<ScenarioResult>(count, [&](std::size_t i) {
          const ScenarioSpec& spec =
              matrix_.scenarios[pending[start + i]];
          try {
            return run_scenario(spec);
          } catch (const util::TransientError& e) {
            ScenarioResult failed;
            failed.spec = spec;
            failed.id = scenario_id(spec);
            failed.error = std::string("transient: ") + e.what();
            return failed;
          } catch (const util::DataError& e) {
            ScenarioResult failed;
            failed.spec = spec;
            failed.id = scenario_id(spec);
            failed.error = std::string("data: ") + e.what();
            return failed;
          }
        },
        /*grain=*/1);  // scenarios are seconds each; never batch them
    for (ScenarioResult& r : batch) {
      done.emplace(r.id, std::move(r));
    }
    if (checkpointing) {
      write_results(path, snapshot(start + count >= pending.size()));
    }
  }
  if (checkpointing && pending.empty()) {
    // Nothing ran (fully resumed shard): still reseal as complete so a
    // later --merge sees a finished shard.
    write_results(path, snapshot(true));
  }
  return snapshot(true).results;
}

}  // namespace cgc::plan
