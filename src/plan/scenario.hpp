// cgc::plan — declarative what-if capacity-planning scenarios.
//
// The paper motivates characterization with resource management:
// consolidate load, "use fewer machines and shut off unneeded hosts".
// Answering that question requires comparing many configurations, not
// one — scheduler policy x workload mix x fleet size x preemption x
// priority scheme. A ScenarioSpec is the declarative unit of that
// comparison: everything a simulation run depends on, in one value
// type, identified by a pure stable hash (scenario_id) so shards,
// checkpoints and resumed runs agree on which scenario is which
// without coordination — the same contract as sweep::stable_case_hash,
// and built on it.
//
// Workload mixes are expressed through gen::WorkloadModel names, so a
// scenario can blend Cloud and Grid load ("google:0.7 + auvergrid:0.3")
// or cross-replay one system's workload on the other's machine park
// (Grid-on-Cloud: a grid model with hetero_mix = 1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "util/time_util.hpp"

namespace cgc::plan {

/// Priority-scheme what-ifs applied to the generated workload before
/// simulation (the paper's Section II priorities are 1..12).
enum class PriorityRemap : std::uint8_t {
  kNone = 0,     ///< keep the model's calibrated priorities
  kFlatten = 1,  ///< squash every task to one mid priority (no tiers)
  kInvert = 2,   ///< reverse the ladder (priority p -> 13 - p)
};

/// Short stable name of a remap ("none", "flatten", "invert").
std::string_view remap_name(PriorityRemap remap);

/// One workload source in a scenario's mix: a gen::WorkloadModel name
/// and its share of the fleet-scaled load.
struct WorkloadComponent {
  /// Model name accepted by gen::make_workload_model() ("google",
  /// "auvergrid", ...).
  std::string model = "google";
  /// Load share in (0, 1]: the component's task stream is generated at
  /// the rate the model would use for weight * fleet machines.
  double weight = 1.0;
};

/// Everything one simulated what-if run depends on. Axis fields first
/// (what matrices expand), then scoring/cost knobs. Two specs with the
/// same key() are the same scenario by construction.
struct ScenarioSpec {
  /// Machines in the simulated park.
  std::size_t fleet = 64;
  /// Simulation horizon (exclusive), seconds.
  util::TimeSec horizon = util::kSecondsPerDay;
  /// Workload mix (non-empty; weights need not sum to 1 — each
  /// component scales independently, so 2x load is expressible).
  std::vector<WorkloadComponent> workload{WorkloadComponent{}};
  /// Machine-park heterogeneity: fraction of the fleet drawn from the
  /// Google heterogeneous capacity groups; the rest are uniform grid
  /// nodes. 1 = pure Cloud park, 0 = pure Grid cluster. Cross-replays
  /// are this knob: a grid workload with hetero_mix = 1 is
  /// Grid-on-Cloud, a google workload with hetero_mix = 0 is
  /// Cloud-on-Grid.
  double hetero_mix = 1.0;
  /// Scheduler preemption (SimConfig::preemption).
  bool preemption = true;
  /// Priority-scheme what-if (see PriorityRemap).
  PriorityRemap remap = PriorityRemap::kNone;
  /// Machine-selection policy (SimConfig::placement).
  sim::PlacementPolicy placement = sim::PlacementPolicy::kBalanced;
  /// Consolidation target: planning windows are sized so the packed
  /// fleet would run at this utilization (capacity_planner's knob).
  double target_utilization = 0.75;
  /// Linear cost model: dollars per machine-hour of provisioned fleet.
  double cost_per_machine_hour = 0.04;
  /// Queue-wait SLO (seconds): a placement attains the SLO when its
  /// pending wait lands within this bound.
  double slo_wait_s = 300.0;
  /// Root seed for the scenario's generators and simulator.
  std::uint64_t seed = 42;

  /// Canonical axis string — the hash input of scenario_id() and the
  /// matrix digest. Field order and float formatting are frozen;
  /// changing either re-ids every scenario (strands old shard dirs,
  /// like changing sweep::stable_case_hash would).
  std::string key() const;
};

/// Stable scenario identifier: "s" + 16 hex digits of
/// sweep::stable_case_hash(spec.key()). Pure in the spec; independent
/// of matrix position, thread count and process.
std::string scenario_id(const ScenarioSpec& spec);

}  // namespace cgc::plan
