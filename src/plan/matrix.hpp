// ScenarioMatrix — axis cross-products of ScenarioSpecs.
//
// A planning run compares hundreds of scenarios; writing them out by
// hand does not scale and invites skew between "what ran" and "what the
// report claims ran". MatrixBuilder expands declared axis values into
// the full cross-product in a frozen axis order, so a matrix is a pure
// function of its axes: same axes -> same scenarios, same order, same
// digest — on every machine, shard and thread count. The digest is the
// handshake between shard workers and --merge (plan_io.hpp): results
// files stamped with different digests are different experiments and
// refuse to fuse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plan/scenario.hpp"

namespace cgc::plan {

/// A workload axis value: the mix plus the machine-park heterogeneity
/// that goes with it (the two travel together — a pure grid workload on
/// a grid park and its Grid-on-Cloud cross-replay are different axis
/// values, not different axes).
struct WorkloadProfile {
  /// Profile label used in logs ("google", "blend-70-30", ...).
  std::string name;
  /// The mix components (ScenarioSpec::workload).
  std::vector<WorkloadComponent> components;
  /// Park heterogeneity (ScenarioSpec::hetero_mix).
  double hetero_mix = 1.0;
};

/// An expanded scenario matrix: specs in frozen cross-product order.
struct ScenarioMatrix {
  /// Human-readable matrix name ("default", "small", ...).
  std::string name;
  /// Expanded scenarios. Index order is the canonical result order of
  /// every plan artifact.
  std::vector<ScenarioSpec> scenarios;

  /// Stable digest over every scenario key in order (sharding/merge
  /// handshake). Pure in the expanded specs.
  std::uint64_t digest() const;
};

/// Declarative matrix builder. Every axis has a default single value
/// (the ScenarioSpec default), so a builder with no axes set expands to
/// one scenario. Expansion order is frozen: fleets (outermost), then
/// workload profiles, placements, preemptions, remaps, target
/// utilizations (innermost) — changing this order re-orders results
/// everywhere, so don't.
class MatrixBuilder {
 public:
  /// Starts a matrix with the given name and a base spec whose
  /// non-axis fields (horizon, cost, SLO, seed) every expanded
  /// scenario inherits.
  MatrixBuilder(std::string name, ScenarioSpec base);

  /// Sets the fleet-size axis (machine counts).
  MatrixBuilder& fleets(std::vector<std::size_t> values);
  /// Sets the workload axis (mix + park heterogeneity pairs).
  MatrixBuilder& workloads(std::vector<WorkloadProfile> values);
  /// Sets the placement-policy axis.
  MatrixBuilder& placements(std::vector<sim::PlacementPolicy> values);
  /// Sets the preemption axis.
  MatrixBuilder& preemptions(std::vector<bool> values);
  /// Sets the priority-remap axis.
  MatrixBuilder& remaps(std::vector<PriorityRemap> values);
  /// Sets the consolidation-target axis.
  MatrixBuilder& target_utilizations(std::vector<double> values);

  /// Expands the cross-product. Throws util::FatalError if any axis is
  /// empty (an explicitly empty axis is a spec bug, not "default").
  ScenarioMatrix build() const;

 private:
  std::string name_;
  ScenarioSpec base_;
  std::vector<std::size_t> fleets_;
  std::vector<WorkloadProfile> workloads_;
  std::vector<sim::PlacementPolicy> placements_;
  std::vector<bool> preemptions_;
  std::vector<PriorityRemap> remaps_;
  std::vector<double> target_utilizations_;
};

/// The shipping what-if matrix: 4 fleets x 3 workload profiles (pure
/// cloud, pure grid, 70/30 blend) x 4 placements x preemption on/off x
/// 3 remaps x 2 consolidation targets = 576 scenarios over `horizon`.
ScenarioMatrix default_matrix(util::TimeSec horizon);

/// An 8-scenario matrix for tests and CI smoke runs: 1 fleet x 2
/// profiles (cloud-on-cloud and the Grid-on-Cloud cross-replay) x 2
/// placements x preemption on/off.
ScenarioMatrix small_matrix(util::TimeSec horizon);

}  // namespace cgc::plan
