#include "plan/plan_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "store/encoding.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace cgc::plan {

namespace {

/// Exact-round-trip double formatting for checkpoint files: 17
/// significant digits reproduce the bit pattern through strtod.
std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Display formatting for plan.json — readable, and deterministic
/// because the input doubles are bit-identical however the run was
/// executed.
std::string fmt10(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string workload_str(const ScenarioSpec& spec) {
  std::string out;
  for (std::size_t i = 0; i < spec.workload.size(); ++i) {
    if (i > 0) {
      out += '+';
    }
    out += spec.workload[i].model + ":" + fmt10(spec.workload[i].weight);
  }
  return out;
}

/// The 17 score fields, in frozen serialization order.
void score_values(const ScenarioScore& s, double out[17]) {
  out[0] = s.cpu_util_mean;
  out[1] = s.cpu_util_peak;
  out[2] = s.mem_util_mean;
  out[3] = s.mem_util_peak;
  out[4] = s.eviction_rate;
  out[5] = s.wait_p50_s;
  out[6] = s.wait_p90_s;
  out[7] = s.wait_p99_s;
  out[8] = s.wait_mean_s;
  out[9] = s.machines_needed;
  out[10] = s.headroom;
  out[11] = s.machine_hours;
  out[12] = s.cost_usd;
  out[13] = s.consolidated_cost_usd;
  out[14] = s.slo_attainment;
  out[15] = s.cpu_hours_delivered;
  out[16] = s.usd_per_slo;
}

void score_from_values(const double in[17], ScenarioScore* s) {
  s->cpu_util_mean = in[0];
  s->cpu_util_peak = in[1];
  s->mem_util_mean = in[2];
  s->mem_util_peak = in[3];
  s->eviction_rate = in[4];
  s->wait_p50_s = in[5];
  s->wait_p90_s = in[6];
  s->wait_p99_s = in[7];
  s->wait_mean_s = in[8];
  s->machines_needed = in[9];
  s->headroom = in[10];
  s->machine_hours = in[11];
  s->cost_usd = in[12];
  s->consolidated_cost_usd = in[13];
  s->slo_attainment = in[14];
  s->cpu_hours_delivered = in[15];
  s->usd_per_slo = in[16];
}

std::uint32_t content_crc(const std::string& content) {
  return store::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(content.data()),
      content.size()));
}

/// JSON fragment for one score (plan.json display precision).
std::string score_json(const ScenarioScore& s) {
  static constexpr const char* kNames[17] = {
      "cpu_util_mean",       "cpu_util_peak",
      "mem_util_mean",       "mem_util_peak",
      "eviction_rate",       "wait_p50_s",
      "wait_p90_s",          "wait_p99_s",
      "wait_mean_s",         "machines_needed",
      "headroom",            "machine_hours",
      "cost_usd",            "consolidated_cost_usd",
      "slo_attainment",      "cpu_hours_delivered",
      "usd_per_slo"};
  double values[17];
  score_values(s, values);
  std::string out = "{";
  for (int i = 0; i < 17; ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += std::string("\"") + kNames[i] + "\": " + fmt10(values[i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string shard_results_path(const std::string& out_dir,
                               const sweep::ShardSpec& spec) {
  return out_dir + "/plan-shard-" + std::to_string(spec.index) + "-of-" +
         std::to_string(spec.total) + ".cgcp";
}

void write_results(const std::string& path, const ShardResults& results) {
  std::string content;
  content.reserve(256 + results.results.size() * 360);
  content += "cgcplan v1\n";
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64,
                results.matrix_digest);
  content += "matrix " + results.matrix_name + " " + digest_hex + "\n";
  content += "shard " + results.shard.str() + "\n";
  content += std::string("complete ") + (results.complete ? "1" : "0") + "\n";
  for (const ScenarioResult& r : results.results) {
    content += "R " + r.id;
    if (r.ok) {
      double values[17];
      score_values(r.score, values);
      content += " 1";
      for (const double v : values) {
        content += ' ';
        content += fmt17(v);
      }
      content += "\n";
    } else {
      std::string error = r.error;
      std::replace(error.begin(), error.end(), '\n', ' ');
      content += " 0 " + error + "\n";
    }
  }
  char crc_hex[12];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", content_crc(content));
  content += "end ";
  content += crc_hex;
  content += '\n';

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << content) || !out.flush()) {
      throw util::TransientError("cannot write " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::TransientError("cannot rename " + tmp + " -> " + path +
                               ": " + ec.message());
  }
}

ReadStatus read_results(const std::string& path, const ScenarioMatrix& matrix,
                        ShardResults* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ReadStatus::kMissing;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();

  // The file must end with a sealed "end <crc>\n" line over everything
  // before it; anything else is a torn write.
  const std::string::size_type tail = raw.rfind("end ");
  if (tail == std::string::npos || raw.empty() || raw.back() != '\n' ||
      (tail != 0 && raw[tail - 1] != '\n')) {
    return ReadStatus::kCorrupt;
  }
  const std::string content = raw.substr(0, tail);
  const std::string crc_line = raw.substr(tail + 4);
  char expected_hex[12];
  std::snprintf(expected_hex, sizeof(expected_hex), "%08x",
                content_crc(content));
  if (crc_line != std::string(expected_hex) + "\n") {
    return ReadStatus::kCorrupt;
  }

  std::unordered_map<std::string, std::size_t> index;
  index.reserve(matrix.scenarios.size());
  for (std::size_t i = 0; i < matrix.scenarios.size(); ++i) {
    index.emplace(scenario_id(matrix.scenarios[i]), i);
  }

  ShardResults parsed;
  bool foreign = false;
  std::vector<std::pair<std::size_t, ScenarioResult>> rows;
  std::istringstream lines(content);
  std::string line;
  bool have_header = false;
  while (std::getline(lines, line)) {
    if (line == "cgcplan v1") {
      have_header = true;
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "matrix") {
      std::string digest_hex;
      fields >> parsed.matrix_name >> digest_hex;
      parsed.matrix_digest =
          std::strtoull(digest_hex.c_str(), nullptr, 16);
      // A sealed checkpoint of a different matrix is not corruption:
      // report kOk with the stamped digest and no results — the caller
      // classifies (DataError on resume/merge). Its ids would not map
      // onto this matrix, so R lines are skipped below.
      foreign = parsed.matrix_digest != matrix.digest();
    } else if (tag == "shard") {
      std::string spec;
      fields >> spec;
      try {
        parsed.shard = sweep::parse_shard_spec(spec);
      } catch (const util::Error&) {
        return ReadStatus::kCorrupt;
      }
    } else if (tag == "complete") {
      int flag = 0;
      fields >> flag;
      parsed.complete = flag != 0;
    } else if (tag == "R") {
      if (foreign) {
        continue;
      }
      ScenarioResult r;
      int ok = 0;
      fields >> r.id >> ok;
      if (fields.fail()) {
        return ReadStatus::kCorrupt;
      }
      const auto it = index.find(r.id);
      if (it == index.end()) {
        return ReadStatus::kCorrupt;  // not a scenario of this matrix
      }
      r.spec = matrix.scenarios[it->second];
      r.ok = ok != 0;
      if (r.ok) {
        double values[17];
        for (double& v : values) {
          fields >> v;
        }
        if (fields.fail()) {
          return ReadStatus::kCorrupt;
        }
        score_from_values(values, &r.score);
      } else {
        std::getline(fields >> std::ws, r.error);
      }
      rows.emplace_back(it->second, std::move(r));
    } else if (!tag.empty()) {
      return ReadStatus::kCorrupt;
    }
  }
  if (!have_header) {
    return ReadStatus::kCorrupt;
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].first == rows[i - 1].first) {
      return ReadStatus::kCorrupt;  // duplicate scenario in one file
    }
  }
  parsed.results.reserve(rows.size());
  for (auto& [idx, r] : rows) {
    parsed.results.push_back(std::move(r));
  }
  *out = std::move(parsed);
  return ReadStatus::kOk;
}

std::vector<ScenarioResult> merge_results(
    const ScenarioMatrix& matrix, const std::vector<ShardResults>& shards) {
  const std::uint64_t digest = matrix.digest();
  std::vector<std::optional<ScenarioResult>> slots(matrix.scenarios.size());
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(matrix.scenarios.size());
  for (std::size_t i = 0; i < matrix.scenarios.size(); ++i) {
    index.emplace(scenario_id(matrix.scenarios[i]), i);
  }

  for (const ShardResults& shard : shards) {
    if (shard.matrix_digest != digest) {
      throw util::DataError(
          "merge conflict: shard " + shard.shard.str() +
          " was produced by a different matrix (digest mismatch)");
    }
    if (!shard.complete) {
      throw util::TransientError("shard " + shard.shard.str() +
                                 " is incomplete — rerun it, then merge");
    }
    for (const ScenarioResult& r : shard.results) {
      if (!sweep::owns(shard.shard, r.id)) {
        throw util::DataError("merge conflict: shard " + shard.shard.str() +
                              " reports scenario " + r.id +
                              " it does not own");
      }
      const std::size_t slot = index.at(r.id);
      if (slots[slot].has_value()) {
        throw util::DataError("merge conflict: scenario " + r.id +
                              " appears in more than one shard");
      }
      slots[slot] = r;
    }
  }

  std::vector<ScenarioResult> all;
  all.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].has_value()) {
      throw util::TransientError(
          "merge incomplete: scenario " +
          scenario_id(matrix.scenarios[i]) +
          " is missing — run its shard, then merge again");
    }
    all.push_back(std::move(*slots[i]));
  }
  return all;
}

std::string render_plan_json(const ScenarioMatrix& matrix,
                             const std::vector<ScenarioResult>& results) {
  if (results.size() != matrix.scenarios.size()) {
    throw util::FatalError("render_plan_json needs the full matrix (" +
                           std::to_string(matrix.scenarios.size()) +
                           " scenarios, got " +
                           std::to_string(results.size()) + ")");
  }
  char digest_hex[20];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64,
                matrix.digest());

  std::string out;
  out.reserve(512 + results.size() * 700);
  out += "{\n";
  out += "  \"matrix\": {\"name\": \"" + json_escape(matrix.name) +
         "\", \"digest\": \"" + digest_hex + "\", \"scenarios\": " +
         std::to_string(matrix.scenarios.size()) + "},\n";

  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    const ScenarioSpec& s = r.spec;
    out += "    {\"id\": \"" + r.id + "\", \"fleet\": " +
           std::to_string(s.fleet) + ", \"horizon_s\": " +
           std::to_string(s.horizon) + ", \"workload\": \"" +
           workload_str(s) + "\", \"hetero_mix\": " + fmt10(s.hetero_mix) +
           ", \"preemption\": " + (s.preemption ? "true" : "false") +
           ", \"remap\": \"" + std::string(remap_name(s.remap)) +
           "\", \"placement\": \"" +
           std::string(sim::placement_name(s.placement)) +
           "\", \"target_utilization\": " + fmt10(s.target_utilization) +
           ", \"cost_per_machine_hour\": " + fmt10(s.cost_per_machine_hour) +
           ", \"slo_wait_s\": " + fmt10(s.slo_wait_s) +
           ", \"seed\": " + std::to_string(s.seed) + ", \"ok\": " +
           (r.ok ? "true" : "false");
    if (r.ok) {
      out += ", \"score\": " + score_json(r.score);
    } else {
      out += ", \"error\": \"" + json_escape(r.error) + "\"";
    }
    out += i + 1 < results.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  // Frontier over the scenarios that produced a score, ids in matrix
  // order (pareto_frontier preserves input order).
  std::vector<ScenarioScore> ok_scores;
  std::vector<std::size_t> ok_index;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok) {
      ok_scores.push_back(results[i].score);
      ok_index.push_back(i);
    }
  }
  const std::vector<std::size_t> frontier = pareto_frontier(ok_scores);
  out += "  \"frontier\": [";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "\"" + results[ok_index[frontier[i]]].id + "\"";
  }
  out += "],\n";

  // $/SLO ranking: defined costs ascending, undefined last, ids break
  // ties so the order is total.
  std::vector<std::size_t> rank(ok_index);
  std::sort(rank.begin(), rank.end(),
            [&results](std::size_t a, std::size_t b) {
              const double ca = results[a].score.usd_per_slo;
              const double cb = results[b].score.usd_per_slo;
              const bool da = ca >= 0.0;
              const bool db = cb >= 0.0;
              if (da != db) {
                return da;
              }
              if (da && ca != cb) {
                return ca < cb;
              }
              return results[a].id < results[b].id;
            });
  out += "  \"ranking\": [\n";
  for (std::size_t i = 0; i < rank.size(); ++i) {
    const ScenarioResult& r = results[rank[i]];
    out += "    {\"id\": \"" + r.id + "\", \"usd_per_slo\": " +
           fmt10(r.score.usd_per_slo) + ", \"consolidated_cost_usd\": " +
           fmt10(r.score.consolidated_cost_usd) + ", \"slo_attainment\": " +
           fmt10(r.score.slo_attainment) + ", \"machines_needed\": " +
           fmt10(r.score.machines_needed) + "}";
    out += i + 1 < rank.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string render_comparison_table(
    const std::vector<ScenarioResult>& results, std::size_t top_n) {
  std::vector<const ScenarioResult*> ranked;
  for (const ScenarioResult& r : results) {
    if (r.ok) {
      ranked.push_back(&r);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ScenarioResult* a, const ScenarioResult* b) {
              const double ca = a->score.usd_per_slo;
              const double cb = b->score.usd_per_slo;
              const bool da = ca >= 0.0;
              const bool db = cb >= 0.0;
              if (da != db) {
                return da;
              }
              if (da && ca != cb) {
                return ca < cb;
              }
              return a->id < b->id;
            });
  if (top_n > 0 && ranked.size() > top_n) {
    ranked.resize(top_n);
  }
  util::AsciiTable table({"rank", "scenario", "workload", "fleet", "place",
                          "preempt", "$/SLO cpu-h", "SLO att.", "cpu util",
                          "machines needed"});
  table.set_caption("scenario comparison, best $/SLO first");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const ScenarioResult& r = *ranked[i];
    table.add_row({std::to_string(i + 1), r.id, workload_str(r.spec),
                   std::to_string(r.spec.fleet),
                   std::string(sim::placement_name(r.spec.placement)),
                   r.spec.preemption ? "yes" : "no",
                   r.score.usd_per_slo < 0.0
                       ? std::string("n/a")
                       : util::cell(r.score.usd_per_slo, 4),
                   util::cell_pct(r.score.slo_attainment),
                   util::cell_pct(r.score.cpu_util_mean),
                   util::cell(r.score.machines_needed, 4)});
  }
  return table.render();
}

}  // namespace cgc::plan
