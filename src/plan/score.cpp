#include "plan/score.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace cgc::plan {

ScenarioScore score_run(const ScenarioSpec& spec,
                        const trace::TraceSet& trace,
                        const sim::SimStats& stats) {
  const auto host_load = trace.host_load();
  if (host_load.empty() || host_load[0].empty()) {
    throw util::DataError(
        "scenario " + scenario_id(spec) +
        ": trace carries no host-load samples (horizon shorter than one "
        "sample period?) — nothing to score");
  }

  double cpu_capacity = 0.0;
  double mem_capacity = 0.0;
  for (const trace::Machine& m : trace.machines()) {
    cpu_capacity += m.cpu_capacity;
    mem_capacity += m.mem_capacity;
  }
  if (cpu_capacity <= 0.0 || mem_capacity <= 0.0) {
    throw util::DataError("scenario " + scenario_id(spec) +
                          ": machine park has no capacity");
  }

  // Aggregate demand per sample index, machines in trace order (fixed
  // accumulation order — part of the determinism contract).
  const std::size_t num_samples = host_load[0].size();
  const util::TimeSec period = host_load[0].period();
  std::vector<double> cpu_agg(num_samples, 0.0);
  std::vector<double> mem_agg(num_samples, 0.0);
  for (const trace::HostLoadSeries& h : host_load) {
    const std::size_t n = std::min(num_samples, h.size());
    for (std::size_t i = 0; i < n; ++i) {
      cpu_agg[i] += h.cpu_total(i);
      mem_agg[i] += h.mem_total(i);
    }
  }

  ScenarioScore score;
  double cpu_sum = 0.0;
  double mem_sum = 0.0;
  double cpu_peak = 0.0;
  double mem_peak = 0.0;
  for (std::size_t i = 0; i < num_samples; ++i) {
    cpu_sum += cpu_agg[i];
    mem_sum += mem_agg[i];
    cpu_peak = std::max(cpu_peak, cpu_agg[i]);
    mem_peak = std::max(mem_peak, mem_agg[i]);
  }
  const double n = static_cast<double>(num_samples);
  score.cpu_util_mean = cpu_sum / n / cpu_capacity;
  score.mem_util_mean = mem_sum / n / mem_capacity;
  score.cpu_util_peak = cpu_peak / cpu_capacity;
  score.mem_util_peak = mem_peak / mem_capacity;

  score.eviction_rate =
      static_cast<double>(stats.evicted) /
      static_cast<double>(std::max<std::int64_t>(1, stats.scheduled));
  score.wait_p50_s = stats.wait_quantile(0.50);
  score.wait_p90_s = stats.wait_quantile(0.90);
  score.wait_p99_s = stats.wait_quantile(0.99);
  score.wait_mean_s = stats.wait_mean_s();

  // Machines needed: per planning window, the peak aggregate demand
  // must fit on ceil(demand / (target x mean machine capacity))
  // machines; the scenario's need is the worst window (consolidation
  // must survive the month's worst 6 hours, not its average).
  const double fleet = static_cast<double>(spec.fleet);
  const double mean_machine_cpu = cpu_capacity / fleet;
  const double mean_machine_mem = mem_capacity / fleet;
  const util::TimeSec window =
      std::min<util::TimeSec>(6 * util::kSecondsPerHour, spec.horizon);
  const std::size_t samples_per_window = std::max<std::size_t>(
      1, static_cast<std::size_t>(window / period));
  double needed = 0.0;
  for (std::size_t w0 = 0; w0 < num_samples; w0 += samples_per_window) {
    const std::size_t w1 = std::min(num_samples, w0 + samples_per_window);
    double peak_cpu = 0.0;
    double peak_mem = 0.0;
    for (std::size_t i = w0; i < w1; ++i) {
      peak_cpu = std::max(peak_cpu, cpu_agg[i]);
      peak_mem = std::max(peak_mem, mem_agg[i]);
    }
    const double need_cpu =
        peak_cpu / (spec.target_utilization * mean_machine_cpu);
    const double need_mem =
        peak_mem / (spec.target_utilization * mean_machine_mem);
    needed = std::max(needed, std::ceil(std::max(need_cpu, need_mem)));
  }
  score.machines_needed = needed;
  score.headroom = 1.0 - needed / fleet;

  const double horizon_hours =
      static_cast<double>(spec.horizon) / util::kSecondsPerHour;
  score.machine_hours = fleet * horizon_hours;
  score.cost_usd = score.machine_hours * spec.cost_per_machine_hour;
  score.consolidated_cost_usd =
      needed * horizon_hours * spec.cost_per_machine_hour;
  score.slo_attainment = stats.wait_fraction_within(spec.slo_wait_s);
  score.cpu_hours_delivered =
      cpu_sum * static_cast<double>(period) / util::kSecondsPerHour;

  const double denom = score.slo_attainment * score.cpu_hours_delivered;
  score.usd_per_slo =
      denom > 0.0 ? score.consolidated_cost_usd / denom : -1.0;
  return score;
}

bool dominates(const ScenarioScore& a, const ScenarioScore& b) {
  if (a.usd_per_slo < 0.0) {
    return false;  // an undefined cost never dominates
  }
  const double cost_b = b.usd_per_slo < 0.0
                            ? std::numeric_limits<double>::infinity()
                            : b.usd_per_slo;
  const bool ge_all = a.cpu_util_mean >= b.cpu_util_mean &&
                      a.eviction_rate <= b.eviction_rate &&
                      a.wait_p99_s <= b.wait_p99_s &&
                      a.usd_per_slo <= cost_b;
  const bool strict = a.cpu_util_mean > b.cpu_util_mean ||
                      a.eviction_rate < b.eviction_rate ||
                      a.wait_p99_s < b.wait_p99_s || a.usd_per_slo < cost_b;
  return ge_all && strict;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<ScenarioScore>& scores) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (j != i && dominates(scores[j], scores[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      frontier.push_back(i);
    }
  }
  return frontier;
}

}  // namespace cgc::plan
