// Scenario scoring: one simulated run -> comparable numbers.
//
// A run's TraceSet (host-load samples, fast path) and SimStats (queue
// waits, evictions) reduce to a fixed set of planning metrics: how hot
// the fleet ran, how violent the scheduler was, how long work queued,
// how many machines the load actually needed at the target utilization
// (the capacity_planner calculation, per 6-hour window), and what the
// consolidated fleet costs per delivered SLO-attaining CPU-hour under
// the scenario's linear machine-hour rate. The Pareto frontier over
// four of those objectives is the plan's headline answer; dominates()
// freezes the objective set.
#pragma once

#include <cstddef>
#include <vector>

#include "plan/scenario.hpp"
#include "sim/cluster_sim.hpp"
#include "trace/trace_set.hpp"

namespace cgc::plan {

/// Planning metrics of one scenario run. All values are pure functions
/// of (spec, TraceSet, SimStats) with fixed accumulation order, so a
/// score is bit-identical wherever the run executed.
struct ScenarioScore {
  /// Mean aggregate CPU usage / park CPU capacity over all samples.
  double cpu_util_mean = 0.0;
  /// Peak aggregate CPU usage / capacity (worst 5-minute sample).
  double cpu_util_peak = 0.0;
  /// Mean aggregate memory usage / park memory capacity.
  double mem_util_mean = 0.0;
  /// Peak aggregate memory usage / capacity.
  double mem_util_peak = 0.0;
  /// EVICT events per SCHEDULE event (scheduler violence).
  double eviction_rate = 0.0;
  /// Median queue wait (SimStats wait histogram; all wait quantiles
  /// are deterministic bucket upper bounds).
  double wait_p50_s = 0.0;
  /// 90th-percentile queue wait.
  double wait_p90_s = 0.0;
  /// 99th-percentile queue wait (a Pareto objective).
  double wait_p99_s = 0.0;
  /// Mean queue wait.
  double wait_mean_s = 0.0;
  /// Peak per-6h-window machines needed to carry the observed load at
  /// the scenario's target utilization (ceil; capacity_planner math).
  double machines_needed = 0.0;
  /// 1 - machines_needed / fleet: the shut-off headroom.
  double headroom = 0.0;
  /// Provisioned machine-hours (fleet x horizon).
  double machine_hours = 0.0;
  /// Cost of the full fleet at cost_per_machine_hour.
  double cost_usd = 0.0;
  /// Cost of the consolidated fleet (machines_needed x horizon).
  double consolidated_cost_usd = 0.0;
  /// Fraction of placements whose queue wait met slo_wait_s
  /// (conservative histogram lower bound).
  double slo_attainment = 0.0;
  /// CPU-hours of work actually delivered (sum of usage samples).
  double cpu_hours_delivered = 0.0;
  /// Consolidated dollars per SLO-attaining delivered CPU-hour — the
  /// cost objective. Negative (-1) when undefined (nothing delivered or
  /// zero attainment); undefined scores rank last and never dominate.
  double usd_per_slo = -1.0;
};

/// Scores a completed run. `trace` must carry host-load series (the
/// runner's fast path keeps them); throws util::DataError when it
/// carries none, because a score without load samples would be
/// fabricated.
ScenarioScore score_run(const ScenarioSpec& spec,
                        const trace::TraceSet& trace,
                        const sim::SimStats& stats);

/// Pareto dominance over the frozen objective set: maximize
/// cpu_util_mean; minimize eviction_rate, wait_p99_s and usd_per_slo.
/// True when `a` is at least as good on every objective and strictly
/// better on at least one. Undefined usd_per_slo (< 0) never dominates
/// and is dominated by any defined cost at equal-or-better remaining
/// objectives.
bool dominates(const ScenarioScore& a, const ScenarioScore& b);

/// Indices of the non-dominated scores, in input order. O(n^2) — plan
/// matrices are hundreds to thousands of points.
std::vector<std::size_t> pareto_frontier(
    const std::vector<ScenarioScore>& scores);

}  // namespace cgc::plan
