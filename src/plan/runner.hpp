// PlanRunner — executes a ScenarioMatrix through sim::ClusterSim.
//
// The execution contract mirrors cgc_report's sweep: scenarios run in
// parallel via cgc::exec (results land in matrix index order, so the
// artifact is bit-identical at any CGC_THREADS), ownership under
// --shard i/N is sweep::stable_case_hash over the scenario id (any
// subset of shards can run anywhere and the union is exactly the
// single-process run), and every checkpoint batch is written atomically
// so a killed worker resumes from its last complete batch instead of
// restarting. Scenario failures (TransientError/DataError, including
// the plan.scenario_fail fault site) are recorded per scenario and the
// matrix keeps going — one sick scenario must not strand the other 575.
#pragma once

#include <string>
#include <vector>

#include "plan/matrix.hpp"
#include "plan/score.hpp"
#include "sweep/partition.hpp"

namespace cgc::plan {

/// Outcome of one scenario: its spec + id, and either a score (ok) or
/// the taxonomy error that stopped it.
struct ScenarioResult {
  /// The spec that ran (copied from the matrix).
  ScenarioSpec spec;
  /// scenario_id(spec), precomputed (sharding + artifact key).
  std::string id;
  /// True when the run completed and `score` is valid.
  bool ok = false;
  /// The planning metrics (valid when ok).
  ScenarioScore score;
  /// Taxonomy error message when !ok ("" otherwise).
  std::string error;
};

/// Execution settings of a PlanRunner.
struct PlanConfig {
  /// This worker's slice (default: the whole matrix).
  sweep::ShardSpec shard;
  /// Directory for the shard's checkpoint file (plan_io.hpp); "" runs
  /// without checkpointing (tests, pure in-memory runs).
  std::string out_dir;
  /// Reuse results from an existing checkpoint whose matrix digest and
  /// shard stamp match; mismatches are DataErrors, torn checkpoints
  /// are quarantined and re-run.
  bool resume = false;
  /// Scenarios per checkpoint batch (the atomic-rewrite granularity).
  std::size_t checkpoint_batch = 64;
};

/// Runs one scenario start-to-finish: builds the machine park
/// (hetero_mix of Google capacity groups + uniform grid nodes),
/// generates and merges the weighted workload components, applies the
/// priority remap, simulates on the fast path (record_events /
/// record_tasks off), and scores. Pure in `spec` — no shared state, so
/// scenarios parallelize freely. Throws taxonomy errors; the runner
/// catches transient/data ones.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Executes the shard-owned subset of a matrix (see file comment).
class PlanRunner {
 public:
  /// Binds a matrix to its execution settings.
  PlanRunner(ScenarioMatrix matrix, PlanConfig config);

  /// Runs every owned scenario (skipping resumed ones) and returns the
  /// shard's results in matrix order. Also returns the completed list;
  /// callers needing the artifact go through plan_io.hpp.
  std::vector<ScenarioResult> run();

  /// The bound matrix.
  const ScenarioMatrix& matrix() const { return matrix_; }
  /// Scenarios this shard owns (matrix order).
  const std::vector<std::size_t>& owned() const { return owned_; }
  /// Scenarios satisfied from the resume checkpoint in the last run().
  std::size_t resumed() const { return resumed_; }

 private:
  ScenarioMatrix matrix_;
  PlanConfig config_;
  std::vector<std::size_t> owned_;
  std::size_t resumed_ = 0;
};

}  // namespace cgc::plan
