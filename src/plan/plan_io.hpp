// Plan artifacts: shard checkpoints, merge, and plan.json rendering.
//
// Two on-disk forms:
//
//   * The shard checkpoint (`plan-shard-<i>-of-<N>.cgcp`) — one line
//     per finished scenario, stamped with the matrix digest and shard
//     spec, rewritten atomically (tmp + rename) after every batch and
//     sealed with a CRC line. Scores are printed with 17 significant
//     digits, so a double round-trips bit-exactly: merging shard files
//     yields the same bytes in plan.json as a single-process run.
//   * plan.json — the canonical artifact: every scenario in matrix
//     order with its spec and score, the Pareto frontier, and the
//     $/SLO ranking. It contains no volatile fields (no timestamps,
//     no hostnames, no wall-clock), so it is byte-identical at any
//     CGC_THREADS and across sharded vs single-process execution.
//
// Merge conflict taxonomy follows cgc::sweep (DESIGN.md §14): digest
// disagreement or overlapping scenario ownership is a DataError (exit
// 2 — the inputs are from different experiments); a torn or missing
// checkpoint is a TransientError (exit 1 — rerun the shard and merge
// again).
#pragma once

#include <string>
#include <vector>

#include "plan/matrix.hpp"
#include "plan/runner.hpp"

namespace cgc::plan {

/// One shard's checkpointed results plus its identity stamp.
struct ShardResults {
  /// Matrix name stamped into the file.
  std::string matrix_name;
  /// Matrix digest stamped into the file (merge handshake).
  std::uint64_t matrix_digest = 0;
  /// The writing worker's shard spec.
  sweep::ShardSpec shard;
  /// True once the shard ran every scenario it owns.
  bool complete = false;
  /// Results in matrix order (specs re-attached from the matrix).
  std::vector<ScenarioResult> results;
};

/// Outcome of read_results(); mirrors sweep::read_report_checked.
enum class ReadStatus {
  kOk,       ///< parsed and CRC-verified
  kMissing,  ///< no file at the path
  kCorrupt,  ///< torn write, bad CRC, or an id the matrix doesn't know
};

/// Checkpoint path for shard `spec` under `out_dir`.
std::string shard_results_path(const std::string& out_dir,
                               const sweep::ShardSpec& spec);

/// Writes a shard checkpoint atomically (tmp + rename). Throws
/// util::TransientError on I/O failure.
void write_results(const std::string& path, const ShardResults& results);

/// Reads a checkpoint back, re-attaching specs from `matrix`. A digest
/// mismatch against `matrix` is reported as kOk with the stamped digest
/// preserved — the caller decides whether that is a DataError (merge)
/// or a silent restart (resume after the matrix changed).
ReadStatus read_results(const std::string& path, const ScenarioMatrix& matrix,
                        ShardResults* out);

/// Fuses shard checkpoints into the full result list in matrix order.
/// Digest mismatches and overlapping ownership throw util::DataError;
/// incomplete coverage or an incomplete shard throws
/// util::TransientError (resumable).
std::vector<ScenarioResult> merge_results(
    const ScenarioMatrix& matrix, const std::vector<ShardResults>& shards);

/// Renders the canonical plan.json (see file comment). `results` must
/// be the full matrix in matrix order.
std::string render_plan_json(const ScenarioMatrix& matrix,
                             const std::vector<ScenarioResult>& results);

/// Renders the ranked $/SLO comparison table (best first, undefined
/// costs last), truncated to `top_n` rows (0 = all).
std::string render_comparison_table(
    const std::vector<ScenarioResult>& results, std::size_t top_n);

}  // namespace cgc::plan
