#include "plan/matrix.hpp"

#include "sweep/partition.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace cgc::plan {

std::uint64_t ScenarioMatrix::digest() const {
  std::string joined;
  for (const ScenarioSpec& s : scenarios) {
    joined += s.key();
    joined += '\n';
  }
  return sweep::stable_case_hash(joined);
}

MatrixBuilder::MatrixBuilder(std::string name, ScenarioSpec base)
    : name_(std::move(name)), base_(std::move(base)) {
  fleets_ = {base_.fleet};
  workloads_ = {WorkloadProfile{"base", base_.workload, base_.hetero_mix}};
  placements_ = {base_.placement};
  preemptions_ = {base_.preemption};
  remaps_ = {base_.remap};
  target_utilizations_ = {base_.target_utilization};
}

MatrixBuilder& MatrixBuilder::fleets(std::vector<std::size_t> values) {
  fleets_ = std::move(values);
  return *this;
}

MatrixBuilder& MatrixBuilder::workloads(std::vector<WorkloadProfile> values) {
  workloads_ = std::move(values);
  return *this;
}

MatrixBuilder& MatrixBuilder::placements(
    std::vector<sim::PlacementPolicy> values) {
  placements_ = std::move(values);
  return *this;
}

MatrixBuilder& MatrixBuilder::preemptions(std::vector<bool> values) {
  preemptions_ = std::move(values);
  return *this;
}

MatrixBuilder& MatrixBuilder::remaps(std::vector<PriorityRemap> values) {
  remaps_ = std::move(values);
  return *this;
}

MatrixBuilder& MatrixBuilder::target_utilizations(std::vector<double> values) {
  target_utilizations_ = std::move(values);
  return *this;
}

ScenarioMatrix MatrixBuilder::build() const {
  if (fleets_.empty() || workloads_.empty() || placements_.empty() ||
      preemptions_.empty() || remaps_.empty() ||
      target_utilizations_.empty()) {
    throw util::FatalError("matrix \"" + name_ + "\" has an empty axis");
  }
  ScenarioMatrix matrix;
  matrix.name = name_;
  matrix.scenarios.reserve(fleets_.size() * workloads_.size() *
                           placements_.size() * preemptions_.size() *
                           remaps_.size() * target_utilizations_.size());
  // Frozen expansion order — see the class comment.
  for (const std::size_t fleet : fleets_) {
    for (const WorkloadProfile& profile : workloads_) {
      CGC_CHECK_MSG(!profile.components.empty(),
                    "workload profile \"" + profile.name + "\" is empty");
      for (const sim::PlacementPolicy placement : placements_) {
        for (const bool preemption : preemptions_) {
          for (const PriorityRemap remap : remaps_) {
            for (const double util : target_utilizations_) {
              ScenarioSpec spec = base_;
              spec.fleet = fleet;
              spec.workload = profile.components;
              spec.hetero_mix = profile.hetero_mix;
              spec.placement = placement;
              spec.preemption = preemption;
              spec.remap = remap;
              spec.target_utilization = util;
              matrix.scenarios.push_back(std::move(spec));
            }
          }
        }
      }
    }
  }
  return matrix;
}

ScenarioMatrix default_matrix(util::TimeSec horizon) {
  ScenarioSpec base;
  base.horizon = horizon;
  return MatrixBuilder("default", base)
      .fleets({16, 32, 48, 64})
      .workloads({
          WorkloadProfile{"google", {{"google", 1.0}}, 1.0},
          WorkloadProfile{"auvergrid", {{"auvergrid", 1.0}}, 0.0},
          WorkloadProfile{
              "blend-70-30", {{"google", 0.7}, {"auvergrid", 0.3}}, 0.7},
      })
      .placements({sim::PlacementPolicy::kBalanced,
                   sim::PlacementPolicy::kBestFit,
                   sim::PlacementPolicy::kWorstFit,
                   sim::PlacementPolicy::kFirstFit})
      .preemptions({true, false})
      .remaps({PriorityRemap::kNone, PriorityRemap::kFlatten,
               PriorityRemap::kInvert})
      .target_utilizations({0.65, 0.85})
      .build();
}

ScenarioMatrix small_matrix(util::TimeSec horizon) {
  ScenarioSpec base;
  base.horizon = horizon;
  base.fleet = 8;
  return MatrixBuilder("small", base)
      .workloads({
          WorkloadProfile{"google", {{"google", 1.0}}, 1.0},
          // Grid-on-Cloud cross-replay: grid jobs on the heterogeneous
          // cloud park.
          WorkloadProfile{"auvergrid-on-cloud", {{"auvergrid", 1.0}}, 1.0},
      })
      .placements({sim::PlacementPolicy::kBalanced,
                   sim::PlacementPolicy::kFirstFit})
      .preemptions({true, false})
      .build();
}

}  // namespace cgc::plan
