#include "fault/fault.hpp"

#include <charconv>
#include <cstdlib>
#include <vector>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace cgc::fault {

namespace {

/// One armed injection site.
struct Site {
  std::string name;
  double probability = 0.0;  ///< p= trigger; 0 disables
  std::uint64_t every = 0;   ///< every= trigger; 0 disables
  std::uint64_t once = 0;    ///< once= trigger key
  bool has_once = false;
  std::uint64_t seed = 0;
  ErrorKind kind = ErrorKind::kData;
  bool kind_set = false;
};

struct Config {
  std::string spec;
  std::vector<Site> sites;
};

util::Mutex g_mutex;
// Leaked on reconfigure; sites are tiny.
const Config* g_config CGC_GUARDED_BY(g_mutex) = nullptr;

/// splitmix64 — a strong 64-bit mixer; the p= trigger hashes
/// (seed, site, key) through it and compares against p * 2^64.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001B3ULL;
  }
  return h;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw util::FatalError("malformed CGC_FAULT_SPEC (" + why + "): " + spec);
}

double parse_probability(std::string_view v, const std::string& spec) {
  double p = 0.0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), p);
  if (ec != std::errc() || ptr != v.data() + v.size() || p < 0.0 || p > 1.0) {
    bad_spec(spec, "p= wants a probability in [0,1], got '" +
                       std::string(v) + "'");
  }
  return p;
}

std::uint64_t parse_u64(std::string_view v, const char* what,
                        const std::string& spec) {
  std::uint64_t n = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), n);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    bad_spec(spec, std::string(what) + " wants an integer, got '" +
                       std::string(v) + "'");
  }
  return n;
}

Site parse_entry(std::string_view entry, const std::string& spec) {
  const std::size_t colon = entry.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    bad_spec(spec, "entry needs 'site:trigger', got '" + std::string(entry) +
                       "'");
  }
  Site site;
  site.name = std::string(entry.substr(0, colon));
  std::string_view items = entry.substr(colon + 1);
  bool has_trigger = false;
  while (!items.empty()) {
    const std::size_t comma = items.find(',');
    const std::string_view item = items.substr(0, comma);
    items = comma == std::string_view::npos ? std::string_view()
                                            : items.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      bad_spec(spec, "item needs 'key=value', got '" + std::string(item) +
                         "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "p") {
      site.probability = parse_probability(value, spec);
      has_trigger = true;
    } else if (key == "every") {
      site.every = parse_u64(value, "every=", spec);
      if (site.every == 0) {
        bad_spec(spec, "every= wants a positive integer");
      }
      has_trigger = true;
    } else if (key == "once") {
      site.once = parse_u64(value, "once=", spec);
      site.has_once = true;
      has_trigger = true;
    } else if (key == "seed") {
      site.seed = parse_u64(value, "seed=", spec);
    } else if (key == "kind") {
      if (value == "transient") {
        site.kind = ErrorKind::kTransient;
      } else if (value == "data") {
        site.kind = ErrorKind::kData;
      } else if (value == "fatal") {
        site.kind = ErrorKind::kFatal;
      } else {
        bad_spec(spec, "kind= wants transient|data|fatal, got '" +
                           std::string(value) + "'");
      }
      site.kind_set = true;
    } else {
      bad_spec(spec, "unknown item '" + std::string(key) + "='");
    }
  }
  if (!has_trigger) {
    bad_spec(spec, "site '" + site.name +
                       "' has no trigger (p=, every=, or once=)");
  }
  return site;
}

const Config* parse_spec(const std::string& spec) {
  auto config = new Config;
  config->spec = spec;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (entry.empty()) {
      continue;
    }
    config->sites.push_back(parse_entry(entry, spec));
  }
  return config;
}

const Site* find_site(const Config* config, std::string_view name) {
  for (const Site& s : config->sites) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

bool site_fires(const Site& site, std::uint64_t key) {
  if (site.has_once && key == site.once) {
    return true;
  }
  if (site.every != 0 && key % site.every == 0) {
    return true;
  }
  if (site.probability > 0.0) {
    const std::uint64_t h =
        mix64(site.seed ^ fnv1a(site.name) ^ mix64(key));
    // Top 53 bits -> uniform double in [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < site.probability;
  }
  return false;
}

/// Installs the environment spec exactly once, before the first armed()
/// observer can see g_armed == true.
const bool g_env_installed = [] {
  const char* env = std::getenv("CGC_FAULT_SPEC");
  if (env != nullptr && env[0] != '\0') {
    configure(env);
  }
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool should_fail_slow(std::string_view site, std::uint64_t key) {
  util::MutexLock lock(g_mutex);
  if (g_config == nullptr) {
    return false;
  }
  const Site* s = find_site(g_config, site);
  return s != nullptr && site_fires(*s, key);
}

}  // namespace detail

void maybe_throw(std::string_view site, std::uint64_t key,
                 ErrorKind fallback) {
  if (!inject(site, key)) {
    return;
  }
  ErrorKind kind = fallback;
  {
    util::MutexLock lock(g_mutex);
    const Site* s = g_config ? find_site(g_config, site) : nullptr;
    if (s != nullptr && s->kind_set) {
      kind = s->kind;
    }
  }
  const std::string what = "injected fault at " + std::string(site) +
                           " (key " + std::to_string(key) + ")";
  switch (kind) {
    case ErrorKind::kTransient:
      throw util::TransientError(what);
    case ErrorKind::kData:
      throw util::DataError(what);
    case ErrorKind::kFatal:
      throw util::FatalError(what);
  }
}

void configure(const std::string& spec) {
  const Config* config = spec.empty() ? nullptr : parse_spec(spec);
  {
    util::MutexLock lock(g_mutex);
    // The previous config is leaked intentionally: concurrent
    // should_fail_slow() holds the lock, so the swap itself is safe,
    // and configs are a few hundred bytes arriving once per process
    // (or per test).
    g_config = config;
  }
  detail::g_armed.store(config != nullptr, std::memory_order_relaxed);
}

std::string active_spec() {
  util::MutexLock lock(g_mutex);
  return g_config == nullptr ? std::string() : g_config->spec;
}

}  // namespace cgc::fault
