// cgc::fault — deterministic, seeded fault injection.
//
// Failure is the common case in the workloads this repo characterizes
// (59.2% of Google task endings are abnormal, paper §III.A); this
// subsystem lets us *prove* our own degraded paths work by injecting
// failures at named sites, reproducibly.
//
// A site is a stable string like "store.chunk_crc". Code that wants to
// be testable under failure asks `inject(site, key)` at the point where
// the real failure would surface, passing a key that is a stable
// property of the work item (a chunk's file offset, a parser's line
// number, a (case, attempt) pair) — never a call counter. Whether a
// site fires is a pure function of (spec, site, key), so the same spec
// produces the same failures at any CGC_THREADS setting and in any
// execution order.
//
// Faults are armed via the CGC_FAULT_SPEC environment variable (read
// once at first use) or configure() (tests). Spec grammar:
//
//   spec    := entry (';' entry)*
//   entry   := site ':' item (',' item)*
//   item    := 'p=' FLOAT        fire with probability p per key
//            | 'every=' N        fire when key % N == 0
//            | 'once=' N         fire only for key == N
//            | 'seed=' N         seed for the p= hash (default 0)
//            | 'kind=' KIND      transient | data | fatal
//
// e.g. CGC_FAULT_SPEC="store.chunk_crc:p=0.01,seed=42;io.read:every=100"
//
// When CGC_FAULT_SPEC is unset the hot-path cost of an injection point
// is one relaxed atomic load of a process-wide flag — nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace cgc::fault {

/// Which error class maybe_throw() raises when a site fires. A spec's
/// `kind=` overrides the call site's default.
enum class ErrorKind { kTransient, kData, kFatal };

namespace detail {
extern std::atomic<bool> g_armed;
bool should_fail_slow(std::string_view site, std::uint64_t key);
}  // namespace detail

/// True when any fault spec is armed. One relaxed load; this is the
/// entire cost of an injection point in a normal (spec-unset) run.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// True when the fault at `site` fires for stable key `key`. Pure in
/// (spec, site, key): independent of thread count and call order.
inline bool inject(std::string_view site, std::uint64_t key) {
  return armed() && detail::should_fail_slow(site, key);
}

/// Throws the configured error class (default `fallback`) if `site`
/// fires for `key`; otherwise a no-op.
void maybe_throw(std::string_view site, std::uint64_t key,
                 ErrorKind fallback = ErrorKind::kData);

/// (Re)configures injection from a spec string; empty string disarms.
/// Throws cgc::util::FatalError on a malformed spec. The environment
/// spec is installed automatically; this entry point is for tests.
void configure(const std::string& spec);

/// The currently armed spec string ("" when disarmed). cgc_report
/// stamps this into report.json so degraded runs are self-describing.
std::string active_spec();

}  // namespace cgc::fault
