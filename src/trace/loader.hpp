// cgc::trace::Loader — the one way in for trace data.
//
// Historically each on-disk format had its own entry point with its own
// leniency knob: read_swf/read_gwa/read_google_trace grew a
// ParseOptions{tolerant} overload, while the CGCS store grew
// ReadMode::kDegraded with a separate DamageReport. Every caller had to
// know which format it had, which knob that format spoke, and which
// report type came back. The Loader collapses all of that:
//
//   trace::LoadReport report;
//   trace::TraceSet ts = trace::Loader({.strictness =
//       trace::Strictness::kTolerant}).load(path, &report);
//
// Format is autodetected (directory → Google CSV; extension; CGCS
// magic; field-count sniff for the headerless text formats), leniency
// is two orthogonal fields — `strictness` for record-level parse
// damage in text formats, `on_damage` for chunk-level corruption in
// the binary store — and everything the load survived is merged into
// one LoadReport. The per-format functions remain as delegating
// wrappers for one release; new code should not call them.
#pragma once

#include <string>

#include "store/reader.hpp"
#include "trace/parse_report.hpp"
#include "trace/trace_set.hpp"

namespace cgc::trace {

/// On-disk formats the Loader understands.
enum class TraceFormat {
  kAuto,       ///< detect from path (directory, extension, magic, sniff)
  kGoogleCsv,  ///< clusterdata-2011 CSV directory
  kSwf,        ///< Standard Workload Format (Parallel Workload Archive)
  kGwa,        ///< Grid Workload Archive .gwf
  kCgcs,       ///< our columnar binary store
};

/// Human-readable name for a format ("auto", "google-csv", "swf",
/// "gwa", "cgcs").
const char* format_name(TraceFormat format);

/// Record-level leniency for the text formats (maps onto
/// ParseOptions::tolerant). kCgcs has no record-level parse stage, so
/// strictness does not apply to it.
enum class Strictness {
  kStrict,    ///< first malformed record throws DataError
  kTolerant,  ///< skip and account malformed records (bounded)
};

/// Chunk-level damage policy for the binary store (maps onto
/// store::ReadMode). Text formats have no chunk structure, so
/// on_damage does not apply to them.
enum class OnDamage {
  kFail,        ///< any damaged chunk throws DataError
  kQuarantine,  ///< drop damaged chunks, account them in the report
};

struct LoadOptions {
  TraceFormat format = TraceFormat::kAuto;
  /// System name stamped into the TraceSet; "" picks the per-format
  /// default ("google-trace"/"swf-trace"/"gwa-trace"). CGCS files carry
  /// their own name and ignore this.
  std::string system_name;
  Strictness strictness = Strictness::kStrict;
  OnDamage on_damage = OnDamage::kFail;
  /// Tolerant-mode bounds, forwarded to ParseOptions.
  std::size_t max_bad_lines = 1000;
  std::size_t max_recorded = 20;
};

/// Everything a load survived: which format was (detected and) read,
/// plus the merged record-level and chunk-level damage accounting.
/// Exactly one of `parse`/`damage` can be non-clean for a given format.
struct LoadReport {
  TraceFormat format = TraceFormat::kAuto;
  std::string path;
  ParseReport parse;
  store::DamageReport damage;

  bool clean() const { return parse.clean() && damage.clean(); }
  std::string summary() const;
};

class Loader {
 public:
  explicit Loader(LoadOptions options = {});

  /// Resolves kAuto for `path`: a directory is Google CSV; then by
  /// extension (.cgcs/.swf/.gwf/.gwa); then by CGCS magic; then by
  /// sniffing the first data line's field count (18 → SWF, ≥11 → GWA).
  /// Throws cgc::util::DataError when nothing matches.
  static TraceFormat detect(const std::string& path);

  /// Loads `path` per the options. Fills `*report` (if non-null) with
  /// the resolved format and damage accounting. Throws
  /// cgc::util::DataError on unreadable input, on parse damage under
  /// kStrict, and on chunk damage under kFail.
  TraceSet load(const std::string& path, LoadReport* report = nullptr) const;

  const LoadOptions& options() const { return options_; }

 private:
  LoadOptions options_;
};

/// One-shot convenience: Loader(options).load(path, report).
TraceSet load_trace(const std::string& path, const LoadOptions& options = {},
                    LoadReport* report = nullptr);

}  // namespace cgc::trace
