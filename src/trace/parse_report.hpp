// Tolerant-parsing support shared by the trace format readers.
//
// The archives this repo chews (clusterdata CSV, SWF, GWA) are large,
// hand-curated, and imperfect; AGOCS-style processing of the real 40+GB
// Google trace skips and accounts for corrupt records instead of
// aborting a multi-hour parse on line 3 billion. Each reader therefore
// supports two modes:
//
//   * strict (default): the first malformed record throws
//     cgc::util::Error with "path:line: what" — exactly the historical
//     behavior;
//   * tolerant: malformed records are skipped and accounted in a
//     ParseReport (count + a capped sample of "path:line: what"
//     messages); exceeding ParseOptions::max_bad_lines aborts with
//     cgc::util::DataError, so a file that is mostly garbage still
//     fails loudly.
//
// I/O errors (a failing stream, an injected transient fault) are never
// tolerated — they are not properties of a record.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cgc::trace {

struct ParseOptions {
  bool tolerant = false;
  /// Tolerant mode gives up (cgc::util::DataError) past this many bad
  /// lines per file.
  std::size_t max_bad_lines = 1000;
  /// At most this many "path:line: what" samples are kept per report.
  std::size_t max_recorded = 20;
};

struct ParseReport {
  std::size_t records_ok = 0;
  std::size_t lines_bad = 0;
  std::vector<std::string> samples;  ///< "path:line: what", capped

  bool clean() const { return lines_bad == 0; }
  /// e.g. "2 bad lines skipped (5 records parsed)".
  std::string summary() const;
  /// Folds another file's accounting into this one (multi-file reads).
  void merge(const ParseReport& other);
};

namespace detail {

/// Dispatches one malformed record. Strict mode throws the classic
/// "path:line: what" error; tolerant mode records it into `report`
/// (which must be non-null) and returns, throwing cgc::util::DataError
/// once the cap is exceeded.
void handle_bad_line(const ParseOptions& options, ParseReport* report,
                     const std::string& path, std::size_t line_number,
                     const std::string& what);

}  // namespace detail
}  // namespace cgc::trace
