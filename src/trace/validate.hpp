// Trace validation: structural invariants a well-formed TraceSet must
// satisfy. Run by parsers' tests, by the simulator's tests (simulated
// traces must be valid by construction), and available to users loading
// third-party files.
#pragma once

#include <string>
#include <vector>

#include "trace/trace_set.hpp"

namespace cgc::trace {

/// One violated invariant.
struct ValidationIssue {
  std::string message;
};

/// Checks:
///  - events are time-ordered and every per-task event sequence follows
///    the legal state machine,
///  - task times are ordered (submit <= schedule <= end),
///  - job windows cover their tasks' windows,
///  - priorities are in [1, 12],
///  - machine capacities are positive and host-load usage never exceeds
///    capacity by more than `overload_tolerance` (scheduler overshoot
///    within one sample period is tolerated),
///  - host-load series have consistent lengths/periods.
/// Returns all violations found (empty = valid).
std::vector<ValidationIssue> validate(const TraceSet& trace,
                                      double overload_tolerance = 1e-3);

/// Throws util::Error with a combined message if validation fails.
void validate_or_throw(const TraceSet& trace,
                       double overload_tolerance = 1e-3);

}  // namespace cgc::trace
