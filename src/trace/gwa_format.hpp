// Grid Workload Archive (GWA/.gwf) parser/writer — the format of the
// paper's Grid traces (AuverGrid, NorduGrid, SHARCNET, DAS-2).
//
// GWF is whitespace-separated with ';'-prefixed headers; the standard
// field order (first 11 of 29):
//   1 JobID  2 SubmitTime  3 WaitTime  4 RunTime  5 NProcs
//   6 AverageCPUTimeUsed  7 UsedMemory(KB)  8 ReqNProcs  9 ReqTime
//   10 ReqMemory  11 Status (1=completed)
// Missing values are -1.
#pragma once

#include <string>

#include "trace/parse_report.hpp"
#include "trace/trace_set.hpp"

namespace cgc::trace {

namespace detail {
/// Canonical GWA parse path; both the Loader façade and the public
/// read_gwa overloads delegate here.
TraceSet read_gwa_impl(const std::string& path,
                       const std::string& system_name,
                       const ParseOptions& options, ParseReport* report);
}  // namespace detail

/// Parses a GWA .gwf file into a workload-only TraceSet. Strict: the
/// first malformed record throws. Kept as a delegating wrapper for one
/// release; prefer cgc::trace::Loader (trace/loader.hpp).
TraceSet read_gwa(const std::string& path, const std::string& system_name);

/// As above, honoring `options` (tolerant mode skips and accounts bad
/// records into `report`; see parse_report.hpp). Delegating wrapper;
/// prefer cgc::trace::Loader.
TraceSet read_gwa(const std::string& path, const std::string& system_name,
                  const ParseOptions& options, ParseReport* report);

/// Writes jobs of `trace` in GWA layout.
void write_gwa(const TraceSet& trace, const std::string& path);

}  // namespace cgc::trace
