// Reader/writer for Google clusterdata-2011-style trace tables.
//
// Implements the documented column layout of the public Google
// cluster-usage trace (the trace the paper analyzes):
//
//   task_events (13 columns):
//     time(us), missing_info, job_id, task_index, machine_id, event_type,
//     user, scheduling_class, priority(0-11), cpu_request, mem_request,
//     disk_request, different_machines
//   machine_events (6 columns):
//     time(us), machine_id, event_type(0=ADD,1=REMOVE,2=UPDATE),
//     platform_id, cpu_capacity, mem_capacity
//
// plus a derived per-machine usage table of our own (the public trace
// reports usage per task; the paper's host-load analyses aggregate to
// machines, so we persist the aggregated form):
//
//   host_usage (12 columns):
//     machine_id, time(s), cpu_low, cpu_mid, cpu_high, mem_low, mem_mid,
//     mem_high, mem_assigned, page_cache, running_tasks, pending_tasks
//
// Event codes follow the clusterdata format: 0 SUBMIT, 1 SCHEDULE,
// 2 EVICT, 3 FAIL, 4 FINISH, 5 KILL, 6 LOST, 7/8 UPDATE. Priorities in
// the file are 0-11 and are shifted to the paper's 1-12 in memory.
#pragma once

#include <string>

#include "trace/parse_report.hpp"
#include "trace/trace_set.hpp"

namespace cgc::trace {

namespace detail {
/// Canonical Google-trace parse path; both the Loader façade and the
/// public read_google_trace overloads delegate here.
TraceSet read_google_trace_impl(const std::string& directory,
                                const std::string& system_name,
                                const ParseOptions& options,
                                ParseReport* report);
}  // namespace detail

/// Writes trace.events() in clusterdata task_events layout.
void write_task_events(const TraceSet& trace, const std::string& path);

/// Writes trace.machines() in clusterdata machine_events layout
/// (a single ADD event per machine at time 0).
void write_machine_events(const TraceSet& trace, const std::string& path);

/// Writes trace.host_load() in the host_usage layout.
void write_host_usage(const TraceSet& trace, const std::string& path);

/// Convenience: writes all three tables into `directory` as
/// task_events.csv, machine_events.csv, host_usage.csv.
void write_google_trace(const TraceSet& trace, const std::string& directory);

/// Reads the three tables back from `directory`. Tasks and jobs are
/// reconstructed from the event stream via the task state machine: each
/// terminal event closes a task record; jobs aggregate their tasks.
/// Files that are absent are skipped (a workload-only directory may have
/// no host_usage.csv). Kept as a delegating wrapper for one release;
/// prefer cgc::trace::Loader (trace/loader.hpp).
TraceSet read_google_trace(const std::string& directory,
                           const std::string& system_name = "google-trace");

/// As above, honoring `options` (tolerant mode skips and accounts bad
/// records into `report`, which aggregates across the three tables; see
/// parse_report.hpp). Delegating wrapper; prefer cgc::trace::Loader.
TraceSet read_google_trace(const std::string& directory,
                           const std::string& system_name,
                           const ParseOptions& options, ParseReport* report);

/// Reconstructs per-task and per-job records from an event stream.
/// Exposed separately so tests can exercise the state-machine
/// reconstruction logic directly. Events must be time-sorted.
void rebuild_tasks_and_jobs(TraceSet* trace);

}  // namespace cgc::trace
