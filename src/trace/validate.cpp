#include "trace/validate.hpp"

#include <limits>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace cgc::trace {

namespace {

void check_events(const TraceSet& trace, std::vector<ValidationIssue>* out) {
  TimeSec prev = std::numeric_limits<TimeSec>::min();
  std::map<std::pair<std::int64_t, std::int32_t>, TaskState> state;
  for (const TaskEvent& e : trace.events()) {
    if (e.time < prev) {
      out->push_back({"events not sorted by time"});
      return;
    }
    prev = e.time;
    auto key = std::make_pair(e.job_id, e.task_index);
    auto it = state.find(key);
    const TaskState current =
        it == state.end() ? TaskState::kUnsubmitted : it->second;
    try {
      state[key] = apply_event(current, e.type);
    } catch (const util::Error& err) {
      std::ostringstream oss;
      oss << "illegal event " << event_name(e.type) << " for task "
          << e.job_id << "/" << e.task_index << " in state "
          << state_name(current) << " at t=" << e.time;
      out->push_back({oss.str()});
      // Resynchronize so one bad task doesn't cascade.
      state[key] = TaskState::kDead;
    }
  }
}

void check_tasks(const TraceSet& trace, std::vector<ValidationIssue>* out) {
  for (const Task& t : trace.tasks()) {
    if (t.priority < kMinPriority || t.priority > kMaxPriority) {
      out->push_back({"task priority out of [1,12]"});
    }
    if (t.schedule_time >= 0 && t.schedule_time < t.submit_time) {
      out->push_back({"task scheduled before submission"});
    }
    if (t.end_time >= 0 && t.schedule_time >= 0 &&
        t.end_time < t.schedule_time) {
      out->push_back({"task ended before scheduling"});
    }
    if (t.cpu_request < 0 || t.mem_request < 0) {
      out->push_back({"negative resource request"});
    }
  }
}

void check_jobs(const TraceSet& trace, std::vector<ValidationIssue>* out) {
  for (const Job& j : trace.jobs()) {
    if (j.priority < kMinPriority || j.priority > kMaxPriority) {
      out->push_back({"job priority out of [1,12]"});
    }
    if (j.completed() && j.end_time < j.submit_time) {
      out->push_back({"job ends before submission"});
    }
    if (j.num_tasks <= 0) {
      out->push_back({"job with no tasks"});
    }
    const auto tasks = trace.tasks_for_job(j.job_id);
    for (const Task& t : tasks) {
      if (t.submit_time < j.submit_time) {
        out->push_back({"task submitted before its job"});
      }
      if (j.completed() && t.end_time > j.end_time) {
        out->push_back({"task outlives its completed job"});
      }
    }
  }
}

void check_host_load(const TraceSet& trace, double tolerance,
                     std::vector<ValidationIssue>* out) {
  for (const HostLoadSeries& h : trace.host_load()) {
    const auto machine = trace.machine_by_id(h.machine_id());
    if (!machine.has_value()) {
      out->push_back({"host-load series for unknown machine " +
                      std::to_string(h.machine_id())});
      continue;
    }
    if (machine->cpu_capacity <= 0 || machine->mem_capacity <= 0) {
      out->push_back({"non-positive machine capacity"});
      continue;
    }
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h.cpu_total(i) > machine->cpu_capacity + tolerance) {
        std::ostringstream oss;
        oss << "CPU over capacity on machine " << h.machine_id() << " at t="
            << h.time_at(i) << " (" << h.cpu_total(i) << " > "
            << machine->cpu_capacity << ")";
        out->push_back({oss.str()});
        break;
      }
      if (h.mem_total(i) > machine->mem_capacity + tolerance) {
        std::ostringstream oss;
        oss << "memory over capacity on machine " << h.machine_id()
            << " at t=" << h.time_at(i);
        out->push_back({oss.str()});
        break;
      }
      if (h.running(i) < 0 || h.pending(i) < 0) {
        out->push_back({"negative queue count"});
        break;
      }
    }
  }
}

}  // namespace

std::vector<ValidationIssue> validate(const TraceSet& trace,
                                      double overload_tolerance) {
  std::vector<ValidationIssue> issues;
  check_events(trace, &issues);
  check_tasks(trace, &issues);
  check_jobs(trace, &issues);
  check_host_load(trace, overload_tolerance, &issues);
  return issues;
}

void validate_or_throw(const TraceSet& trace, double overload_tolerance) {
  const auto issues = validate(trace, overload_tolerance);
  if (issues.empty()) {
    return;
  }
  std::ostringstream oss;
  oss << "trace validation failed with " << issues.size() << " issue(s):";
  const std::size_t shown = std::min<std::size_t>(issues.size(), 10);
  for (std::size_t i = 0; i < shown; ++i) {
    oss << "\n  - " << issues[i].message;
  }
  if (issues.size() > shown) {
    oss << "\n  ... and " << issues.size() - shown << " more";
  }
  throw util::Error(oss.str());
}

}  // namespace cgc::trace
