#include "trace/trace_set.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace cgc::trace {

void TraceSet::add_machine(Machine machine) {
  machines_.push_back(machine);
  finalized_ = false;
}

void TraceSet::add_job(Job job) {
  jobs_.push_back(job);
  finalized_ = false;
}

void TraceSet::add_task(Task task) {
  tasks_.push_back(task);
  finalized_ = false;
}

void TraceSet::add_event(TaskEvent event) {
  events_.push_back(event);
  finalized_ = false;
}

void TraceSet::add_host_load(HostLoadSeries series) {
  host_load_.push_back(std::move(series));
  finalized_ = false;
}

void TraceSet::adopt_jobs(std::vector<Job> jobs) {
  jobs_ = std::move(jobs);
  finalized_ = false;
}

void TraceSet::adopt_tasks(std::vector<Task> tasks) {
  tasks_ = std::move(tasks);
  finalized_ = false;
}

void TraceSet::adopt_events(std::vector<TaskEvent> events) {
  events_ = std::move(events);
  finalized_ = false;
}

void TraceSet::adopt_machines(std::vector<Machine> machines) {
  machines_ = std::move(machines);
  finalized_ = false;
}

void TraceSet::adopt_host_load(std::vector<HostLoadSeries> series) {
  host_load_ = std::move(series);
  finalized_ = false;
}

void TraceSet::finalize() {
  // Each sort is skipped when the data is already ordered: already-final
  // inputs (columnar store round-trips, re-finalize after set_duration)
  // then pay one linear scan instead of a full sort.
  const auto event_less = [](const TaskEvent& a, const TaskEvent& b) {
    return a.time < b.time;
  };
  if (!std::is_sorted(events_.begin(), events_.end(), event_less)) {
    std::stable_sort(events_.begin(), events_.end(), event_less);
  }
  const auto task_less = [](const Task& a, const Task& b) {
    if (a.job_id != b.job_id) {
      return a.job_id < b.job_id;
    }
    return a.task_index < b.task_index;
  };
  if (!std::is_sorted(tasks_.begin(), tasks_.end(), task_less)) {
    std::sort(tasks_.begin(), tasks_.end(), task_less);
  }
  // Tie-break on job_id so the order is deterministic regardless of
  // insertion order (round-trips through the columnar store reproduce
  // the exact vector).
  const auto job_less = [](const Job& a, const Job& b) {
    if (a.submit_time != b.submit_time) {
      return a.submit_time < b.submit_time;
    }
    return a.job_id < b.job_id;
  };
  if (!std::is_sorted(jobs_.begin(), jobs_.end(), job_less)) {
    std::sort(jobs_.begin(), jobs_.end(), job_less);
  }

  machine_index_.clear();
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    machine_index_[machines_[i].machine_id] = i;
  }
  host_load_index_.clear();
  for (std::size_t i = 0; i < host_load_.size(); ++i) {
    host_load_index_[host_load_[i].machine_id()] = i;
  }
  job_index_.clear();
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    job_index_[jobs_[i].job_id] = i;
  }
  job_task_range_.clear();
  if (!tasks_.empty()) {
    std::size_t start = 0;
    for (std::size_t i = 1; i <= tasks_.size(); ++i) {
      if (i == tasks_.size() || tasks_[i].job_id != tasks_[start].job_id) {
        job_task_range_[tasks_[start].job_id] = {start, i};
        start = i;
      }
    }
  }

  if (duration_ == 0) {
    TimeSec last = 0;
    for (const TaskEvent& e : events_) {
      last = std::max(last, e.time);
    }
    for (const Job& j : jobs_) {
      last = std::max({last, j.submit_time, j.end_time});
    }
    duration_ = last;
  }
  finalized_ = true;
}

void TraceSet::require_finalized() const {
  CGC_CHECK_MSG(finalized_, "TraceSet::finalize() must be called first");
}

std::optional<Machine> TraceSet::machine_by_id(std::int64_t machine_id) const {
  require_finalized();
  const auto it = machine_index_.find(machine_id);
  if (it == machine_index_.end()) {
    return std::nullopt;
  }
  return machines_[it->second];
}

const HostLoadSeries* TraceSet::host_load_for(std::int64_t machine_id) const {
  require_finalized();
  const auto it = host_load_index_.find(machine_id);
  return it == host_load_index_.end() ? nullptr : &host_load_[it->second];
}

std::span<const Task> TraceSet::tasks_for_job(std::int64_t job_id) const {
  require_finalized();
  const auto it = job_task_range_.find(job_id);
  if (it == job_task_range_.end()) {
    return {};
  }
  return std::span<const Task>(tasks_).subspan(
      it->second.first, it->second.second - it->second.first);
}

const Job* TraceSet::job_by_id(std::int64_t job_id) const {
  require_finalized();
  const auto it = job_index_.find(job_id);
  return it == job_index_.end() ? nullptr : &jobs_[it->second];
}

TraceSummary TraceSet::summary() const {
  TraceSummary s;
  s.num_jobs = jobs_.size();
  s.num_tasks = tasks_.size();
  s.num_events = events_.size();
  s.num_machines = machines_.size();
  s.duration = duration_;
  for (const HostLoadSeries& h : host_load_) {
    s.num_samples += h.size();
  }
  std::size_t terminal = 0;
  std::size_t abnormal = 0;
  for (const TaskEvent& e : events_) {
    if (is_terminal(e.type)) {
      ++terminal;
      if (is_abnormal(e.type)) {
        ++abnormal;
      }
    }
  }
  s.abnormal_completion_fraction =
      terminal == 0 ? 0.0
                    : static_cast<double>(abnormal) /
                          static_cast<double>(terminal);
  return s;
}

std::vector<double> TraceSet::job_lengths() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    if (j.completed()) {
      out.push_back(static_cast<double>(j.length()));
    }
  }
  return out;
}

std::vector<double> TraceSet::task_run_durations() const {
  std::vector<double> out;
  out.reserve(tasks_.size());
  for (const Task& t : tasks_) {
    if (t.schedule_time >= 0 && t.end_time >= 0) {
      out.push_back(static_cast<double>(t.run_duration()));
    }
  }
  return out;
}

namespace {

/// FNV-1a over 64-bit words; every field is widened to a word first so
/// the digest depends only on logical content, never on struct padding.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void word(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
  }
  void i64(std::int64_t v) { word(static_cast<std::uint64_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    word(bits);
  }
};

}  // namespace

std::uint64_t TraceSet::content_digest() const {
  Digest d;
  d.i64(static_cast<std::int64_t>(duration_));
  for (const Machine& m : machines_) {
    d.i64(m.machine_id);
    d.f32(m.cpu_capacity);
    d.f32(m.mem_capacity);
    d.f32(m.page_cache_capacity);
    d.word(m.attributes);
  }
  for (const TaskEvent& e : events_) {
    d.i64(e.time);
    d.i64(e.job_id);
    d.i64(e.task_index);
    d.i64(e.machine_id);
    d.word(static_cast<std::uint64_t>(e.type));
    d.word(e.priority);
  }
  for (const Task& t : tasks_) {
    d.i64(t.job_id);
    d.i64(t.task_index);
    d.word(t.priority);
    d.i64(t.submit_time);
    d.i64(t.schedule_time);
    d.i64(t.end_time);
    d.word(static_cast<std::uint64_t>(t.end_event));
    d.i64(t.machine_id);
    d.i64(t.resubmits);
    d.f32(t.cpu_request);
    d.f32(t.mem_request);
    d.f32(t.cpu_usage);
    d.f32(t.mem_usage);
  }
  for (const Job& j : jobs_) {
    d.i64(j.job_id);
    d.word(j.priority);
    d.i64(j.submit_time);
    d.i64(j.end_time);
    d.i64(j.num_tasks);
    d.f32(j.cpu_parallelism);
    d.f32(j.mem_usage);
  }
  for (const HostLoadSeries& s : host_load_) {
    d.i64(s.machine_id());
    d.i64(s.start());
    d.i64(s.period());
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t b = 0; b < kNumBands; ++b) {
        const auto band = static_cast<PriorityBand>(b);
        d.f32(s.cpu(band, i));
        d.f32(s.mem(band, i));
      }
      d.f32(s.mem_assigned(i));
      d.f32(s.page_cache(i));
      d.i64(s.running(i));
      d.i64(s.pending(i));
    }
  }
  return d.h;
}

std::vector<double> TraceSet::job_submit_times() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    out.push_back(static_cast<double>(j.submit_time));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> TraceSet::submission_intervals() const {
  const std::vector<double> times = job_submit_times();
  std::vector<double> out;
  if (times.size() < 2) {
    return out;
  }
  out.reserve(times.size() - 1);
  for (std::size_t i = 1; i < times.size(); ++i) {
    out.push_back(times[i] - times[i - 1]);
  }
  return out;
}

std::vector<double> TraceSet::jobs_per_hour() const {
  CGC_CHECK_MSG(duration_ > 0, "trace duration unknown");
  const auto num_hours = static_cast<std::size_t>(
      (duration_ + util::kSecondsPerHour - 1) / util::kSecondsPerHour);
  std::vector<double> counts(std::max<std::size_t>(num_hours, 1), 0.0);
  for (const Job& j : jobs_) {
    const auto hour = static_cast<std::size_t>(
        std::clamp<TimeSec>(j.submit_time / util::kSecondsPerHour, 0,
                            static_cast<TimeSec>(counts.size()) - 1));
    counts[hour] += 1.0;
  }
  return counts;
}

std::vector<double> TraceSet::job_cpu_usage() const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    out.push_back(static_cast<double>(j.cpu_parallelism));
  }
  return out;
}

std::vector<double> TraceSet::job_mem_usage(double max_capacity_gb) const {
  std::vector<double> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) {
    double mem = static_cast<double>(j.mem_usage);
    if (!memory_in_mb_ && max_capacity_gb > 0.0) {
      mem *= max_capacity_gb * 1024.0;  // normalized -> MB
    }
    out.push_back(mem);
  }
  return out;
}

}  // namespace cgc::trace
