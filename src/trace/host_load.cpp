#include "trace/host_load.hpp"

#include <algorithm>

namespace cgc::trace {

HostLoadSeries::HostLoadSeries(std::int64_t machine_id, TimeSec start,
                               TimeSec period)
    : machine_id_(machine_id), start_(start), period_(period) {
  CGC_CHECK_MSG(period > 0, "sample period must be positive");
}

void HostLoadSeries::append(const float cpu_by_band[kNumBands],
                            const float mem_by_band[kNumBands],
                            float mem_assigned, float page_cache,
                            std::int32_t running, std::int32_t pending) {
  for (std::size_t b = 0; b < kNumBands; ++b) {
    cpu_[b].push_back(cpu_by_band[b]);
    mem_[b].push_back(mem_by_band[b]);
  }
  mem_assigned_.push_back(mem_assigned);
  page_cache_.push_back(page_cache);
  running_.push_back(running);
  pending_.push_back(pending);
}

void HostLoadSeries::append_samples(
    const std::span<const float> cpu_by_band[kNumBands],
    const std::span<const float> mem_by_band[kNumBands],
    std::span<const float> mem_assigned, std::span<const float> page_cache,
    std::span<const std::int32_t> running,
    std::span<const std::int32_t> pending) {
  const std::size_t n = mem_assigned.size();
  CGC_CHECK_MSG(page_cache.size() == n && running.size() == n &&
                    pending.size() == n,
                "host-load sample columns must have equal lengths");
  for (std::size_t b = 0; b < kNumBands; ++b) {
    CGC_CHECK_MSG(cpu_by_band[b].size() == n && mem_by_band[b].size() == n,
                  "host-load sample columns must have equal lengths");
    cpu_[b].insert(cpu_[b].end(), cpu_by_band[b].begin(), cpu_by_band[b].end());
    mem_[b].insert(mem_[b].end(), mem_by_band[b].begin(), mem_by_band[b].end());
  }
  mem_assigned_.insert(mem_assigned_.end(), mem_assigned.begin(),
                       mem_assigned.end());
  page_cache_.insert(page_cache_.end(), page_cache.begin(), page_cache.end());
  running_.insert(running_.end(), running.begin(), running.end());
  pending_.insert(pending_.end(), pending.begin(), pending.end());
}

float HostLoadSeries::cpu_total(std::size_t i) const {
  return cpu_[0][i] + cpu_[1][i] + cpu_[2][i];
}

float HostLoadSeries::mem_total(std::size_t i) const {
  return mem_[0][i] + mem_[1][i] + mem_[2][i];
}

float HostLoadSeries::cpu_from_band(PriorityBand min_band,
                                    std::size_t i) const {
  float total = 0.0f;
  for (std::size_t b = static_cast<std::size_t>(min_band); b < kNumBands;
       ++b) {
    total += cpu_[b][i];
  }
  return total;
}

float HostLoadSeries::mem_from_band(PriorityBand min_band,
                                    std::size_t i) const {
  float total = 0.0f;
  for (std::size_t b = static_cast<std::size_t>(min_band); b < kNumBands;
       ++b) {
    total += mem_[b][i];
  }
  return total;
}

std::vector<double> HostLoadSeries::cpu_relative(double capacity,
                                                 PriorityBand min_band) const {
  CGC_CHECK_MSG(capacity > 0.0, "capacity must be positive");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = std::clamp(cpu_from_band(min_band, i) / capacity, 0.0, 1.0);
  }
  return out;
}

std::vector<double> HostLoadSeries::mem_relative(double capacity,
                                                 PriorityBand min_band) const {
  CGC_CHECK_MSG(capacity > 0.0, "capacity must be positive");
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = std::clamp(mem_from_band(min_band, i) / capacity, 0.0, 1.0);
  }
  return out;
}

namespace {
template <typename F>
float max_over(std::size_t n, F&& value_at) {
  float best = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    best = std::max(best, value_at(i));
  }
  return best;
}
}  // namespace

float HostLoadSeries::max_cpu() const {
  return max_over(size(), [this](std::size_t i) { return cpu_total(i); });
}

float HostLoadSeries::max_mem() const {
  return max_over(size(), [this](std::size_t i) { return mem_total(i); });
}

float HostLoadSeries::max_mem_assigned() const {
  return max_over(size(), [this](std::size_t i) { return mem_assigned_[i]; });
}

float HostLoadSeries::max_page_cache() const {
  return max_over(size(), [this](std::size_t i) { return page_cache_[i]; });
}

}  // namespace cgc::trace
