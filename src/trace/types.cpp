#include "trace/types.hpp"

namespace cgc::trace {

std::string_view event_name(TaskEventType e) {
  switch (e) {
    case TaskEventType::kSubmit:
      return "SUBMIT";
    case TaskEventType::kSchedule:
      return "SCHEDULE";
    case TaskEventType::kEvict:
      return "EVICT";
    case TaskEventType::kFail:
      return "FAIL";
    case TaskEventType::kFinish:
      return "FINISH";
    case TaskEventType::kKill:
      return "KILL";
    case TaskEventType::kLost:
      return "LOST";
    case TaskEventType::kUpdate:
      return "UPDATE";
  }
  return "?";
}

std::string_view state_name(TaskState s) {
  switch (s) {
    case TaskState::kUnsubmitted:
      return "UNSUBMITTED";
    case TaskState::kPending:
      return "PENDING";
    case TaskState::kRunning:
      return "RUNNING";
    case TaskState::kDead:
      return "DEAD";
  }
  return "?";
}

TaskState apply_event(TaskState from, TaskEventType event) {
  switch (event) {
    case TaskEventType::kSubmit:
      CGC_CHECK_MSG(from == TaskState::kUnsubmitted || from == TaskState::kDead,
                    "SUBMIT only legal from UNSUBMITTED or DEAD");
      return TaskState::kPending;
    case TaskEventType::kSchedule:
      CGC_CHECK_MSG(from == TaskState::kPending,
                    "SCHEDULE only legal from PENDING");
      return TaskState::kRunning;
    case TaskEventType::kEvict:
    case TaskEventType::kFail:
    case TaskEventType::kFinish:
    case TaskEventType::kKill:
      CGC_CHECK_MSG(from == TaskState::kRunning,
                    "terminal event only legal from RUNNING");
      return TaskState::kDead;
    case TaskEventType::kLost:
      // LOST can strike a pending task (missing input) or a running one.
      CGC_CHECK_MSG(from == TaskState::kRunning || from == TaskState::kPending,
                    "LOST only legal from PENDING or RUNNING");
      return TaskState::kDead;
    case TaskEventType::kUpdate:
      CGC_CHECK_MSG(from == TaskState::kPending || from == TaskState::kRunning,
                    "UPDATE only legal from PENDING or RUNNING");
      return from;
  }
  CGC_CHECK_MSG(false, "unknown event");
  return from;
}

}  // namespace cgc::trace
