#include "trace/parse_report.hpp"

#include "util/check.hpp"
#include "util/csv.hpp"

namespace cgc::trace {

std::string ParseReport::summary() const {
  return std::to_string(lines_bad) + " bad lines skipped (" +
         std::to_string(records_ok) + " records parsed)";
}

void ParseReport::merge(const ParseReport& other) {
  records_ok += other.records_ok;
  lines_bad += other.lines_bad;
  for (const std::string& s : other.samples) {
    if (samples.size() >= 20) {
      break;
    }
    samples.push_back(s);
  }
}

namespace detail {

void handle_bad_line(const ParseOptions& options, ParseReport* report,
                     const std::string& path, std::size_t line_number,
                     const std::string& what) {
  if (!options.tolerant) {
    util::throw_parse_error(path, line_number, what);
  }
  CGC_CHECK_MSG(report != nullptr,
                "tolerant parsing needs a ParseReport to account into");
  ++report->lines_bad;
  if (report->samples.size() < options.max_recorded) {
    report->samples.push_back(path + ":" + std::to_string(line_number) +
                              ": " + what);
  }
  if (report->lines_bad > options.max_bad_lines) {
    throw util::DataError(path + ": too many bad lines (" +
                          std::to_string(report->lines_bad) + " > cap " +
                          std::to_string(options.max_bad_lines) +
                          "); first: " +
                          (report->samples.empty() ? what
                                                   : report->samples[0]));
  }
}

}  // namespace detail
}  // namespace cgc::trace
