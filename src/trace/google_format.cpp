#include "trace/google_format.hpp"

#include <filesystem>
#include <map>
#include <unordered_map>

#include "fault/fault.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace cgc::trace {

namespace {

/// clusterdata event code <-> TaskEventType.
int event_code(TaskEventType e) {
  switch (e) {
    case TaskEventType::kSubmit:
      return 0;
    case TaskEventType::kSchedule:
      return 1;
    case TaskEventType::kEvict:
      return 2;
    case TaskEventType::kFail:
      return 3;
    case TaskEventType::kFinish:
      return 4;
    case TaskEventType::kKill:
      return 5;
    case TaskEventType::kLost:
      return 6;
    case TaskEventType::kUpdate:
      return 7;
  }
  return -1;
}

TaskEventType event_from_code(std::int64_t code) {
  switch (code) {
    case 0:
      return TaskEventType::kSubmit;
    case 1:
      return TaskEventType::kSchedule;
    case 2:
      return TaskEventType::kEvict;
    case 3:
      return TaskEventType::kFail;
    case 4:
      return TaskEventType::kFinish;
    case 5:
      return TaskEventType::kKill;
    case 6:
      return TaskEventType::kLost;
    case 7:
    case 8:  // UPDATE_PENDING / UPDATE_RUNNING both map to kUpdate
      return TaskEventType::kUpdate;
    default:
      CGC_CHECK_MSG(false, "unknown task event code " + std::to_string(code));
      return TaskEventType::kSubmit;
  }
}

constexpr std::int64_t kMicrosPerSecond = 1'000'000;

}  // namespace

void write_task_events(const TraceSet& trace, const std::string& path) {
  util::CsvWriter out(path);
  std::vector<std::string> row(13);
  for (const TaskEvent& e : trace.events()) {
    row[0] = std::to_string(e.time * kMicrosPerSecond);
    row[1] = "";  // missing_info
    row[2] = std::to_string(e.job_id);
    row[3] = std::to_string(e.task_index);
    row[4] = e.machine_id < 0 ? "" : std::to_string(e.machine_id);
    row[5] = std::to_string(event_code(e.type));
    row[6] = "";  // user (opaque in the public trace)
    row[7] = "0";  // scheduling class
    row[8] = std::to_string(static_cast<int>(e.priority) - 1);
    row[9] = "";
    row[10] = "";
    row[11] = "";
    row[12] = "";
    out.write_record(row);
  }
}

void write_machine_events(const TraceSet& trace, const std::string& path) {
  util::CsvWriter out(path);
  std::vector<std::string> row(6);
  for (const Machine& m : trace.machines()) {
    row[0] = "0";
    row[1] = std::to_string(m.machine_id);
    row[2] = "0";  // ADD
    // The public trace's opaque platform_id carries our attribute bits.
    row[3] = std::to_string(static_cast<int>(m.attributes));
    row[4] = util::format_double(m.cpu_capacity);
    row[5] = util::format_double(m.mem_capacity);
    out.write_record(row);
  }
}

void write_host_usage(const TraceSet& trace, const std::string& path) {
  util::CsvWriter out(path);
  std::vector<std::string> row(12);
  for (const HostLoadSeries& h : trace.host_load()) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      row[0] = std::to_string(h.machine_id());
      row[1] = std::to_string(h.time_at(i));
      row[2] = util::format_double(h.cpu(PriorityBand::kLow, i));
      row[3] = util::format_double(h.cpu(PriorityBand::kMid, i));
      row[4] = util::format_double(h.cpu(PriorityBand::kHigh, i));
      row[5] = util::format_double(h.mem(PriorityBand::kLow, i));
      row[6] = util::format_double(h.mem(PriorityBand::kMid, i));
      row[7] = util::format_double(h.mem(PriorityBand::kHigh, i));
      row[8] = util::format_double(h.mem_assigned(i));
      row[9] = util::format_double(h.page_cache(i));
      row[10] = std::to_string(h.running(i));
      row[11] = std::to_string(h.pending(i));
      out.write_record(row);
    }
  }
}

void write_google_trace(const TraceSet& trace, const std::string& directory) {
  std::filesystem::create_directories(directory);
  write_task_events(trace, directory + "/task_events.csv");
  write_machine_events(trace, directory + "/machine_events.csv");
  write_host_usage(trace, directory + "/host_usage.csv");
}

namespace {

void read_task_events(const std::string& path, TraceSet* trace,
                      const ParseOptions& options, ParseReport* report) {
  util::CsvReader in(path);
  while (in.next_record()) {
    if (fault::armed()) {
      // I/O failures are not a property of the record, so they bypass
      // tolerant accounting and propagate even in tolerant mode.
      fault::maybe_throw("io.read", in.line_number(),
                         fault::ErrorKind::kTransient);
    }
    try {
      if (fault::armed()) {
        fault::maybe_throw("trace.parse_line", in.line_number());
      }
      const auto& f = in.fields();
      CGC_CHECK_MSG(f.size() >= 9,
                    "task_events row too short (truncated record?)");
      TaskEvent e;
      e.time = util::parse_int(f[0]) / kMicrosPerSecond;
      e.job_id = util::parse_int(f[2]);
      e.task_index = static_cast<std::int32_t>(util::parse_int(f[3]));
      e.machine_id = f[4].empty() ? -1 : util::parse_int(f[4]);
      e.type = event_from_code(util::parse_int(f[5]));
      const std::int64_t file_priority = util::parse_int(f[8]);
      CGC_CHECK_MSG(file_priority >= 0 && file_priority < kNumPriorities,
                    "priority out of range");
      e.priority = static_cast<std::uint8_t>(file_priority + 1);
      trace->add_event(e);
      if (report != nullptr) {
        ++report->records_ok;
      }
    } catch (const util::TransientError&) {
      throw;  // an I/O-class failure, not a bad record
    } catch (const util::Error& e) {
      detail::handle_bad_line(options, report, path, in.line_number(),
                              e.what());
    }
  }
}

void read_machine_events(const std::string& path, TraceSet* trace,
                         const ParseOptions& options, ParseReport* report) {
  util::CsvReader in(path);
  while (in.next_record()) {
    if (fault::armed()) {
      fault::maybe_throw("io.read", in.line_number(),
                         fault::ErrorKind::kTransient);
    }
    try {
      if (fault::armed()) {
        fault::maybe_throw("trace.parse_line", in.line_number());
      }
      const auto& f = in.fields();
      CGC_CHECK_MSG(f.size() >= 6,
                    "machine_events row too short (truncated record?)");
      if (util::parse_int(f[2]) != 0) {
        continue;  // only ADD events carry capacities we need
      }
      Machine m;
      m.machine_id = util::parse_int(f[1]);
      if (!f[3].empty()) {
        m.attributes = static_cast<std::uint8_t>(util::parse_int(f[3]));
      }
      m.cpu_capacity = static_cast<float>(util::parse_double(f[4]));
      m.mem_capacity = static_cast<float>(util::parse_double(f[5]));
      trace->add_machine(m);
      if (report != nullptr) {
        ++report->records_ok;
      }
    } catch (const util::TransientError&) {
      throw;  // an I/O-class failure, not a bad record
    } catch (const util::Error& e) {
      detail::handle_bad_line(options, report, path, in.line_number(),
                              e.what());
    }
  }
}

void read_host_usage(const std::string& path, TraceSet* trace,
                     const ParseOptions& options, ParseReport* report) {
  util::CsvReader in(path);
  // Ordered by machine id: finalize() never reorders host-load series,
  // so the emission loop below fixes their order in the TraceSet — an
  // unordered map here would leak hash-iteration order into digests.
  std::map<std::int64_t, HostLoadSeries> series;
  while (in.next_record()) {
    if (fault::armed()) {
      fault::maybe_throw("io.read", in.line_number(),
                         fault::ErrorKind::kTransient);
    }
    try {
      if (fault::armed()) {
        fault::maybe_throw("trace.parse_line", in.line_number());
      }
      const auto& f = in.fields();
      CGC_CHECK_MSG(f.size() >= 12,
                    "host_usage row too short (truncated record?)");
      // Parse every field before touching `series` so a malformed record
      // skipped in tolerant mode leaves no half-built entry behind.
      const std::int64_t machine_id = util::parse_int(f[0]);
      const TimeSec time = util::parse_int(f[1]);
      const float cpu[kNumBands] = {
          static_cast<float>(util::parse_double(f[2])),
          static_cast<float>(util::parse_double(f[3])),
          static_cast<float>(util::parse_double(f[4]))};
      const float mem[kNumBands] = {
          static_cast<float>(util::parse_double(f[5])),
          static_cast<float>(util::parse_double(f[6])),
          static_cast<float>(util::parse_double(f[7]))};
      const float mem_assigned =
          static_cast<float>(util::parse_double(f[8]));
      const float page_cache = static_cast<float>(util::parse_double(f[9]));
      const std::int32_t running =
          static_cast<std::int32_t>(util::parse_int(f[10]));
      const std::int32_t pending =
          static_cast<std::int32_t>(util::parse_int(f[11]));
      auto [it, inserted] = series.try_emplace(
          machine_id, machine_id, time, util::kSamplePeriod);
      it->second.append(cpu, mem, mem_assigned, page_cache, running, pending);
      if (report != nullptr) {
        ++report->records_ok;
      }
    } catch (const util::TransientError&) {
      throw;  // an I/O-class failure, not a bad record
    } catch (const util::Error& e) {
      detail::handle_bad_line(options, report, path, in.line_number(),
                              e.what());
    }
  }
  for (auto& [id, s] : series) {
    trace->add_host_load(std::move(s));
  }
}

}  // namespace

void rebuild_tasks_and_jobs(TraceSet* trace) {
  // Tracks the live instance of each (job, task_index).
  struct Open {
    TaskState state = TaskState::kUnsubmitted;
    Task record;
  };
  std::unordered_map<std::int64_t, std::unordered_map<std::int32_t, Open>>
      open;

  for (const TaskEvent& e : trace->events()) {
    Open& o = open[e.job_id][e.task_index];
    switch (e.type) {
      case TaskEventType::kSubmit:
        if (o.state == TaskState::kDead) {
          ++o.record.resubmits;
        } else {
          o.record = Task{};
          o.record.job_id = e.job_id;
          o.record.task_index = e.task_index;
          o.record.submit_time = e.time;
        }
        o.record.priority = e.priority;
        o.state = TaskState::kPending;
        break;
      case TaskEventType::kSchedule:
        if (o.state != TaskState::kPending) {
          CGC_LOG(kWarn) << "SCHEDULE for non-pending task " << e.job_id << "/"
                         << e.task_index << "; skipping";
          break;
        }
        if (o.record.schedule_time < 0) {
          o.record.schedule_time = e.time;
        }
        o.record.machine_id = e.machine_id;
        o.state = TaskState::kRunning;
        break;
      case TaskEventType::kEvict:
      case TaskEventType::kFail:
      case TaskEventType::kFinish:
      case TaskEventType::kKill:
      case TaskEventType::kLost:
        if (o.state != TaskState::kRunning && o.state != TaskState::kPending) {
          CGC_LOG(kWarn) << "terminal event for idle task " << e.job_id << "/"
                         << e.task_index << "; skipping";
          break;
        }
        o.record.end_time = e.time;
        o.record.end_event = e.type;
        o.state = TaskState::kDead;
        break;
      case TaskEventType::kUpdate:
        break;
    }
  }

  // cgc-lint: allow(unordered-iteration) finalize() sorts tasks by the
  // unique (job_id, task_index) key, so emission order cannot survive.
  for (auto& [job_id, tasks] : open) {
    for (auto& [index, o] : tasks) {
      trace->add_task(o.record);
    }
  }

  // Aggregate jobs from their tasks.
  std::unordered_map<std::int64_t, Job> jobs;
  for (const Task& t : trace->tasks()) {
    auto [it, inserted] = jobs.try_emplace(t.job_id);
    Job& j = it->second;
    if (inserted) {
      j.job_id = t.job_id;
      j.priority = t.priority;
      j.submit_time = t.submit_time;
      j.end_time = t.end_time;
      j.num_tasks = 1;
    } else {
      j.submit_time = std::min(j.submit_time, t.submit_time);
      // A job completes when its last task does; any unfinished task
      // leaves the job unfinished.
      if (j.end_time >= 0) {
        j.end_time = t.end_time < 0 ? -1 : std::max(j.end_time, t.end_time);
      }
      ++j.num_tasks;
    }
  }
  // cgc-lint: allow(unordered-iteration) finalize() sorts jobs by the
  // unique (submit_time, job_id) key, so emission order cannot survive.
  for (const auto& [id, job] : jobs) {
    trace->add_job(job);
  }
}

TraceSet read_google_trace(const std::string& directory,
                           const std::string& system_name) {
  return detail::read_google_trace_impl(directory, system_name,
                                        ParseOptions{}, nullptr);
}

TraceSet read_google_trace(const std::string& directory,
                           const std::string& system_name,
                           const ParseOptions& options, ParseReport* report) {
  return detail::read_google_trace_impl(directory, system_name, options,
                                        report);
}

TraceSet detail::read_google_trace_impl(const std::string& directory,
                                        const std::string& system_name,
                                        const ParseOptions& options,
                                        ParseReport* report) {
  TraceSet trace(system_name);
  const std::string task_events_path = directory + "/task_events.csv";
  const std::string machine_events_path = directory + "/machine_events.csv";
  const std::string host_usage_path = directory + "/host_usage.csv";

  CGC_CHECK_MSG(std::filesystem::exists(task_events_path),
                "missing " + task_events_path);
  read_task_events(task_events_path, &trace, options, report);
  if (std::filesystem::exists(machine_events_path)) {
    read_machine_events(machine_events_path, &trace, options, report);
  }
  if (std::filesystem::exists(host_usage_path)) {
    read_host_usage(host_usage_path, &trace, options, report);
  }
  trace.finalize();  // sort events before reconstruction
  rebuild_tasks_and_jobs(&trace);
  trace.finalize();
  return trace;
}

}  // namespace cgc::trace
