// Standard Workload Format (SWF) parser/writer — the Parallel Workload
// Archive format used by the paper's HPC traces (ANL, RICC, METACENTRUM,
// LLNL-Atlas).
//
// SWF is whitespace-separated, one job per line, 18 fields:
//   1 job_number  2 submit_time  3 wait_time  4 run_time
//   5 allocated_processors  6 avg_cpu_time_used  7 used_memory(KB/proc)
//   8 requested_processors  9 requested_time  10 requested_memory
//   11 status  12 user_id  13 group_id  14 executable  15 queue
//   16 partition  17 preceding_job  18 think_time
// Header lines start with ';'. Missing values are -1.
//
// Mapping into the data model: one SWF job -> one Job with
// cpu_parallelism = allocated processors and mem_usage converted to MB
// (used_memory is KB per processor); the job is also materialized as a
// single parallel Task so task-level analyses see Grid tasks.
#pragma once

#include <string>

#include "trace/parse_report.hpp"
#include "trace/trace_set.hpp"

namespace cgc::trace {

namespace detail {
/// Canonical SWF parse path; both the Loader façade and the public
/// read_swf overloads delegate here.
TraceSet read_swf_impl(const std::string& path,
                       const std::string& system_name,
                       const ParseOptions& options, ParseReport* report);
}  // namespace detail

/// Parses an SWF file into a workload-only TraceSet. Strict: the first
/// malformed record throws. Kept as a delegating wrapper for one
/// release; prefer cgc::trace::Loader (trace/loader.hpp).
TraceSet read_swf(const std::string& path, const std::string& system_name);

/// As above, honoring `options` (tolerant mode skips and accounts bad
/// records into `report`; see parse_report.hpp). Delegating wrapper;
/// prefer cgc::trace::Loader.
TraceSet read_swf(const std::string& path, const std::string& system_name,
                  const ParseOptions& options, ParseReport* report);

/// Writes jobs of `trace` as SWF (fields we do not track are -1).
void write_swf(const TraceSet& trace, const std::string& path);

}  // namespace cgc::trace
