// Per-machine host-load time series (structure-of-arrays).
//
// One HostLoadSeries per machine: usage sampled at a fixed period
// (default 5 minutes, like the Google trace), split by priority band so
// analyzers can compute "all tasks" vs "high-priority only" views
// (Figs 10-12). Stored as parallel float vectors — compact (Core
// Guidelines Per.16) and cache-friendly for the month-long scans.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/types.hpp"

namespace cgc::trace {

/// Host-load samples for a single machine. All metric vectors share the
/// same length; entry i is the sample at time start + i * period.
/// Usage values are in absolute normalized units (same scale as Machine
/// capacities); divide by capacity for relative usage.
class HostLoadSeries {
 public:
  HostLoadSeries() = default;
  HostLoadSeries(std::int64_t machine_id, TimeSec start, TimeSec period);

  /// Appends one sample; the per-band arrays index by PriorityBand.
  void append(const float cpu_by_band[kNumBands],
              const float mem_by_band[kNumBands], float mem_assigned,
              float page_cache, std::int32_t running, std::int32_t pending);

  /// Appends a block of samples from parallel columns, all of the same
  /// length (bulk path for columnar deserialization).
  void append_samples(const std::span<const float> cpu_by_band[kNumBands],
                      const std::span<const float> mem_by_band[kNumBands],
                      std::span<const float> mem_assigned,
                      std::span<const float> page_cache,
                      std::span<const std::int32_t> running,
                      std::span<const std::int32_t> pending);

  std::int64_t machine_id() const { return machine_id_; }
  TimeSec start() const { return start_; }
  TimeSec period() const { return period_; }
  std::size_t size() const { return mem_assigned_.size(); }
  bool empty() const { return mem_assigned_.empty(); }
  TimeSec time_at(std::size_t i) const {
    return start_ + static_cast<TimeSec>(i) * period_;
  }

  float cpu(PriorityBand band, std::size_t i) const {
    return cpu_[static_cast<std::size_t>(band)][i];
  }
  float mem(PriorityBand band, std::size_t i) const {
    return mem_[static_cast<std::size_t>(band)][i];
  }
  /// Total usage across all bands at sample i.
  float cpu_total(std::size_t i) const;
  float mem_total(std::size_t i) const;
  /// Usage summed over bands >= min_band (the paper's "high-priority"
  /// views are min_band = kHigh; "mid+high" is kMid).
  float cpu_from_band(PriorityBand min_band, std::size_t i) const;
  float mem_from_band(PriorityBand min_band, std::size_t i) const;

  float mem_assigned(std::size_t i) const { return mem_assigned_[i]; }
  float page_cache(std::size_t i) const { return page_cache_[i]; }
  std::int32_t running(std::size_t i) const { return running_[i]; }
  std::int32_t pending(std::size_t i) const { return pending_[i]; }

  std::span<const std::int32_t> running_counts() const { return running_; }
  std::span<const std::int32_t> pending_counts() const { return pending_; }

  // Raw per-metric columns (columnar serialization in cgc::store).
  std::span<const float> cpu_band(PriorityBand band) const {
    return cpu_[static_cast<std::size_t>(band)];
  }
  std::span<const float> mem_band(PriorityBand band) const {
    return mem_[static_cast<std::size_t>(band)];
  }
  std::span<const float> mem_assigned_samples() const {
    return mem_assigned_;
  }
  std::span<const float> page_cache_samples() const { return page_cache_; }

  /// Relative usage series (usage / capacity, clamped to [0,1]) for
  /// bands >= min_band. capacity must be positive.
  std::vector<double> cpu_relative(double capacity,
                                   PriorityBand min_band) const;
  std::vector<double> mem_relative(double capacity,
                                   PriorityBand min_band) const;

  /// Maximum over the series, all bands summed.
  float max_cpu() const;
  float max_mem() const;
  float max_mem_assigned() const;
  float max_page_cache() const;

 private:
  std::int64_t machine_id_ = 0;
  TimeSec start_ = 0;
  TimeSec period_ = util::kSamplePeriod;
  std::vector<float> cpu_[kNumBands];
  std::vector<float> mem_[kNumBands];
  std::vector<float> mem_assigned_;
  std::vector<float> page_cache_;
  std::vector<std::int32_t> running_;
  std::vector<std::int32_t> pending_;
};

}  // namespace cgc::trace
