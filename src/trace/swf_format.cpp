#include "trace/swf_format.hpp"

#include <sstream>

#include "fault/fault.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace cgc::trace {

namespace {

/// SWF fields are whitespace-separated with arbitrary spacing; reuse the
/// line splitting logic with normalization.
std::vector<std::string_view> split_ws(std::string_view line,
                                       std::vector<std::string_view>* buf) {
  buf->clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    if (i >= line.size()) {
      break;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    buf->push_back(line.substr(start, i - start));
  }
  return *buf;
}

}  // namespace

TraceSet read_swf(const std::string& path, const std::string& system_name) {
  return detail::read_swf_impl(path, system_name, ParseOptions{}, nullptr);
}

TraceSet read_swf(const std::string& path, const std::string& system_name,
                  const ParseOptions& options, ParseReport* report) {
  return detail::read_swf_impl(path, system_name, options, report);
}

TraceSet detail::read_swf_impl(const std::string& path,
                               const std::string& system_name,
                               const ParseOptions& options,
                               ParseReport* report) {
  std::ifstream in(path);
  CGC_CHECK_MSG(in.good(), "cannot open SWF file: " + path);
  TraceSet trace(system_name);
  trace.set_memory_in_mb(true);

  std::string line;
  std::vector<std::string_view> fields;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (fault::armed()) {
      // I/O failures are not a property of the record, so they bypass
      // tolerant accounting and propagate even in tolerant mode.
      fault::maybe_throw("io.read", line_number, fault::ErrorKind::kTransient);
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line.front() == ';' || line.front() == '#') {
      continue;
    }
    split_ws(line, &fields);
    try {
      if (fault::armed()) {
        fault::maybe_throw("trace.parse_line", line_number);
      }
      CGC_CHECK_MSG(fields.size() >= 18,
                    "SWF row needs 18 fields (truncated record?)");
      const std::int64_t job_number = util::parse_int(fields[0]);
      const std::int64_t submit = util::parse_int(fields[1]);
      const std::int64_t wait = util::parse_int(fields[2]);
      const double run_time = util::parse_double(fields[3]);
      const std::int64_t procs = util::parse_int(fields[4]);
      const double used_mem_kb = util::parse_double(fields[6]);
      const std::int64_t status = util::parse_int(fields[10]);
      const std::int64_t user = util::parse_int(fields[11]);

      Job job;
      job.job_id = job_number;
      job.user_id = user < 0 ? 0 : user;
      job.priority = 1;  // SWF has no Google-style priority
      job.submit_time = submit;
      const bool has_runtime = run_time >= 0.0;
      const TimeSec wait_s = wait < 0 ? 0 : wait;
      job.end_time = has_runtime
                         ? submit + wait_s + static_cast<TimeSec>(run_time)
                         : -1;
      job.num_tasks = 1;
      job.cpu_parallelism = procs > 0 ? static_cast<float>(procs) : 1.0f;
      job.mem_usage = used_mem_kb > 0.0
                          ? static_cast<float>(used_mem_kb *
                                               job.cpu_parallelism / 1024.0)
                          : 0.0f;
      trace.add_job(job);

      Task task;
      task.job_id = job_number;
      task.task_index = 0;
      task.priority = 1;
      task.submit_time = submit;
      task.schedule_time = has_runtime ? submit + wait_s : -1;
      task.end_time = job.end_time;
      // SWF status 1 = completed OK; 0/5 = failed/cancelled.
      task.end_event =
          status == 1 ? TaskEventType::kFinish : TaskEventType::kKill;
      task.cpu_request = job.cpu_parallelism;
      task.cpu_usage = job.cpu_parallelism;
      task.mem_usage = job.mem_usage;
      trace.add_task(task);
      if (report != nullptr) {
        ++report->records_ok;
      }
    } catch (const util::TransientError&) {
      throw;  // an I/O-class failure, not a bad record
    } catch (const util::Error& e) {
      detail::handle_bad_line(options, report, path, line_number, e.what());
    }
  }
  CGC_CHECK_MSG(!in.bad(), "I/O error while reading " + path);
  trace.finalize();
  return trace;
}

void write_swf(const TraceSet& trace, const std::string& path) {
  std::ofstream out(path);
  CGC_CHECK_MSG(out.good(), "cannot open SWF file for writing: " + path);
  out << "; SWF written by cgc (" << trace.system_name() << ")\n";
  out << "; UnixStartTime: 0\n";
  for (const Job& j : trace.jobs()) {
    const TimeSec run = j.completed() ? j.length() : -1;
    std::ostringstream row;
    row << j.job_id << ' ' << j.submit_time << ' ' << 0 << ' ' << run << ' '
        << static_cast<std::int64_t>(j.cpu_parallelism) << ' ' << -1 << ' '
        << static_cast<std::int64_t>(
               j.mem_usage * 1024.0 /
               std::max(1.0f, j.cpu_parallelism))
        << ' ' << static_cast<std::int64_t>(j.cpu_parallelism) << ' ' << -1
        << ' ' << -1 << ' ' << (j.completed() ? 1 : 0) << ' ' << j.user_id
        << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1
        << ' ' << -1;
    out << row.str() << '\n';
  }
}

}  // namespace cgc::trace
