#include "trace/loader.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/span.hpp"
#include "store/cgcs_format.hpp"
#include "trace/google_format.hpp"
#include "trace/gwa_format.hpp"
#include "trace/swf_format.hpp"
#include "util/check.hpp"

namespace cgc::trace {

const char* format_name(TraceFormat format) {
  switch (format) {
    case TraceFormat::kAuto:
      return "auto";
    case TraceFormat::kGoogleCsv:
      return "google-csv";
    case TraceFormat::kSwf:
      return "swf";
    case TraceFormat::kGwa:
      return "gwa";
    case TraceFormat::kCgcs:
      return "cgcs";
  }
  return "unknown";
}

std::string LoadReport::summary() const {
  std::ostringstream out;
  out << format_name(format) << " " << path << ": ";
  if (clean()) {
    out << "clean";
  } else if (!parse.clean()) {
    out << parse.summary();
  } else {
    out << damage.summary();
  }
  return out.str();
}

namespace {

bool has_cgcs_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, sizeof magic);
  return in.gcount() == sizeof magic &&
         std::string_view(magic, sizeof magic) == store::kMagic;
}

/// Counts whitespace-separated fields on the first non-comment line.
/// SWF and GWA are both headerless whitespace tables, so the field
/// count is the only cheap discriminator: SWF is exactly 18 fields,
/// GWA is 11+ (the standard defines 29; our writer emits 11).
std::size_t sniff_field_count(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == ';' || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string field;
    std::size_t n = 0;
    while (fields >> field) {
      ++n;
    }
    return n;
  }
  return 0;
}

std::string lower_extension(const std::string& path) {
  std::string ext = std::filesystem::path(path).extension().string();
  for (char& c : ext) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return ext;
}

}  // namespace

Loader::Loader(LoadOptions options) : options_(std::move(options)) {}

TraceFormat Loader::detect(const std::string& path) {
  namespace fs = std::filesystem;
  if (!fs::exists(path)) {
    throw util::DataError("no such trace: " + path);
  }
  if (fs::is_directory(path)) {
    return TraceFormat::kGoogleCsv;
  }
  const std::string ext = lower_extension(path);
  if (ext == ".cgcs") {
    return TraceFormat::kCgcs;
  }
  if (ext == ".swf") {
    return TraceFormat::kSwf;
  }
  if (ext == ".gwf" || ext == ".gwa") {
    return TraceFormat::kGwa;
  }
  if (has_cgcs_magic(path)) {
    return TraceFormat::kCgcs;
  }
  const std::size_t fields = sniff_field_count(path);
  if (fields == 18) {
    return TraceFormat::kSwf;
  }
  if (fields >= 11) {
    return TraceFormat::kGwa;
  }
  throw util::DataError("cannot detect trace format of " + path +
                        " (not a directory, no known extension or magic, "
                        "first data line has " +
                        std::to_string(fields) + " fields)");
}

TraceSet Loader::load(const std::string& path, LoadReport* report) const {
  obs::ScopedTimer timer("trace.load");
  const TraceFormat format = options_.format == TraceFormat::kAuto
                                 ? detect(path)
                                 : options_.format;
  LoadReport local;
  LoadReport& out = report != nullptr ? *report : local;
  out = LoadReport{};
  out.format = format;
  out.path = path;

  ParseOptions parse_options;
  parse_options.tolerant = options_.strictness == Strictness::kTolerant;
  parse_options.max_bad_lines = options_.max_bad_lines;
  parse_options.max_recorded = options_.max_recorded;
  const auto name_or = [this](const char* fallback) {
    return options_.system_name.empty() ? std::string(fallback)
                                        : options_.system_name;
  };

  switch (format) {
    case TraceFormat::kGoogleCsv:
      return detail::read_google_trace_impl(path, name_or("google-trace"),
                                            parse_options, &out.parse);
    case TraceFormat::kSwf:
      return detail::read_swf_impl(path, name_or("swf-trace"), parse_options,
                                   &out.parse);
    case TraceFormat::kGwa:
      return detail::read_gwa_impl(path, name_or("gwa-trace"), parse_options,
                                   &out.parse);
    case TraceFormat::kCgcs: {
      if (options_.on_damage == OnDamage::kQuarantine) {
        return store::read_cgcs_degraded(path, &out.damage);
      }
      return store::read_cgcs(path);
    }
    case TraceFormat::kAuto:
      break;
  }
  throw util::DataError("unresolved trace format for " + path);
}

TraceSet load_trace(const std::string& path, const LoadOptions& options,
                    LoadReport* report) {
  return Loader(options).load(path, report);
}

}  // namespace cgc::trace
