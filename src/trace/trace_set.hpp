// TraceSet: an in-memory trace — jobs, tasks, events, machines, and
// host-load series — plus the indices and summary statistics the
// analyzers need.
//
// A TraceSet is produced either by a generator + simulator run or by
// parsing files (Google-style CSV, SWF, GWA). Workload-only traces
// (Grid archives) simply have empty machines/host_load.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/host_load.hpp"
#include "trace/types.hpp"

namespace cgc::trace {

/// Aggregate counts used in logs and reports.
struct TraceSummary {
  std::size_t num_jobs = 0;
  std::size_t num_tasks = 0;
  std::size_t num_events = 0;
  std::size_t num_machines = 0;
  std::size_t num_samples = 0;
  TimeSec duration = 0;
  double abnormal_completion_fraction = 0.0;  ///< among terminal events
};

class TraceSet {
 public:
  TraceSet() = default;
  explicit TraceSet(std::string system_name) : system_name_(std::move(system_name)) {}

  // -- identity ------------------------------------------------------------
  const std::string& system_name() const { return system_name_; }
  void set_system_name(std::string name) { system_name_ = std::move(name); }
  /// Trace window length in seconds.
  TimeSec duration() const { return duration_; }
  void set_duration(TimeSec d) { duration_ = d; }
  /// True when Job::mem_usage is in MB (Grid archives) rather than
  /// normalized units (Cloud traces).
  bool memory_in_mb() const { return memory_in_mb_; }
  void set_memory_in_mb(bool v) { memory_in_mb_ = v; }

  // -- mutation (builders/parsers) -----------------------------------------
  void add_machine(Machine machine);
  void add_job(Job job);
  void add_task(Task task);
  void add_event(TaskEvent event);
  void add_host_load(HostLoadSeries series);
  void reserve_jobs(std::size_t n) { jobs_.reserve(n); }
  void reserve_tasks(std::size_t n) { tasks_.reserve(n); }
  void reserve_events(std::size_t n) { events_.reserve(n); }

  /// Bulk adoption: replaces a section wholesale (no per-record copy).
  /// Used by the columnar store reader, which decodes whole sections at
  /// once. finalize() must still be called afterwards.
  void adopt_jobs(std::vector<Job> jobs);
  void adopt_tasks(std::vector<Task> tasks);
  void adopt_events(std::vector<TaskEvent> events);
  void adopt_machines(std::vector<Machine> machines);
  void adopt_host_load(std::vector<HostLoadSeries> series);

  /// Sorts events by time, tasks by (job, index), and builds lookup
  /// indices. Must be called after bulk mutation, before queries below.
  void finalize();

  // -- access ---------------------------------------------------------------
  std::span<const Machine> machines() const { return machines_; }
  std::span<const Job> jobs() const { return jobs_; }
  std::span<const Task> tasks() const { return tasks_; }
  std::span<const TaskEvent> events() const { return events_; }
  std::span<const HostLoadSeries> host_load() const { return host_load_; }

  /// Machine record by id; nullopt if unknown.
  std::optional<Machine> machine_by_id(std::int64_t machine_id) const;
  /// Host-load series for a machine id; nullptr if absent.
  const HostLoadSeries* host_load_for(std::int64_t machine_id) const;
  /// Tasks belonging to a job (contiguous after finalize()).
  std::span<const Task> tasks_for_job(std::int64_t job_id) const;
  /// Job record by id; nullptr if unknown.
  const Job* job_by_id(std::int64_t job_id) const;

  TraceSummary summary() const;

  /// Order-sensitive FNV-1a digest over every record and sample in the
  /// set (float/double fields hashed by bit pattern). Two TraceSets have
  /// equal digests iff their contents are byte-identical — the equality
  /// check behind the simulator's CGC_THREADS determinism contract
  /// (tests/sim_determinism_test.cpp, bench_perf_sim).
  std::uint64_t content_digest() const;

  // -- derived sample vectors (used by many analyzers) ----------------------
  /// Lengths (seconds) of completed jobs.
  std::vector<double> job_lengths() const;
  /// Run durations (seconds) of tasks that were scheduled and ended.
  std::vector<double> task_run_durations() const;
  /// Sorted submission times of jobs.
  std::vector<double> job_submit_times() const;
  /// Inter-arrival gaps between consecutive job submissions.
  std::vector<double> submission_intervals() const;
  /// Per-hour job submission counts over the trace window.
  std::vector<double> jobs_per_hour() const;
  /// Per-job CPU parallelism (Formula (4)).
  std::vector<double> job_cpu_usage() const;
  /// Per-job memory usage, optionally scaled by a max capacity in GB
  /// (the paper's 32/64 GB what-if for normalized Cloud values).
  std::vector<double> job_mem_usage(double max_capacity_gb = 0.0) const;

 private:
  std::string system_name_;
  TimeSec duration_ = 0;
  bool memory_in_mb_ = false;
  bool finalized_ = false;

  std::vector<Machine> machines_;
  std::vector<Job> jobs_;
  std::vector<Task> tasks_;
  std::vector<TaskEvent> events_;
  std::vector<HostLoadSeries> host_load_;

  std::unordered_map<std::int64_t, std::size_t> machine_index_;
  std::unordered_map<std::int64_t, std::size_t> host_load_index_;
  std::unordered_map<std::int64_t, std::size_t> job_index_;
  /// job_id -> [first, last) range into tasks_ after sorting.
  std::unordered_map<std::int64_t, std::pair<std::size_t, std::size_t>>
      job_task_range_;

  void require_finalized() const;
};

}  // namespace cgc::trace
