// Core trace data model shared by generators, the simulator, parsers, and
// every analyzer.
//
// Terminology follows the paper and the Google cluster-usage trace
// format: a *job* is a user request comprised of one or more *tasks*;
// tasks move through the state machine unsubmitted -> pending -> running
// -> dead via the events SUBMIT/SCHEDULE/{EVICT,FAIL,FINISH,KILL,LOST};
// a *machine* has normalized capacities; *host load* is a per-machine
// time series sampled every 5 minutes.
//
// Units: time in seconds since trace start (util::TimeSec); CPU and
// memory in normalized units (fraction of the largest machine's
// capacity), as released Google traces are linearly scaled.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/check.hpp"
#include "util/time_util.hpp"

namespace cgc::trace {

using util::TimeSec;

// ---------------------------------------------------------------------------
// Priorities
// ---------------------------------------------------------------------------

/// The Google trace has 12 scheduling priorities; the paper numbers them
/// 1..12 and clusters them into three bands (Fig 2).
inline constexpr int kNumPriorities = 12;
inline constexpr int kMinPriority = 1;
inline constexpr int kMaxPriority = 12;

enum class PriorityBand : std::uint8_t { kLow = 0, kMid = 1, kHigh = 2 };
inline constexpr std::size_t kNumBands = 3;

/// Maps priority 1..12 to its band: low (1-4), mid (5-8), high (9-12).
constexpr PriorityBand band_of(int priority) {
  return priority <= 4   ? PriorityBand::kLow
         : priority <= 8 ? PriorityBand::kMid
                         : PriorityBand::kHigh;
}

constexpr std::string_view band_name(PriorityBand band) {
  switch (band) {
    case PriorityBand::kLow:
      return "low";
    case PriorityBand::kMid:
      return "mid";
    case PriorityBand::kHigh:
      return "high";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Task events and states
// ---------------------------------------------------------------------------

/// Task lifecycle events (Figure 1 of the paper / clusterdata format).
enum class TaskEventType : std::uint8_t {
  kSubmit = 0,    ///< enters the pending queue
  kSchedule = 1,  ///< placed on a machine, starts running
  kEvict = 2,     ///< preempted by a higher-priority task (abnormal end)
  kFail = 3,      ///< task failure (abnormal end)
  kFinish = 4,    ///< normal completion
  kKill = 5,      ///< killed by its user (abnormal end)
  kLost = 6,      ///< source data missing (abnormal end)
  kUpdate = 7,    ///< user adjusted constraints at runtime
};
inline constexpr std::size_t kNumTaskEventTypes = 8;

/// True for events that move the task to the dead state.
constexpr bool is_terminal(TaskEventType e) {
  switch (e) {
    case TaskEventType::kEvict:
    case TaskEventType::kFail:
    case TaskEventType::kFinish:
    case TaskEventType::kKill:
    case TaskEventType::kLost:
      return true;
    default:
      return false;
  }
}

/// True for abnormal completions (everything terminal except FINISH).
constexpr bool is_abnormal(TaskEventType e) {
  return is_terminal(e) && e != TaskEventType::kFinish;
}

std::string_view event_name(TaskEventType e);

/// Task states (Figure 1 of the paper).
enum class TaskState : std::uint8_t {
  kUnsubmitted = 0,
  kPending = 1,
  kRunning = 2,
  kDead = 3,
};

std::string_view state_name(TaskState s);

/// Legal state transition check for the task state machine.
constexpr bool is_legal_transition(TaskState from, TaskState to) {
  switch (from) {
    case TaskState::kUnsubmitted:
      return to == TaskState::kPending;
    case TaskState::kPending:
      return to == TaskState::kRunning || to == TaskState::kDead;
    case TaskState::kRunning:
      return to == TaskState::kDead || to == TaskState::kPending;
    case TaskState::kDead:
      return to == TaskState::kPending;  // resubmission
  }
  return false;
}

/// State the task enters after `event` fires in state `from`; throws on
/// an illegal combination.
TaskState apply_event(TaskState from, TaskEventType event);

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A timestamped task event record (one row of a task_events table).
struct TaskEvent {
  TimeSec time = 0;
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
  std::int64_t machine_id = -1;  ///< -1 when not placed
  TaskEventType type = TaskEventType::kSubmit;
  std::uint8_t priority = 1;
};

/// Final per-task record (aggregated over its event history).
struct Task {
  std::int64_t job_id = 0;
  std::int32_t task_index = 0;
  std::uint8_t priority = 1;
  TimeSec submit_time = 0;
  TimeSec schedule_time = -1;  ///< -1: never scheduled
  TimeSec end_time = -1;       ///< -1: still active at trace end
  TaskEventType end_event = TaskEventType::kFinish;
  std::int64_t machine_id = -1;  ///< machine of last placement
  std::int32_t resubmits = 0;    ///< times the task re-entered pending
  float cpu_request = 0.0f;      ///< normalized cores requested
  float mem_request = 0.0f;      ///< normalized memory requested
  float cpu_usage = 0.0f;        ///< mean observed usage while running
  float mem_usage = 0.0f;

  /// Execution time (SCHEDULE -> terminal); 0 if never ran.
  TimeSec run_duration() const {
    if (schedule_time < 0 || end_time < 0) {
      return 0;
    }
    return end_time - schedule_time;
  }

  bool completed() const { return end_time >= 0; }
};

/// Final per-job record.
struct Job {
  std::int64_t job_id = 0;
  std::int64_t user_id = 0;
  std::uint8_t priority = 1;
  TimeSec submit_time = 0;
  TimeSec end_time = -1;  ///< completion of the last task; -1 if unfinished
  std::int32_t num_tasks = 1;
  /// Mean number of processors used simultaneously (Formula (4) of the
  /// paper: cumulative CPU time / wall-clock time). Grid jobs > 1.
  float cpu_parallelism = 1.0f;
  /// Mean memory used by the job, normalized (Cloud) or in MB (Grid —
  /// see TraceSet::memory_in_mb).
  float mem_usage = 0.0f;

  /// Job length: submission to completion (the paper's definition).
  TimeSec length() const { return end_time < 0 ? -1 : end_time - submit_time; }

  bool completed() const { return end_time >= 0; }
};

/// Machine attribute bits for task placement constraints (the paper's
/// Section V cites Sharma et al.'s study of their utilization impact;
/// tasks "are submitted with a set of customized constraints").
enum MachineAttribute : std::uint8_t {
  kAttrLocalSsd = 1U << 0,     ///< fast local storage
  kAttrNewKernel = 1U << 1,    ///< recent kernel / runtime version
  kAttrExternalIp = 1U << 2,   ///< externally routable address
  kAttrHighMemNode = 1U << 3,  ///< large-memory platform
};

/// A machine and its normalized capacities.
struct Machine {
  std::int64_t machine_id = 0;
  float cpu_capacity = 1.0f;         ///< in {0.25, 0.5, 1.0} per Fig 7
  float mem_capacity = 1.0f;         ///< in {0.25, 0.5, 0.75, 1.0}
  float page_cache_capacity = 1.0f;  ///< uniform across machines
  std::uint8_t attributes = 0;       ///< MachineAttribute bitmask

  /// True when this machine satisfies a task's required attributes.
  bool satisfies(std::uint8_t required) const {
    return (attributes & required) == required;
  }
};

}  // namespace cgc::trace
