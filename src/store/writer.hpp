// CGCS writer: serializes a trace::TraceSet into the chunked columnar
// binary layout described in cgcs_format.hpp.
//
// The writer is single-pass over each section: rows are cut into row
// groups, every column of a group is gathered into a scratch buffer,
// encoded (delta+varint for sorted ids/timestamps, zigzag varint for
// other integers, raw little-endian for floats and bytes), CRC-32'd,
// zone-mapped, and appended 8-byte aligned. All metadata lands in the
// footer directory so the reader never touches payload bytes it does
// not need.
#pragma once

#include <string>

#include "store/cgcs_format.hpp"
#include "trace/trace_set.hpp"

namespace cgc::store {

struct WriteOptions {
  ChunkOptions chunks;
};

/// Writes `trace` to `path` (overwriting). Throws cgc::util::Error on
/// I/O failure. The trace does not need to be finalized, but writing a
/// finalized trace maximizes delta-encoding wins (events time-sorted,
/// tasks job-sorted).
void write_cgcs(const trace::TraceSet& trace, const std::string& path,
                const WriteOptions& options = {});

}  // namespace cgc::store
