#include "store/cgcs_format.hpp"

namespace cgc::store {

std::string_view section_name(SectionId s) {
  switch (s) {
    case SectionId::kJobs:
      return "jobs";
    case SectionId::kTasks:
      return "tasks";
    case SectionId::kEvents:
      return "events";
    case SectionId::kMachines:
      return "machines";
    case SectionId::kHostLoad:
      return "host_load";
  }
  return "?";
}

}  // namespace cgc::store
