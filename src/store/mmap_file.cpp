#include "store/mmap_file.hpp"

#include <cstdio>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CGC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cgc::store {

namespace {

/// Heap fallback: slurp the whole file.
void read_whole_file(const std::string& path,
                     std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  CGC_CHECK_MSG(f != nullptr, "cannot open store file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  CGC_CHECK_MSG(size >= 0, "cannot stat store file: " + path);
  out->resize(static_cast<std::size_t>(size));
  const std::size_t got =
      out->empty() ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  CGC_CHECK_MSG(got == out->size(), "short read on store file: " + path);
}

}  // namespace

MmapFile::MmapFile(const std::string& path) : path_(path) {
#ifdef CGC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  CGC_CHECK_MSG(fd >= 0, "cannot open store file: " + path);
  struct stat st {};
  const bool statted = ::fstat(fd, &st) == 0;
  if (statted && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const std::uint8_t*>(map);
      size_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
    }
  }
  ::close(fd);
  if (mapped_ || (statted && st.st_size == 0)) {
    return;  // mapped, or a valid empty file
  }
  read_whole_file(path, &fallback_);
  data_ = fallback_.data();
  size_ = fallback_.size();
#else
  read_whole_file(path, &fallback_);
  data_ = fallback_.data();
  size_ = fallback_.size();
#endif
}

MmapFile::~MmapFile() {
#ifdef CGC_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

}  // namespace cgc::store
