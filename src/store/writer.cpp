#include "store/writer.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "store/encoding.hpp"
#include "util/check.hpp"

namespace cgc::store {

static_assert(std::endian::native == std::endian::little,
              "CGCS raw columns assume a little-endian host");

namespace {

using trace::HostLoadSeries;
using trace::TraceSet;

/// Serializes chunks sequentially and accumulates the directory.
class FileBuilder {
 public:
  FileBuilder(const std::string& path, ChunkOptions chunk_options)
      : out_(path, std::ios::binary), chunk_options_(chunk_options) {
    CGC_CHECK_MSG(out_.good(), "cannot open store file for writing: " + path);
    // Header: magic | version | flags | reserved. Everything goes
    // through write_bytes so offset_ tracks the true file position.
    write_bytes({reinterpret_cast<const std::uint8_t*>(kMagic.data()), 4});
    BufferWriter header;
    header.put_u32(kFormatVersion);
    header.put_u32(0);
    header.put_u32(0);
    write_bytes(header.bytes());
  }

  /// Integer column: one chunk per row group, zigzag varint, optionally
  /// delta-encoded. `get(i)` returns row i's value.
  void add_i64_column(SectionId section, ColumnId column, std::size_t rows,
                      bool delta,
                      const std::function<std::int64_t(std::size_t)>& get) {
    std::vector<std::int64_t> scratch;
    std::vector<std::uint8_t> payload;
    for_each_row_group(rows, [&](std::size_t lo, std::size_t hi) {
      scratch.clear();
      scratch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        scratch.push_back(get(i));
      }
      payload.clear();
      encode_i64_column(scratch, delta, &payload);
      ChunkMeta meta = base_meta(section, column,
                                 delta ? Encoding::kDeltaVarint
                                       : Encoding::kVarint,
                                 lo, hi - lo);
      for (const std::int64_t v : scratch) {
        meta.int_min = std::min(meta.int_min, v);
        meta.int_max = std::max(meta.int_max, v);
      }
      append_chunk(meta, payload);
    });
  }

  /// Raw float column; the reader exposes these chunks zero-copy.
  void add_f32_column(SectionId section, ColumnId column, std::size_t rows,
                      const std::function<float(std::size_t)>& get) {
    std::vector<float> scratch;
    for_each_row_group(rows, [&](std::size_t lo, std::size_t hi) {
      scratch.clear();
      scratch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        scratch.push_back(get(i));
      }
      ChunkMeta meta =
          base_meta(section, column, Encoding::kRawF32, lo, hi - lo);
      for (const float v : scratch) {
        meta.real_min = std::min(meta.real_min, static_cast<double>(v));
        meta.real_max = std::max(meta.real_max, static_cast<double>(v));
      }
      append_chunk(meta,
                   {reinterpret_cast<const std::uint8_t*>(scratch.data()),
                    scratch.size() * sizeof(float)});
    });
  }

  /// Raw byte column (enums, priorities, attribute masks).
  void add_u8_column(SectionId section, ColumnId column, std::size_t rows,
                     const std::function<std::uint8_t(std::size_t)>& get) {
    std::vector<std::uint8_t> scratch;
    for_each_row_group(rows, [&](std::size_t lo, std::size_t hi) {
      scratch.clear();
      scratch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        scratch.push_back(get(i));
      }
      ChunkMeta meta =
          base_meta(section, column, Encoding::kRawU8, lo, hi - lo);
      for (const std::uint8_t v : scratch) {
        meta.int_min = std::min<std::int64_t>(meta.int_min, v);
        meta.int_max = std::max<std::int64_t>(meta.int_max, v);
      }
      append_chunk(meta, scratch);
    });
  }

  /// Writes the footer + trailer. Call exactly once, last.
  void finish(const TraceSet& trace, std::size_t num_hostload_samples) {
    const std::uint64_t footer_offset = offset_;
    BufferWriter footer;
    footer.put_u32(kFormatVersion);
    footer.put_string(trace.system_name());
    footer.put_i64(trace.duration());
    footer.put_u8(trace.memory_in_mb() ? 1 : 0);
    footer.put_u64(trace.jobs().size());
    footer.put_u64(trace.tasks().size());
    footer.put_u64(trace.events().size());
    footer.put_u64(trace.machines().size());
    footer.put_u64(num_hostload_samples);
    // Host-load series directory: samples are flattened series-major, so
    // (machine_id, start, period, count) reconstructs every series.
    footer.put_u64(trace.host_load().size());
    for (const HostLoadSeries& h : trace.host_load()) {
      footer.put_i64(h.machine_id());
      footer.put_i64(h.start());
      footer.put_i64(h.period());
      footer.put_u64(h.size());
    }
    // Chunk directory.
    footer.put_u32(static_cast<std::uint32_t>(chunks_.size()));
    for (const ChunkMeta& c : chunks_) {
      footer.put_u8(static_cast<std::uint8_t>(c.section));
      footer.put_u8(static_cast<std::uint8_t>(c.column));
      footer.put_u8(static_cast<std::uint8_t>(c.encoding));
      footer.put_u64(c.offset);
      footer.put_u64(c.payload_size);
      footer.put_u64(c.row_begin);
      footer.put_u64(c.row_count);
      footer.put_i64(c.int_min);
      footer.put_i64(c.int_max);
      footer.put_f64(c.real_min);
      footer.put_f64(c.real_max);
      footer.put_u32(c.crc);
    }
    write_bytes(footer.bytes());

    BufferWriter trailer;
    trailer.put_u64(footer_offset);
    trailer.put_u32(crc32(footer.bytes()));
    write_bytes(trailer.bytes());
    write_bytes(
        {reinterpret_cast<const std::uint8_t*>(kEndMagic.data()), 4});
    out_.flush();
    CGC_CHECK_MSG(out_.good(), "I/O error writing store file");
  }

 private:
  void for_each_row_group(
      std::size_t rows,
      const std::function<void(std::size_t, std::size_t)>& fn) {
    const std::size_t group = chunk_options_.rows_per_chunk;
    for (std::size_t lo = 0; lo < rows; lo += group) {
      fn(lo, std::min(rows, lo + group));
    }
  }

  ChunkMeta base_meta(SectionId section, ColumnId column, Encoding encoding,
                      std::size_t row_begin, std::size_t row_count) {
    ChunkMeta meta;
    meta.section = section;
    meta.column = column;
    meta.encoding = encoding;
    meta.row_begin = row_begin;
    meta.row_count = row_count;
    return meta;
  }

  void append_chunk(ChunkMeta meta, std::span<const std::uint8_t> payload) {
    // Pad so every chunk starts 8-byte aligned (raw f32 spans need it).
    static constexpr std::uint8_t kZeros[kChunkAlignment] = {};
    const std::size_t misalign = offset_ % kChunkAlignment;
    if (misalign != 0) {
      write_bytes({kZeros, kChunkAlignment - misalign});
    }
    meta.offset = offset_;
    meta.payload_size = payload.size();
    meta.crc = crc32(payload);
    write_bytes(payload);
    chunks_.push_back(meta);
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    offset_ += bytes.size();
  }

  std::ofstream out_;
  ChunkOptions chunk_options_;
  std::uint64_t offset_ = 0;
  std::vector<ChunkMeta> chunks_;
};

/// Forward-only cursor over the flattened host-load sample index:
/// flat row i lives in series `series_idx` at sample `sample_idx`.
/// Column gathers visit rows strictly in order, so advancing is O(1)
/// amortized with no per-row search.
class HostLoadCursor {
 public:
  explicit HostLoadCursor(std::span<const HostLoadSeries> series)
      : series_(series) {
    skip_empty();
  }

  /// Moves to flat row `target` (>= current position).
  void advance_to(std::size_t target) {
    while (flat_ < target) {
      ++flat_;
      ++sample_;
      if (sample_ >= series_[series_idx_].size()) {
        ++series_idx_;
        sample_ = 0;
        skip_empty();
      }
    }
  }

  const HostLoadSeries& series() const { return series_[series_idx_]; }
  std::size_t sample() const { return sample_; }

 private:
  void skip_empty() {
    while (series_idx_ < series_.size() && series_[series_idx_].empty()) {
      ++series_idx_;
    }
  }

  std::span<const HostLoadSeries> series_;
  std::size_t series_idx_ = 0;
  std::size_t sample_ = 0;
  std::size_t flat_ = 0;
};

/// Makes a float getter over the flattened host-load rows using
/// `metric(series, sample_index)`.
std::function<float(std::size_t)> hostload_f32(
    std::span<const HostLoadSeries> series,
    std::function<float(const HostLoadSeries&, std::size_t)> metric) {
  auto cursor = std::make_shared<HostLoadCursor>(series);
  return [cursor, metric = std::move(metric)](std::size_t i) {
    cursor->advance_to(i);
    return metric(cursor->series(), cursor->sample());
  };
}

std::function<std::int64_t(std::size_t)> hostload_i64(
    std::span<const HostLoadSeries> series,
    std::function<std::int64_t(const HostLoadSeries&, std::size_t)> metric) {
  auto cursor = std::make_shared<HostLoadCursor>(series);
  return [cursor, metric = std::move(metric)](std::size_t i) {
    cursor->advance_to(i);
    return metric(cursor->series(), cursor->sample());
  };
}

}  // namespace

void write_cgcs(const trace::TraceSet& trace, const std::string& path,
                const WriteOptions& options) {
  CGC_CHECK_MSG(options.chunks.rows_per_chunk > 0,
                "rows_per_chunk must be positive");
  FileBuilder file(path, options.chunks);

  // -- jobs -----------------------------------------------------------------
  const auto jobs = trace.jobs();
  const std::size_t nj = jobs.size();
  file.add_i64_column(SectionId::kJobs, ColumnId::kJobId, nj, false,
                      [&](std::size_t i) { return jobs[i].job_id; });
  file.add_i64_column(SectionId::kJobs, ColumnId::kUserId, nj, false,
                      [&](std::size_t i) { return jobs[i].user_id; });
  file.add_u8_column(SectionId::kJobs, ColumnId::kPriority, nj,
                     [&](std::size_t i) { return jobs[i].priority; });
  // Jobs are sorted by submit time after finalize(): delta-encode.
  file.add_i64_column(SectionId::kJobs, ColumnId::kSubmitTime, nj, true,
                      [&](std::size_t i) { return jobs[i].submit_time; });
  file.add_i64_column(SectionId::kJobs, ColumnId::kEndTime, nj, false,
                      [&](std::size_t i) { return jobs[i].end_time; });
  file.add_i64_column(SectionId::kJobs, ColumnId::kNumTasks, nj, false,
                      [&](std::size_t i) { return jobs[i].num_tasks; });
  file.add_f32_column(SectionId::kJobs, ColumnId::kCpuParallelism, nj,
                      [&](std::size_t i) { return jobs[i].cpu_parallelism; });
  file.add_f32_column(SectionId::kJobs, ColumnId::kMemUsage, nj,
                      [&](std::size_t i) { return jobs[i].mem_usage; });

  // -- tasks ----------------------------------------------------------------
  const auto tasks = trace.tasks();
  const std::size_t nt = tasks.size();
  // Tasks are sorted by (job_id, task_index) after finalize().
  file.add_i64_column(SectionId::kTasks, ColumnId::kJobId, nt, true,
                      [&](std::size_t i) { return tasks[i].job_id; });
  file.add_i64_column(SectionId::kTasks, ColumnId::kTaskIndex, nt, false,
                      [&](std::size_t i) { return tasks[i].task_index; });
  file.add_u8_column(SectionId::kTasks, ColumnId::kPriority, nt,
                     [&](std::size_t i) { return tasks[i].priority; });
  file.add_i64_column(SectionId::kTasks, ColumnId::kSubmitTime, nt, false,
                      [&](std::size_t i) { return tasks[i].submit_time; });
  file.add_i64_column(SectionId::kTasks, ColumnId::kScheduleTime, nt, false,
                      [&](std::size_t i) { return tasks[i].schedule_time; });
  file.add_i64_column(SectionId::kTasks, ColumnId::kEndTime, nt, false,
                      [&](std::size_t i) { return tasks[i].end_time; });
  file.add_u8_column(
      SectionId::kTasks, ColumnId::kEndEvent, nt, [&](std::size_t i) {
        return static_cast<std::uint8_t>(tasks[i].end_event);
      });
  file.add_i64_column(SectionId::kTasks, ColumnId::kMachineId, nt, false,
                      [&](std::size_t i) { return tasks[i].machine_id; });
  file.add_i64_column(SectionId::kTasks, ColumnId::kResubmits, nt, false,
                      [&](std::size_t i) { return tasks[i].resubmits; });
  file.add_f32_column(SectionId::kTasks, ColumnId::kCpuRequest, nt,
                      [&](std::size_t i) { return tasks[i].cpu_request; });
  file.add_f32_column(SectionId::kTasks, ColumnId::kMemRequest, nt,
                      [&](std::size_t i) { return tasks[i].mem_request; });
  file.add_f32_column(SectionId::kTasks, ColumnId::kCpuUsage, nt,
                      [&](std::size_t i) { return tasks[i].cpu_usage; });
  file.add_f32_column(SectionId::kTasks, ColumnId::kMemUsage, nt,
                      [&](std::size_t i) { return tasks[i].mem_usage; });

  // -- events ---------------------------------------------------------------
  const auto events = trace.events();
  const std::size_t ne = events.size();
  // Events are time-sorted after finalize(): delta-encode the clock.
  file.add_i64_column(SectionId::kEvents, ColumnId::kTime, ne, true,
                      [&](std::size_t i) { return events[i].time; });
  file.add_i64_column(SectionId::kEvents, ColumnId::kJobId, ne, false,
                      [&](std::size_t i) { return events[i].job_id; });
  file.add_i64_column(SectionId::kEvents, ColumnId::kTaskIndex, ne, false,
                      [&](std::size_t i) { return events[i].task_index; });
  file.add_i64_column(SectionId::kEvents, ColumnId::kMachineId, ne, false,
                      [&](std::size_t i) { return events[i].machine_id; });
  file.add_u8_column(
      SectionId::kEvents, ColumnId::kEventType, ne, [&](std::size_t i) {
        return static_cast<std::uint8_t>(events[i].type);
      });
  file.add_u8_column(SectionId::kEvents, ColumnId::kPriority, ne,
                     [&](std::size_t i) { return events[i].priority; });

  // -- machines -------------------------------------------------------------
  const auto machines = trace.machines();
  const std::size_t nm = machines.size();
  file.add_i64_column(SectionId::kMachines, ColumnId::kMachineId, nm, false,
                      [&](std::size_t i) { return machines[i].machine_id; });
  file.add_f32_column(SectionId::kMachines, ColumnId::kCpuCapacity, nm,
                      [&](std::size_t i) { return machines[i].cpu_capacity; });
  file.add_f32_column(SectionId::kMachines, ColumnId::kMemCapacity, nm,
                      [&](std::size_t i) { return machines[i].mem_capacity; });
  file.add_f32_column(
      SectionId::kMachines, ColumnId::kPageCacheCapacity, nm,
      [&](std::size_t i) { return machines[i].page_cache_capacity; });
  file.add_u8_column(SectionId::kMachines, ColumnId::kAttributes, nm,
                     [&](std::size_t i) { return machines[i].attributes; });

  // -- host load (flattened series-major) -----------------------------------
  const auto host_load = trace.host_load();
  std::size_t ns = 0;
  for (const HostLoadSeries& h : host_load) {
    ns += h.size();
  }
  using trace::PriorityBand;
  const struct {
    ColumnId column;
    PriorityBand band;
    bool is_cpu;
  } band_columns[] = {
      {ColumnId::kCpuLow, PriorityBand::kLow, true},
      {ColumnId::kCpuMid, PriorityBand::kMid, true},
      {ColumnId::kCpuHigh, PriorityBand::kHigh, true},
      {ColumnId::kMemLow, PriorityBand::kLow, false},
      {ColumnId::kMemMid, PriorityBand::kMid, false},
      {ColumnId::kMemHigh, PriorityBand::kHigh, false},
  };
  for (const auto& bc : band_columns) {
    file.add_f32_column(
        SectionId::kHostLoad, bc.column, ns,
        hostload_f32(host_load,
                     [band = bc.band, is_cpu = bc.is_cpu](
                         const HostLoadSeries& h, std::size_t i) {
                       return is_cpu ? h.cpu(band, i) : h.mem(band, i);
                     }));
  }
  file.add_f32_column(SectionId::kHostLoad, ColumnId::kMemAssigned, ns,
                      hostload_f32(host_load,
                                   [](const HostLoadSeries& h, std::size_t i) {
                                     return h.mem_assigned(i);
                                   }));
  file.add_f32_column(SectionId::kHostLoad, ColumnId::kPageCache, ns,
                      hostload_f32(host_load,
                                   [](const HostLoadSeries& h, std::size_t i) {
                                     return h.page_cache(i);
                                   }));
  file.add_i64_column(SectionId::kHostLoad, ColumnId::kRunning, ns, false,
                      hostload_i64(host_load,
                                   [](const HostLoadSeries& h, std::size_t i) {
                                     return h.running(i);
                                   }));
  file.add_i64_column(SectionId::kHostLoad, ColumnId::kPending, ns, false,
                      hostload_i64(host_load,
                                   [](const HostLoadSeries& h, std::size_t i) {
                                     return h.pending(i);
                                   }));

  file.finish(trace, ns);
}

}  // namespace cgc::store
