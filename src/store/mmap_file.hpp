// Read-only memory-mapped file (RAII). The CGCS reader keeps one map
// alive for the lifetime of every zero-copy span it hands out.
//
// On POSIX the file is mapped MAP_PRIVATE/PROT_READ; elsewhere (or if
// mmap fails, e.g. on a filesystem without mapping support) the file is
// read into a heap buffer, preserving the same interface at the cost of
// one copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cgc::store {

class MmapFile {
 public:
  /// Maps `path`; throws cgc::util::Error when the file cannot be
  /// opened. Empty files are valid (data() is an empty span).
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<const std::uint8_t> data() const {
    return {data_, size_};
  }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when backed by a real mapping rather than the heap fallback.
  bool mapped() const { return mapped_; }

 private:
  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< owns bytes when !mapped_
};

}  // namespace cgc::store
