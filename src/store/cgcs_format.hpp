// On-disk layout of the CGCS columnar trace store ("Cloud/Grid
// Characterization Store"). One .cgcs file persists a finalized
// trace::TraceSet so analysis pipelines start from an mmap instead of a
// multi-gigabyte text parse.
//
// File layout (all integers little-endian):
//
//   [header  16 B]  magic "CGCS" | u32 format_version | u32 flags (0) |
//                   u32 reserved (0)
//   [chunk payloads ...]  each 8-byte aligned, back to back
//   [footer]        directory: trace metadata, host-load series
//                   directory, chunk directory (see writer.cpp)
//   [trailer 16 B]  u64 footer_offset | u32 footer_crc32 | magic "SGCE"
//
// Data is split into five row sections (jobs, tasks, events, machines,
// flattened host-load samples); each section's rows are cut into row
// groups of ChunkOptions::rows_per_chunk, and every column of a row
// group is one independently encoded chunk with its own CRC-32 and zone
// map (min/max over the rows). Sorted integer columns use
// delta+varint; other integers use zigzag varint; floats and byte
// columns are raw little-endian arrays, which the mmap reader exposes
// as zero-copy spans.
//
// Versioning rules: format_version bumps on any layout change a v(N-1)
// reader cannot parse; readers reject files with a different major
// version outright (no silent partial reads). New trailing footer
// fields may be added within a version only if readers tolerate
// `remaining() > 0` after parsing — the current reader does not, so any
// change bumps the version.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace cgc::store {

inline constexpr std::string_view kMagic = "CGCS";      ///< file start
inline constexpr std::string_view kEndMagic = "SGCE";   ///< file end
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTrailerSize = 16;
inline constexpr std::size_t kChunkAlignment = 8;

/// Row sections of the store. Order is also the footer directory order.
enum class SectionId : std::uint8_t {
  kJobs = 0,
  kTasks = 1,
  kEvents = 2,
  kMachines = 3,
  kHostLoad = 4,  ///< flattened samples, series-major (see footer dir)
};
inline constexpr std::size_t kNumSections = 5;

std::string_view section_name(SectionId s);

/// Column ids are scoped per section; values are stable on-disk ids.
enum class ColumnId : std::uint8_t {
  // kJobs
  kJobId = 0,
  kUserId = 1,
  kPriority = 2,
  kSubmitTime = 3,
  kEndTime = 4,
  kNumTasks = 5,
  kCpuParallelism = 6,
  kMemUsage = 7,
  // kTasks (reuses kJobId/kPriority/kSubmitTime/kEndTime/kMemUsage)
  kTaskIndex = 8,
  kScheduleTime = 9,
  kEndEvent = 10,
  kMachineId = 11,
  kResubmits = 12,
  kCpuRequest = 13,
  kMemRequest = 14,
  kCpuUsage = 15,
  // kEvents (reuses kJobId/kTaskIndex/kMachineId/kPriority)
  kTime = 16,
  kEventType = 17,
  // kMachines (reuses kMachineId)
  kCpuCapacity = 18,
  kMemCapacity = 19,
  kPageCacheCapacity = 20,
  kAttributes = 21,
  // kHostLoad
  kCpuLow = 22,
  kCpuMid = 23,
  kCpuHigh = 24,
  kMemLow = 25,
  kMemMid = 26,
  kMemHigh = 27,
  kMemAssigned = 28,
  kPageCache = 29,
  kRunning = 30,
  kPending = 31,
};

/// One past the largest ColumnId value; sizes lookup tables keyed by
/// column id.
inline constexpr std::size_t kNumColumnIds = 32;

/// How a chunk's payload bytes encode its rows.
enum class Encoding : std::uint8_t {
  kRawU8 = 0,        ///< one byte per row (enums, priorities, flags)
  kRawF32 = 1,       ///< little-endian float array; zero-copy on mmap
  kVarint = 2,       ///< zigzag varint per row
  kDeltaVarint = 3,  ///< zigzag varint of delta vs previous row
};

/// Footer directory entry for one chunk. The zone map carries min/max
/// over the chunk's rows — integer bounds for integer encodings, real
/// bounds for kRawF32 — enabling predicate pushdown (skip a chunk when
/// its range cannot intersect the predicate).
struct ChunkMeta {
  SectionId section = SectionId::kJobs;
  ColumnId column = ColumnId::kJobId;
  Encoding encoding = Encoding::kVarint;
  std::uint64_t offset = 0;        ///< absolute file offset of payload
  std::uint64_t payload_size = 0;  ///< bytes
  std::uint64_t row_begin = 0;     ///< first row index within the section
  std::uint64_t row_count = 0;
  std::int64_t int_min = std::numeric_limits<std::int64_t>::max();
  std::int64_t int_max = std::numeric_limits<std::int64_t>::min();
  double real_min = std::numeric_limits<double>::infinity();
  double real_max = -std::numeric_limits<double>::infinity();
  std::uint32_t crc = 0;
};

/// Writer knobs.
struct ChunkOptions {
  /// Rows per row group. 64Ki keeps chunk decode state L2-resident while
  /// giving the scheduler enough chunks to fan out at month scale.
  std::size_t rows_per_chunk = 64 * 1024;
};

}  // namespace cgc::store
