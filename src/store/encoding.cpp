#include "store/encoding.hpp"

#include <array>
#include <cstring>

#include "util/check.hpp"

namespace cgc::store {

void put_varint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

void encode_i64_column(std::span<const std::int64_t> values, bool delta,
                       std::vector<std::uint8_t>* out) {
  std::int64_t prev = 0;
  for (const std::int64_t v : values) {
    const std::int64_t stored = delta ? v - prev : v;
    put_varint(zigzag_encode(stored), out);
    prev = v;
  }
}

void decode_i64_column(std::span<const std::uint8_t> bytes, std::size_t count,
                       bool delta, std::vector<std::int64_t>* out) {
  out->resize(count);
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* const end = p + bytes.size();
  std::int64_t* dst = out->data();
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t value;
    if (p < end && *p < 0x80) {
      // Fast path: delta-encoded timestamps and small ids are almost
      // always single-byte varints.
      value = *p++;
    } else {
      value = 0;
      int shift = 0;
      while (true) {
        CGC_CHECK_MSG(p < end, "truncated varint in column payload");
        CGC_CHECK_MSG(shift < 64, "overlong varint in column payload");
        const std::uint8_t byte = *p++;
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
          break;
        }
        shift += 7;
      }
    }
    std::int64_t v = zigzag_decode(value);
    if (delta) {
      v += prev;
    }
    dst[i] = v;
    prev = v;
  }
  CGC_CHECK_MSG(p == end,
                "column payload has trailing bytes after last row");
}

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte through k further zero bytes. Processing 8
/// input bytes per iteration is ~5x faster than the byte loop, which
/// matters because every chunk is CRC-checked on first access.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const auto tables = make_crc_tables();
  const auto& t = tables;
  std::uint32_t c = 0xFFFFFFFFu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);  // little-endian host (asserted in writer.cpp)
    w ^= c;
    c = t[7][w & 0xFF] ^ t[6][(w >> 8) & 0xFF] ^ t[5][(w >> 16) & 0xFF] ^
        t[4][(w >> 24) & 0xFF] ^ t[3][(w >> 32) & 0xFF] ^
        t[2][(w >> 40) & 0xFF] ^ t[1][(w >> 48) & 0xFF] ^ t[0][w >> 56];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void BufferWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BufferWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void BufferReader::require(std::size_t n) const {
  CGC_CHECK_MSG(pos_ + n <= bytes_.size(),
                "footer truncated: read past end of directory");
}

std::uint8_t BufferReader::get_u8() {
  require(1);
  return bytes_[pos_++];
}

std::uint32_t BufferReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BufferReader::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BufferReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BufferReader::get_string() {
  const std::uint32_t len = get_u32();
  require(len);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return s;
}

}  // namespace cgc::store
